#!/usr/bin/env python
"""Check docs/OBSERVABILITY.md, docs/FAULTS.md and docs/PERFORMANCE.md
against the code.

The event schema has two sources: ``repro.obs.events`` (what the code
emits and validates) and ``docs/OBSERVABILITY.md`` (what operators read).
This script parses the doc's ``### `event_type` `` headings and the
first column of each field table and fails — exit code 1, with a
per-drift message — whenever either side documents an event type or a
field the other does not have.

The fault subsystem gets the same treatment: every fault kind in
``repro.faults.FAULT_KINDS`` must have a ``### `kind` `` section in
``docs/FAULTS.md``, and every fault event type
(``repro.obs.events.FAULT_TYPES``) must be mentioned there, so the spec
reference cannot silently fall behind the engine.

So does the benchmark artifact schema: the ``### `bench_record` ``
field table in ``docs/PERFORMANCE.md`` must list exactly
``repro.perf.record.BENCH_FIELDS``, and the ``### `het_bench_record` ``
table must list exactly ``repro.perf.het_bench.HET_BENCH_FIELDS``.

And the online service: ``docs/SERVE.md`` must have a ``### `op` ``
section per protocol operation (``repro.serve.protocol.OPS``), mention
every service-lifecycle event type and reject reason, and carry a
``### `serve_bench_record` `` field table matching
``repro.serve.bench.SERVE_BENCH_FIELDS``.

And the linter: the ``| rule | pass | summary |`` catalogue table in
``docs/LINT.md`` must list exactly the rules in
``repro.lint.findings.RULES``, each under the pass that owns it in the
registry (``PAR001`` under the ``engine``).

Run directly (``python tools/check_obs_docs.py``) or via the tier-1
test ``tests/obs/test_docs_consistency.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_PATH = REPO_ROOT / "docs" / "OBSERVABILITY.md"
FAULTS_DOC_PATH = REPO_ROOT / "docs" / "FAULTS.md"
PERF_DOC_PATH = REPO_ROOT / "docs" / "PERFORMANCE.md"
SERVE_DOC_PATH = REPO_ROOT / "docs" / "SERVE.md"
LINT_DOC_PATH = REPO_ROOT / "docs" / "LINT.md"

_HEADING = re.compile(r"^### `(?P<name>[a-z_]+)`\s*$")
_TABLE_ROW = re.compile(r"^\| `(?P<field>[a-z0-9_]+)` \|")

#: A row of the LINT.md rule-catalogue table: | `RULE` | `pass` | ... |
_LINT_ROW = re.compile(
    r"^\| `(?P<rule>[A-Z]+\d+)` \| `(?P<pass>[a-z-]+)` \|"
)


def parse_doc_schema(text: str) -> dict:
    """Extract {event_type: [field, ...]} from the markdown source."""
    schema: dict = {}
    current = None
    for line in text.splitlines():
        heading = _HEADING.match(line)
        if heading:
            current = heading.group("name")
            schema[current] = []
            continue
        if current is None:
            continue
        if line.startswith("## "):
            current = None
            continue
        row = _TABLE_ROW.match(line)
        if row:
            schema[current].append(row.group("field"))
    return schema


def compare(doc_schema: dict, code_fields: dict) -> list:
    """Return a list of human-readable drift messages (empty = in sync)."""
    problems = []
    for etype in code_fields:
        if etype not in doc_schema:
            problems.append(
                f"event type {etype!r} is implemented but has no "
                f"'### `{etype}`' section in docs/OBSERVABILITY.md"
            )
    for etype in doc_schema:
        if etype not in code_fields:
            problems.append(
                f"docs/OBSERVABILITY.md documents {etype!r}, which is "
                f"not in repro.obs.events.EVENT_FIELDS"
            )
    for etype, fields in code_fields.items():
        documented = doc_schema.get(etype)
        if documented is None:
            continue
        missing = [f for f in fields if f not in documented]
        extra = [f for f in documented if f not in fields]
        if missing:
            problems.append(
                f"{etype}: fields {missing} implemented but undocumented"
            )
        if extra:
            problems.append(
                f"{etype}: fields {extra} documented but not implemented"
            )
    return problems


def check_faults_doc(
    text: str, fault_kinds: list, fault_types: list
) -> list:
    """Drift messages for docs/FAULTS.md vs the fault subsystem."""
    problems = []
    headings = {
        m.group("name")
        for m in (_HEADING.match(line) for line in text.splitlines())
        if m
    }
    for kind in fault_kinds:
        if kind not in headings:
            problems.append(
                f"fault kind {kind!r} is implemented but has no "
                f"'### `{kind}`' section in docs/FAULTS.md"
            )
    for etype in fault_types:
        if f"`{etype}`" not in text:
            problems.append(
                f"fault event type {etype!r} is never mentioned in "
                f"docs/FAULTS.md"
            )
    return problems


def check_windows_doc(text: str, window_names: list) -> list:
    """Drift messages for the sliding-window table vs WINDOW_NAMES."""
    problems = []
    for name in window_names:
        if f"`{name}`" not in text:
            problems.append(
                f"window {name!r} is in repro.obs.windows.WINDOW_NAMES "
                f"but never mentioned in docs/OBSERVABILITY.md"
            )
    return problems


def check_perf_doc(text: str, bench_fields: list) -> list:
    """Drift messages for docs/PERFORMANCE.md vs the bench schema."""
    documented = parse_doc_schema(text).get("bench_record")
    if documented is None:
        return [
            "docs/PERFORMANCE.md has no '### `bench_record`' field table"
        ]
    problems = []
    missing = [f for f in bench_fields if f not in documented]
    extra = [f for f in documented if f not in bench_fields]
    if missing:
        problems.append(
            f"bench_record: fields {missing} in "
            f"repro.perf.record.BENCH_FIELDS but undocumented"
        )
    if extra:
        problems.append(
            f"bench_record: fields {extra} documented but not in "
            f"repro.perf.record.BENCH_FIELDS"
        )
    return problems


def check_het_perf_doc(text: str, het_bench_fields: list) -> list:
    """Drift messages for docs/PERFORMANCE.md vs the het bench schema."""
    documented = parse_doc_schema(text).get("het_bench_record")
    if documented is None:
        return [
            "docs/PERFORMANCE.md has no '### `het_bench_record`' "
            "field table"
        ]
    problems = []
    missing = [f for f in het_bench_fields if f not in documented]
    extra = [f for f in documented if f not in het_bench_fields]
    if missing:
        problems.append(
            f"het_bench_record: fields {missing} in "
            f"repro.perf.het_bench.HET_BENCH_FIELDS but undocumented"
        )
    if extra:
        problems.append(
            f"het_bench_record: fields {extra} documented but not in "
            f"repro.perf.het_bench.HET_BENCH_FIELDS"
        )
    return problems


def check_serve_doc(
    text: str,
    ops: list,
    service_types: list,
    reject_reasons: list,
    serve_bench_fields: list,
) -> list:
    """Drift messages for docs/SERVE.md vs the service subsystem."""
    problems = []
    headings = {
        m.group("name")
        for m in (_HEADING.match(line) for line in text.splitlines())
        if m
    }
    for op in ops:
        if op not in headings:
            problems.append(
                f"protocol op {op!r} is implemented but has no "
                f"'### `{op}`' section in docs/SERVE.md"
            )
    for etype in service_types:
        if f"`{etype}`" not in text:
            problems.append(
                f"service event type {etype!r} is never mentioned in "
                f"docs/SERVE.md"
            )
    for reason in reject_reasons:
        if f"`{reason}`" not in text:
            problems.append(
                f"reject reason {reason!r} is never mentioned in "
                f"docs/SERVE.md"
            )
    # The scrape endpoint and the SLO submit field are part of the
    # operator contract — keep them documented.
    if "Prometheus" not in text:
        problems.append(
            "docs/SERVE.md never mentions the Prometheus /metrics "
            "exposition (repro.obs.prom)"
        )
    if "`deadline_s`" not in text:
        problems.append(
            "docs/SERVE.md never mentions the submit job field "
            "'deadline_s' (SLO tracking)"
        )
    documented = parse_doc_schema(text).get("serve_bench_record")
    if documented is None:
        problems.append(
            "docs/SERVE.md has no '### `serve_bench_record`' field table"
        )
    else:
        missing = [f for f in serve_bench_fields if f not in documented]
        extra = [f for f in documented if f not in serve_bench_fields]
        if missing:
            problems.append(
                f"serve_bench_record: fields {missing} in "
                f"repro.serve.bench.SERVE_BENCH_FIELDS but undocumented"
            )
        if extra:
            problems.append(
                f"serve_bench_record: fields {extra} documented but not "
                f"in repro.serve.bench.SERVE_BENCH_FIELDS"
            )
    return problems


def check_lint_doc(text: str, rule_owners: dict) -> list:
    """Drift messages for the docs/LINT.md rule-catalogue table.

    ``rule_owners`` maps every rule id to its owning pass name
    (``PAR001`` belongs to the ``engine``); the doc's
    ``| rule | pass | summary |`` table must list exactly those rows.
    """
    documented = {}
    for line in text.splitlines():
        row = _LINT_ROW.match(line)
        if row:
            documented[row.group("rule")] = row.group("pass")
    problems = []
    for rule, owner in rule_owners.items():
        got = documented.get(rule)
        if got is None:
            problems.append(
                f"lint rule {rule!r} has no catalogue row in docs/LINT.md"
            )
        elif got != owner:
            problems.append(
                f"docs/LINT.md lists {rule!r} under pass {got!r}, "
                f"but it belongs to {owner!r}"
            )
    for rule in documented:
        if rule not in rule_owners:
            problems.append(
                f"docs/LINT.md catalogues {rule!r}, which no shipped "
                f"pass (or the engine) emits"
            )
    return problems


def main() -> int:
    """Run the check; print drift and return the exit code."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.faults.spec import FAULT_KINDS
    from repro.obs.events import EVENT_FIELDS, FAULT_TYPES, SERVICE_TYPES
    from repro.obs.windows import WINDOW_NAMES
    from repro.perf.het_bench import HET_BENCH_FIELDS
    from repro.perf.record import BENCH_FIELDS
    from repro.serve.bench import SERVE_BENCH_FIELDS
    from repro.serve.protocol import OPS, REJECT_REASONS

    obs_text = DOC_PATH.read_text()
    doc_schema = parse_doc_schema(obs_text)
    code_fields = {k: list(v) for k, v in EVENT_FIELDS.items()}
    problems = compare(doc_schema, code_fields)
    problems.extend(check_windows_doc(obs_text, list(WINDOW_NAMES)))
    if not FAULTS_DOC_PATH.exists():
        problems.append("docs/FAULTS.md is missing")
    else:
        problems.extend(
            check_faults_doc(
                FAULTS_DOC_PATH.read_text(),
                list(FAULT_KINDS),
                list(FAULT_TYPES),
            )
        )
    if not PERF_DOC_PATH.exists():
        problems.append("docs/PERFORMANCE.md is missing")
    else:
        perf_text = PERF_DOC_PATH.read_text()
        problems.extend(check_perf_doc(perf_text, list(BENCH_FIELDS)))
        problems.extend(
            check_het_perf_doc(perf_text, list(HET_BENCH_FIELDS))
        )
    if not SERVE_DOC_PATH.exists():
        problems.append("docs/SERVE.md is missing")
    else:
        problems.extend(
            check_serve_doc(
                SERVE_DOC_PATH.read_text(),
                list(OPS),
                list(SERVICE_TYPES),
                list(REJECT_REASONS),
                list(SERVE_BENCH_FIELDS),
            )
        )
    from repro.lint.findings import RULES
    from repro.lint.passes import build_passes

    rule_owners = {"PAR001": "engine"}
    for instance in build_passes(None):
        for rule in instance.rules:
            rule_owners[rule] = instance.name
    # RULES and the pass registry must agree before the doc can.
    for rule in RULES:
        rule_owners.setdefault(rule, "engine")
    if not LINT_DOC_PATH.exists():
        problems.append("docs/LINT.md is missing")
    else:
        problems.extend(
            check_lint_doc(LINT_DOC_PATH.read_text(), rule_owners)
        )
    if problems:
        for problem in problems:
            print(f"DRIFT: {problem}", file=sys.stderr)
        return 1
    print(
        f"docs/OBSERVABILITY.md in sync: {len(code_fields)} event types, "
        f"{sum(len(v) for v in code_fields.values())} fields, "
        f"{len(WINDOW_NAMES)} windows; "
        f"docs/FAULTS.md in sync: {len(FAULT_KINDS)} fault kinds; "
        f"docs/PERFORMANCE.md in sync: {len(BENCH_FIELDS)} bench fields "
        f"+ {len(HET_BENCH_FIELDS)} het bench fields; "
        f"docs/SERVE.md in sync: {len(OPS)} ops, "
        f"{len(SERVE_BENCH_FIELDS)} serve bench fields; "
        f"docs/LINT.md in sync: {len(rule_owners)} rules catalogued"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
