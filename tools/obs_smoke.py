#!/usr/bin/env python
"""CI smoke test for the observability CLI surface.

Drives a tiny traced scenario end to end through the real CLI:
``repro trace`` generates a handful of jobs (two get a deliberately
impossible ``deadline_s`` so the run contains SLO violations),
``repro run --events`` records the event log, and then the two
consumers are exercised — ``repro explain`` must reconstruct a nonzero
decision-provenance chain for a job, and ``repro report --slo`` must
render the attainment table with the injected violations. Everything is
asserted on the commands' actual stdout, so a regression anywhere in
the emit → export → render pipeline fails CI.

Usage: PYTHONPATH=src python tools/obs_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
TIMEOUT_S = 120.0

#: Jobs whose deadline is set far below any achievable JCT.
DOOMED_JOBS = 2
IMPOSSIBLE_DEADLINE_S = 1.0


def _run(args: list, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{REPO / 'src'}{os.pathsep}" + env.get(
        "PYTHONPATH", ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=REPO,
        env=env,
        capture_output=True,
        text=True,
        timeout=TIMEOUT_S,
        **kwargs,
    )


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="repro-obs-smoke-"))
    trace = tmp / "trace.jsonl"
    events = tmp / "events.jsonl"

    result = _run(
        ["trace", str(trace), "--jobs", "10", "--seed", "7", "--gpus", "8"]
    )
    if result.returncode != 0:
        print(result.stderr, file=sys.stderr)
        print("FAIL: trace generation failed", file=sys.stderr)
        return 1

    # Give the first jobs an impossible deadline so the run must
    # contain slo_violation events.
    lines = trace.read_text().splitlines()
    doomed = 0
    rewritten = []
    for line in lines:
        obj = json.loads(line)
        if obj.get("kind") != "repro-trace" and doomed < DOOMED_JOBS:
            obj["deadline_s"] = IMPOSSIBLE_DEADLINE_S
            doomed += 1
        rewritten.append(json.dumps(obj))
    trace.write_text("\n".join(rewritten) + "\n")

    result = _run(
        ["run", str(trace), "--gpus", "8", "--events", str(events),
         "--reschedule-s", "600"]
    )
    if result.returncode != 0:
        print(result.stderr, file=sys.stderr)
        print("FAIL: traced run failed", file=sys.stderr)
        return 1

    job_id = None
    decision_jobs = 0
    violations = 0
    for line in events.read_text().splitlines():
        obj = json.loads(line)
        if obj.get("etype") == "job_submit" and job_id is None:
            job_id = obj["job_id"]
        elif obj.get("etype") == "decision_job":
            decision_jobs += 1
        elif obj.get("etype") == "slo_violation":
            violations += 1
    if job_id is None:
        print("FAIL: event log has no job_submit", file=sys.stderr)
        return 1
    if decision_jobs == 0:
        print("FAIL: event log has no decision_job records",
              file=sys.stderr)
        return 1
    if violations < DOOMED_JOBS:
        print(
            f"FAIL: expected >= {DOOMED_JOBS} slo_violation events, "
            f"got {violations}",
            file=sys.stderr,
        )
        return 1

    result = _run(["explain", str(events), job_id])
    if result.returncode != 0:
        print(result.stderr, file=sys.stderr)
        print("FAIL: repro explain failed", file=sys.stderr)
        return 1
    rounds = len(re.findall(r"^round \d+ @", result.stdout, re.MULTILINE))
    if rounds == 0 or "Eq.4" not in result.stdout:
        print(result.stdout)
        print(
            f"FAIL: explain rendered no decision rounds for {job_id}",
            file=sys.stderr,
        )
        return 1

    result = _run(["report", str(events), "--slo"])
    if result.returncode != 0:
        print(result.stderr, file=sys.stderr)
        print("FAIL: repro report --slo failed", file=sys.stderr)
        return 1
    match = re.search(
        r"SLO attainment: \d+/(\d+) .* (\d+) violated", result.stdout
    )
    if not match or int(match.group(2)) < DOOMED_JOBS:
        print(result.stdout)
        print("FAIL: report --slo missing the injected violations",
              file=sys.stderr)
        return 1

    print(
        f"obs smoke: {decision_jobs} decision records, {rounds} explain "
        f"rounds for {job_id}, {violations} SLO violations reported"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
