#!/usr/bin/env bash
# The CI gate, in the order a failure is cheapest to report:
#
#   1. `repro lint --strict`  — the invariant linter (repro.lint) over
#      src/repro, tools/ and benchmarks/, with the checked-in (empty)
#      baseline; a stale baseline entry also fails, so the baseline can
#      only shrink. A second (index-cached) run writes the SARIF
#      artifact to benchmarks/results/lint.sarif.
#   2. docs/schema sync        — tools/check_obs_docs.py keeps
#      docs/OBSERVABILITY.md, docs/FAULTS.md and docs/PERFORMANCE.md
#      truthful.
#   3. the tier-1 pytest suite.
#   4. serve smoke             — tools/serve_smoke.py boots
#      `python -m repro serve` as a subprocess, drives three jobs
#      through the socket, and requires a drained, clean exit within a
#      hard timeout (see docs/SERVE.md).
#   5. obs smoke               — tools/obs_smoke.py drives a tiny traced
#      scenario through `repro run --events`, then asserts
#      `repro explain` reconstructs a nonzero decision-provenance chain
#      and `repro report --slo` reports the injected deadline
#      violations (see docs/OBSERVABILITY.md).
#   6. perf smoke              — `repro bench --compare` of the tiny
#      fluid scenario against the checked-in fallback-backend baseline
#      (benchmarks/baselines/BENCH_fluid_tiny.json). Result anchors
#      must match bit-for-bit ([DRIFT] fails: the simulation changed);
#      the timing threshold is deliberately generous (3x) because CI
#      machines vary — this stage catches drift and order-of-magnitude
#      slowdowns, not noise. See docs/PERFORMANCE.md. Serve baselines
#      (BENCH_serve_*.json, including decision_latency_p99_ms) gate the
#      same way when passed to --compare.
#   7. het smoke               — `repro bench --compare` of the tiny
#      mixed-generation scenario against its checked-in baseline
#      (benchmarks/baselines/BENCH_het_tiny.json): all simulated
#      metrics are bit-exact anchors, including the
#      max-sum >= max-min >= fifo aggregate-throughput ordering.
#
# Usage: tools/ci.sh [extra pytest args...]
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== repro lint --strict =="
python -m repro lint --strict src/repro tools benchmarks

echo "== lint SARIF artifact =="
# Second run hits the whole-program index cache, so this costs only
# the per-file phase; the artifact lands next to the bench results.
mkdir -p benchmarks/results
python -m repro lint --format sarif src/repro tools benchmarks \
    > benchmarks/results/lint.sarif

echo "== docs/schema sync =="
python tools/check_obs_docs.py

echo "== tier-1 tests =="
python -m pytest -x -q "$@"

echo "== serve smoke (tools/serve_smoke.py) =="
python tools/serve_smoke.py

echo "== obs smoke (tools/obs_smoke.py) =="
python tools/obs_smoke.py

echo "== perf smoke (bench --compare) =="
python -m repro bench --backend fallback --no-write --threshold 3.0 \
    --compare benchmarks/baselines/BENCH_fluid_tiny.json

echo "== het smoke (bench --compare) =="
python -m repro bench --backend fallback --no-write --threshold 3.0 \
    --compare benchmarks/baselines/BENCH_het_tiny.json
