#!/usr/bin/env bash
# The CI gate, in the order a failure is cheapest to report:
#
#   1. `repro lint --strict`  — the invariant linter (repro.lint) over
#      the source tree, with the checked-in (empty) baseline; a stale
#      baseline entry also fails, so the baseline can only shrink.
#   2. docs/schema sync        — tools/check_obs_docs.py keeps
#      docs/OBSERVABILITY.md and docs/FAULTS.md truthful.
#   3. the tier-1 pytest suite.
#
# Usage: tools/ci.sh [extra pytest args...]
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== repro lint --strict =="
python -m repro lint --strict

echo "== docs/schema sync =="
python tools/check_obs_docs.py

echo "== tier-1 tests =="
python -m pytest -x -q "$@"
