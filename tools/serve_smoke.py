#!/usr/bin/env python
"""CI smoke test for ``python -m repro serve``.

Boots the service as a real subprocess (ephemeral port), drives three
jobs through it over the socket with :class:`repro.serve.ServeClient`,
verifies they all finish under a drain shutdown, and checks the process
exits cleanly — the whole cycle bounded by a hard timeout so a hung
service fails CI instead of wedging it.

Usage: PYTHONPATH=src python tools/serve_smoke.py
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
TIMEOUT_S = 60.0


def _job(job_id: str, submit_s: float) -> dict:
    return {
        "v": 1,
        "job_id": job_id,
        "model": "resnet50",
        "dataset": {"name": "imagenet-tiny", "size_mb": 512.0,
                    "num_items": 1000},
        "num_gpus": 2,
        "ideal_throughput_mbps": 200.0,
        "total_work_mb": 2048.0,
        "submit_time_s": submit_s,
        "regular": True,
    }


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{REPO / 'src'}{os.pathsep}" + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve",
         "--port", "0", "--gpus", "8", "--queue-limit", "8"],
        cwd=REPO,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    # Real wall-clock on purpose: this smoke test times out a live
    # subprocess, not simulated events.
    # lint: disable=DET003
    deadline = time.monotonic() + TIMEOUT_S
    try:
        # The service announces its ephemeral port on stdout.
        port = None
        assert proc.stdout is not None
        for line in proc.stdout:
            match = re.match(r"serve: listening on ([\d.]+):(\d+)", line)
            if match:
                port = int(match.group(2))
                break
            if time.monotonic() > deadline:  # lint: disable=DET003
                raise TimeoutError("service never announced its port")
        if port is None:
            raise RuntimeError("service exited before announcing its port")

        sys.path.insert(0, str(REPO / "src"))
        from repro.serve.client import ServeClient

        with ServeClient("127.0.0.1", port, timeout_s=TIMEOUT_S) as client:
            assert client.ping()["pong"] is True
            for i in range(3):
                response = client.submit(_job(f"smoke-{i}", float(i)))
                assert response["ok"], response
            status = client.status()
            assert status["jobs_submitted"] == 3, status
            client.shutdown(drain=True)

        returncode = proc.wait(  # lint: disable=DET003
            timeout=max(1.0, deadline - time.monotonic())
        )
        tail = proc.stdout.read()
        if returncode != 0:
            print(tail)
            print(f"FAIL: serve exited with {returncode}", file=sys.stderr)
            return 1
        if "drained after 3 submissions, 3 finished" not in tail:
            print(tail)
            print("FAIL: drain summary missing or wrong", file=sys.stderr)
            return 1
        print("serve smoke: 3 jobs submitted, drained, clean exit")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    sys.exit(main())
