#!/usr/bin/env python
"""Curriculum learning and irregular jobs (§6, §7.4, Figure 16).

Curriculum training samples batches *with replacement* from a growing
prefix of the (difficulty-sorted) dataset, breaking SiloDPerf's
once-per-epoch assumption. This example shows:

1. Figure 16a: the exponential pacing function for step sizes 50k / 75k;
2. Figure 16b: LRU performs as well as uniform caching under curriculum
   sampling (no thrashing — a re-sampled item hits immediately);
3. §6's irregular-job partitioning: a curriculum job marked irregular
   shares a SiloD cluster without disturbing the regular jobs.

Run: ``python examples/curriculum_learning.py``
"""

from repro.analysis.tables import render_series, render_table
from repro.cluster.dataset import Dataset
from repro.cluster.hardware import Cluster
from repro.cluster.job import Job
from repro.sim.runner import make_system
from repro.sim.fluid import FluidSimulator
from repro.workloads.curriculum import (
    ExponentialPacing,
    simulate_curriculum_jct,
)

GB = 1024.0


def demo_pacing() -> None:
    print("=== Figure 16a: exponential pacing functions (Eq 10) ===")
    for step in (50_000, 75_000):
        pacing = ExponentialPacing(
            num_items=500_000, starting_percent=0.04, alpha=1.5, step=step
        )
        series = pacing.series(total_iterations=500_000, points=10)
        print(
            render_series(
                series,
                "iteration",
                "fraction_of_data",
                title=f"step = {step // 1000}k",
                width=40,
            )
        )
        print()


def demo_uniform_vs_lru() -> None:
    print("=== Figure 16b: Uniform vs LRU JCT under curriculum ===")
    dataset = Dataset("imagenet-22k-scaled", 100_000.0, num_items=10_000)
    rows = []
    for step in (50_000, 75_000):
        pacing = ExponentialPacing(
            num_items=10_000, starting_percent=0.04, alpha=1.5, step=step
        )
        for policy in ("uniform", "lru"):
            result = simulate_curriculum_jct(
                dataset=dataset,
                pacing=pacing,
                total_iterations=500_000,
                cache_mb=50_000.0,
                policy=policy,
                compute_step_s=0.04,
                remote_io_mbps=120.0,
                seed=1,
            )
            rows.append(
                {
                    "step": f"{step // 1000}k",
                    "cache": policy,
                    "JCT (min)": result.jct_s / 60.0,
                    "hit ratio": result.hit_ratio,
                }
            )
    print(render_table(rows))
    print()


def demo_irregular_partition() -> None:
    print("=== §6: irregular jobs in a SiloD cluster ===")
    cluster = Cluster.build(1, 4, 100.0 * GB, 80.0)
    regular = Job(
        job_id="regular-resnet",
        model="resnet50",
        dataset=Dataset("imagenet-slice", 40.0 * GB),
        num_gpus=1,
        ideal_throughput_mbps=100.0,
        total_work_mb=3 * 40.0 * GB,
    )
    curriculum = Job(
        job_id="curriculum-job",
        model="resnet50-curriculum",
        dataset=Dataset("sorted-imagenet", 40.0 * GB),
        num_gpus=1,
        ideal_throughput_mbps=100.0,
        total_work_mb=2 * 40.0 * GB,
        regular=False,  # breaks the once-per-epoch assumption
    )
    scheduler, cache_system = make_system("fifo", "silod")
    result = FluidSimulator(
        cluster, scheduler, cache_system, [regular, curriculum]
    ).run()
    rows = [
        {
            "job": record.job_id,
            "JCT (min)": record.jct_s / 60.0,
        }
        for record in result.records
    ]
    print(render_table(rows))
    print(
        "\nThe curriculum job is scheduled from a partitioned cache/IO pool"
        "\nwith the original estimator; the regular job keeps SiloDPerf."
    )


if __name__ == "__main__":
    demo_pacing()
    demo_uniform_vs_lru()
    demo_irregular_partition()
