#!/usr/bin/env python
"""The online scheduler service, end to end, in one process.

Boots a real ``repro.serve`` server (socket and all) on an ephemeral
port, then drives it with :class:`repro.serve.ServeClient` the way an
external submitter would:

1. stage jobs while the virtual clock is deep-frozen;
2. release virtual time in a controlled step and watch admissions;
3. stream the live event log over a ``subscribe`` connection;
4. drain gracefully and print the service's own final metrics.

Run: ``python examples/online_service.py``
"""

import threading

from repro import units
from repro.cluster.hardware import Cluster
from repro.obs import StreamingTracer
from repro.serve import (
    OnlineEngine,
    ServeClient,
    ServeServer,
    ServerThread,
    ServiceStack,
    VirtualClock,
)


def job(job_id: str, size_gb: float, submit_time_s: float) -> dict:
    """A v1 trace-format job dict, as a client would POST it."""
    return {
        "v": 1,
        "job_id": job_id,
        "model": "resnet50",
        "dataset": {
            "name": f"ds-{job_id}",
            "size_mb": units.gb(size_gb),
            "num_items": 10_000,
        },
        "num_gpus": 1,
        "ideal_throughput_mbps": 200.0,
        "total_work_mb": 2 * units.gb(size_gb),  # two epochs
        "submit_time_s": submit_time_s,
        "regular": True,
    }


def main() -> None:
    cluster = Cluster.build(
        num_servers=2,
        gpus_per_server=4,
        cache_per_server_mb=units.gb(25),
        remote_io_mbps=units.gbps(1.6),
    )
    engine = OnlineEngine(
        cluster,
        ServiceStack.build("fifo", "silod", queue_limit=16),
        clock=VirtualClock(start_paused=True),
        tracer=StreamingTracer(),
    )
    thread = ServerThread(ServeServer(engine, port=0))
    host, port = thread.start()
    print(f"service up on {host}:{port}\n")

    # A second connection tails the event stream while we work.
    tail_lines = []

    def tail() -> None:
        with ServeClient(host=host, port=port) as watcher:
            for event in watcher.tail():
                if event.get("etype"):
                    tail_lines.append(
                        f"  [tail] t={event['ts_s']:>8.1f}s "
                        f"{event['etype']:<18} {event.get('job_id') or ''}"
                    )

    watcher_thread = threading.Thread(target=tail, daemon=True)
    watcher_thread.start()

    with ServeClient(host=host, port=port) as client:
        print("1. staging submissions under the frozen clock")
        for i in range(4):
            response = client.submit(job(f"job-{i}", 10.0, 600.0 * i))
            print(
                f"   submitted {response['job_id']} "
                f"(queue depth {response['queue_depth']})"
            )
        counts = client.status()["job_counts"]
        print(f"   staged: {counts['accepted']} accepted, none admitted\n")

        print("2. stepping virtual time to t=1000s")
        client.clock("step", to_s=1000.0)
        states = client.status()["jobs"]
        for job_id in sorted(states):
            print(f"   {job_id}: {states[job_id]}")
        print()

        print("3. draining (runs the backlog dry)")
        client.shutdown(drain=True)

    thread.join()
    watcher_thread.join(timeout=10)

    metrics = engine.metrics()["serve"]
    latency = metrics["admit_to_place_ms"]
    print(
        f"   drained: {engine.jobs_finished} finished, "
        f"virtual time {engine.sim.clock_s:,.0f}s, "
        f"{metrics['decisions_total']} scheduling rounds"
    )
    print(
        f"   admission→placement latency: "
        f"p50 {latency['p50']:.2f} ms, p99 {latency['p99']:.2f} ms\n"
    )

    print("4. the live stream the watcher saw (first 12 lines):")
    for line in tail_lines[:12]:
        print(line)
    print(f"   ... {len(tail_lines)} events total")


if __name__ == "__main__":
    main()
