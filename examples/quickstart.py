#!/usr/bin/env python
"""Quickstart: the SiloD performance model and one co-scheduled cluster.

Walks through the paper's core ideas in five minutes of code:

1. the closed-form performance model (Eq 1-5) on real profiles;
2. cache efficiency and why it is heterogeneous (Figure 6);
3. a joint allocation from the max-min fair policy (Figure 4's example);
4. a small trace-driven simulation comparing SiloD with a baseline.

Run: ``python examples/quickstart.py``
"""

from repro import units
from repro.analysis.tables import render_table
from repro.cluster.hardware import microbenchmark_cluster
from repro.core import perf_model
from repro.core.estimator import SiloDPerfEstimator
from repro.core.policies.base import ScheduleContext
from repro.core.policies.gavel import GavelPolicy
from repro.core.resources import ResourceVector
from repro.sim.runner import run_experiment
from repro.workloads.models import figure6_series, make_job
from repro.workloads.datasets import IMAGENET_1K, IMAGENET_22K
from repro.workloads.trace import microbenchmark_trace


def demo_perf_model() -> None:
    """Eq 4: how cache and remote IO jointly bound training throughput."""
    print("=== SiloDPerf (Eq 4): ResNet-50 on ImageNet-22k, f* = 114 MB/s ===")
    d = IMAGENET_22K.size_mb
    rows = []
    for cached_fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
        for io_mbps in (25.0, 50.0, 114.0):
            throughput = perf_model.silod_perf(
                114.0, io_mbps, cached_fraction * d, d
            )
            rows.append(
                {
                    "cached_%": 100 * cached_fraction,
                    "remote_io_mbps": io_mbps,
                    "throughput_mbps": throughput,
                    "bottleneck": (
                        "compute"
                        if throughput >= 114.0 - 1e-9
                        else "data loading"
                    ),
                }
            )
    print(render_table(rows))
    print()


def demo_cache_efficiency() -> None:
    """Eq 5 / Figure 6: cache efficiency spans ~8000x across jobs."""
    print("=== Cache efficiency (Eq 5, Figure 6) ===")
    print(render_table(figure6_series()))
    print()


def demo_joint_allocation() -> None:
    """Figure 4: max-min fairness over GPUs, cache, and remote IO."""
    print("=== Joint max-min allocation (Figure 4's setup) ===")
    jobs = [
        make_job("job-0", "resnet50", IMAGENET_22K, num_epochs=3),
        make_job(
            "job-1",
            "resnet50",
            IMAGENET_1K,
            num_epochs=3,
        ),
    ]
    total = ResourceVector(
        gpus=2, cache_mb=units.tb(1.4), remote_io_mbps=104.0
    )
    estimator = SiloDPerfEstimator()
    allocation = GavelPolicy().schedule(
        jobs, total, ScheduleContext(estimator=estimator)
    )
    rows = []
    for job in jobs:
        rows.append(
            {
                "job": job.job_id,
                "dataset": job.dataset.name,
                "gpus": allocation.gpus_of(job.job_id),
                "cache_gb": units.mb_to_gb(
                    allocation.cache_of(job.dataset.name)
                ),
                "remote_io_mbps": allocation.remote_io_of(job.job_id),
                "throughput_mbps": estimator.estimate(
                    job,
                    allocation.gpus_of(job.job_id),
                    allocation.cache_of(job.dataset.name),
                    allocation.remote_io_of(job.job_id),
                ),
            }
        )
    print(render_table(rows))
    print()


def demo_simulation() -> None:
    """The 8-V100 micro-benchmark, SiloD vs the Alluxio baseline."""
    print("=== Trace-driven simulation (8-V100 micro-benchmark) ===")
    rows = []
    for cache in ("silod", "alluxio"):
        result = run_experiment(
            microbenchmark_cluster(), "fifo", cache, microbenchmark_trace()
        )
        rows.append(
            {
                "cache system": cache,
                "avg JCT (min)": result.average_jct_minutes(),
                "makespan (min)": result.makespan_minutes(),
            }
        )
    print(render_table(rows))
    print(
        "\nSiloD allocates the 2 TB cache to the cache-efficient ResNet-50"
        "\ndatasets and throttles remote IO to fit the 200 MB/s egress;"
        "\nthe LRU baseline thrashes (every epoch reshuffles the order)."
    )


if __name__ == "__main__":
    demo_perf_model()
    demo_cache_efficiency()
    demo_joint_allocation()
    demo_simulation()
