#!/usr/bin/env python
"""A tour of the framework extensions beyond the paper's headline setup.

1. The objective family (§5.2): max-min fairness, utilisation, Themis
   finish-time fairness, and Tiresias LAS on one contended cluster.
2. Hoard-style prefetching (§8): warming queued datasets with idle egress.
3. Fault injection (§6): a data-manager crash is harmless; losing a
   server costs its cache shards.

Run: ``python examples/extensions_tour.py``
"""

from repro import units
from repro.analysis.tables import render_table
from repro.cluster.hardware import Cluster
from repro.sim.fluid import FluidSimulator
from repro.sim.runner import make_system, run_experiment
from repro.workloads.datasets import synthetic_images
from repro.workloads.models import make_job
from repro.workloads.trace import (
    TraceConfig,
    arrival_rate_for_load,
    generate_trace,
)


def contended_cluster() -> Cluster:
    return Cluster.build(8, 4, 4 * units.gb(368.0), units.gbps(2.56))


def contended_trace():
    cfg = TraceConfig(num_jobs=80, seed=7, duration_median_s=14400.0,
                      duration_sigma=1.2)
    cfg.mean_interarrival_s = arrival_rate_for_load(cfg, 32, load=1.5)
    return generate_trace(cfg)


def demo_objectives() -> None:
    print("=== Objective family on SiloDPerf ===")
    jobs = contended_trace()
    rows = []
    for policy in ("gavel", "max-throughput", "finish-time-fairness",
                   "las", "sjf"):
        result = run_experiment(
            contended_cluster(), policy, "silod", jobs,
            reschedule_interval_s=1200.0,
        )
        rows.append(
            {
                "policy": policy,
                "avg JCT (min)": result.average_jct_minutes(),
                "makespan (min)": result.makespan_minutes(),
                "fairness": result.average_fairness_ratio(),
            }
        )
    print(render_table(rows))
    print()


def demo_prefetch() -> None:
    print("=== Prefetching queued datasets with idle egress ===")
    cluster = Cluster.build(4, 4, 4 * units.gb(368.0), units.gbps(1.6))
    jobs = [
        make_job(f"vlad-{i}", "vlad",
                 synthetic_images(f"video-{i}", size_mb=units.tb(0.3)),
                 num_gpus=1, duration_at_ideal_s=4 * 3600.0)
        for i in range(16)
    ] + [
        make_job(f"resnet-{i}", "resnet50",
                 synthetic_images(f"images-{i}", size_mb=units.tb(0.3)),
                 num_gpus=1, num_epochs=4, submit_time_s=60.0)
        for i in range(4)
    ]
    rows = []
    for cache in ("silod", "silod-prefetch"):
        result = run_experiment(
            cluster, "fifo", cache, jobs, reschedule_interval_s=600.0
        )
        waits = [
            r.jct_s / 60.0
            for r in result.finished_records()
            if r.job_id.startswith("resnet")
        ]
        rows.append(
            {
                "system": cache,
                "queued wave avg JCT (min)": sum(waits) / len(waits),
            }
        )
    print(render_table(rows))
    print()


def demo_faults() -> None:
    print("=== Fault injection (§6) ===")
    cluster = Cluster.build(2, 1, 60.0 * units.gb(1.0), 50.0)
    jobs = [
        make_job(f"j{i}", "efficientnet-b1",
                 synthetic_images(f"f-{i}", size_mb=units.tb(0.04)), num_epochs=4)
        for i in range(2)
    ]
    rows = []
    for label, faults in (
        ("no faults", {}),
        ("data-manager crash @2000s",
         {"data_manager_crash_times_s": [2000.0]}),
        ("server lost @2000s", {"server_loss_times_s": [2000.0]}),
    ):
        scheduler, cache_system = make_system("fifo", "silod")
        result = FluidSimulator(
            cluster, scheduler, cache_system, list(jobs), **faults
        ).run()
        rows.append(
            {"scenario": label,
             "avg JCT (min)": result.average_jct_minutes()}
        )
    print(render_table(rows))
    print(
        "\nA crash only loses in-memory state (recovered from pod"
        "\nannotations + on-disk cache); a lost server evicts its shards."
    )


if __name__ == "__main__":
    demo_objectives()
    demo_prefetch()
    demo_faults()
