#!/usr/bin/env python
"""Cluster-scale simulation: three schedulers x four cache systems.

A scaled-down version of the paper's 400-GPU experiment (§7.2 / Figure 12):
a sustained, oversubscribed synthetic trace on a 100-GPU cluster with the
production cache-per-GPU and egress-per-GPU ratios. Prints the JCT /
makespan / fairness grid and the fairness-ratio comparison of Figure 13.

Run: ``python examples/cluster_simulation.py``
(add ``--full`` for the 400-GPU configuration; takes several minutes)
"""

import sys

from repro import units
from repro.analysis.tables import render_table
from repro.cluster.hardware import Cluster, cluster_400gpu
from repro.sim.runner import run_matrix
from repro.workloads.trace import (
    TraceConfig,
    arrival_rate_for_load,
    generate_trace,
)


def scaled_cluster() -> Cluster:
    """A 100-GPU slice of the 400-GPU setup (same per-GPU ratios)."""
    return Cluster.build(
        num_servers=25,
        gpus_per_server=4,
        cache_per_server_mb=4 * units.gb(368.0),
        remote_io_mbps=units.gbps(8.0),
    )


def main(full_scale: bool = False) -> None:
    if full_scale:
        cluster = cluster_400gpu()
        cfg = TraceConfig(
            num_jobs=1200, seed=42, duration_median_s=21600.0,
            duration_sigma=1.2,
        )
    else:
        cluster = scaled_cluster()
        cfg = TraceConfig(
            num_jobs=300, seed=42, duration_median_s=21600.0,
            duration_sigma=1.2,
        )
    cfg.mean_interarrival_s = arrival_rate_for_load(
        cfg, cluster.total_gpus, load=1.5
    )
    jobs = generate_trace(cfg)
    print(
        f"Cluster: {cluster.total_gpus} GPUs, "
        f"{cluster.total_cache_mb / 1024 ** 2:.0f} TB cache, "
        f"{units.mbps_to_gbps(cluster.remote_io_mbps):.0f} Gbps egress; "
        f"{len(jobs)} jobs arriving every ~{cfg.mean_interarrival_s:.0f} s\n"
    )

    results = run_matrix(
        cluster,
        jobs,
        reschedule_interval_s=1800.0,
        sample_interval_s=3600.0,
    )

    rows = []
    for (policy, cache), result in sorted(results.items()):
        rows.append(
            {
                "scheduler": policy,
                "cache": cache,
                "avg JCT (min)": result.average_jct_minutes(),
                "makespan (min)": result.makespan_minutes(),
                "fairness": result.average_fairness_ratio(),
            }
        )
    print(render_table(rows, title="Figure 12 (reproduced, scaled)"))

    print("\nFigure 13: average fairness ratio under Gavel")
    fairness_rows = [
        {
            "cache": cache,
            "avg fairness ratio": results[("gavel", cache)]
            .average_fairness_ratio(),
        }
        for cache in ("silod", "coordl", "alluxio", "quiver")
    ]
    print(render_table(fairness_rows))


if __name__ == "__main__":
    main(full_scale="--full" in sys.argv)
