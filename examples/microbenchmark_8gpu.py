#!/usr/bin/env python
"""The 8-V100 micro-benchmark (§7.1.1) across all four cache systems.

Reproduces the Table 6 comparison and Figure 9's throughput timeline on
both simulators — the fluid model and the item-level testbed emulator —
and reports the relative error between them (the paper's fidelity check).

Run: ``python examples/microbenchmark_8gpu.py``
"""

from repro.analysis.fidelity import compare_simulators
from repro.analysis.tables import improvement_summary, render_series, render_table
from repro.cluster.hardware import microbenchmark_cluster
from repro.sim.runner import run_experiment
from repro.workloads.trace import microbenchmark_trace

CACHES = ("silod", "quiver", "coordl", "alluxio")


def main() -> None:
    cluster = microbenchmark_cluster()
    print(
        f"Cluster: {cluster.total_gpus} V100s, "
        f"{cluster.total_cache_mb / 1024 ** 2:.1f} TB cache, "
        f"{cluster.remote_io_mbps:.0f} MB/s remote IO\n"
    )

    results = {}
    for cache in CACHES:
        results[cache] = run_experiment(
            cluster,
            "fifo",
            cache,
            microbenchmark_trace(),
            sample_interval_s=1800.0,
        )

    rows = [
        {
            "cache system": name,
            "avg JCT (min)": r.average_jct_minutes(),
            "makespan (min)": r.makespan_minutes(),
        }
        for name, r in results.items()
    ]
    print(render_table(rows, title="Table 6 (reproduced, fluid simulator)"))
    print()
    print(
        render_table(
            improvement_summary(
                {n: r.average_jct_minutes() for n, r in results.items()}
            ),
            title="JCT vs best",
        )
    )

    print("\nFigure 9: total job throughput over time (SiloD)")
    series = [
        {"min": round(minute), "mbps": mbps}
        for minute, mbps, _ideal, _io in results["silod"].throughput_series()
        if minute % 240 < 10
    ]
    print(render_series(series, "min", "mbps", width=40))

    print("\nFidelity: fluid simulator vs item-level testbed emulator")
    fidelity_rows = []
    for cache in ("silod", "coordl", "alluxio"):
        report = compare_simulators(
            microbenchmark_cluster(),
            "fifo",
            cache,
            microbenchmark_trace(),
            item_size_mb=512.0,
        )
        fidelity_rows.append(report.as_row())
    print(render_table(fidelity_rows))


if __name__ == "__main__":
    main()
