"""Figure 16: curriculum learning — pacing functions and Uniform vs LRU.

Curriculum training samples uniformly (with replacement) from a pacing-
function prefix: LRU no longer thrashes, so Uniform and LRU caches give
the same JCT (~367 minutes in the paper for both 50k and 75k steps).
"""

import pytest

from repro import units
from repro.analysis.tables import render_table
from repro.cluster.dataset import Dataset
from repro.workloads.curriculum import (
    ExponentialPacing,
    simulate_curriculum_jct,
)

#: ResNet-50 on (scaled) ImageNet-22k; item count keeps the simulation
#: cheap while preserving the cache-to-working-set ratios.
DATASET = Dataset("imagenet-22k-scaled", 100_000.0, num_items=10_000)
STEPS = (50_000, 75_000)


def run_sweep():
    results = {}
    for step in STEPS:
        pacing = ExponentialPacing(
            num_items=DATASET.num_items,
            starting_percent=0.04,
            alpha=1.5,
            step=step,
        )
        for policy in ("uniform", "lru"):
            results[(step, policy)] = simulate_curriculum_jct(
                dataset=DATASET,
                pacing=pacing,
                total_iterations=500_000,
                cache_mb=50_000.0,
                policy=policy,
                compute_step_s=0.04,
                remote_io_mbps=120.0,
                seed=1,
            )
    return results


def test_fig16_curriculum_uniform_vs_lru(benchmark, report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        {
            "step size": f"{step // 1000}k",
            "cache": policy,
            "JCT (min)": units.seconds_to_minutes(
                results[(step, policy)].jct_s
            ),
            "hit ratio": results[(step, policy)].hit_ratio,
        }
        for step in STEPS
        for policy in ("uniform", "lru")
    ]
    report(
        "fig16_curriculum",
        render_table(rows, title="Figure 16b: Uniform vs LRU under "
                                 "curriculum learning"),
    )
    # LRU matches uniform caching at both step sizes (paper: ~367 min
    # for all four bars).
    for step in STEPS:
        uniform = results[(step, "uniform")].jct_s
        lru = results[(step, "lru")].jct_s
        assert lru == pytest.approx(uniform, rel=0.03), step
    # The pacing functions behave per Eq 10: the 75k-step curriculum
    # exposes data more slowly, hence a smaller working set and more hits.
    assert (
        results[(75_000, "lru")].hit_ratio
        >= results[(50_000, "lru")].hit_ratio
    )
