"""Figure 4: Quiver's cache split vs optimal max-min fairness.

Two ResNet-50 jobs, each with its own 1.36 TB copy of ImageNet-22k, on a
2-GPU cluster with 1.4 TB cache and ~52 MB/s egress per job. Quiver gives
all cache to Job-0 (114 vs ~52 MB/s); the max-min optimum lifts the
minimum to ~107 MB/s.
"""

import pytest

from repro import units
from repro.analysis.tables import render_table
from repro.core import perf_model
from repro.core.estimator import SiloDPerfEstimator
from repro.core.policies.base import ScheduleContext
from repro.core.policies.gavel import GavelPolicy
from repro.core.resources import ResourceVector
from repro.workloads.trace import figure4_trace

TOTAL = ResourceVector(
    gpus=2, cache_mb=units.tb(1.4), remote_io_mbps=104.0
)


def quiver_split(jobs):
    """Quiver's allocation: whole-dataset caching, static egress split."""
    d = jobs[0].dataset.size_mb
    cache_job0 = d  # fits entirely; job-1 gets the 0.04 TB remainder
    cache_job1 = TOTAL.cache_mb - d
    io_each = TOTAL.remote_io_mbps / 2  # provider's static per-VM split
    return {
        jobs[0].job_id: perf_model.silod_perf(114.0, io_each, cache_job0, d),
        jobs[1].job_id: perf_model.silod_perf(114.0, io_each, cache_job1, d),
    }


def gavel_split(jobs):
    estimator = SiloDPerfEstimator()
    allocation = GavelPolicy().schedule(
        jobs, TOTAL, ScheduleContext(estimator=estimator)
    )
    return {
        job.job_id: estimator.estimate(
            job,
            allocation.gpus_of(job.job_id),
            allocation.cache_of(job.dataset.name),
            allocation.remote_io_of(job.job_id),
        )
        for job in jobs
    }


def test_fig4_quiver_vs_maxmin(benchmark, report):
    jobs = figure4_trace()

    def compute():
        return quiver_split(jobs), gavel_split(jobs)

    quiver, gavel = benchmark(compute)
    rows = []
    for job in jobs:
        rows.append(
            {
                "job": job.job_id,
                "Quiver (MB/s)": quiver[job.job_id],
                "max-min optimal (MB/s)": gavel[job.job_id],
            }
        )
    report(
        "fig4_maxmin_example",
        render_table(rows, title="Figure 4: training speeds"),
    )

    # Paper: Quiver 114 / ~52; optimal ~107 for the worst-off job.
    assert max(quiver.values()) == pytest.approx(114.0)
    assert min(quiver.values()) == pytest.approx(52.0, abs=3.0)
    assert min(gavel.values()) == pytest.approx(107.0, rel=0.03)
    # Max-min fairness doubles the worst job's speed.
    assert min(gavel.values()) > 1.9 * min(quiver.values())
