"""Table 1: size and growth of training datasets at Microsoft."""

from repro.analysis.tables import render_table
from repro.workloads.datasets import table1_rows


def test_table1_dataset_growth(benchmark, report):
    rows = benchmark(table1_rows)
    report(
        "table1_datasets",
        render_table(
            rows, title="Table 1: dataset sizes (2020 -> +24 months)"
        ),
    )
    # The paper's point: every task grows, some by orders of magnitude.
    assert len(rows) == 5
    assert all(row["growth_factor"] > 1 for row in rows)
    assert max(row["growth_factor"] for row in rows) > 100
