"""Figure 10: the 96-GPU cluster — avg JCT, makespan, JCT distribution.

Paper (FIFO-scheduled 96-GPU cluster, 8 Gbps egress): SiloD improves
average JCT by up to 2.16x and makespan by up to 2.07x over the decoupled
baselines, and its JCT CDF dominates — the gains come from cluster
efficiency, not from sacrificing some class of jobs.
"""

from repro.analysis.tables import render_table
from repro.sim.metrics import percentile_jct_minutes
from benchmarks.conftest import run_cell_96

CACHES = ("silod", "alluxio", "coordl", "quiver")


def run_96gpu():
    return {cache: run_cell_96("fifo", cache) for cache in CACHES}


def test_fig10_96gpu_jct_and_makespan(benchmark, report):
    results = benchmark.pedantic(run_96gpu, rounds=1, iterations=1)

    rows = []
    silod_jct = results["silod"].average_jct_minutes()
    for cache in CACHES:
        result = results[cache]
        rows.append(
            {
                "cache": cache,
                "avg JCT (min)": result.average_jct_minutes(),
                "JCT vs SiloD": result.average_jct_minutes() / silod_jct,
                "makespan (min)": result.makespan_minutes(),
            }
        )
    cdf_rows = []
    for cache in CACHES:
        pct = percentile_jct_minutes(results[cache], [25, 50, 75, 90, 99])
        cdf_rows.append(
            {
                "cache": cache,
                "p25": pct[25],
                "p50": pct[50],
                "p75": pct[75],
                "p90": pct[90],
                "p99": pct[99],
            }
        )
    report(
        "fig10_96gpu",
        render_table(rows, title="Figure 10a: 96-GPU JCT & makespan")
        + "\n\n"
        + render_table(
            cdf_rows, title="Figure 10b: JCT distribution (minutes)"
        ),
    )

    jct = {c: results[c].average_jct_minutes() for c in CACHES}
    # SiloD best (Quiver may statistically tie, as in the paper's own
    # 400-GPU FIFO simulation where the gap is 1.03x); Alluxio/CoorDL in
    # the paper's 1.6-2.2x band (generous 1.3-3.5x envelope for the
    # scaled trace).
    assert jct["silod"] <= 1.03 * min(jct.values())
    assert 1.3 < jct["alluxio"] / jct["silod"] < 3.5
    assert 1.3 < jct["coordl"] / jct["silod"] < 3.5
    # Makespan: SiloD within a few percent of best (paper: up to 2.07x
    # better than the weakest baseline).
    makespan = {c: results[c].makespan_minutes() for c in CACHES}
    assert makespan["silod"] <= 1.05 * min(makespan.values())
    assert max(makespan.values()) / makespan["silod"] > 1.1
    # CDF dominance at the quartiles (Figure 10b's "constantly better").
    for cache in ("alluxio", "coordl"):
        pct_s = percentile_jct_minutes(results["silod"], [50, 75, 90])
        pct_b = percentile_jct_minutes(results[cache], [50, 75, 90])
        dominated = sum(pct_s[p] <= pct_b[p] * 1.05 for p in (50, 75, 90))
        assert dominated >= 2, cache
