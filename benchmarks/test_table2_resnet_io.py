"""Table 2: ResNet-50 mixed-precision training speed and IO demand."""

import pytest

from repro.analysis.tables import render_table
from repro.cluster.hardware import RESNET50_TABLE2


def test_table2_resnet50_io_demands(benchmark, report):
    rows = benchmark(
        lambda: [
            {
                "GPU": p.gpu_setup,
                "speed (images/s)": p.images_per_second,
                "IO (MB/s)": p.io_mb_per_second,
            }
            for p in RESNET50_TABLE2
        ]
    )
    report(
        "table2_resnet_io",
        render_table(rows, title="Table 2: ResNet-50 on ImageNet"),
    )
    by_gpu = {r["GPU"]: r for r in rows}
    # 8xA100 demands ~1.9 GB/s of data loading — the motivating number.
    assert by_gpu["8xA100"]["IO (MB/s)"] == pytest.approx(1923.0)
    assert by_gpu["1xV100"]["IO (MB/s)"] == pytest.approx(114.0)
