"""Figure 6: cache efficiency of eleven jobs on a V100."""

import pytest

from repro.analysis.tables import render_table
from repro.workloads.models import figure6_series


def test_fig6_cache_efficiency_spectrum(benchmark, report):
    rows = benchmark(figure6_series)
    report(
        "fig6_cache_efficiency",
        render_table(
            rows, title="Figure 6: cache efficiency (MB/s per GB)"
        ),
    )
    assert len(rows) == 11
    values = [r["cache_efficiency_mbps_per_gb"] for r in rows]
    # Paper's bar labels, best to worst:
    # 0.80, 0.48, 0.30, 0.17, 0.10, 0.09, 0.07, 0.05, 0.03, 0.01, 9.5e-5.
    paper = [0.80, 0.48, 0.30, 0.17, 0.10, 0.09, 0.07, 0.05, 0.03, 0.01,
             9.5e-5]
    for ours, theirs in zip(values, paper):
        assert ours == pytest.approx(theirs, rel=0.35), (ours, theirs)
    # The motivating >8000x heterogeneity between extremes.
    assert values[0] / values[-1] > 8000
