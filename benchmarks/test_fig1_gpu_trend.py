"""Figure 1: GPU single-precision performance vs cloud egress limits."""

from repro.analysis.tables import render_table
from repro.cluster.hardware import (
    compute_growth_vs_egress_growth,
    gpu_trend_series,
)


def test_fig1_gpu_vs_egress_trend(benchmark, report):
    rows = benchmark(gpu_trend_series)
    gpu_growth, egress_growth = compute_growth_vs_egress_growth()
    summary = (
        f"GPU FP32 growth 2015-2022: {gpu_growth:.0f}x; "
        f"egress-limit growth: {egress_growth:.0f}x"
    )
    report(
        "fig1_gpu_trend",
        render_table(rows, title="Figure 1: GPU perf vs egress limits")
        + "\n"
        + summary,
    )
    # Paper: 125x vs 12x.
    assert 100 <= gpu_growth <= 150
    assert 10 <= egress_growth <= 14
