"""Figure 12: average JCT and makespan for FIFO/SJF/Gavel x four caches.

The paper's headline grid (400-GPU simulation, 4-week trace): SiloD
improves average JCT by up to 7.4x and makespan by up to 2.57x, with the
largest JCT gains under SJF and the largest fairness gains under Gavel.
Run scaled by default (100-GPU slice, sustained 1.5x load); set
``REPRO_FULL_SCALE=1`` for the 400-GPU configuration.
"""

from repro.analysis.tables import render_table
from repro.sim.metrics import improvement_factor
from benchmarks.conftest import run_cell

POLICIES = ("fifo", "sjf", "gavel")
CACHES = ("silod", "alluxio", "coordl", "quiver")


def run_grid():
    return {
        (policy, cache): run_cell(policy, cache)
        for policy in POLICIES
        for cache in CACHES
    }


def test_fig12_policy_cache_grid(benchmark, report):
    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    rows = []
    for policy in POLICIES:
        silod_jct = results[(policy, "silod")].average_jct_minutes()
        for cache in CACHES:
            result = results[(policy, cache)]
            rows.append(
                {
                    "scheduler": policy,
                    "cache": cache,
                    "avg JCT (min)": result.average_jct_minutes(),
                    "JCT vs SiloD": improvement_factor(
                        result.average_jct_minutes(), silod_jct
                    ),
                    "makespan (min)": result.makespan_minutes(),
                    "fairness": result.average_fairness_ratio(),
                }
            )
    report(
        "fig12_400gpu",
        render_table(rows, title="Figure 12: cluster-scale grid"),
    )

    jct = {
        key: result.average_jct_minutes()
        for key, result in results.items()
    }
    # SiloD has the best average JCT under every scheduler.
    for policy in POLICIES:
        for cache in ("alluxio", "coordl"):
            assert jct[(policy, "silod")] < jct[(policy, cache)], (
                policy,
                cache,
            )
    # The decoupled general-purpose caches lose by a wide margin
    # (paper: up to 7.4x; our scaled setup reaches >1.8x).
    worst_gain = max(
        jct[(policy, cache)] / jct[(policy, "silod")]
        for policy in POLICIES
        for cache in ("alluxio", "coordl")
    )
    assert worst_gain > 1.8
    # Quiver is the strongest baseline and roughly matches SiloD under
    # FIFO (paper: 1.03x) but trails under the smarter schedulers.
    assert jct[("fifo", "quiver")] / jct[("fifo", "silod")] < 1.15
    # SiloD's makespan is best or within a few percent of best under
    # FIFO/SJF (Gavel trades makespan for fairness, as in the paper).
    for policy in ("fifo", "sjf"):
        makespans = {
            cache: results[(policy, cache)].makespan_minutes()
            for cache in CACHES
        }
        assert makespans["silod"] <= 1.05 * min(makespans.values()), policy
