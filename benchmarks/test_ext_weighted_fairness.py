"""Extension: weighted max-min fairness (Gavel supports weighted objectives).

Two identical ResNet-50 jobs contend for scarce egress and cache; one
carries fair-share weight 2. The weighted max-min allocation should give
it (close to) twice the throughput of its weight-1 twin — and an
unweighted run should split evenly.
"""

import pytest

from repro import units
from repro.analysis.tables import render_table
from repro.core.estimator import SiloDPerfEstimator
from repro.core.policies.base import ScheduleContext
from repro.core.policies.gavel import GavelPolicy
from repro.core.resources import ResourceVector
from repro.workloads.datasets import IMAGENET_22K
from repro.workloads.models import make_job
import dataclasses

ESTIMATOR = SiloDPerfEstimator()
TOTAL = ResourceVector(
    gpus=2, cache_mb=units.tb(0.7), remote_io_mbps=60.0
)


def jobs_with_weights(heavy_weight):
    jobs = []
    for i, weight in enumerate((heavy_weight, 1.0)):
        job = make_job(
            f"job-{i}",
            "resnet50",
            dataclasses.replace(IMAGENET_22K, name=f"in22k-{i}"),
            num_epochs=3,
        )
        jobs.append(dataclasses.replace(job, weight=weight))
    return jobs


def solve(heavy_weight):
    jobs = jobs_with_weights(heavy_weight)
    allocation = GavelPolicy().schedule(
        jobs, TOTAL, ScheduleContext(estimator=ESTIMATOR)
    )
    return {
        job.job_id: ESTIMATOR.estimate(
            job,
            allocation.gpus_of(job.job_id),
            allocation.cache_of(job.dataset.name),
            allocation.remote_io_of(job.job_id),
        )
        for job in jobs
    }


def test_ext_weighted_fairness(benchmark, report):
    results = benchmark(
        lambda: {w: solve(w) for w in (1.0, 2.0, 4.0)}
    )
    rows = []
    for weight, achieved in results.items():
        rows.append(
            {
                "weight of job-0": weight,
                "job-0 (MB/s)": achieved["job-0"],
                "job-1 (MB/s)": achieved["job-1"],
                "ratio": achieved["job-0"] / achieved["job-1"],
            }
        )
    report(
        "ext_weighted_fairness",
        render_table(rows, title="Extension: weighted max-min fairness"),
    )
    equal = results[1.0]
    assert equal["job-0"] == pytest.approx(equal["job-1"], rel=0.02)
    double = results[2.0]
    assert double["job-0"] / double["job-1"] == pytest.approx(2.0, rel=0.1)
    quad = results[4.0]
    assert quad["job-0"] / quad["job-1"] > double["job-0"] / double["job-1"]
