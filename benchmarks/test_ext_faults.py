"""Extension: JCT inflation under cluster churn (``repro.faults``).

SiloD's co-design claim under churn: because the scheduler owns cache
allocation, it re-divides the surviving cache the moment capacity
changes, so its JCT *inflation* (faulted / fault-free, same system) stays
below the static/decoupled baselines. One deterministic fault schedule —
a cache-node loss, a server crash/recover cycle, and a bandwidth flap —
is driven through all four cache systems on the same trace.
"""

from repro import units
from repro.analysis.tables import render_table
from repro.cluster.hardware import Cluster
from repro.faults import FaultEvent, FaultSchedule
from repro.perf.record import (
    load_benchmark_artifact,
    write_benchmark_artifact,
)
from repro.sim.runner import run_experiment
from repro.workloads.trace import (
    TraceConfig,
    arrival_rate_for_load,
    generate_trace,
)

from benchmarks.conftest import RESULTS_DIR

GPUS = 32
CACHES = ("silod", "alluxio", "coordl", "quiver")
BASELINES = ("alluxio", "coordl", "quiver")

#: One churn story over the ~40-hour run: a storage node dies (1 TB of
#: cache pool gone for good), later a GPU server crash/recover cycle,
#: then a 4-hour uplink flap at 30% bandwidth.
SCHEDULE = FaultSchedule(
    [
        FaultEvent(20_000.0, "cache_loss", magnitude=units.gb(1000.0)),
        FaultEvent(40_000.0, "server_crash", magnitude=1),
        FaultEvent(55_000.0, "server_recover", magnitude=1),
        FaultEvent(70_000.0, "bandwidth", magnitude=0.3),
        FaultEvent(90_000.0, "bandwidth", magnitude=1.0),
    ]
)


def _cluster() -> Cluster:
    return Cluster.build(
        num_servers=8,
        gpus_per_server=4,
        cache_per_server_mb=4 * units.gb(92.0),
        remote_io_mbps=units.gbps(2.56),
    )


def _trace():
    cfg = TraceConfig(
        num_jobs=80, seed=42, duration_median_s=7200.0, duration_sigma=1.2
    )
    cfg.mean_interarrival_s = arrival_rate_for_load(cfg, GPUS, load=1.5)
    return generate_trace(cfg)


def run_grid():
    cells = {}
    for cache in CACHES:
        clean = run_experiment(
            _cluster(), "fifo", cache, _trace(),
            reschedule_interval_s=600.0,
        )
        faulted = run_experiment(
            _cluster(), "fifo", cache, _trace(),
            reschedule_interval_s=600.0, faults=SCHEDULE,
        )
        cells[cache] = (clean, faulted)
    return cells


def test_ext_faults_inflation(benchmark, report):
    cells = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rows = []
    inflation = {}
    for cache, (clean, faulted) in cells.items():
        assert len(faulted.finished_records()) == len(faulted.records)
        inflation[cache] = (
            faulted.average_jct_minutes() / clean.average_jct_minutes()
        )
        rows.append(
            {
                "cache": cache,
                "clean JCT (min)": clean.average_jct_minutes(),
                "faulted JCT (min)": faulted.average_jct_minutes(),
                "inflation": inflation[cache],
            }
        )
    report(
        "ext_faults",
        render_table(
            rows, title="Extension: JCT inflation under cluster churn"
        ),
    )
    artifact = write_benchmark_artifact(
        "ext_faults",
        "cells",
        {
            "schedule": SCHEDULE.to_dicts(),
            "cells": [{k: v for k, v in row.items()} for row in rows],
        },
        RESULTS_DIR,
    )
    assert load_benchmark_artifact(artifact)["data"]["cells"] == rows
    # Everything degrades under churn…
    for cache in CACHES:
        assert inflation[cache] > 1.0
    # …but the co-design absorbs it best: lowest inflation *and* lowest
    # absolute faulted JCT.
    for baseline in BASELINES:
        assert inflation["silod"] < inflation[baseline]
        assert (
            cells["silod"][1].average_jct_minutes()
            < cells[baseline][1].average_jct_minutes()
        )
