"""Table 6: the 8-V100 micro-benchmark, with simulator fidelity columns.

Reproduces both halves of Table 6: the JCT/makespan comparison of the
four storage systems, and the relative error between the "testbed" (our
item-level minibatch emulator, playing the paper's accelerated-K80 /
real-V100 role) and the fluid simulator.
"""

from repro.analysis.fidelity import compare_simulators
from repro.analysis.tables import render_table
from repro.cluster.hardware import microbenchmark_cluster
from repro.sim.runner import run_experiment
from repro.workloads.trace import microbenchmark_trace

CACHES = ("silod", "coordl", "alluxio", "quiver")


def run_table6():
    fluid = {
        cache: run_experiment(
            microbenchmark_cluster(),
            "fifo",
            cache,
            microbenchmark_trace(),
        )
        for cache in CACHES
    }
    fidelity = {
        cache: compare_simulators(
            microbenchmark_cluster(),
            "fifo",
            cache,
            microbenchmark_trace(),
            item_size_mb=512.0,
        )
        for cache in CACHES
    }
    return fluid, fidelity


def test_table6_microbenchmark(benchmark, report):
    fluid, fidelity = benchmark.pedantic(run_table6, rounds=1, iterations=1)

    rows = []
    for cache in CACHES:
        rep = fidelity[cache]
        rows.append(
            {
                "system": cache,
                "emulated JCT (min)": rep.emulator_jct_min,
                "simulated JCT (min)": rep.fluid_jct_min,
                "JCT err %": 100 * rep.jct_error,
                "emulated makespan": rep.emulator_makespan_min,
                "simulated makespan": rep.fluid_makespan_min,
                "makespan err %": 100 * rep.makespan_error,
            }
        )
    report(
        "table6_microbench",
        render_table(rows, title="Table 6: 8-V100 micro-benchmark"),
    )

    jct = {c: fluid[c].average_jct_minutes() for c in CACHES}
    makespan = {c: fluid[c].makespan_minutes() for c in CACHES}
    # Paper ordering: SiloD (3366) < Quiver (3609) < CoorDL (4278)
    # < Alluxio (4378); same for makespan except Quiver/CoorDL order.
    assert jct["silod"] < jct["quiver"] < jct["coordl"] < jct["alluxio"]
    assert makespan["silod"] == min(makespan.values())
    # Paper's relative improvements: Alluxio/SiloD ~ 1.30, CoorDL ~ 1.27,
    # Quiver ~ 1.07. Check the same band (generously).
    assert 1.15 <= jct["alluxio"] / jct["silod"] <= 1.6
    assert 1.10 <= jct["coordl"] / jct["silod"] <= 1.6
    assert 1.00 <= jct["quiver"] / jct["silod"] <= 1.45
    # Fidelity: the paper reports JCT errors within ~3.2% and makespan
    # within ~4.4% for uniform-caching systems; LRU is approximated.
    for cache in ("silod", "coordl"):
        assert fidelity[cache].jct_error < 0.05
        assert fidelity[cache].makespan_error < 0.06
    assert fidelity["alluxio"].jct_error < 0.10
