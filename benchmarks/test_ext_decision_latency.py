"""Extension: scheduler decision latency across policies and scales.

Every scheduling round emits a ``sched_decision`` event carrying the
wall-clock ``latency_ms`` of the joint GPU+cache decision. This sweep
measures it for three policies across three cluster sizes and persists a
JSON artifact (``benchmarks/results/ext_decision_latency.json``) so the
scaling behaviour can be tracked across revisions.
"""

from repro import units
from repro.analysis.tables import render_table
from repro.cluster.hardware import Cluster
from repro.obs import Tracer
from repro.perf.record import (
    load_benchmark_artifact,
    write_benchmark_artifact,
)
from repro.sim.runner import run_experiment
from repro.workloads.trace import (
    TraceConfig,
    arrival_rate_for_load,
    generate_trace,
)

from benchmarks.conftest import RESULTS_DIR

POLICIES = ("fifo", "sjf", "gavel")
GPU_COUNTS = (16, 32, 64)


def _cluster(gpus: int) -> Cluster:
    return Cluster.build(
        num_servers=gpus // 4,
        gpus_per_server=4,
        cache_per_server_mb=4 * units.gb(92.0),
        remote_io_mbps=units.gbps(0.08 * gpus),
    )


def _trace(gpus: int):
    cfg = TraceConfig(
        num_jobs=2 * gpus,
        seed=42,
        duration_median_s=7200.0,
        duration_sigma=1.2,
    )
    cfg.mean_interarrival_s = arrival_rate_for_load(cfg, gpus, load=1.5)
    return generate_trace(cfg)


def _percentile(values, q):
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


def run_sweep():
    cells = []
    for policy in POLICIES:
        for gpus in GPU_COUNTS:
            tracer = Tracer()
            run_experiment(
                _cluster(gpus),
                policy,
                "silod",
                _trace(gpus),
                reschedule_interval_s=600.0,
                tracer=tracer,
            )
            latencies = [
                e.fields["latency_ms"]
                for e in tracer.events
                if e.etype == "sched_decision"
            ]
            cells.append(
                {
                    "policy": policy,
                    "gpus": gpus,
                    "rounds": len(latencies),
                    "mean_latency_ms": sum(latencies) / len(latencies),
                    "p95_latency_ms": _percentile(latencies, 0.95),
                }
            )
    return cells


def test_ext_decision_latency(benchmark, report):
    cells = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        "ext_decision_latency",
        render_table(
            cells,
            title="Extension: scheduler decision latency (ms) sweep",
        ),
    )
    artifact = write_benchmark_artifact(
        "ext_decision_latency", "cells", {"cells": cells}, RESULTS_DIR
    )
    assert load_benchmark_artifact(artifact)["data"]["cells"] == cells
    for cell in cells:
        # Each sweep cell made real decisions, quickly: the paper's
        # scheduler runs rounds at minute cadence, so even a generous
        # bound guards against an accidental complexity blow-up.
        assert cell["rounds"] > 0
        assert 0.0 < cell["mean_latency_ms"] < 1_000.0
        assert cell["p95_latency_ms"] >= cell["mean_latency_ms"] * 0.5
