"""Extension: sensitivity of the results to simulator knobs.

Two design choices of the fluid simulator are swept to show the reported
numbers are not artefacts of them:

* the **scheduling-round interval** (the paper's scheduler also runs
  periodically; results should be stable across reasonable cadences);
* the **Quiver profiling noise** (the one stochastic baseline: its JCT
  should degrade monotonically-ish with instability, bracketing the
  deterministic case).
"""

from repro.analysis.tables import render_table
from benchmarks.conftest import run_cell

INTERVALS = (900.0, 1800.0, 3600.0)
NOISES = (0.0, 0.15, 0.5)


def run_sweeps():
    intervals = {
        interval: run_cell(
            "fifo", "silod", reschedule_interval_s=interval
        )
        for interval in INTERVALS
    }
    noises = {
        noise: run_cell(
            "fifo",
            "quiver",
            cluster_key=f"noise-{noise}",
            cache_kwargs=(("profile_noise", noise),),
        )
        for noise in NOISES
    }
    return intervals, noises


def test_ext_sensitivity(benchmark, report):
    intervals, noises = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)
    rows = [
        {
            "knob": f"reschedule every {int(interval)} s",
            "avg JCT (min)": result.average_jct_minutes(),
        }
        for interval, result in intervals.items()
    ] + [
        {
            "knob": f"quiver profile noise {noise}",
            "avg JCT (min)": result.average_jct_minutes(),
        }
        for noise, result in noises.items()
    ]
    report(
        "ext_sensitivity",
        render_table(rows, title="Extension: sensitivity sweeps"),
    )
    # Scheduling cadence: JCT stable within 10% across a 4x range.
    jcts = [r.average_jct_minutes() for r in intervals.values()]
    assert max(jcts) / min(jcts) < 1.10
    # Quiver instability: heavy noise is no better than none.
    assert (
        noises[0.5].average_jct_minutes()
        >= noises[0.0].average_jct_minutes() * 0.98
    )
