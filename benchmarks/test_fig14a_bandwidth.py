"""Figure 14a: impact of remote bandwidth (FIFO, SiloD vs Alluxio).

The paper sweeps the egress bandwidth from 4 to 12 GB/s on the 400-GPU
cluster: SiloD's advantage is largest when remote IO is scarce and
vanishes once the bandwidth stops being a bottleneck (~10 GB/s, where
even LRU caching suffices).
"""

from repro import units
from repro.analysis.tables import render_table
from benchmarks.conftest import FULL_SCALE, run_cell

#: Paper sweeps 4-12 GB/s at 400 GPUs; the scaled cluster sweeps the same
#: per-GPU bandwidths at a quarter scale (1-3 GB/s).
SCALE = 1.0 if FULL_SCALE else 0.25
BANDWIDTHS_MBPS = [
    4000.0 * SCALE,
    6000.0 * SCALE,
    8000.0 * SCALE,
    10000.0 * SCALE,
    12000.0 * SCALE,
]


def run_sweep():
    results = {}
    for bandwidth in BANDWIDTHS_MBPS:
        for cache in ("silod", "alluxio"):
            results[(bandwidth, cache)] = run_cell(
                "fifo",
                cache,
                cluster_kwargs=(("remote_io_mbps", bandwidth),),
            )
    return results


def test_fig14a_bandwidth_sweep(benchmark, report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    gains = {}
    for bandwidth in BANDWIDTHS_MBPS:
        silod = results[(bandwidth, "silod")].average_jct_minutes()
        alluxio = results[(bandwidth, "alluxio")].average_jct_minutes()
        gains[bandwidth] = alluxio / silod
        rows.append(
            {
                # Decimal GB/s for the axis label, matching the paper's
                # figure; not the binary repro.units convention.
                # lint: disable=UNI001
                "bandwidth (GB/s, 400-GPU equiv)": bandwidth / SCALE / 1000,
                "SiloD JCT (min)": silod,
                "Alluxio JCT (min)": alluxio,
                "Alluxio/SiloD": gains[bandwidth],
            }
        )
    report(
        "fig14a_bandwidth",
        render_table(rows, title="Figure 14a: impact of remote bandwidth"),
    )
    lo, hi = BANDWIDTHS_MBPS[0], BANDWIDTHS_MBPS[-1]
    # Scarce bandwidth: SiloD wins clearly.
    assert gains[lo] > 1.3
    # Abundant bandwidth: the gap (mostly) closes — paper: "even Alluxio
    # ... will not have the bottleneck ... leading to the same JCT".
    assert gains[hi] < 1.15
    # And the gain shrinks monotonically-ish across the sweep.
    assert gains[hi] < gains[lo]
