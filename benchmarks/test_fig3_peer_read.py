"""Figure 3: distributed-cache peer-read throughput scaling."""

from repro.analysis.tables import render_table
from repro.cluster.storage import peer_read_scaling_series


def test_fig3_peer_read_scaling(benchmark, report):
    counts = [1, 10, 20, 30, 40, 50]
    rows = benchmark(peer_read_scaling_series, counts)
    report(
        "fig3_peer_read",
        render_table(
            rows,
            title=(
                "Figure 3: cluster data-loading throughput "
                "(jobs of 1923 MB/s per server)"
            ),
        ),
    )
    # Peer reads track the linear no-bottleneck line: the storage fabric
    # lets 50 servers load as if all data were local.
    last = rows[-1]
    assert last["peer_read_gbps"] >= 0.95 * last["linear_gbps"]
    # And throughput grows monotonically with the cluster.
    peers = [r["peer_read_gbps"] for r in rows]
    assert peers == sorted(peers)
