"""Figure 14b: impact of GPU speed (Gavel, SiloD vs Quiver).

Scaling GPU speed by 1x/2x/4x raises every job's IO demand; the paper
reports SiloD's JCT gain over Quiver growing to 2.17x at 4x speed,
because Quiver's greedy whole-dataset policy starves some jobs while
SiloD rebalances cache and IO for max-min fairness.
"""

from repro.analysis.tables import render_table
from benchmarks.conftest import run_cell

SPEEDS = (1.0, 2.0, 4.0)


def run_sweep():
    results = {}
    for speed in SPEEDS:
        for cache in ("silod", "quiver"):
            results[(speed, cache)] = run_cell(
                "gavel",
                cache,
                trace_kwargs=(("gpu_scale", speed),),
            )
    return results


def test_fig14b_gpu_speed_sweep(benchmark, report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    jct_gain = {}
    fairness_gap = {}
    for speed in SPEEDS:
        silod = results[(speed, "silod")]
        quiver = results[(speed, "quiver")]
        jct_gain[speed] = (
            quiver.average_jct_minutes() / silod.average_jct_minutes()
        )
        fairness_gap[speed] = (
            silod.average_fairness_ratio()
            / max(quiver.average_fairness_ratio(), 1e-9)
        )
        rows.append(
            {
                "speed scaling": f"{speed:.0f}x",
                "SiloD JCT (min)": silod.average_jct_minutes(),
                "Quiver JCT (min)": quiver.average_jct_minutes(),
                "JCT gain over Quiver": jct_gain[speed],
                "fairness gain": fairness_gap[speed],
            }
        )
    report(
        "fig14b_gpu_speed",
        render_table(rows, title="Figure 14b: impact of GPU speed"),
    )
    # Faster GPUs push more jobs into the IO bottleneck: SiloD's edge over
    # Quiver does not shrink, and fairness clearly favours SiloD at 4x.
    assert jct_gain[4.0] >= jct_gain[1.0] * 0.95
    assert jct_gain[4.0] > 1.05
    assert fairness_gap[4.0] > 1.1
