"""Figure 13: fairness ratio over time under Gavel.

The paper: SiloD's average fairness ratio is 2.56 versus 1.51 (CoorDL),
1.39 (Alluxio), 1.35 (Quiver) — up to 1.89x better. Our scaled trace
reproduces the ordering and a SiloD-over-worst gap of ~1.5x (absolute
values differ: the paper's 4-week queue keeps equal shares far below
achievable throughput, inflating every ratio; see EXPERIMENTS.md).

The §7.2 ablation (disable remote-IO allocation, keep cache co-design)
is also run. In the paper it degrades fairness by 31% with <2% JCT
change; in our reproduction the data manager's grants and the
work-conserving fair share coincide almost everywhere, so the measured
effect is near zero — reported, not hidden.
"""

from repro.analysis.tables import render_table
from benchmarks.conftest import run_cell

CACHES = ("silod", "coordl", "alluxio", "quiver")
#: Deeper sustained load than Figure 12's grid: fairness gaps only appear
#: once cache and egress are genuinely scarce per job.
TRACE = (("load", 2.5),)


def run_fairness():
    results = {
        cache: run_cell("gavel", cache, trace_kwargs=TRACE)
        for cache in CACHES
    }
    results["silod-no-io-alloc"] = run_cell(
        "gavel", "silod-no-io-alloc", trace_kwargs=TRACE
    )
    return results


def test_fig13_fairness_under_gavel(benchmark, report):
    results = benchmark.pedantic(run_fairness, rounds=1, iterations=1)
    fairness = {
        name: result.average_fairness_ratio()
        for name, result in results.items()
    }
    rows = [
        {
            "system": name,
            "avg fairness ratio": value,
            "avg JCT (min)": results[name].average_jct_minutes(),
        }
        for name, value in sorted(fairness.items(), key=lambda kv: -kv[1])
    ]
    report(
        "fig13_fairness",
        render_table(rows, title="Figure 13: fairness under Gavel"),
    )

    # SiloD is the fairest system; the gap to the worst baseline matches
    # the paper's up-to-1.89x scale.
    assert fairness["silod"] == max(
        fairness[c] for c in CACHES
    )
    assert fairness["silod"] > 1.4 * fairness["alluxio"]
    for cache in ("coordl", "quiver"):
        assert fairness["silod"] > 1.04 * fairness[cache], cache

    # Ablation: never *better* than the full co-design, and JCT barely
    # moves (the paper reports a 31% fairness drop; our work-conserving
    # enforcement masks most of it — see the module docstring).
    assert fairness["silod-no-io-alloc"] <= fairness["silod"] + 1e-6
    jct_full = results["silod"].average_jct_minutes()
    jct_ablated = results["silod-no-io-alloc"].average_jct_minutes()
    assert abs(jct_ablated - jct_full) / jct_full < 0.05
