"""Figure 8: effective vs allocated cache over a trace-driven run.

Delayed effectiveness (§6) means newly cached items only pay off from the
next epoch; the paper measures that on average over 91.7% of cached data
is effective, so policies may safely ignore the effect.
"""

from repro import units
from repro.analysis.tables import render_series
from benchmarks.conftest import run_cell


def test_fig8_effective_cache_fraction(benchmark, report):
    # Longer jobs than the Figure 12 trace (12 h median at ideal speed,
    # i.e. several epochs each): the warmup epoch, during which freshly
    # cached bytes cannot hit, then covers a small share of each job's
    # lifetime — the regime behind the paper's 91.7% average.
    result = benchmark.pedantic(
        lambda: run_cell(
            "fifo",
            "silod",
            trace_kwargs=(("duration_median_s", 43200.0),),
        ),
        rounds=1,
        iterations=1,
    )
    series = [
        {
            "min": round(units.seconds_to_minutes(s.time_s)),
            "effective_%": 100.0 * s.effective_cache_mb / s.resident_cache_mb,
        }
        for s in result.timeline
        if s.resident_cache_mb > 1024.0
    ]
    fraction = result.average_effective_cache_fraction()
    report(
        "fig8_effective_cache",
        render_series(
            series[: 40],
            "min",
            "effective_%",
            title="Figure 8: effective / allocated cache (%)",
            width=36,
        )
        + f"\naverage effective fraction: {100 * fraction:.1f}%",
    )
    # Paper: >91.7% of cached data is effective on average (their jobs
    # run tens of epochs; ours run ~4-5, so warmup weighs more).
    assert fraction > 0.6
