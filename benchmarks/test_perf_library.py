"""Library micro-benchmarks: scheduler decision latency.

A co-designed scheduler re-solves its allocation every scheduling round;
the paper's 2,500-LoC production scheduler does this for hundreds of
jobs. These benches keep our solvers honest: one Gavel joint solve over
500 jobs must stay in the low milliseconds, and the supporting primitives
(waterfill, greedy cache, SJF scoring) well below that.
"""

import numpy as np

from repro.cluster.dataset import Dataset
from repro.cluster.job import Job
from repro.core.estimator import SiloDPerfEstimator
from repro.core.policies import io_share
from repro.core.policies.base import ScheduleContext
from repro.core.policies.gavel import GavelPolicy
from repro.core.policies.greedy import greedy_cache_allocation
from repro.core.policies.sjf import SjfPolicy
from repro.core.resources import ResourceVector

GB = 1024.0


def synthetic_jobs(n, seed=0):
    rng = np.random.default_rng(seed)
    jobs = []
    for i in range(n):
        jobs.append(
            Job(
                job_id=f"p{i}",
                model="m",
                dataset=Dataset(
                    f"d-{i}", float(rng.uniform(50, 2000)) * GB
                ),
                num_gpus=int(rng.choice([1, 2, 4, 8])),
                ideal_throughput_mbps=float(rng.uniform(2, 200)),
                total_work_mb=float(rng.uniform(1e5, 1e7)),
            )
        )
    return jobs


TOTAL = ResourceVector(gpus=400, cache_mb=144_000 * GB, remote_io_mbps=4000.0)
CTX = ScheduleContext(estimator=SiloDPerfEstimator())


def test_perf_gavel_joint_solve_500_jobs(benchmark):
    jobs = synthetic_jobs(500)
    policy = GavelPolicy()
    alloc = benchmark(policy.schedule, jobs, TOTAL, CTX)
    assert alloc.total().gpus <= TOTAL.gpus + 1e-6
    # One solve must be fast enough for sub-minute scheduling rounds.
    assert benchmark.stats["mean"] < 0.25


def test_perf_sjf_scoring_500_jobs(benchmark):
    jobs = synthetic_jobs(500)
    policy = SjfPolicy()
    alloc = benchmark(policy.schedule, jobs, TOTAL, CTX)
    assert alloc.gpus
    assert benchmark.stats["mean"] < 0.25


def test_perf_waterfill_1000_jobs(benchmark):
    rng = np.random.default_rng(1)
    demands = {f"j{i}": float(rng.uniform(0, 200)) for i in range(1000)}
    grants = benchmark(io_share.max_min_waterfill, demands, 4000.0)
    assert sum(grants.values()) <= 4000.0 + 1e-6
    assert benchmark.stats["mean"] < 0.05


def test_perf_greedy_cache_1000_jobs(benchmark):
    jobs = synthetic_jobs(1000, seed=2)
    allocation = benchmark(
        greedy_cache_allocation, jobs, 144_000 * GB
    )
    assert allocation
    assert benchmark.stats["mean"] < 0.05
