"""Figure 11: throughput and remote IO over time in the 96-GPU cluster.

The paper plots, per cache system, the real training throughput against
the ideal (compute-bound) throughput and the remote-IO consumption: SiloD
tracks the ideal line closely; CoorDL saves the least remote IO; Alluxio's
LRU fluctuates but beats CoorDL cluster-wide.
"""

from repro.analysis.tables import render_table
from benchmarks.conftest import run_cell_96

CACHES = ("silod", "coordl", "alluxio", "quiver")


def run_timelines():
    return {cache: run_cell_96("fifo", cache) for cache in CACHES}


def busy_samples(result):
    return [
        s
        for s in result.timeline
        if s.running_jobs > 0 and s.ideal_throughput_mbps > 0
    ]


def test_fig11_throughput_vs_ideal(benchmark, report):
    results = benchmark.pedantic(run_timelines, rounds=1, iterations=1)

    rows = []
    efficiency = {}
    io_saved = {}
    for cache in CACHES:
        samples = busy_samples(results[cache])
        achieved = sum(s.total_throughput_mbps for s in samples)
        ideal = sum(s.ideal_throughput_mbps for s in samples)
        io_used = sum(s.remote_io_used_mbps for s in samples)
        efficiency[cache] = achieved / ideal
        io_saved[cache] = (achieved - io_used) / max(achieved, 1e-9)
        rows.append(
            {
                "cache": cache,
                "achieved/ideal": efficiency[cache],
                "mean throughput (MB/s)": achieved / len(samples),
                "mean remote IO (MB/s)": io_used / len(samples),
                "fraction served from cache": io_saved[cache],
            }
        )
    report(
        "fig11_96gpu_timeline",
        render_table(
            rows,
            title="Figure 11: throughput vs ideal and remote IO (96 GPUs)",
        ),
    )

    # SiloD is closest to the ideal line and serves the most from cache
    # (Quiver may tie within noise, mirroring the paper's simulation).
    assert efficiency["silod"] >= max(efficiency.values()) - 0.02
    assert io_saved["silod"] >= max(io_saved.values()) - 0.01
    # CoorDL benefits the least from cache among the uniform systems
    # (the paper's "CoorDL benefits the least" observation).
    assert io_saved["coordl"] <= io_saved["silod"]
    assert io_saved["coordl"] <= io_saved["quiver"]
