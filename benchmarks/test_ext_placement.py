"""Extension: validating the one-pool cache abstraction (Figure 3, live).

The simulators treat the distributed cache as one pool. This bench
re-derives Figure 3's conclusion for the micro-benchmark's *actual*
steady state: place the jobs and their cached datasets on servers, apply
the jobs' cache-served loading rates, and verify no disk or fabric NIC
oversubscribes — i.e. the pool abstraction is sound for this workload.
"""

from repro.analysis.tables import render_table
from repro.cluster.hardware import microbenchmark_cluster
from repro.cluster.placement import (
    CacheShardPlacer,
    GpuPlacer,
    validate_placement,
)
from repro.workloads.trace import microbenchmark_trace


def build_and_validate():
    cluster = microbenchmark_cluster()
    jobs = microbenchmark_trace()
    gpu_placer = GpuPlacer(cluster)
    shard_placer = CacheShardPlacer(cluster)
    for job in jobs:
        gpu_placer.place(job)
    # The steady-state SiloD cache plan (§7.1.1): one ResNet-50 dataset
    # fully cached, the other gets the remaining 0.7 TB.
    shard_placer.place("images-resnet50-0", 1.3 * 1024**2)
    shard_placer.place("images-resnet50-1", 0.7 * 1024**2)
    # Cache-served rates: hits at each job's ideal speed times hit ratio.
    rates = {
        "resnet50-0": 114.0 * 1.0,
        "resnet50-1": 114.0 * (0.7 / 1.3),
    }
    report = validate_placement(
        cluster, jobs, gpu_placer, shard_placer, rates
    )
    return report


def test_ext_one_pool_assumption_holds(benchmark, report):
    placement = benchmark(build_and_validate)
    rows = [
        {
            "server": server_id,
            "disk load (MB/s)": placement.disk_load_mbps[server_id],
            "NIC load (MB/s)": placement.nic_load_mbps[server_id],
        }
        for server_id in sorted(placement.disk_load_mbps)
    ]
    report(
        "ext_placement",
        render_table(
            rows, title="Extension: per-server load under the SiloD plan"
        )
        + f"\nfeasible: {placement.feasible}",
    )
    assert placement.feasible
    # Loads are far from the 2 GB/s disks and 100 Gbps fabric.
    assert max(placement.disk_load_mbps.values()) < 500.0
