"""Extension: the wider Gavel objective family on SiloDPerf (§5.2).

The paper's framework claim — any performance-aware objective plugs into
SiloDPerf — demonstrated beyond max-min fairness: cluster-utilisation
(max total throughput) and Themis-style finish-time fairness run on the
same joint allocation machinery, and each optimises its own metric.
"""

from repro.analysis.tables import render_table
from benchmarks.conftest import run_cell

POLICIES = ("gavel", "max-throughput", "finish-time-fairness", "sjf")


def run_objectives():
    return {policy: run_cell(policy, "silod") for policy in POLICIES}


def test_ext_objective_family(benchmark, report):
    results = benchmark.pedantic(run_objectives, rounds=1, iterations=1)
    rows = []
    for policy in POLICIES:
        result = results[policy]
        samples = [s for s in result.timeline if s.running_jobs > 0]
        mean_throughput = sum(
            s.total_throughput_mbps for s in samples
        ) / len(samples)
        rows.append(
            {
                "policy": policy,
                "avg JCT (min)": result.average_jct_minutes(),
                "makespan (min)": result.makespan_minutes(),
                "fairness": result.average_fairness_ratio(),
                "mean throughput (MB/s)": mean_throughput,
            }
        )
    report(
        "ext_objectives",
        render_table(rows, title="Extension: objective family on SiloD"),
    )

    throughput = {r["policy"]: r["mean throughput (MB/s)"] for r in rows}
    fairness = {r["policy"]: r["fairness"] for r in rows}
    # Utilisation maximisation delivers the highest sustained throughput.
    assert throughput["max-throughput"] >= max(throughput.values()) - 1e-6
    # Max-min fairness delivers the best fairness ratio of the family.
    assert fairness["gavel"] >= max(fairness.values()) - 0.02
    # Every objective completes the whole trace.
    for policy in POLICIES:
        assert len(results[policy].finished_records()) == len(
            results[policy].records
        ), policy
