"""Extension: Hoard-style prefetching on top of SiloD (§8 related work).

Hoard prefetches datasets before jobs start, "useful when there is
redundant remote IO bandwidth thus orthogonal to SiloD". Under a
*sustained* load, a non-empty queue implies a saturated egress and there
is nothing spare to prefetch with (we verified this null result; see
EXPERIMENTS.md). Prefetch's habitat is bursty arrivals: a wave of
low-IO jobs holds the GPUs while IO-hungry jobs queue behind them — the
idle egress then warms the queued datasets so the second wave skips its
cold first epoch.
"""

from repro import units
from repro.analysis.tables import render_table
from repro.cluster.hardware import Cluster
from repro.sim.runner import run_experiment
from repro.workloads.datasets import synthetic_images
from repro.workloads.models import make_job


def burst_cluster() -> Cluster:
    return Cluster.build(
        num_servers=4,
        gpus_per_server=4,
        cache_per_server_mb=4 * units.gb(368.0),
        remote_io_mbps=units.gbps(1.6),  # 200 MB/s
    )


def burst_trace():
    """Wave 1: 16 single-GPU VLAD jobs (10 MB/s each — egress mostly
    idle) filling all 16 GPUs for ~5 hours. Wave 2: 4 ResNet-50 jobs on
    private 300 GB datasets, queued behind wave 1."""
    jobs = []
    for i in range(16):
        jobs.append(
            make_job(
                f"vlad-{i}",
                "vlad",
                synthetic_images(f"video-{i}", size_mb=units.tb(0.3)),
                num_gpus=1,
                duration_at_ideal_s=units.hours(5),
            )
        )
    for i in range(4):
        jobs.append(
            make_job(
                f"resnet-{i}",
                "resnet50",
                synthetic_images(f"images-{i}", size_mb=units.tb(0.3)),
                num_gpus=1,
                num_epochs=4,
                submit_time_s=60.0,
            )
        )
    return jobs


def run_burst():
    results = {}
    for cache in ("silod", "silod-prefetch"):
        results[cache] = run_experiment(
            burst_cluster(),
            "fifo",
            cache,
            burst_trace(),
            reschedule_interval_s=600.0,
        )
    return results


def test_ext_prefetch_ablation(benchmark, report):
    results = benchmark.pedantic(run_burst, rounds=1, iterations=1)

    def wave2_jct(result):
        waits = [
            r.jct_s
            for r in result.finished_records()
            if r.job_id.startswith("resnet")
        ]
        return units.seconds_to_minutes(sum(waits) / len(waits))

    rows = [
        {
            "system": cache,
            "avg JCT all (min)": result.average_jct_minutes(),
            "avg JCT wave-2 (min)": wave2_jct(result),
            "makespan (min)": result.makespan_minutes(),
        }
        for cache, result in results.items()
    ]
    report(
        "ext_prefetch",
        render_table(
            rows, title="Extension: prefetching under bursty arrivals"
        ),
    )

    plain = wave2_jct(results["silod"])
    prefetched = wave2_jct(results["silod-prefetch"])
    # The queued wave starts warm: its cold IO-bound first epoch is gone.
    assert prefetched < 0.95 * plain
    # Wave 1 is not hurt.
    assert results["silod-prefetch"].average_jct_minutes() <= (
        results["silod"].average_jct_minutes() * 1.005
    )
