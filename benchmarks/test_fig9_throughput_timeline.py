"""Figure 9: time-varying total job throughput in the 8-V100 experiment."""

from repro import units
from repro.analysis.tables import render_series
from repro.cluster.hardware import microbenchmark_cluster
from repro.sim.runner import run_experiment
from repro.workloads.trace import microbenchmark_trace

CACHES = ("silod", "coordl", "alluxio", "quiver")


def run_timelines():
    return {
        cache: run_experiment(
            microbenchmark_cluster(),
            "fifo",
            cache,
            microbenchmark_trace(),
            sample_interval_s=1200.0,
        )
        for cache in CACHES
    }


def test_fig9_throughput_timeline(benchmark, report):
    results = benchmark.pedantic(run_timelines, rounds=1, iterations=1)

    blocks = []
    peaks = {}
    for cache, result in results.items():
        series = [
            {"min": round(minute), "mbps": mbps}
            for minute, mbps, _ideal, _io in result.throughput_series()
            if minute <= 3600
        ]
        peaks[cache] = max(p["mbps"] for p in series)
        blocks.append(
            render_series(series, "min", "mbps", title=cache, width=36)
        )
    report("fig9_throughput_timeline", "\n\n".join(blocks))

    # SiloD reaches the optimal 374 MB/s (all five jobs at ideal speed);
    # no baseline does.
    assert peaks["silod"] == max(peaks.values())
    assert abs(peaks["silod"] - 374.0) / 374.0 < 0.02
    for cache in ("coordl", "alluxio"):
        assert peaks[cache] < 0.95 * peaks["silod"]

    # Before cached items become effective (~minute 460) all systems are
    # within a few percent of each other.
    def early_mean(result):
        values = [
            s.total_throughput_mbps
            for s in result.timeline
            if 60 <= units.seconds_to_minutes(s.time_s) <= 300
        ]
        return sum(values) / len(values)

    early = {cache: early_mean(r) for cache, r in results.items()}
    baseline = early["silod"]
    for cache, value in early.items():
        assert abs(value - baseline) / baseline < 0.05, cache
