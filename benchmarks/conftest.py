"""Shared infrastructure for the benchmark suite.

Every module under ``benchmarks/`` regenerates one table or figure of the
paper (see DESIGN.md's experiment index) and prints/saves the reproduced
rows. Heavy simulation cells are memoised per session so figures that
share a configuration (e.g. Figures 12 and 13) pay for it once.

Scale: by default the cluster-scale experiments run on a 100-GPU slice of
the paper's 400-GPU setup with identical per-GPU cache and egress ratios
and a sustained 1.5x-oversubscribed trace — the same contention regime at
a quarter of the compute. Set ``REPRO_FULL_SCALE=1`` for the 400-GPU /
1200-job configuration (minutes per cell).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Tuple

import pytest

from repro import units
from repro.cluster.hardware import Cluster, cluster_400gpu
from repro.perf.record import write_benchmark_artifact
from repro.sim.metrics import RunResult
from repro.sim.runner import run_experiment
from repro.workloads.trace import (
    TraceConfig,
    arrival_rate_for_load,
    generate_trace,
)

FULL_SCALE = os.environ.get("REPRO_FULL_SCALE", "0") == "1"
RESULTS_DIR = Path(__file__).parent / "results"


def scaled_cluster_400(
    remote_io_mbps: float = None, num_gpus: int = None
) -> Cluster:
    """The §7.2 cluster, full or scaled to a 100-GPU slice."""
    if FULL_SCALE:
        cluster = cluster_400gpu()
        if remote_io_mbps is not None:
            cluster.remote_io_mbps = remote_io_mbps
        return cluster
    gpus = num_gpus or 100
    cluster = Cluster.build(
        num_servers=gpus // 4,
        gpus_per_server=4,
        cache_per_server_mb=4 * units.gb(368.0),
        # 8 Gbps for 100 GPUs == the paper's 32 Gbps for 400 GPUs.
        remote_io_mbps=units.gbps(8.0 * gpus / 100.0),
    )
    if remote_io_mbps is not None:
        cluster.remote_io_mbps = remote_io_mbps
    return cluster


def cluster_trace(
    seed: int = 42,
    load: float = 1.5,
    shared_dataset_fraction: float = 0.0,
    gpu_scale: float = 1.0,
    num_gpus: int = None,
    duration_median_s: float = 21600.0,
):
    """The sustained synthetic trace used by the cluster-scale figures."""
    gpus = (400 if FULL_SCALE else (num_gpus or 100))
    cfg = TraceConfig(
        num_jobs=1200 if FULL_SCALE else 300,
        seed=seed,
        duration_median_s=duration_median_s,
        duration_sigma=1.2,
        shared_dataset_fraction=shared_dataset_fraction,
        gpu_scale=gpu_scale,
    )
    cfg.mean_interarrival_s = arrival_rate_for_load(cfg, gpus, load=load)
    return generate_trace(cfg)


def cluster_96() -> Cluster:
    """The paper's 96-GPU cluster (§7.1.2): 8 Gbps egress."""
    from repro.cluster.hardware import cluster_96gpu

    return cluster_96gpu()


def trace_96(seed: int = 42, load: float = 1.5):
    """Sustained trace sized for the 96-GPU cluster."""
    cfg = TraceConfig(
        num_jobs=300,
        seed=seed,
        duration_median_s=21600.0,
        duration_sigma=1.2,
    )
    cfg.mean_interarrival_s = arrival_rate_for_load(cfg, 96, load=load)
    return generate_trace(cfg)


# ----------------------------------------------------------------------
# Session-wide memoisation of simulation cells.
# ----------------------------------------------------------------------

_CELL_CACHE: Dict[Tuple, RunResult] = {}


def run_cell_96(policy: str, cache: str, **sim_kwargs) -> RunResult:
    """Run (and memoise) one 96-GPU simulation cell."""
    key = ("96", policy, cache, tuple(sorted(sim_kwargs.items())))
    if key not in _CELL_CACHE:
        _CELL_CACHE[key] = run_experiment(
            cluster_96(),
            policy,
            cache,
            trace_96(),
            reschedule_interval_s=1800.0,
            sample_interval_s=3600.0,
            **sim_kwargs,
        )
    return _CELL_CACHE[key]


def run_cell(
    policy: str,
    cache: str,
    cluster_key: str = "400",
    trace_kwargs: Tuple = (),
    cluster_kwargs: Tuple = (),
    **sim_kwargs,
) -> RunResult:
    """Run (and memoise) one simulation cell.

    ``trace_kwargs`` / ``cluster_kwargs`` are tuples of (key, value) pairs
    so the memo key is hashable.
    """
    cache_kwargs = sim_kwargs.pop("cache_kwargs", ())
    key = (policy, cache, cluster_key, trace_kwargs, cluster_kwargs,
           cache_kwargs, tuple(sorted(sim_kwargs.items())))
    if key not in _CELL_CACHE:
        cluster = scaled_cluster_400(**dict(cluster_kwargs))
        jobs = cluster_trace(**dict(trace_kwargs))
        sim_kwargs.setdefault("reschedule_interval_s", 1800.0)
        sim_kwargs.setdefault("sample_interval_s", 3600.0)
        _CELL_CACHE[key] = run_experiment(
            cluster,
            policy,
            cache,
            jobs,
            cache_kwargs=dict(cache_kwargs),
            **sim_kwargs,
        )
    return _CELL_CACHE[key]


@pytest.fixture()
def report():
    """Print a reproduced table/figure and persist it for EXPERIMENTS.md.

    Each table is written twice: the raw ``.txt`` that EXPERIMENTS.md
    embeds, and a schema-versioned ``.json`` envelope
    (``repro.perf.record``) so every artifact under ``results/`` is
    self-describing and machine-diffable across revisions.
    """

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        write_benchmark_artifact(name, "table", text, RESULTS_DIR)
        print(f"\n{text}\n")

    return _report
