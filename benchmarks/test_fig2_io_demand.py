"""Figure 2: remote-IO demand of a 400-V100 cluster over time.

The paper measures the raw (uncached) remote-IO demand of a production
trace peaking at ~200 Gbps — far above the 120 Gbps egress cap of even
the largest storage accounts. We reproduce it by running the cluster
trace with no caching and an unthrottled egress, then reading the demand
timeline.
"""

from repro import units
from repro.analysis.tables import render_series
from repro.sim.runner import run_experiment
from benchmarks.conftest import FULL_SCALE, cluster_trace, scaled_cluster_400

#: The egress limit the demand is compared against (Figure 2 plots the
#: 120 Gbps claimed upper bound; our scaled cluster compares at 1/4).
EGRESS_CAP_MBPS = units.gbps(120.0 if FULL_SCALE else 30.0)


def run_demand_timeline():
    cluster = scaled_cluster_400(remote_io_mbps=units.gbps(1000.0))
    jobs = cluster_trace()
    return run_experiment(
        cluster,
        "fifo",
        "nocache",
        jobs,
        reschedule_interval_s=1800.0,
        sample_interval_s=3600.0,
    )


def test_fig2_remote_io_demand(benchmark, report):
    result = benchmark.pedantic(run_demand_timeline, rounds=1, iterations=1)
    series = [
        {
            "min": round(minute),
            "gbps": units.mbps_to_gbps(io),
        }
        for minute, _thr, _ideal, io in result.throughput_series()
    ]
    peak = max(p["gbps"] for p in series)
    cap_gbps = units.mbps_to_gbps(EGRESS_CAP_MBPS)
    above = sum(1 for p in series if p["gbps"] > cap_gbps) / len(series)
    report(
        "fig2_io_demand",
        render_series(series[:40], "min", "gbps",
                      title="Figure 2: remote IO demand (Gbps)", width=36)
        + f"\npeak demand: {peak:.0f} Gbps; egress cap: {cap_gbps:.0f} Gbps;"
        f" fraction of time above cap: {100 * above:.0f}%",
    )
    # The demand exceeds the egress cap substantially and persistently.
    assert peak > 1.3 * cap_gbps
    assert above > 0.2
