"""Figure 15: benefit of dataset sharing.

The paper varies the fraction of jobs sharing datasets (0/25/50/100%):
average JCT falls as sharing rises (~22% for SJF/Gavel at full sharing;
FIFO-SiloD is already near the optimum of its fixed order, gaining ~7%).
"""

from repro.analysis.tables import render_table
from benchmarks.conftest import run_cell

FRACTIONS = (0.0, 0.25, 0.5, 1.0)
POLICIES = ("fifo", "sjf")


def run_sweep():
    results = {}
    for policy in POLICIES:
        for fraction in FRACTIONS:
            trace_kwargs = (
                (("shared_dataset_fraction", fraction),)
                if fraction > 0
                else ()
            )
            results[(policy, fraction)] = run_cell(
                policy, "silod", trace_kwargs=trace_kwargs
            )
    return results


def test_fig15_dataset_sharing(benchmark, report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    for policy in POLICIES:
        base = results[(policy, 0.0)].average_jct_minutes()
        for fraction in FRACTIONS:
            jct = results[(policy, fraction)].average_jct_minutes()
            rows.append(
                {
                    "scheduler": policy,
                    "% sharing": 100 * fraction,
                    "avg JCT (min)": jct,
                    "improvement %": 100 * (1 - jct / base),
                }
            )
    report(
        "fig15_dataset_sharing",
        render_table(rows, title="Figure 15: impact of dataset sharing"),
    )

    for policy in POLICIES:
        base = results[(policy, 0.0)].average_jct_minutes()
        full = results[(policy, 1.0)].average_jct_minutes()
        # Full sharing helps (paper: 6.9%-22%).
        assert full < base, policy
    # Full sharing brings a measurable improvement for both schedulers.
    # Paper: 6.9% under FIFO (close to our ~7%) and ~22% under SJF/Gavel
    # (our scaled trace is queueing-dominated, so SJF lands lower).
    fifo_gain = 1 - results[("fifo", 1.0)].average_jct_minutes() / results[
        ("fifo", 0.0)
    ].average_jct_minutes()
    sjf_gain = 1 - results[("sjf", 1.0)].average_jct_minutes() / results[
        ("sjf", 0.0)
    ].average_jct_minutes()
    assert fifo_gain > 0.04, fifo_gain
    assert sjf_gain > 0.03, sjf_gain
