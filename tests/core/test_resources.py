"""Resource vectors and allocations."""

import pytest

from repro.core import resources


def test_vector_validation():
    with pytest.raises(ValueError):
        resources.ResourceVector(gpus=-1)
    with pytest.raises(ValueError):
        resources.ResourceVector(cache_mb=-1)


def test_vector_arithmetic_and_fit():
    a = resources.ResourceVector(gpus=2, cache_mb=100, remote_io_mbps=10)
    b = resources.ResourceVector(gpus=1, cache_mb=50, remote_io_mbps=5)
    total = a + b
    assert total.gpus == 3
    assert b.fits_within(a)
    assert not total.fits_within(a)


def test_tetris_weights_inverse_of_totals():
    total = resources.ResourceVector(gpus=8, cache_mb=2048, remote_io_mbps=200)
    weights = resources.tetris_weights(total)
    assert weights[resources.GPU] == pytest.approx(1 / 8)
    assert weights[resources.CACHE] == pytest.approx(1 / 2048)
    assert weights[resources.REMOTE_IO] == pytest.approx(1 / 200)
    # Normalised: the full cluster scores exactly 3 (one per resource).
    assert total.weighted_sum(weights) == pytest.approx(3.0)


def test_tetris_weights_zero_resource():
    total = resources.ResourceVector(gpus=8)
    weights = resources.tetris_weights(total)
    assert weights[resources.CACHE] == 0.0


def test_allocation_grants_and_totals():
    alloc = resources.Allocation()
    alloc.grant_gpus("j1", 2)
    alloc.grant_gpus("j2", 0)
    alloc.grant_remote_io("j1", 50.0)
    alloc.grant_cache("imagenet", 100.0)
    alloc.grant_cache("web", 200.0)
    assert alloc.gpus_of("j1") == 2
    assert alloc.gpus_of("missing") == 0
    assert alloc.cache_of("imagenet") == 100.0
    assert list(alloc.running_job_ids()) == ["j1"]
    total = alloc.total()
    assert total.gpus == 2
    assert total.cache_mb == 300.0
    assert total.remote_io_mbps == 50.0


def test_allocation_rejects_negative_grants():
    alloc = resources.Allocation()
    with pytest.raises(ValueError):
        alloc.grant_gpus("j", -1)
    with pytest.raises(ValueError):
        alloc.grant_remote_io("j", -1.0)
    with pytest.raises(ValueError):
        alloc.grant_cache("d", -1.0)


def test_allocation_repr_mentions_grants():
    alloc = resources.Allocation()
    alloc.grant_gpus("j", 1)
    assert "j" in repr(alloc)
