"""Max-min property: the het policy's assignment is brute-force optimal.

``HetMaxMinPolicy`` enumerates generation assignments (within
``_ENUM_LIMIT``) and records the winning common throughput ratio in
``last_assignment_ratio``. On randomized small mixed fleets that ratio
must equal an independent brute-force maximisation over *every*
assignment, scored by the same pure-Python
``common_ratio_for_assignment`` oracle — and never fall below what the
greedy max-throughput sibling or the homogeneous delegate achieves on
the binding minimum.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.dataset import Dataset
from repro.cluster.job import Job
from repro.core.estimator import HetSiloDPerfEstimator
from repro.core.perf_model import default_speedup_table
from repro.core.policies.base import ScheduleContext
from repro.core.policies.gavel import equal_share
from repro.core.policies.het import (
    HetMaxMinPolicy,
    HetMaxThroughputPolicy,
    common_ratio_for_assignment,
)
from repro.core.resources import ResourceVector

POOL_GENS = ("V100", "A100")


def _estimator():
    return HetSiloDPerfEstimator(speedups=default_speedup_table())


def _make_jobs(specs):
    return [
        Job(
            job_id=f"job-{i}",
            model="resnet50",
            dataset=Dataset(
                name=f"d-{i}", size_mb=size_mb, num_items=1000
            ),
            num_gpus=num_gpus,
            ideal_throughput_mbps=ideal,
            total_work_mb=4 * size_mb,
        )
        for i, (num_gpus, ideal, size_mb) in enumerate(specs)
    ]


def _context(estimator, pools):
    return ScheduleContext(
        estimator=estimator, storage_aware=True, gpu_pools=pools
    )


def _brute_force_ratio(jobs, pools, total, estimator, normalisers):
    """Max common ratio over every generation assignment, by the oracle."""
    best = -1.0
    gens = sorted(pools)
    for candidate in itertools.product(gens, repeat=len(jobs)):
        assignment = {
            job.job_id: gen for job, gen in zip(jobs, candidate)
        }
        ratio = common_ratio_for_assignment(
            jobs, assignment, pools, total, estimator, normalisers
        )
        best = max(best, ratio)
    return best


job_spec = st.tuples(
    st.integers(min_value=1, max_value=2),  # num_gpus
    st.floats(min_value=20.0, max_value=400.0),  # ideal_throughput_mbps
    st.floats(min_value=512.0, max_value=8192.0),  # dataset size_mb
)


@settings(max_examples=40, deadline=None)
@given(
    specs=st.lists(job_spec, min_size=2, max_size=4),
    cap_a=st.integers(min_value=1, max_value=4),
    cap_b=st.integers(min_value=1, max_value=4),
    cache_mb=st.floats(min_value=1024.0, max_value=32768.0),
    io_mbps=st.floats(min_value=50.0, max_value=2000.0),
)
def test_max_min_assignment_matches_brute_force(
    specs, cap_a, cap_b, cache_mb, io_mbps
):
    jobs = _make_jobs(specs)
    pools = {"V100": cap_a, "A100": cap_b}
    total = ResourceVector(
        gpus=float(cap_a + cap_b),
        cache_mb=cache_mb,
        remote_io_mbps=io_mbps,
    )
    estimator = _estimator()
    ctx = _context(estimator, pools)
    policy = HetMaxMinPolicy()
    policy.schedule(jobs, total, ctx)

    # Recompute the assignment-independent normalisers the policy used.
    oracle = _estimator()
    normalisers = {}
    for job in jobs:
        share = equal_share(job, len(jobs), total, oracle, True)
        normalisers[job.job_id] = max(share.perf_mbps * job.weight, 1e-12)

    expected = _brute_force_ratio(jobs, pools, total, oracle, normalisers)
    assert policy.last_assignment_ratio == pytest.approx(
        expected, rel=1e-9, abs=1e-9
    )
    # The chosen generations are published for provenance, one per job.
    assert set(ctx.gen_assignments) == {job.job_id for job in jobs}
    assert set(ctx.gen_scores) == {job.job_id for job in jobs}
    for scores in ctx.gen_scores.values():
        assert set(scores) >= set(POOL_GENS)


@settings(max_examples=25, deadline=None)
@given(
    specs=st.lists(job_spec, min_size=2, max_size=4),
    cap_a=st.integers(min_value=1, max_value=4),
    cap_b=st.integers(min_value=1, max_value=4),
)
def test_max_min_ratio_dominates_max_throughput_minimum(
    specs, cap_a, cap_b
):
    """Max-min's binding minimum is >= the max-sum policy's minimum."""
    jobs = _make_jobs(specs)
    pools = {"V100": cap_a, "A100": cap_b}
    total = ResourceVector(
        gpus=float(cap_a + cap_b),
        cache_mb=16384.0,
        remote_io_mbps=500.0,
    )
    max_min = HetMaxMinPolicy()
    max_min.schedule(jobs, total, _context(_estimator(), pools))

    # Score the max-throughput policy's assignment with the *max-min*
    # normalisers so the two ratios are comparable.
    sum_estimator = _estimator()
    sum_ctx = _context(sum_estimator, pools)
    HetMaxThroughputPolicy().schedule(jobs, total, sum_ctx)
    oracle = _estimator()
    normalisers = {}
    for job in jobs:
        share = equal_share(job, len(jobs), total, oracle, True)
        normalisers[job.job_id] = max(share.perf_mbps * job.weight, 1e-12)
    rival = common_ratio_for_assignment(
        jobs, dict(sum_ctx.gen_assignments), pools, total, oracle, normalisers
    )
    assert max_min.last_assignment_ratio >= rival - 1e-9


def test_single_pool_delegates_to_homogeneous_gavel():
    """One generation -> no assignment search, plain Gavel allocation."""
    jobs = _make_jobs([(1, 100.0, 1024.0), (2, 200.0, 2048.0)])
    total = ResourceVector(gpus=4.0, cache_mb=8192.0, remote_io_mbps=400.0)
    estimator = _estimator()
    ctx = _context(estimator, {"V100": 4})
    policy = HetMaxMinPolicy()
    allocation = policy.schedule(jobs, total, ctx)
    assert set(ctx.gen_assignments.values()) == {"V100"}
    granted = sum(
        allocation.gpus.get(job.job_id, 0.0) for job in jobs
    )
    assert granted <= total.gpus + 1e-9
