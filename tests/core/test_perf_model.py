"""The closed-form performance model (Equations 1-5)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import perf_model

sizes = st.floats(min_value=1.0, max_value=1e8, allow_nan=False)
rates = st.floats(min_value=0.0, max_value=1e5, allow_nan=False)


def test_hit_ratio_is_c_over_d():
    assert perf_model.hit_ratio(500.0, 1000.0) == pytest.approx(0.5)
    assert perf_model.hit_ratio(2000.0, 1000.0) == 1.0
    assert perf_model.miss_ratio(250.0, 1000.0) == pytest.approx(0.75)


def test_eq2_remote_io_demand():
    # f = 100 MB/s, half the dataset cached -> 50 MB/s from remote.
    assert perf_model.remote_io_demand(100.0, 500.0, 1000.0) == (
        pytest.approx(50.0)
    )


def test_eq3_io_throughput():
    # b = 50 MB/s with a 50% hit ratio supports f = 100 MB/s.
    assert perf_model.io_throughput(50.0, 500.0, 1000.0) == pytest.approx(
        100.0
    )
    # Fully cached: unbounded loading.
    assert math.isinf(perf_model.io_throughput(0.0, 1000.0, 1000.0))


def test_eq4_silod_perf_bottleneck_selection():
    # IO-bound: min picks the IO side.
    assert perf_model.silod_perf(114.0, 25.0, 0.0, 1000.0) == pytest.approx(
        25.0
    )
    # Compute-bound: min picks f*.
    assert perf_model.silod_perf(114.0, 500.0, 0.0, 1000.0) == pytest.approx(
        114.0
    )
    # Fully cached: f*.
    assert perf_model.silod_perf(114.0, 0.0, 1000.0, 1000.0) == (
        pytest.approx(114.0)
    )


def test_eq5_cache_efficiency_matches_figure6_headliners():
    # ResNet-50 / ImageNet-1k: 114 MB/s over 143 GB ~ 0.80 MB/s per GB.
    eff = perf_model.cache_efficiency(114.0, 143.0 * 1024) * 1024
    assert eff == pytest.approx(0.80, abs=0.01)
    # BERT / Web Search: 2 MB/s over 20.9 TB ~ 9.3e-5 MB/s per GB.
    eff = perf_model.cache_efficiency(2.0, 20.9 * 1024 * 1024) * 1024
    assert eff == pytest.approx(9.5e-5, rel=0.05)


def test_dataset_cache_efficiency_sums_over_sharing_jobs():
    single = perf_model.cache_efficiency(100.0, 1000.0)
    shared = perf_model.dataset_cache_efficiency([100.0, 50.0], 1000.0)
    assert shared == pytest.approx(single * 1.5)


def test_min_cache_for_throughput_inverts_eq4():
    d = 1000.0
    c = perf_model.min_cache_for_throughput(100.0, 40.0, d)
    assert perf_model.silod_perf(100.0, 40.0, c, d) == pytest.approx(100.0)
    # Enough IO alone: no cache needed.
    assert perf_model.min_cache_for_throughput(100.0, 120.0, d) == 0.0
    with pytest.raises(ValueError):
        perf_model.min_cache_for_throughput(0.0, 10.0, d)


def test_is_io_bound():
    assert perf_model.is_io_bound(114.0, 25.0, 0.0, 1000.0)
    assert not perf_model.is_io_bound(114.0, 200.0, 0.0, 1000.0)


def test_input_validation():
    with pytest.raises(ValueError):
        perf_model.hit_ratio(-1.0, 100.0)
    with pytest.raises(ValueError):
        perf_model.hit_ratio(1.0, 0.0)
    with pytest.raises(ValueError):
        perf_model.io_throughput(-1.0, 0.0, 100.0)
    with pytest.raises(ValueError):
        perf_model.remote_io_demand(-1.0, 0.0, 100.0)
    with pytest.raises(ValueError):
        perf_model.cache_efficiency(-1.0, 100.0)


# ----------------------------------------------------------------------
# Property-based invariants of the model.
# ----------------------------------------------------------------------


@given(f=rates, c=rates, d=sizes, b=rates)
def test_throughput_never_exceeds_compute_bound(f, c, d, b):
    assert perf_model.silod_perf(f, b, c, d) <= f + 1e-9


@given(c=rates, d=sizes, b=rates)
def test_eq2_eq3_are_inverses(c, d, b):
    """IOPerf(demand(f)) == f whenever the dataset is not fully cached."""
    if c >= d:
        return
    f = 123.4
    demand = perf_model.remote_io_demand(f, c, d)
    assert perf_model.io_throughput(demand, c, d) == pytest.approx(f)


@given(d=sizes, b=rates, f=st.floats(min_value=1.0, max_value=1e5))
def test_more_cache_never_hurts(d, b, f):
    lo = perf_model.silod_perf(f, b, 0.25 * d, d)
    hi = perf_model.silod_perf(f, b, 0.75 * d, d)
    assert hi >= lo - 1e-9


@given(d=sizes, c=rates, f=st.floats(min_value=1.0, max_value=1e5))
def test_more_io_never_hurts(d, c, f):
    lo = perf_model.silod_perf(f, 10.0, c, d)
    hi = perf_model.silod_perf(f, 20.0, c, d)
    assert hi >= lo - 1e-9


@given(d=sizes, f=st.floats(min_value=1.0, max_value=1e5))
def test_cache_efficiency_is_marginal_io_saving(d, f):
    """Eq 5 equals the finite-difference derivative of Eq 2 at f*."""
    c = 0.3 * d
    delta = d * 1e-6
    saved = perf_model.remote_io_demand(f, c, d) - perf_model.remote_io_demand(
        f, c + delta, d
    )
    assert saved / delta == pytest.approx(
        perf_model.cache_efficiency(f, d), rel=1e-4
    )
