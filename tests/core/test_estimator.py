"""The SiloD-enhanced performance estimator (Algorithm 1 line 5)."""

import pytest

from repro.cluster.dataset import Dataset
from repro.cluster.job import Job
from repro.core.estimator import SiloDPerfEstimator, linear_compute_estimator
from repro.core.resources import ResourceVector


def make_job(regular=True, num_gpus=4):
    return Job(
        job_id="j",
        model="resnet50",
        dataset=Dataset("d", 1000.0),
        num_gpus=num_gpus,
        ideal_throughput_mbps=400.0,
        total_work_mb=4000.0,
        regular=regular,
    )


def test_linear_compute_estimator_scales_and_caps():
    job = make_job()
    assert linear_compute_estimator(job, 4) == pytest.approx(400.0)
    assert linear_compute_estimator(job, 2) == pytest.approx(200.0)
    # Extra GPUs beyond the request give nothing.
    assert linear_compute_estimator(job, 8) == pytest.approx(400.0)


def test_estimate_is_min_of_perf_and_ioperf():
    estimator = SiloDPerfEstimator()
    job = make_job()
    # IO-bound: 100 MB/s remote, no cache.
    assert estimator.estimate(job, 4, 0.0, 100.0) == pytest.approx(100.0)
    # Cache halves the misses: the same 100 MB/s supports 200 MB/s.
    assert estimator.estimate(job, 4, 500.0, 100.0) == pytest.approx(200.0)
    # Compute-bound once IO suffices.
    assert estimator.estimate(job, 4, 900.0, 100.0) == pytest.approx(400.0)


def test_irregular_jobs_use_original_estimator():
    estimator = SiloDPerfEstimator()
    job = make_job(regular=False)
    # Storage starvation is invisible to the original estimator (§6).
    assert estimator.estimate(job, 4, 0.0, 0.0) == pytest.approx(400.0)


def test_estimate_vector_matches_scalar_form():
    estimator = SiloDPerfEstimator()
    job = make_job()
    vec = ResourceVector(gpus=4, cache_mb=500.0, remote_io_mbps=100.0)
    assert estimator.estimate_vector(job, vec) == estimator.estimate(
        job, 4, 500.0, 100.0
    )


def test_io_bound_detector():
    estimator = SiloDPerfEstimator()
    job = make_job()
    assert estimator.io_bound(job, 4, 0.0, 100.0)
    assert not estimator.io_bound(job, 4, 0.0, 500.0)
    assert not estimator.io_bound(make_job(regular=False), 4, 0.0, 0.0)


def test_estimated_duration():
    estimator = SiloDPerfEstimator()
    job = make_job()
    # 4000 MB at 100 MB/s.
    assert estimator.estimated_duration_s(job, 4, 0.0, 100.0) == (
        pytest.approx(40.0)
    )
    # Starved: infinite duration rather than a crash.
    assert estimator.estimated_duration_s(job, 0, 0.0, 0.0) == float("inf")


def test_custom_compute_estimator_is_used():
    estimator = SiloDPerfEstimator(compute_estimator=lambda job, gpus: 42.0)
    job = make_job()
    assert estimator.compute_bound(job, 1) == 42.0
    assert estimator.estimate(job, 1, job.dataset.size_mb, 0.0) == 42.0
