"""The SiloD scheduling framework (Algorithm 1, irregular partitioning)."""

import pytest

from repro.cluster.dataset import Dataset
from repro.cluster.job import Job
from repro.core.policies.fifo import FifoPolicy
from repro.core.resources import Allocation, ResourceVector
from repro.core.silod import SiloDScheduler, merge_allocations

TOTAL = ResourceVector(gpus=8, cache_mb=4000.0, remote_io_mbps=200.0)


def job(job_id, regular=True, gpus=1, f_star=100.0):
    return Job(
        job_id=job_id,
        model="m",
        dataset=Dataset(f"d-{job_id}", 1000.0),
        num_gpus=gpus,
        ideal_throughput_mbps=f_star,
        total_work_mb=2000.0,
        regular=regular,
    )


def test_storage_aware_schedule_produces_joint_allocation():
    scheduler = SiloDScheduler(FifoPolicy())
    alloc = scheduler.schedule([job("a"), job("b")], TOTAL)
    assert alloc.gpus_of("a") == 1
    assert sum(alloc.cache.values()) > 0
    assert "a" in alloc.remote_io


def test_vanilla_schedule_is_compute_only():
    scheduler = SiloDScheduler(FifoPolicy(), storage_aware=False)
    alloc = scheduler.schedule([job("a")], TOTAL)
    assert alloc.gpus_of("a") == 1
    assert alloc.cache == {}


def test_irregular_jobs_partitioned():
    scheduler = SiloDScheduler(FifoPolicy())
    jobs = [job("reg1"), job("reg2"), job("irr", regular=False, gpus=2)]
    alloc = scheduler.schedule(jobs, TOTAL)
    # Everyone runs.
    for j in jobs:
        assert alloc.gpus_of(j.job_id) == j.num_gpus
    # The irregular job gets storage from its own partition.
    assert alloc.remote_io_of("irr") > 0
    assert alloc.cache_of("d-irr") > 0
    # Total grants stay within the cluster.
    used = alloc.total()
    assert used.cache_mb <= TOTAL.cache_mb + 1e-6
    assert used.remote_io_mbps <= TOTAL.remote_io_mbps + 1e-6


def test_partition_sizes_follow_gpu_demand():
    scheduler = SiloDScheduler(FifoPolicy())
    # Irregular demand = 6 of 8 GPUs: regular pool keeps only a quarter.
    jobs = [job("reg"), job("irr1", regular=False, gpus=3), job("irr2", regular=False, gpus=3)]
    alloc = scheduler.schedule(jobs, TOTAL)
    # Regular job's dataset cannot receive more than the regular pool.
    assert alloc.cache_of("d-reg") <= TOTAL.cache_mb * (1 / 7) + 1e-6


def test_merge_allocations_rejects_duplicate_jobs():
    a = Allocation()
    a.grant_gpus("j", 1)
    b = Allocation()
    b.grant_gpus("j", 1)
    with pytest.raises(ValueError):
        merge_allocations(a, b)


def test_merge_allocations_takes_max_cache_per_dataset():
    a = Allocation()
    a.grant_cache("d", 100.0)
    b = Allocation()
    b.grant_cache("d", 300.0)
    merged = merge_allocations(a, b)
    assert merged.cache_of("d") == 300.0
