"""FIFO policy."""

import pytest

from repro.cluster.dataset import Dataset
from repro.cluster.job import Job
from repro.core.policies.base import ScheduleContext
from repro.core.policies.fifo import FifoPolicy
from repro.core.resources import ResourceVector


def job(job_id, submit, gpus=1, f_star=100.0, d_mb=1000.0):
    return Job(
        job_id=job_id,
        model="m",
        dataset=Dataset(f"d-{job_id}", d_mb),
        num_gpus=gpus,
        ideal_throughput_mbps=f_star,
        total_work_mb=2 * d_mb,
        submit_time_s=submit,
    )


TOTAL = ResourceVector(gpus=4, cache_mb=2000.0, remote_io_mbps=100.0)


def test_order_is_by_submit_time():
    policy = FifoPolicy()
    jobs = [job("b", 10.0), job("a", 5.0), job("c", 7.0)]
    assert [j.job_id for j in policy.order(jobs)] == ["a", "c", "b"]


def test_admission_respects_capacity():
    policy = FifoPolicy()
    jobs = [job("a", 0, gpus=2), job("b", 1, gpus=2), job("c", 2, gpus=2)]
    alloc = policy.schedule(jobs, TOTAL, ScheduleContext(storage_aware=False))
    assert alloc.gpus_of("a") == 2
    assert alloc.gpus_of("b") == 2
    assert alloc.gpus_of("c") == 0


def test_backfill_skips_large_head():
    jobs = [job("small1", 0, gpus=2), job("big", 1, gpus=4), job("small2", 2, gpus=2)]
    with_backfill = FifoPolicy(backfill=True).schedule(
        jobs, TOTAL, ScheduleContext(storage_aware=False)
    )
    assert with_backfill.gpus_of("small2") == 2
    without = FifoPolicy(backfill=False).schedule(
        jobs, TOTAL, ScheduleContext(storage_aware=False)
    )
    # Head-of-line blocking: big does not fit, nothing behind it runs.
    assert without.gpus_of("small1") == 2
    assert without.gpus_of("big") == 0
    assert without.gpus_of("small2") == 0


def test_vanilla_mode_grants_no_storage():
    alloc = FifoPolicy().schedule(
        [job("a", 0)], TOTAL, ScheduleContext(storage_aware=False)
    )
    assert alloc.cache == {}
    assert alloc.remote_io == {}


def test_silod_mode_attaches_greedy_storage():
    jobs = [job("fast", 0, f_star=200.0), job("slow", 1, f_star=10.0)]
    alloc = FifoPolicy().schedule(jobs, TOTAL, ScheduleContext())
    # The cache-efficient job's dataset is cached first.
    assert alloc.cache_of("d-fast") == pytest.approx(1000.0)
    assert alloc.cache_of("d-slow") == pytest.approx(1000.0)
    # Steady state: fast is fully cached (no IO), slow gets its demand.
    assert alloc.remote_io_of("fast") == pytest.approx(0.0)
    assert alloc.remote_io_of("slow") == pytest.approx(0.0)


def test_silod_mode_uses_effective_cache_for_io():
    jobs = [job("fast", 0, f_star=200.0), job("slow", 1, f_star=10.0)]
    # Cold caches: demands are the full f*, waterfilled.
    ctx = ScheduleContext(effective_cache_mb=lambda j: 0.0)
    alloc = FifoPolicy().schedule(jobs, TOTAL, ctx)
    assert alloc.remote_io_of("slow") == pytest.approx(10.0)
    assert alloc.remote_io_of("fast") == pytest.approx(90.0)
