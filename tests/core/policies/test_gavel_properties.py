"""Property-based tests of the Gavel joint solver."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.dataset import Dataset
from repro.cluster.job import Job
from repro.core.estimator import SiloDPerfEstimator
from repro.core.policies.base import ScheduleContext
from repro.core.policies.gavel import GavelPolicy
from repro.core.resources import ResourceVector

GB = 1024.0
ESTIMATOR = SiloDPerfEstimator()

job_sets = st.lists(
    st.tuples(
        st.floats(min_value=1.0, max_value=500.0),   # f*
        st.floats(min_value=1.0, max_value=500.0),   # dataset GB
        st.integers(min_value=1, max_value=8),       # gpus
    ),
    min_size=1,
    max_size=8,
)
totals = st.tuples(
    st.integers(min_value=1, max_value=32),          # gpus
    st.floats(min_value=0.0, max_value=1_000.0),     # cache GB
    st.floats(min_value=1.0, max_value=500.0),       # io MB/s
)


def build(specs):
    return [
        Job(
            job_id=f"g{i}",
            model="m",
            dataset=Dataset(f"d-{i}", d_gb * GB),
            num_gpus=gpus,
            ideal_throughput_mbps=f_star,
            total_work_mb=2 * d_gb * GB,
        )
        for i, (f_star, d_gb, gpus) in enumerate(specs)
    ]


def throughputs(alloc, jobs):
    return {
        j.job_id: ESTIMATOR.estimate(
            j,
            alloc.gpus_of(j.job_id),
            alloc.cache_of(j.dataset.name),
            alloc.remote_io_of(j.job_id),
        )
        for j in jobs
    }


@given(specs=job_sets, total_spec=totals)
@settings(max_examples=60, deadline=None)
def test_joint_allocation_respects_budgets(specs, total_spec):
    gpus, cache_gb, io = total_spec
    jobs = build(specs)
    total = ResourceVector(
        gpus=gpus, cache_mb=cache_gb * GB, remote_io_mbps=io
    )
    alloc = GavelPolicy().schedule(
        jobs, total, ScheduleContext(estimator=ESTIMATOR)
    )
    used = alloc.total()
    assert used.gpus <= total.gpus * (1 + 1e-6) + 1e-6
    assert used.cache_mb <= total.cache_mb * (1 + 1e-6) + 1e-6
    assert used.remote_io_mbps <= total.remote_io_mbps * (1 + 1e-6) + 1e-6
    # No job exceeds its request or its compute bound.
    for j in jobs:
        assert alloc.gpus_of(j.job_id) <= j.num_gpus + 1e-9
        assert (
            throughputs(alloc, jobs)[j.job_id]
            <= j.ideal_throughput_mbps + 1e-6
        )


@given(specs=job_sets)
@settings(max_examples=30, deadline=None)
def test_solver_is_deterministic(specs):
    """Same inputs produce the identical allocation (no hidden state)."""
    jobs = build(specs)
    total = ResourceVector(gpus=16, cache_mb=100 * GB, remote_io_mbps=50.0)
    ctx = ScheduleContext(estimator=ESTIMATOR)
    first = throughputs(GavelPolicy().schedule(jobs, total, ctx), jobs)
    second = throughputs(GavelPolicy().schedule(jobs, total, ctx), jobs)
    for job_id, value in first.items():
        assert second[job_id] == value


@given(
    f_star=st.floats(min_value=5.0, max_value=300.0),
    d_gb=st.floats(min_value=10.0, max_value=400.0),
)
@settings(max_examples=30, deadline=None)
def test_weighted_fairness_orders_identical_jobs(f_star, d_gb):
    """Of two identical jobs, the weight-2 one receives at least as much
    throughput, and at most ~2x (its entitlement)."""
    base = dict(
        model="m",
        num_gpus=1,
        ideal_throughput_mbps=f_star,
        total_work_mb=2 * d_gb * GB,
    )
    heavy = Job(
        job_id="heavy", dataset=Dataset("d-h", d_gb * GB), weight=2.0, **base
    )
    light = Job(
        job_id="light", dataset=Dataset("d-l", d_gb * GB), weight=1.0, **base
    )
    # Scarce egress so the weights actually bind.
    total = ResourceVector(
        gpus=2, cache_mb=0.5 * d_gb * GB, remote_io_mbps=f_star
    )
    ctx = ScheduleContext(estimator=ESTIMATOR)
    achieved = throughputs(
        GavelPolicy().schedule([heavy, light], total, ctx), [heavy, light]
    )
    assert achieved["heavy"] >= achieved["light"] - 1e-6
    if achieved["light"] > 1e-6:
        assert achieved["heavy"] <= 2.0 * achieved["light"] * (1 + 1e-3)


@given(specs=job_sets)
@settings(max_examples=30, deadline=None)
def test_single_job_is_never_worse_than_equal_share(specs):
    """The max-min value is at least the equal-division value: ratio >= 1
    is always feasible, so no job lands below its equal share."""
    jobs = build(specs)
    total = ResourceVector(gpus=16, cache_mb=200 * GB, remote_io_mbps=100.0)
    ctx = ScheduleContext(estimator=ESTIMATOR)
    alloc = GavelPolicy().schedule(jobs, total, ctx)
    achieved = throughputs(alloc, jobs)
    from repro.core.policies.gavel import equal_share

    for j in jobs:
        share = equal_share(j, len(jobs), total, ESTIMATOR, True)
        assert achieved[j.job_id] >= share.perf_mbps * (1 - 1e-4)
