"""Algorithm 2: greedy cache allocation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.dataset import Dataset
from repro.cluster.job import Job
from repro.core.policies import greedy


def job(job_id, f_star, dataset):
    return Job(
        job_id=job_id,
        model="m",
        dataset=dataset,
        num_gpus=1,
        ideal_throughput_mbps=f_star,
        total_work_mb=dataset.size_mb,
    )


def test_microbenchmark_allocation_matches_paper():
    """§7.1.1: 2 TB cache -> one ResNet-50 fully cached, the other gets
    the remaining 0.7 TB; EfficientNet and BERT get nothing."""
    tb = 1024.0 * 1024.0
    jobs = [
        job("rn0", 114.0, Dataset("d-rn0", 1.3 * tb)),
        job("rn1", 114.0, Dataset("d-rn1", 1.3 * tb)),
        job("eff0", 69.0, Dataset("d-eff0", 1.3 * tb)),
        job("eff1", 69.0, Dataset("d-eff1", 1.3 * tb)),
        job("bert", 8.0, Dataset("d-bert", 20.9 * tb)),
    ]
    alloc = greedy.greedy_cache_allocation(jobs, 2.0 * tb)
    assert alloc["d-rn0"] == pytest.approx(1.3 * tb)
    assert alloc["d-rn1"] == pytest.approx(0.7 * tb)
    assert "d-eff0" not in alloc
    assert "d-bert" not in alloc


def test_partial_caching_is_allowed():
    # Unlike Quiver, a dataset larger than the remaining space still gets
    # the remainder (Eq 4: partial caching still helps).
    jobs = [job("a", 100.0, Dataset("big", 1000.0))]
    alloc = greedy.greedy_cache_allocation(jobs, 300.0)
    assert alloc["big"] == pytest.approx(300.0)


def test_dataset_sharing_sums_efficiency():
    shared = Dataset("shared", 1000.0)
    solo = Dataset("solo", 1000.0)
    jobs = [
        job("a", 60.0, shared),
        job("b", 60.0, shared),
        job("c", 100.0, solo),
    ]
    # Shared dataset: 120/1000 beats solo's 100/1000.
    rows = greedy.dataset_efficiencies(jobs)
    assert rows[0][0] == "shared"
    alloc = greedy.greedy_cache_allocation(jobs, 1000.0)
    assert alloc == {"shared": 1000.0}


def test_zero_cache():
    jobs = [job("a", 100.0, Dataset("d", 1000.0))]
    assert greedy.greedy_cache_allocation(jobs, 0.0) == {}
    with pytest.raises(ValueError):
        greedy.greedy_cache_allocation(jobs, -1.0)


def test_group_jobs_by_dataset():
    shared = Dataset("s", 10.0)
    groups = greedy.group_jobs_by_dataset(
        [job("a", 1.0, shared), job("b", 1.0, shared)]
    )
    assert set(groups) == {"s"}
    assert len(groups["s"]) == 2


@given(
    f_stars=st.lists(
        st.floats(min_value=1.0, max_value=500.0), min_size=1, max_size=10
    ),
    cache=st.floats(min_value=0.0, max_value=1e7),
)
def test_greedy_never_overcommits_and_is_sorted(f_stars, cache):
    jobs = [
        job(f"j{i}", f, Dataset(f"d{i}", 1000.0 * (i + 1)))
        for i, f in enumerate(f_stars)
    ]
    alloc = greedy.greedy_cache_allocation(jobs, cache)
    assert sum(alloc.values()) <= cache + 1e-6
    for name, grant in alloc.items():
        size = next(j.dataset.size_mb for j in jobs if j.dataset.name == name)
        assert grant <= size + 1e-9
    # Every allocated dataset is at least as efficient as any unallocated
    # one that would have fit.
    effs = dict(
        (name, eff) for name, eff, _size in greedy.dataset_efficiencies(jobs)
    )
    if alloc:
        worst_allocated = min(effs[name] for name in alloc)
        for name, eff in effs.items():
            if name not in alloc:
                assert eff <= worst_allocated + 1e-12
