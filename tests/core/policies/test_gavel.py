"""Gavel max-min fairness (Eq 8-9)."""

import pytest

from repro.cluster.dataset import Dataset
from repro.cluster.job import Job
from repro.core.estimator import SiloDPerfEstimator
from repro.core.policies.base import ScheduleContext
from repro.core.policies.gavel import GavelPolicy, equal_share, fairness_ratio
from repro.core.resources import ResourceVector

TB = 1024.0 * 1024.0
ESTIMATOR = SiloDPerfEstimator()


def job(job_id, f_star=114.0, d_mb=1.36 * TB, gpus=1, work_epochs=3.0):
    return Job(
        job_id=job_id,
        model="m",
        dataset=Dataset(f"d-{job_id}", d_mb),
        num_gpus=gpus,
        ideal_throughput_mbps=f_star,
        total_work_mb=work_epochs * d_mb,
    )


def silod_ctx():
    return ScheduleContext(estimator=ESTIMATOR, storage_aware=True)


def throughput_under(alloc, j):
    return ESTIMATOR.estimate(
        j,
        alloc.gpus_of(j.job_id),
        alloc.cache_of(j.dataset.name),
        alloc.remote_io_of(j.job_id),
    )


class TestEqualShare:
    def test_caps_at_request_and_dataset(self):
        total = ResourceVector(gpus=100, cache_mb=10 * TB, remote_io_mbps=1000)
        j = job("a", d_mb=1000.0, gpus=2)
        share = equal_share(j, 2, total, ESTIMATOR, storage_aware=True)
        assert share.gpus == 2  # capped at the request, not 50
        assert share.cache_mb == 1000.0  # capped at the dataset
        assert share.perf_mbps == pytest.approx(114.0)

    def test_vanilla_ignores_storage(self):
        total = ResourceVector(gpus=2, cache_mb=0.0, remote_io_mbps=1.0)
        j = job("a")
        share = equal_share(j, 1, total, ESTIMATOR, storage_aware=False)
        assert share.perf_mbps == pytest.approx(114.0)  # no IO awareness


class TestVanillaGavel:
    def test_proportional_time_share(self):
        total = ResourceVector(gpus=4, cache_mb=0, remote_io_mbps=0)
        jobs = [job("a", gpus=4), job("b", gpus=4)]
        ctx = ScheduleContext(estimator=ESTIMATOR, storage_aware=False)
        alloc = GavelPolicy().schedule(jobs, total, ctx)
        assert alloc.gpus_of("a") == pytest.approx(2.0)
        assert alloc.gpus_of("b") == pytest.approx(2.0)

    def test_small_jobs_saturate_then_release(self):
        total = ResourceVector(gpus=4, cache_mb=0, remote_io_mbps=0)
        jobs = [job("small", gpus=1), job("big", gpus=8)]
        ctx = ScheduleContext(estimator=ESTIMATOR, storage_aware=False)
        alloc = GavelPolicy().schedule(jobs, total, ctx)
        assert alloc.gpus_of("small") == pytest.approx(1.0)
        assert alloc.gpus_of("big") == pytest.approx(3.0)


class TestFigure4:
    """The paper's motivating max-min example (Figure 4).

    Two 1-GPU ResNet-50 jobs, private 1.36 TB datasets, 1.4 TB cache,
    ~104 MB/s total egress. Optimal max-min splits both resources evenly
    and reaches ~107 MB/s per job — versus Quiver's 114/52 split.
    """

    def test_joint_allocation_lifts_the_minimum_to_107(self):
        total = ResourceVector(
            gpus=2, cache_mb=1.4 * TB, remote_io_mbps=104.0
        )
        jobs = [job("job-0"), job("job-1")]
        alloc = GavelPolicy().schedule(jobs, total, silod_ctx())
        f0 = throughput_under(alloc, jobs[0])
        f1 = throughput_under(alloc, jobs[1])
        # The paper's even split reaches (107, 107); our lexicographic
        # solver reaches the same minimum and may push the other job
        # higher (a Pareto improvement with an identical max-min value).
        assert min(f0, f1) == pytest.approx(107.0, rel=0.03)
        assert max(f0, f1) <= 114.0 + 1e-6
        assert min(f0, f1) > 52.0  # far above Quiver's starved job


class TestJointGavel:
    def test_io_bound_job_is_not_overfed_gpus(self):
        # One job is hopelessly IO-bound; Gavel should not waste GPU
        # share on it beyond what its storage supports.
        total = ResourceVector(gpus=2, cache_mb=0.0, remote_io_mbps=20.0)
        jobs = [job("bound", f_star=114.0), job("light", f_star=10.0)]
        alloc = GavelPolicy().schedule(jobs, total, silod_ctx())
        bound_gpus = alloc.gpus_of("bound")
        # Its achievable throughput is at most ~its IO grant; GPU fraction
        # should track that, not sit at 1.0.
        assert bound_gpus < 1.0
        assert throughput_under(alloc, jobs[1]) > 0

    def test_allocation_within_budget(self):
        total = ResourceVector(gpus=4, cache_mb=1 * TB, remote_io_mbps=100.0)
        jobs = [job(f"j{i}", f_star=50.0 + 20 * i) for i in range(4)]
        alloc = GavelPolicy().schedule(jobs, total, silod_ctx())
        used = alloc.total()
        assert used.gpus <= total.gpus + 1e-6
        assert used.cache_mb <= total.cache_mb + 1e-6
        assert used.remote_io_mbps <= total.remote_io_mbps + 1e-6

    def test_cold_caches_shift_grants_to_io(self):
        total = ResourceVector(gpus=2, cache_mb=4 * TB, remote_io_mbps=104.0)
        jobs = [job("job-0"), job("job-1")]
        ctx = ScheduleContext(
            estimator=ESTIMATOR,
            storage_aware=True,
            effective_cache_mb=lambda j: 0.0,
        )
        alloc = GavelPolicy().schedule(jobs, total, ctx)
        # With nothing effective yet, hits are impossible: IO grants must
        # carry the full targets.
        io_total = sum(alloc.remote_io.values())
        assert io_total == pytest.approx(104.0, rel=0.02)

    def test_single_job_gets_everything_it_can_use(self):
        total = ResourceVector(gpus=8, cache_mb=2 * TB, remote_io_mbps=200.0)
        jobs = [job("only")]
        alloc = GavelPolicy().schedule(jobs, total, silod_ctx())
        assert throughput_under(alloc, jobs[0]) == pytest.approx(114.0)


def test_fairness_ratio_metric():
    total = ResourceVector(gpus=2, cache_mb=2.72 * TB, remote_io_mbps=104.0)
    jobs = [job("job-0"), job("job-1")]
    ratio = fairness_ratio(
        jobs, {"job-0": 107.0, "job-1": 107.0}, total, ESTIMATOR
    )
    assert ratio > 0
    # Starving one job lowers the min ratio.
    starved = fairness_ratio(
        jobs, {"job-0": 114.0, "job-1": 20.0}, total, ESTIMATOR
    )
    assert starved < ratio


def test_empty_job_list():
    alloc = GavelPolicy().schedule(
        [], ResourceVector(gpus=1, cache_mb=1, remote_io_mbps=1), silod_ctx()
    )
    assert alloc.gpus == {}
