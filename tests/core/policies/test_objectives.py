"""Additional Gavel-family objectives (§5.2)."""

import pytest

from repro.cluster.dataset import Dataset
from repro.cluster.job import Job
from repro.core.estimator import SiloDPerfEstimator
from repro.core.policies.base import ScheduleContext
from repro.core.policies.gavel import GavelPolicy
from repro.core.policies.objectives import (
    FinishTimeFairnessPolicy,
    MaxTotalThroughputPolicy,
)
from repro.core.resources import ResourceVector

GB = 1024.0
ESTIMATOR = SiloDPerfEstimator()


def job(job_id, f_star, d_gb, gpus=1):
    return Job(
        job_id=job_id,
        model="m",
        dataset=Dataset(f"d-{job_id}", d_gb * GB),
        num_gpus=gpus,
        ideal_throughput_mbps=f_star,
        total_work_mb=2 * d_gb * GB,
    )


def throughput_under(alloc, j):
    return ESTIMATOR.estimate(
        j,
        alloc.gpus_of(j.job_id),
        alloc.cache_of(j.dataset.name),
        alloc.remote_io_of(j.job_id),
    )


def ctx(storage_aware=True):
    return ScheduleContext(estimator=ESTIMATOR, storage_aware=storage_aware)


class TestMaxTotalThroughput:
    def test_prefers_cache_efficient_jobs_for_io(self):
        # Egress of 50 MB/s. The cached job converts IO at 1:2; the
        # uncached one 1:1 — utilisation wants the cached job fed first.
        total = ResourceVector(gpus=2, cache_mb=50.0 * GB, remote_io_mbps=50.0)
        jobs = [
            job("efficient", f_star=100.0, d_gb=100.0),
            job("bulky", f_star=100.0, d_gb=10_000.0),
        ]
        alloc = MaxTotalThroughputPolicy().schedule(jobs, total, ctx())
        t_eff = throughput_under(alloc, jobs[0])
        t_bulky = throughput_under(alloc, jobs[1])
        assert t_eff > t_bulky
        # The egress budget is respected and fully used.
        assert sum(alloc.remote_io.values()) <= 50.0 + 1e-6

    def test_total_throughput_beats_gavel(self):
        """Utilisation sacrifices fairness for aggregate throughput."""
        total = ResourceVector(gpus=4, cache_mb=50.0 * GB, remote_io_mbps=60.0)
        jobs = [
            job("a", f_star=100.0, d_gb=100.0),
            job("b", f_star=100.0, d_gb=2_000.0),
            job("c", f_star=50.0, d_gb=2_000.0),
        ]
        util = MaxTotalThroughputPolicy().schedule(jobs, total, ctx())
        fair = GavelPolicy().schedule(jobs, total, ctx())
        total_util = sum(throughput_under(util, j) for j in jobs)
        total_fair = sum(throughput_under(fair, j) for j in jobs)
        assert total_util >= total_fair - 1e-6

    def test_vanilla_mode_packs_by_density(self):
        total = ResourceVector(gpus=2, cache_mb=0.0, remote_io_mbps=0.0)
        jobs = [
            job("dense", f_star=200.0, d_gb=100.0, gpus=1),
            job("sparse", f_star=50.0, d_gb=100.0, gpus=2),
        ]
        alloc = MaxTotalThroughputPolicy().schedule(
            jobs, total, ctx(storage_aware=False)
        )
        assert alloc.gpus_of("dense") == 1
        assert alloc.gpus_of("sparse") == 0  # does not fit after dense

    def test_empty(self):
        alloc = MaxTotalThroughputPolicy().schedule(
            [], ResourceVector(gpus=1), ctx()
        )
        assert alloc.gpus == {}


class TestFinishTimeFairness:
    def test_all_jobs_progress(self):
        total = ResourceVector(gpus=2, cache_mb=100.0 * GB, remote_io_mbps=50.0)
        jobs = [
            job("fast-alone", f_star=200.0, d_gb=50.0),
            job("slow-alone", f_star=20.0, d_gb=1_000.0),
        ]
        alloc = FinishTimeFairnessPolicy().schedule(jobs, total, ctx())
        for j in jobs:
            assert throughput_under(alloc, j) > 0

    def test_normaliser_uses_exclusive_performance(self):
        total = ResourceVector(gpus=4, cache_mb=100.0 * GB, remote_io_mbps=50.0)
        jobs = [job("a", f_star=100.0, d_gb=50.0), job("b", f_star=10.0, d_gb=50.0)]
        policy = FinishTimeFairnessPolicy()
        shares = policy._normalisers(jobs, total, ctx())
        # Job a runs at 100 exclusively; its 1/2 slice reference is 50.
        assert shares["a"].perf_mbps == pytest.approx(50.0)
        assert shares["b"].perf_mbps == pytest.approx(5.0)

    def test_budget_respected(self):
        total = ResourceVector(gpus=2, cache_mb=20.0 * GB, remote_io_mbps=40.0)
        jobs = [job(f"j{i}", f_star=80.0, d_gb=100.0) for i in range(3)]
        alloc = FinishTimeFairnessPolicy().schedule(jobs, total, ctx())
        used = alloc.total()
        assert used.gpus <= total.gpus + 1e-6
        assert used.cache_mb <= total.cache_mb + 1e-6
        assert used.remote_io_mbps <= total.remote_io_mbps + 1e-6

    def test_favours_jobs_with_high_exclusive_rates(self):
        """Against plain max-min, finish-time fairness shifts throughput
        toward the job that would run fastest alone."""
        total = ResourceVector(gpus=2, cache_mb=0.0, remote_io_mbps=60.0)
        jobs = [
            job("fast-alone", f_star=200.0, d_gb=1_000.0),
            job("slow-alone", f_star=30.0, d_gb=1_000.0),
        ]
        ftf = FinishTimeFairnessPolicy().schedule(jobs, total, ctx())
        maxmin = GavelPolicy().schedule(jobs, total, ctx())
        assert throughput_under(ftf, jobs[0]) >= throughput_under(
            maxmin, jobs[0]
        )
