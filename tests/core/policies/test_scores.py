"""Every policy publishes per-job scores for the provenance layer."""

import pytest

from repro.cluster.dataset import Dataset
from repro.cluster.job import Job
from repro.core.resources import ResourceVector
from repro.core.silod import SiloDScheduler
from repro.sim.runner import make_policy

TOTAL = ResourceVector(gpus=8, cache_mb=4000.0, remote_io_mbps=200.0)

POLICY_NAMES = (
    "fifo",
    "sjf",
    "las",
    "gavel",
    "max-throughput",
    "finish-time-fairness",
)


def _job(job_id, gpus=1, f_star=100.0):
    return Job(
        job_id=job_id,
        model="m",
        dataset=Dataset(f"d-{job_id}", 1000.0),
        num_gpus=gpus,
        ideal_throughput_mbps=f_star,
        total_work_mb=2000.0,
        regular=True,
    )


@pytest.mark.parametrize("name", POLICY_NAMES)
def test_policy_scores_cover_every_scheduled_job(name):
    scheduler = SiloDScheduler(make_policy(name))
    jobs = [_job("a"), _job("b", gpus=2), _job("c", f_star=50.0)]
    scheduler.schedule(jobs, TOTAL)
    assert set(scheduler.last_scores) >= {"a", "b", "c"}
    assert all(
        isinstance(v, float) for v in scheduler.last_scores.values()
    )


def test_fifo_scores_are_submission_ranks():
    scheduler = SiloDScheduler(make_policy("fifo"))
    scheduler.schedule([_job("a"), _job("b"), _job("c")], TOTAL)
    scores = scheduler.last_scores
    assert scores["a"] < scores["b"] < scores["c"]


def test_scores_reset_per_schedule_call():
    scheduler = SiloDScheduler(make_policy("fifo"))
    scheduler.schedule([_job("a")], TOTAL)
    scheduler.schedule([_job("b")], TOTAL)
    assert "a" not in scheduler.last_scores
    assert "b" in scheduler.last_scores
