"""Least-attained-service policy (Tiresias)."""

import pytest

from repro.cluster.dataset import Dataset
from repro.cluster.hardware import Cluster
from repro.cluster.job import Job
from repro.core.policies.base import ScheduleContext
from repro.core.policies.las import LasPolicy
from repro.core.resources import ResourceVector
from repro.core.silod import SiloDScheduler
from repro.sim.fluid import FluidSimulator
from repro.cache.silod_cache import SiloDDataManager

GB = 1024.0
TOTAL = ResourceVector(gpus=2, cache_mb=100.0 * GB, remote_io_mbps=100.0)


def job(job_id, submit=0.0, gpus=1):
    return Job(
        job_id=job_id,
        model="m",
        dataset=Dataset(f"d-{job_id}", 20.0 * GB),
        num_gpus=gpus,
        ideal_throughput_mbps=80.0,
        total_work_mb=2 * 20.0 * GB,
        submit_time_s=submit,
    )


def ctx_with_service(service):
    return ScheduleContext(
        attained_service_s=lambda j: service.get(j.job_id, 0.0)
    )


def test_least_attained_runs_first():
    policy = LasPolicy()
    jobs = [job("veteran"), job("newcomer", submit=10.0)]
    ctx = ctx_with_service({"veteran": 5_000.0, "newcomer": 0.0})
    ordered = policy.order(jobs, ctx)
    assert [j.job_id for j in ordered] == ["newcomer", "veteran"]


def test_without_service_info_falls_back_to_arrival():
    policy = LasPolicy()
    jobs = [job("late", submit=10.0), job("early", submit=1.0)]
    ordered = policy.order(jobs, ScheduleContext())
    assert [j.job_id for j in ordered] == ["early", "late"]


def test_two_queue_discretisation():
    policy = LasPolicy(queue_threshold_s=1_000.0)
    jobs = [job("short-served"), job("long-served")]
    ctx = ctx_with_service(
        {"short-served": 500.0, "long-served": 50_000.0}
    )
    ordered = policy.order(jobs, ctx)
    assert ordered[0].job_id == "short-served"
    # Within the high-priority queue, less service still wins.
    jobs = [job("a"), job("b")]
    ctx = ctx_with_service({"a": 900.0, "b": 100.0})
    assert [j.job_id for j in policy.order(jobs, ctx)] == ["b", "a"]


def test_threshold_validation():
    with pytest.raises(ValueError):
        LasPolicy(queue_threshold_s=0.0)


def test_schedule_attaches_storage():
    policy = LasPolicy()
    jobs = [job("a"), job("b")]
    alloc = policy.schedule(jobs, TOTAL, ScheduleContext())
    assert alloc.gpus_of("a") == 1
    assert sum(alloc.cache.values()) > 0


def test_las_end_to_end_preempts_veterans():
    """On a 1-GPU cluster LAS time-slices: the late-arriving job is not
    stuck behind the early one (unlike FIFO)."""
    cluster = Cluster.build(1, 1, 100.0 * GB, 200.0)
    early = job("early")
    late = job("late", submit=60.0)
    scheduler = SiloDScheduler(LasPolicy())
    result = FluidSimulator(
        cluster,
        scheduler,
        SiloDDataManager(),
        [early, late],
        reschedule_interval_s=120.0,
    ).run()
    by_id = {r.job_id: r for r in result.finished_records()}
    assert len(by_id) == 2
    # Under FIFO, 'late' would wait the whole 'early' runtime (~512 s of
    # work); under LAS its JCT reflects interleaved service instead.
    ideal_each = 2 * 20.0 * GB / 80.0
    assert by_id["late"].jct_s < 2.2 * ideal_each
