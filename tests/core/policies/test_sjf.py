"""Multi-resource SJF (Eq 6-7)."""

import pytest

from repro.cluster.dataset import Dataset
from repro.cluster.job import Job
from repro.core.estimator import SiloDPerfEstimator
from repro.core.policies.base import ScheduleContext
from repro.core.policies.sjf import SjfPolicy, candidate_allocations, sjf_score
from repro.core.resources import ResourceVector

TB = 1024.0 * 1024.0
TOTAL = ResourceVector(gpus=8, cache_mb=2 * TB, remote_io_mbps=200.0)
ESTIMATOR = SiloDPerfEstimator()


def job(job_id, f_star=114.0, d_mb=1.3 * TB, work_epochs=2.0, gpus=1):
    return Job(
        job_id=job_id,
        model="m",
        dataset=Dataset(f"d-{job_id}", d_mb),
        num_gpus=gpus,
        ideal_throughput_mbps=f_star,
        total_work_mb=work_epochs * d_mb,
    )


def test_vanilla_score_is_weighted_work():
    j = job("a", f_star=100.0, d_mb=1000.0, work_epochs=3.0)
    score = sjf_score(j, TOTAL, ESTIMATOR, storage_aware=False)
    # (1 gpu / 8 gpus) * 3000 MB / 100 MB/s
    assert score == pytest.approx((1 / 8) * 30.0)


def test_shorter_jobs_score_lower():
    short = job("short", work_epochs=1.0)
    long = job("long", work_epochs=10.0)
    assert sjf_score(short, TOTAL, ESTIMATOR, False) < sjf_score(
        long, TOTAL, ESTIMATOR, False
    )


def test_eq7_prefers_smaller_dataset_among_equals():
    """The paper's example: two ResNet-50s with the same steps; the
    ImageNet-1k one consumes less cache, so it scores lower (runs first)."""
    work = 1.3 * TB  # identical total work for both
    small = Job(
        job_id="in1k",
        model="resnet50",
        dataset=Dataset("imagenet-1k", 143.0 * 1024),
        num_gpus=1,
        ideal_throughput_mbps=114.0,
        total_work_mb=work,
    )
    big = Job(
        job_id="in22k",
        model="resnet50",
        dataset=Dataset("imagenet-22k", 1.3 * TB),
        num_gpus=1,
        ideal_throughput_mbps=114.0,
        total_work_mb=work,
    )
    assert sjf_score(small, TOTAL, ESTIMATOR, True) < sjf_score(
        big, TOTAL, ESTIMATOR, True
    )


def test_candidate_allocations_run_at_f_star():
    j = job("a")
    for resources in candidate_allocations(j, TOTAL):
        assert ESTIMATOR.estimate_vector(j, resources) == pytest.approx(
            j.ideal_throughput_mbps
        )


def test_candidates_are_cache_endpoints():
    j = job("a", d_mb=1000.0)
    no_cache, full_cache = candidate_allocations(j, TOTAL)
    assert no_cache.cache_mb == 0.0
    assert full_cache.cache_mb == pytest.approx(1000.0)


def test_schedule_preempts_by_score():
    policy = SjfPolicy()
    jobs = [job(f"long{i}", work_epochs=20.0, gpus=4) for i in range(2)]
    jobs.append(job("short", work_epochs=0.5, gpus=4))
    alloc = policy.schedule(jobs, TOTAL, ScheduleContext())
    # Only 8 GPUs: the short job plus one long job run.
    assert alloc.gpus_of("short") == 4
    running = [j for j in jobs if alloc.gpus_of(j.job_id) > 0]
    assert len(running) == 2


def test_io_priority_order_protects_short_jobs():
    policy = SjfPolicy()
    # Two jobs, combined demand over the 200 MB/s egress.
    jobs = [
        job("short", f_star=150.0, work_epochs=0.5),
        job("long", f_star=150.0, work_epochs=20.0),
    ]
    ctx = ScheduleContext(effective_cache_mb=lambda j: 0.0)
    alloc = policy.schedule(jobs, TOTAL, ctx)
    assert alloc.remote_io_of("short") == pytest.approx(150.0)
    assert alloc.remote_io_of("long") == pytest.approx(50.0)


def test_irregular_jobs_score_with_original_estimator():
    j = job("a")
    j_irr = Job(
        job_id="irr",
        model="m",
        dataset=j.dataset,
        num_gpus=1,
        ideal_throughput_mbps=114.0,
        total_work_mb=j.total_work_mb,
        regular=False,
    )
    assert sjf_score(j_irr, TOTAL, ESTIMATOR, True) == pytest.approx(
        sjf_score(j_irr, TOTAL, ESTIMATOR, False)
    )
