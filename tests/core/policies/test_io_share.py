"""Remote-IO division primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.policies import io_share

demand_dicts = st.dictionaries(
    st.text(min_size=1, max_size=4),
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
    min_size=0,
    max_size=12,
)


def test_waterfill_satisfies_all_when_capacity_suffices():
    grants = io_share.max_min_waterfill({"a": 10, "b": 20}, 100)
    assert grants == {"a": 10, "b": 20}


def test_waterfill_equalises_when_scarce():
    grants = io_share.max_min_waterfill({"a": 100, "b": 100, "c": 100}, 90)
    assert grants["a"] == pytest.approx(30)
    assert grants["b"] == pytest.approx(30)
    assert grants["c"] == pytest.approx(30)


def test_waterfill_small_demands_fully_served_first():
    # The paper's micro-benchmark pattern: BERT's 8 MB/s is served in
    # full, the rest split what remains.
    demands = {"bert": 8, "rn1": 114, "rn2": 114, "eff1": 69, "eff2": 69}
    grants = io_share.max_min_waterfill(demands, 200)
    assert grants["bert"] == pytest.approx(8)
    assert grants["rn1"] == pytest.approx(48)
    assert grants["eff1"] == pytest.approx(48)


def test_priority_fill_respects_order():
    grants = io_share.priority_fill(
        ["first", "second", "third"],
        {"first": 80, "second": 80, "third": 80},
        100,
    )
    assert grants["first"] == 80
    assert grants["second"] == 20
    assert grants["third"] == 0


def test_equal_split():
    assert io_share.equal_split(["a", "b"], 100) == {"a": 50, "b": 50}
    assert io_share.equal_split([], 100) == {}


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        io_share.max_min_waterfill({"a": 1}, -1)
    with pytest.raises(ValueError):
        io_share.priority_fill(["a"], {"a": 1}, -1)


@given(demands=demand_dicts, capacity=st.floats(min_value=0, max_value=1e5))
def test_waterfill_invariants(demands, capacity):
    """Never over-grant, never exceed demand, work-conserving."""
    grants = io_share.max_min_waterfill(demands, capacity)
    assert set(grants) == set(demands)
    total = sum(grants.values())
    assert total <= capacity + 1e-6
    for job_id, grant in grants.items():
        assert 0 <= grant <= demands[job_id] + 1e-9
    # Work-conserving: leftover capacity implies every demand was met.
    if total < capacity - 1e-6:
        for job_id in demands:
            assert grants[job_id] == pytest.approx(demands[job_id])


@given(demands=demand_dicts, capacity=st.floats(min_value=0, max_value=1e5))
def test_waterfill_is_max_min_fair(demands, capacity):
    """No job can gain without a smaller-granted job losing."""
    grants = io_share.max_min_waterfill(demands, capacity)
    unsatisfied = [
        j for j in demands if grants[j] < demands[j] - 1e-6
    ]
    if not unsatisfied:
        return
    # All unsatisfied jobs receive (nearly) the same grant, which is the
    # maximum grant among them (the waterline).
    values = [grants[j] for j in unsatisfied]
    assert max(values) - min(values) <= 1e-6 * max(1.0, max(values))
