"""Heterogeneous Eq. 4: calibration, collapse, and backend identity.

The tentpole property is **collapse**: on a single-generation fleet the
heterogeneity-aware machinery must be *bit-identical* to the
homogeneous path. The speedup table guarantees it structurally — it is
renormalised so the reference generation's factor is exactly ``1.0``,
and ``x * 1.0 == x`` in IEEE-754 — and these tests pin the guarantee
with hypothesis, under the vectorized and the pure-Python
(``REPRO_NO_NUMPY=1``) backends alike.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.dataset import Dataset
from repro.cluster.hardware import GPU_GENERATIONS, RESNET50_TABLE2
from repro.cluster.job import Job
from repro.core import perf_model
from repro.core.estimator import (
    HetSiloDPerfEstimator,
    SiloDPerfEstimator,
)
from repro.perf.backend import (
    BACKEND_FALLBACK,
    BACKEND_VECTORIZED,
    using_backend,
)

GENERATIONS = sorted(GPU_GENERATIONS)

finite_rates = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)
positive_sizes = st.floats(
    min_value=1e-6, max_value=1e9, allow_nan=False, allow_infinity=False
)


# ----------------------------------------------------------------------
# Speedup-table calibration.
# ----------------------------------------------------------------------


def test_reference_factor_is_exactly_one_for_every_reference():
    for reference in GENERATIONS:
        table = perf_model.default_speedup_table(reference=reference)
        assert table[reference] == 1.0  # bit-exact, not approx

def test_a100_factor_is_the_measured_table2_anchor():
    table = perf_model.default_speedup_table(reference="V100")
    speeds = {
        p.gpu_setup: p.images_per_second for p in RESNET50_TABLE2
    }
    measured = speeds["1xA100"] / speeds["1xV100"]
    assert table["A100"] == pytest.approx(measured)
    assert table["A100"] == pytest.approx(2930.0 / 1003.0)


def test_speedups_are_monotone_in_release_year():
    table = perf_model.default_speedup_table(reference="V100")
    ordered = sorted(
        GENERATIONS, key=lambda g: GPU_GENERATIONS[g].release_year
    )
    factors = [table[g] for g in ordered]
    assert factors == sorted(factors)
    assert table["K80"] < 1.0 < table["A100"] < table["H100"]


def test_h100_factor_uses_dense_not_sparsity_tflops():
    # 510 TFLOPS is the with-sparsity marketing figure; the runtime
    # speedup must scale from the dense 67 TFLOPS instead.
    table = perf_model.default_speedup_table(reference="V100")
    a100 = 2930.0 / 1003.0
    assert table["H100"] == pytest.approx(a100 * 67.0 / 19.5)
    assert table["H100"] < 12.0  # the sparsity figure would give ~76x


def test_het_f_star_rejects_unknown_generation():
    with pytest.raises(ValueError):
        perf_model.het_f_star(100.0, "TPUv4")


# ----------------------------------------------------------------------
# Collapse: single-generation fleet == homogeneous, bit for bit.
# ----------------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(
    ideal=finite_rates,
    remote_io=finite_rates,
    cache=finite_rates,
    dataset=positive_sizes,
    reference=st.sampled_from(GENERATIONS),
)
def test_het_eq4_collapses_bit_identically(
    ideal, remote_io, cache, dataset, reference
):
    """het_silod_perf on the reference generation IS silod_perf."""
    homogeneous = perf_model.silod_perf(ideal, remote_io, cache, dataset)
    het = perf_model.het_silod_perf(
        ideal,
        remote_io,
        cache,
        dataset,
        generation=reference,
        reference=reference,
    )
    assert math.isnan(het) if math.isnan(homogeneous) else het == homogeneous
    assert perf_model.het_f_star(
        ideal, reference, reference=reference
    ) == ideal


@settings(max_examples=50, deadline=None)
@given(
    ideal=st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
    gpus=st.floats(min_value=0.0, max_value=64.0, allow_nan=False),
    reference=st.sampled_from(GENERATIONS),
    backend=st.sampled_from([BACKEND_VECTORIZED, BACKEND_FALLBACK]),
)
def test_het_estimator_collapses_on_single_generation(
    ideal, gpus, reference, backend
):
    """Het estimator with every job on the reference == base estimator,
    under both backends (the REPRO_NO_NUMPY=1 contract)."""
    job = Job(
        job_id="j",
        model="resnet50",
        dataset=Dataset(name="d", size_mb=1024.0, num_items=1000),
        num_gpus=4,
        ideal_throughput_mbps=ideal,
        total_work_mb=2048.0,
    )
    with using_backend(backend):
        base = SiloDPerfEstimator()
        het = HetSiloDPerfEstimator(
            speedups=perf_model.default_speedup_table(
                reference=reference
            ),
            default_generation=reference,
        )
        # Unassigned -> default generation -> factor exactly 1.0.
        assert het.compute_bound(job, gpus) == base.compute_bound(
            job, gpus
        )
        assert het.compute_bound_batch([job], [gpus]) == [
            base.compute_bound(job, gpus)
        ]
        # Explicit assignment to the reference is the same collapse.
        het.assignments[job.job_id] = reference
        assert het.compute_bound(job, gpus) == base.compute_bound(
            job, gpus
        )


@settings(max_examples=50, deadline=None)
@given(
    ideal=st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
    gpus=st.floats(min_value=0.0, max_value=64.0, allow_nan=False),
    generation=st.sampled_from(GENERATIONS),
)
def test_het_estimator_is_backend_identical_off_reference(
    ideal, gpus, generation
):
    """Generation-scaled f* is bit-identical across backends even when
    the factor is not 1.0 (the scalar loop is forced either way)."""
    job = Job(
        job_id="j",
        model="resnet50",
        dataset=Dataset(name="d", size_mb=1024.0, num_items=1000),
        num_gpus=4,
        ideal_throughput_mbps=ideal,
        total_work_mb=2048.0,
    )
    results = {}
    for backend in (BACKEND_VECTORIZED, BACKEND_FALLBACK):
        with using_backend(backend):
            het = HetSiloDPerfEstimator(
                speedups=perf_model.default_speedup_table()
            )
            het.assignments[job.job_id] = generation
            results[backend] = (
                het.compute_bound(job, gpus),
                het.compute_bound_batch([job, job], [gpus, gpus]),
                het.f_star_by_generation(job),
            )
    vec = results[BACKEND_VECTORIZED]
    fb = results[BACKEND_FALLBACK]
    assert [x.hex() for x in _flatten(vec)] == [
        x.hex() for x in _flatten(fb)
    ]


def _flatten(value):
    if isinstance(value, dict):
        out = []
        for key in sorted(value):
            out.extend(_flatten(value[key]))
        return out
    if isinstance(value, (list, tuple)):
        out = []
        for item in value:
            out.extend(_flatten(item))
        return out
    return [float(value)]


def test_f_star_by_generation_orders_slowest_first():
    het = HetSiloDPerfEstimator(
        speedups=perf_model.default_speedup_table()
    )
    job = Job(
        job_id="j",
        model="resnet50",
        dataset=Dataset(name="d", size_mb=1024.0, num_items=1000),
        num_gpus=1,
        ideal_throughput_mbps=100.0,
        total_work_mb=1024.0,
    )
    by_gen = het.f_star_by_generation(job)
    values = list(by_gen.values())
    assert values == sorted(values)
    assert by_gen["V100"] == 100.0
    assert set(by_gen) == set(GENERATIONS)
