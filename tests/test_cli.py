"""The command-line interface."""

import pytest

from repro.cli import main
from repro.workloads.trace_io import load_trace


def test_estimate_command(capsys):
    code = main([
        "estimate", "--f-star", "114", "--dataset-gb", "1392.64",
        "--cache-gb", "696.32", "--io-mbps", "52",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "SiloDPerf" in out
    assert "104" in out  # 52 / 0.5 = 104 MB/s


def test_trace_and_run_commands(tmp_path, capsys):
    trace_path = tmp_path / "t.jsonl"
    code = main([
        "trace", str(trace_path), "--jobs", "6", "--seed", "3",
        "--gpus", "8", "--duration-median-min", "30",
    ])
    assert code == 0
    jobs = load_trace(trace_path)
    assert len(jobs) == 6

    code = main([
        "run", str(trace_path), "--policy", "fifo", "--cache", "silod",
        "--gpus", "8", "--gpus-per-server", "4", "--egress-gbps", "1.6",
        "--cache-per-gpu-gb", "64",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "average JCT" in out
    assert "6/6" in out


def test_matrix_command(tmp_path, capsys):
    trace_path = tmp_path / "t.jsonl"
    main(["trace", str(trace_path), "--jobs", "4", "--seed", "4",
          "--gpus", "8", "--duration-median-min", "20"])
    code = main([
        "matrix", str(trace_path), "--policies", "fifo",
        "--caches", "silod", "coordl",
        "--gpus", "8", "--gpus-per-server", "4", "--egress-gbps", "1.6",
        "--cache-per-gpu-gb", "64",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "coordl" in out and "silod" in out


def test_unknown_command_fails():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
