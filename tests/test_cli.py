"""The command-line interface."""

import pytest

from repro.cli import main
from repro.workloads.trace_io import load_trace


def test_estimate_command(capsys):
    code = main([
        "estimate", "--f-star", "114", "--dataset-gb", "1392.64",
        "--cache-gb", "696.32", "--io-mbps", "52",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "SiloDPerf" in out
    assert "104" in out  # 52 / 0.5 = 104 MB/s


def test_trace_and_run_commands(tmp_path, capsys):
    trace_path = tmp_path / "t.jsonl"
    code = main([
        "trace", str(trace_path), "--jobs", "6", "--seed", "3",
        "--gpus", "8", "--duration-median-min", "30",
    ])
    assert code == 0
    jobs = load_trace(trace_path)
    assert len(jobs) == 6

    code = main([
        "run", str(trace_path), "--policy", "fifo", "--cache", "silod",
        "--gpus", "8", "--gpus-per-server", "4", "--egress-gbps", "1.6",
        "--cache-per-gpu-gb", "64",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "average JCT" in out
    assert "6/6" in out


def test_matrix_command(tmp_path, capsys):
    trace_path = tmp_path / "t.jsonl"
    main(["trace", str(trace_path), "--jobs", "4", "--seed", "4",
          "--gpus", "8", "--duration-median-min", "20"])
    code = main([
        "matrix", str(trace_path), "--policies", "fifo",
        "--caches", "silod", "coordl",
        "--gpus", "8", "--gpus-per-server", "4", "--egress-gbps", "1.6",
        "--cache-per-gpu-gb", "64",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "coordl" in out and "silod" in out


def test_unknown_command_fails():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_run_emits_event_log_and_report_reads_it(tmp_path, capsys):
    trace_path = tmp_path / "t.jsonl"
    events_path = tmp_path / "ev.jsonl"
    main(["trace", str(trace_path), "--jobs", "5", "--seed", "11",
          "--gpus", "8", "--duration-median-min", "20"])
    code = main([
        "run", str(trace_path), "--gpus", "8", "--egress-gbps", "1.6",
        "--cache-per-gpu-gb", "64", "--reschedule-s", "600",
        "--events", str(events_path),
    ])
    assert code == 0
    capsys.readouterr()

    code = main(["report", str(events_path), "--bins", "6"])
    assert code == 0
    out = capsys.readouterr().out
    for section in (
        "run summary",
        "job lifecycle",
        "throughput timeline",
        "scheduler decision audit",
        "cache activity",
    ):
        assert section in out
    # Every trace job shows up in the lifecycle table.
    assert out.count("job-0000") >= 5


def test_run_writes_valid_chrome_trace(tmp_path, capsys):
    import json

    trace_path = tmp_path / "t.jsonl"
    chrome_path = tmp_path / "ct.json"
    main(["trace", str(trace_path), "--jobs", "3", "--seed", "5",
          "--gpus", "8", "--duration-median-min", "20"])
    code = main([
        "run", str(trace_path), "--gpus", "8", "--egress-gbps", "1.6",
        "--cache-per-gpu-gb", "64", "--chrome-trace", str(chrome_path),
    ])
    assert code == 0
    capsys.readouterr()
    doc = json.loads(chrome_path.read_text())
    assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
    assert {e["ph"] for e in doc["traceEvents"]} <= {"b", "e", "i", "C", "M"}


def test_run_minibatch_simulator(tmp_path, capsys):
    trace_path = tmp_path / "t.jsonl"
    main(["trace", str(trace_path), "--jobs", "3", "--seed", "5",
          "--gpus", "8", "--duration-median-min", "10"])
    code = main([
        "run", str(trace_path), "--simulator", "minibatch",
        "--gpus", "8", "--egress-gbps", "1.6", "--cache-per-gpu-gb", "64",
    ])
    assert code == 0
    assert "3/3" in capsys.readouterr().out


def test_run_with_fault_schedule_and_fault_timeline_report(
    tmp_path, capsys
):
    import json

    trace_path = tmp_path / "t.jsonl"
    faults_path = tmp_path / "faults.json"
    events_path = tmp_path / "ev.jsonl"
    main(["trace", str(trace_path), "--jobs", "4", "--seed", "9",
          "--gpus", "8", "--duration-median-min", "20"])
    faults_path.write_text(json.dumps({
        "faults": [
            {"time_s": 600.0, "kind": "server_crash", "magnitude": 1},
            {"time_s": 3600.0, "kind": "server_recover", "magnitude": 1},
        ],
    }))
    code = main([
        "run", str(trace_path), "--gpus", "8", "--gpus-per-server", "4",
        "--egress-gbps", "1.6", "--cache-per-gpu-gb", "64",
        "--faults", str(faults_path), "--events", str(events_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "fault schedule: 2 events" in out

    code = main(["report", str(events_path), "--bins", "4"])
    assert code == 0
    out = capsys.readouterr().out
    assert "fault timeline" in out
    assert "server_crash" in out


def test_run_with_churn_seed(tmp_path, capsys):
    trace_path = tmp_path / "t.jsonl"
    main(["trace", str(trace_path), "--jobs", "3", "--seed", "5",
          "--gpus", "8", "--duration-median-min", "10"])
    code = main([
        "run", str(trace_path), "--gpus", "8", "--egress-gbps", "1.6",
        "--cache-per-gpu-gb", "64", "--churn-seed", "7",
        "--churn-hours", "48",
    ])
    assert code == 0
    assert "fault schedule:" in capsys.readouterr().out


def test_faults_and_churn_seed_are_mutually_exclusive(tmp_path):
    trace_path = tmp_path / "t.jsonl"
    main(["trace", str(trace_path), "--jobs", "3", "--seed", "5",
          "--gpus", "8", "--duration-median-min", "10"])
    with pytest.raises(SystemExit):
        main([
            "run", str(trace_path), "--gpus", "8",
            "--faults", "whatever.json", "--churn-seed", "7",
        ])


def test_report_rejects_non_event_files(tmp_path):
    bogus = tmp_path / "bogus.jsonl"
    bogus.write_text('{"kind": "not-events"}\n')
    with pytest.raises(ValueError):
        main(["report", str(bogus)])


def _run_with_deadline(tmp_path):
    """A tiny CLI run whose first job carries an impossible deadline."""
    import json

    trace_path = tmp_path / "t.jsonl"
    events_path = tmp_path / "ev.jsonl"
    main(["trace", str(trace_path), "--jobs", "4", "--seed", "11",
          "--gpus", "8", "--duration-median-min", "20"])
    lines = trace_path.read_text().splitlines()
    doomed = json.loads(lines[0])
    doomed["deadline_s"] = 1.0
    lines[0] = json.dumps(doomed)
    trace_path.write_text("\n".join(lines) + "\n")
    code = main([
        "run", str(trace_path), "--gpus", "8", "--egress-gbps", "1.6",
        "--cache-per-gpu-gb", "64", "--events", str(events_path),
    ])
    assert code == 0
    return doomed["job_id"], events_path


def test_explain_command_reconstructs_a_job(tmp_path, capsys):
    job_id, events_path = _run_with_deadline(tmp_path)
    capsys.readouterr()
    code = main(["explain", str(events_path), job_id])
    assert code == 0
    out = capsys.readouterr().out
    assert out.startswith(f"job {job_id}:")
    assert "Eq.4" in out and "round " in out
    assert "deadline 1s" in out


def test_explain_unknown_job_lists_known_ids(tmp_path, capsys):
    _, events_path = _run_with_deadline(tmp_path)
    capsys.readouterr()
    code = main(["explain", str(events_path), "job-9999"])
    assert code == 1
    captured = capsys.readouterr()
    assert "no decision records" in captured.out
    assert "job-0000" in captured.err


def test_report_slo_section(tmp_path, capsys):
    _, events_path = _run_with_deadline(tmp_path)
    capsys.readouterr()
    code = main(["report", str(events_path), "--slo", "--bins", "4"])
    assert code == 0
    out = capsys.readouterr().out
    assert "SLO attainment: 0/1 (0.0%) met, 1 violated" in out


def test_report_without_slo_flag_omits_the_section(tmp_path, capsys):
    _, events_path = _run_with_deadline(tmp_path)
    capsys.readouterr()
    assert main(["report", str(events_path), "--bins", "4"]) == 0
    assert "SLO attainment" not in capsys.readouterr().out
