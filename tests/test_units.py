"""Unit-conversion helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


def test_gb_tb_roundtrip():
    assert units.gb(1.0) == 1024.0
    assert units.tb(1.0) == 1024.0 * 1024.0
    assert units.mb_to_gb(units.gb(143.0)) == pytest.approx(143.0)
    assert units.mb_to_tb(units.tb(20.9)) == pytest.approx(20.9)


def test_gbps_matches_paper_conversion():
    # The paper scales 1.6 Gbps to 200 MB/s (Table 5 / §7.1.1).
    assert units.gbps(1.6) == pytest.approx(200.0)
    # And the 400-GPU simulation's 32 Gbps to 4 GB/s.
    assert units.gbps(32.0) == pytest.approx(4000.0, rel=1e-9)


def test_time_helpers():
    assert units.minutes(1) == 60.0
    assert units.hours(2) == 7200.0
    assert units.days(1) == 86400.0
    assert units.weeks(4) == 4 * 7 * 86400.0
    assert units.seconds_to_minutes(units.minutes(42)) == pytest.approx(42.0)


@given(st.floats(min_value=0.0, max_value=1e12, allow_nan=False))
def test_gbps_roundtrip(value):
    assert units.mbps_to_gbps(units.gbps(value)) == pytest.approx(value)


@given(st.floats(min_value=0.0, max_value=1e12, allow_nan=False))
def test_size_roundtrip(value):
    assert units.mb_to_gb(units.gb(value)) == pytest.approx(value)
    assert units.mb_to_tb(units.tb(value)) == pytest.approx(value)
