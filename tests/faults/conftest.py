"""Shared fixtures for the fault-injection suite.

A small deterministic scenario both simulators can run quickly: two
jobs on a 2-server cluster with enough GPUs for both, a warm cache by
mid-run, and a remote-IO limit tight enough that losing cached bytes
hurts.
"""

from __future__ import annotations

from repro import units
from repro.cluster.dataset import Dataset
from repro.cluster.hardware import Cluster
from repro.workloads.models import make_job


def small_cluster(servers: int = 2) -> Cluster:
    return Cluster.build(
        num_servers=servers,
        gpus_per_server=4,
        cache_per_server_mb=units.gb(25),
        remote_io_mbps=units.gbps(1.6),
    )


def two_job_trace():
    ds_a = Dataset(name="d-a", size_mb=units.gb(20))
    ds_b = Dataset(name="d-b", size_mb=units.gb(30))
    return [
        make_job(
            "job-a", "resnet50", ds_a, num_gpus=2, num_epochs=3,
            submit_time_s=0.0,
        ),
        make_job(
            "job-b", "alexnet", ds_b, num_gpus=1, num_epochs=2,
            submit_time_s=120.0,
        ),
    ]
