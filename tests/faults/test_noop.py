"""The strict no-op guarantee.

With no fault schedule — omitted, ``None``, an empty list, or an empty
``FaultSchedule`` — both simulators must produce results identical to a
build without the subsystem. ``dataclasses.asdict`` compares every
record, timeline sample, and summary field at full float precision.
"""

import dataclasses
import json

import pytest

from repro.faults import FaultSchedule
from repro.obs import Tracer
from repro.sim.runner import run_experiment

from tests.faults.conftest import small_cluster, two_job_trace

pytestmark = pytest.mark.faults

EMPTY_FORMS = [None, [], (), FaultSchedule(), FaultSchedule([])]


def run(simulator, **kwargs):
    return run_experiment(
        small_cluster(),
        "fifo",
        "silod",
        two_job_trace(),
        simulator=simulator,
        **kwargs,
    )


def snapshot(result):
    # JSON-serialise so NaN fields (fairness before any finish) compare
    # equal; everything else still compares at full float precision.
    return json.dumps(dataclasses.asdict(result), sort_keys=True)


@pytest.mark.parametrize("simulator", ["fluid", "minibatch"])
def test_empty_schedules_are_byte_identical_to_omitted(simulator):
    baseline = snapshot(run(simulator))
    for empty in EMPTY_FORMS:
        assert snapshot(run(simulator, faults=empty)) == baseline


@pytest.mark.parametrize("simulator", ["fluid", "minibatch"])
def test_empty_schedule_emits_no_fault_events(simulator):
    tracer = Tracer()
    run(simulator, faults=FaultSchedule(), tracer=tracer)
    assert not any(
        e.etype.startswith(("fault_", "node_"))
        or e.etype in ("cache_invalidate", "job_preempt", "job_restart")
        for e in tracer.events
    )
    assert tracer.metrics.counter("faults.injected") == 0
