"""Fault schedules driving the fluid simulator, end to end."""

import pytest

from repro.cluster.dataset import Dataset
from repro.cluster.hardware import Cluster
from repro.cluster.job import Job
from repro.faults import FaultEvent, FaultSchedule
from repro.obs import Tracer
from repro.sim.fluid import FluidSimulator
from repro.sim.runner import make_system

pytestmark = pytest.mark.faults

GB = 1024.0


def cluster(servers=4):
    return Cluster.build(servers, 1, 60.0 * GB, 50.0)


def jobs():
    return [
        Job(
            job_id=f"j{i}",
            model="m",
            dataset=Dataset(f"d-{i}", 40.0 * GB),
            num_gpus=1,
            ideal_throughput_mbps=80.0,
            total_work_mb=4 * 40.0 * GB,
        )
        for i in range(2)
    ]


def run(cache="silod", faults=None, tracer=None, servers=4):
    scheduler, cache_system = make_system("fifo", cache)
    kwargs = {"tracer": tracer} if tracer is not None else {}
    return FluidSimulator(
        cluster(servers), scheduler, cache_system, jobs(),
        faults=faults, **kwargs,
    ).run()


def jct_of(result, job_id):
    return next(
        r.jct_s for r in result.finished_records() if r.job_id == job_id
    )


def test_server_crash_degrades_jct_but_run_completes():
    clean = run()
    # Crash 1 of 4 servers after the caches have warmed (~2000 s): a
    # quarter of the resident bytes vanish and one job rolls back.
    crashed = run(
        faults=[FaultEvent(2_000.0, "server_crash", magnitude=1)]
    )
    assert len(crashed.finished_records()) == 2
    assert crashed.average_jct_s() > clean.average_jct_s() * 1.005


def test_crash_triggers_reallocation_in_same_round():
    tracer = Tracer()
    run(
        faults=[FaultEvent(2_000.0, "server_crash", magnitude=1)],
        tracer=tracer,
    )
    down = next(e for e in tracer.events if e.etype == "node_down")
    shrunk_cache_mb = cluster().total_cache_mb * 3 / 4
    decision = next(
        e
        for e in tracer.events
        if e.etype == "sched_decision" and e.ts_s >= down.ts_s
    )
    # Re-allocation happens in the very round the fault lands in, and
    # the allocator already respects the shrunk pool.
    assert decision.ts_s == pytest.approx(down.ts_s)
    assert decision.fields["cache_granted_mb"] <= shrunk_cache_mb + 1e-6


def test_crash_emits_fault_event_sequence():
    tracer = Tracer()
    run(
        faults=[FaultEvent(2_000.0, "server_crash", magnitude=1)],
        tracer=tracer,
    )
    etypes = {e.etype for e in tracer.events}
    assert {"fault_inject", "node_down", "cache_invalidate"} <= etypes
    preempts = [e for e in tracer.events if e.etype == "job_preempt"]
    # 1 GPU lost, each job holds 1 GPU: exactly the first sorted job.
    assert [e.job_id for e in preempts] == ["j0"]
    assert preempts[0].fields["reason"] == "server_crash"
    assert preempts[0].fields["rollback_mb"] >= 0.0
    invalidates = [
        e for e in tracer.events if e.etype == "cache_invalidate"
    ]
    assert all(
        e.fields["cause"] == "server_crash" for e in invalidates
    )
    assert all(e.fields["delta_mb"] > 0.0 for e in invalidates)


def test_explicit_preempt_holds_job_until_restart():
    clean = run()
    tracer = Tracer()
    faulted = run(
        faults=[
            FaultEvent(2_000.0, "job_preempt", target="j0"),
            FaultEvent(6_000.0, "job_restart", target="j0"),
        ],
        tracer=tracer,
    )
    assert len(faulted.finished_records()) == 2
    # j0 sat out 4000 s and lost its partial epoch: strictly worse.
    assert jct_of(faulted, "j0") > jct_of(clean, "j0") + 3_000.0
    etypes = [
        e.etype
        for e in tracer.events
        if e.job_id == "j0" and e.etype in ("job_preempt", "job_restart")
    ]
    assert etypes == ["job_preempt", "job_restart"]


def test_bandwidth_flap_degrades_jct():
    clean = run()
    flapped = run(
        faults=[
            FaultEvent(500.0, "bandwidth", magnitude=0.2),
            FaultEvent(4_000.0, "bandwidth", magnitude=1.0),
        ]
    )
    assert len(flapped.finished_records()) == 2
    assert flapped.average_jct_s() > clean.average_jct_s() * 1.005


def test_crash_then_recover_bounds_the_damage():
    clean = run()
    permanent = run(
        faults=[FaultEvent(2_000.0, "server_crash", magnitude=1)]
    )
    recovered = run(
        faults=[
            FaultEvent(2_000.0, "server_crash", magnitude=1),
            FaultEvent(4_000.0, "server_recover", magnitude=1),
        ]
    )
    assert len(recovered.finished_records()) == 2
    assert recovered.average_jct_s() > clean.average_jct_s() * 1.001
    # Getting the server back cannot be worse than never getting it back.
    assert recovered.average_jct_s() <= permanent.average_jct_s() + 1.0


def test_cache_loss_alone_preempts_nothing():
    tracer = Tracer()
    result = run(
        faults=[FaultEvent(2_000.0, "cache_loss", magnitude=30.0 * GB)],
        tracer=tracer,
    )
    assert len(result.finished_records()) == 2
    assert not any(e.etype == "job_preempt" for e in tracer.events)
    assert any(e.etype == "cache_invalidate" for e in tracer.events)
