"""FaultInjector state machine: capacity math, clamping, victims."""

import pytest

from repro import units
from repro.core.resources import ResourceVector
from repro.faults import FaultEvent, FaultInjector, FaultSchedule
from repro.obs.tracer import Tracer

from tests.faults.conftest import small_cluster

pytestmark = pytest.mark.faults


def make_injector(events, servers=4, tracer=None):
    cluster = small_cluster(servers=servers)
    kwargs = {"tracer": tracer} if tracer is not None else {}
    return (
        FaultInjector(FaultSchedule(events), cluster, **kwargs),
        cluster,
    )


def base_vector(cluster) -> ResourceVector:
    return ResourceVector(
        gpus=float(cluster.total_gpus),
        cache_mb=cluster.total_cache_mb,
        remote_io_mbps=cluster.remote_io_mbps,
    )


def test_pop_due_and_next_time():
    injector, _ = make_injector(
        [
            FaultEvent(10.0, "server_crash"),
            FaultEvent(10.0, "bandwidth", magnitude=0.5),
            FaultEvent(20.0, "server_recover"),
        ]
    )
    assert injector.next_time() == 10.0
    assert injector.pop_due(5.0) == []
    due = injector.pop_due(10.0)
    assert [e.kind for e in due] == ["server_crash", "bandwidth"]
    assert injector.next_time() == 20.0
    assert [e.kind for e in injector.pop_due(1e9)] == ["server_recover"]
    assert injector.next_time() is None


def test_server_crash_effect_and_capacity():
    injector, cluster = make_injector([], servers=4)
    base = base_vector(cluster)
    event = FaultEvent(0.0, "server_crash", magnitude=1)
    effect = injector.apply(event, 0.0)
    # 1 of 4 servers: a quarter of the GPUs and of the cache pool.
    assert effect.preempt_gpus == pytest.approx(cluster.total_gpus / 4)
    assert effect.evict_fraction == pytest.approx(0.25)
    total = injector.effective_total(base)
    assert total.gpus == pytest.approx(base.gpus * 0.75)
    assert total.cache_mb == pytest.approx(base.cache_mb * 0.75)
    assert total.remote_io_mbps == pytest.approx(base.remote_io_mbps)


def test_server_crash_clamped_to_cluster_size():
    injector, cluster = make_injector([], servers=2)
    injector.apply(FaultEvent(0.0, "server_crash", magnitude=10), 0.0)
    assert injector.servers_down == 2
    total = injector.effective_total(base_vector(cluster))
    assert total.gpus == 0.0
    assert total.cache_mb == 0.0
    # Crashing again with everything down is a no-op.
    effect = injector.apply(FaultEvent(1.0, "server_crash"), 1.0)
    assert effect.preempt_gpus == 0.0
    assert effect.evict_fraction == 0.0


def test_server_recover_clamped_to_down_count():
    injector, cluster = make_injector([], servers=4)
    injector.apply(FaultEvent(0.0, "server_crash", magnitude=1), 0.0)
    injector.apply(FaultEvent(1.0, "server_recover", magnitude=5), 1.0)
    assert injector.servers_down == 0
    total = injector.effective_total(base_vector(cluster))
    assert total.gpus == pytest.approx(cluster.total_gpus)
    assert total.cache_mb == pytest.approx(cluster.total_cache_mb)
    # Recovering with nothing down is a no-op.
    injector.apply(FaultEvent(2.0, "server_recover"), 2.0)
    assert injector.servers_down == 0


def test_cache_loss_and_recover():
    injector, cluster = make_injector([], servers=4)
    lost = units.gb(10)
    effect = injector.apply(
        FaultEvent(0.0, "cache_loss", magnitude=lost), 0.0
    )
    assert effect.evict_fraction == pytest.approx(
        lost / cluster.total_cache_mb
    )
    assert effect.preempt_gpus == 0.0
    assert injector.current_cache_mb() == pytest.approx(
        cluster.total_cache_mb - lost
    )
    # Recovery is clamped to what was actually lost.
    injector.apply(
        FaultEvent(1.0, "cache_recover", magnitude=10 * lost), 1.0
    )
    assert injector.cache_lost_mb == 0.0
    assert injector.current_cache_mb() == pytest.approx(
        cluster.total_cache_mb
    )


def test_cache_loss_clamped_to_capacity():
    injector, cluster = make_injector([], servers=2)
    effect = injector.apply(
        FaultEvent(0.0, "cache_loss", magnitude=10 * cluster.total_cache_mb),
        0.0,
    )
    assert effect.evict_fraction == pytest.approx(1.0)
    assert injector.current_cache_mb() == 0.0


def test_bandwidth_is_multiplicative_on_base():
    injector, cluster = make_injector([])
    base = base_vector(cluster)
    injector.apply(FaultEvent(0.0, "bandwidth", magnitude=0.25), 0.0)
    assert injector.effective_total(base).remote_io_mbps == pytest.approx(
        base.remote_io_mbps * 0.25
    )
    # Restore is against the base limit, not the degraded one.
    injector.apply(FaultEvent(1.0, "bandwidth", magnitude=1.0), 1.0)
    assert injector.effective_total(base).remote_io_mbps == pytest.approx(
        base.remote_io_mbps
    )


def test_job_kinds_carry_target():
    injector, _ = make_injector([])
    effect = injector.apply(
        FaultEvent(0.0, "job_preempt", target="job-x"), 0.0
    )
    assert effect.job_id == "job-x"
    assert effect.evict_fraction == 0.0
    assert effect.preempt_gpus == 0.0
    effect = injector.apply(
        FaultEvent(1.0, "job_restart", target="job-x"), 1.0
    )
    assert effect.job_id == "job-x"


def test_select_victims_sorted_greedy():
    running = {"job-c": 2.0, "job-a": 1.0, "job-b": 4.0}
    # 1 GPU lost: first in sorted order suffices.
    assert FaultInjector.select_victims(running, 1.0) == ["job-a"]
    # 4 lost: job-a (1) does not cover it, job-b (4) tips it over.
    assert FaultInjector.select_victims(running, 4.0) == ["job-a", "job-b"]
    # More than everything: all running jobs die.
    assert FaultInjector.select_victims(running, 100.0) == [
        "job-a",
        "job-b",
        "job-c",
    ]
    # Idle jobs (0 GPUs) are never victims; no jobs, no victims.
    assert FaultInjector.select_victims({"job-z": 0.0}, 2.0) == []
    assert FaultInjector.select_victims({}, 2.0) == []


def test_injector_emits_fault_and_node_events():
    tracer = Tracer()
    injector, _ = make_injector([], servers=4, tracer=tracer)
    injector.apply(FaultEvent(5.0, "server_crash", magnitude=1), 5.0)
    injector.apply(FaultEvent(9.0, "server_recover", magnitude=1), 9.0)
    injector.apply(
        FaultEvent(12.0, "cache_loss", magnitude=units.gb(1)), 12.0
    )
    etypes = [e.etype for e in tracer.events]
    assert etypes == [
        "fault_inject",
        "node_down",
        "fault_inject",
        "node_up",
        "fault_inject",
        "node_down",
    ]
    down = tracer.events[1]
    assert down.fields["kind"] == "server"
    assert down.fields["gpus_lost"] == pytest.approx(4.0)
    assert tracer.metrics.counter("faults.injected") == 3
