"""Fault schedules driving the minibatch emulator at batch boundaries."""

import pytest

from repro.faults import FaultEvent
from repro.obs import Tracer
from repro.sim.runner import run_experiment

from tests.faults.conftest import small_cluster, two_job_trace

pytestmark = pytest.mark.faults


def run(cache="silod", faults=None, tracer=None):
    kwargs = {"tracer": tracer} if tracer is not None else {}
    return run_experiment(
        small_cluster(),
        "fifo",
        cache,
        two_job_trace(),
        simulator="minibatch",
        faults=faults,
        **kwargs,
    )


def jct_of(result, job_id):
    return next(
        r.jct_s for r in result.finished_records() if r.job_id == job_id
    )


def test_server_crash_degrades_jct_but_run_completes():
    clean = run()
    crashed = run(
        faults=[FaultEvent(150.0, "server_crash", magnitude=1)]
    )
    assert len(crashed.finished_records()) == 2
    assert crashed.average_jct_s() > clean.average_jct_s() * 1.005


def test_crash_emits_fault_event_sequence():
    tracer = Tracer()
    run(
        faults=[FaultEvent(150.0, "server_crash", magnitude=1)],
        tracer=tracer,
    )
    etypes = {e.etype for e in tracer.events}
    assert {"fault_inject", "node_down", "cache_invalidate"} <= etypes
    preempts = [e for e in tracer.events if e.etype == "job_preempt"]
    # 4 GPUs lost > the 3 granted: every running job is a victim,
    # in sorted-id order.
    assert [e.job_id for e in preempts] == ["job-a", "job-b"]
    for event in preempts:
        assert event.fields["reason"] == "server_crash"
        assert event.fields["rollback_mb"] >= 0.0
    # Faults land on decision-interval boundaries, never before t=150.
    inject = next(e for e in tracer.events if e.etype == "fault_inject")
    assert inject.ts_s >= 150.0


def test_crash_shrinks_lru_pool_too():
    tracer = Tracer()
    result = run(
        cache="alluxio",
        faults=[FaultEvent(150.0, "server_crash", magnitude=1)],
        tracer=tracer,
    )
    assert len(result.finished_records()) == 2
    invalidates = [
        e for e in tracer.events if e.etype == "cache_invalidate"
    ]
    assert invalidates
    assert all(e.fields["delta_mb"] > 0.0 for e in invalidates)


def test_explicit_preempt_holds_job_until_restart():
    clean = run()
    tracer = Tracer()
    faulted = run(
        faults=[
            FaultEvent(120.0, "job_preempt", target="job-a"),
            FaultEvent(600.0, "job_restart", target="job-a"),
        ],
        tracer=tracer,
    )
    assert len(faulted.finished_records()) == 2
    assert jct_of(faulted, "job-a") > jct_of(clean, "job-a") + 300.0
    etypes = [
        e.etype
        for e in tracer.events
        if e.job_id == "job-a"
        and e.etype in ("job_preempt", "job_restart")
    ]
    assert etypes == ["job_preempt", "job_restart"]


def test_bandwidth_flap_degrades_jct():
    clean = run()
    flapped = run(
        faults=[
            FaultEvent(120.0, "bandwidth", magnitude=0.2),
            FaultEvent(360.0, "bandwidth", magnitude=1.0),
        ]
    )
    assert len(flapped.finished_records()) == 2
    assert flapped.average_jct_s() > clean.average_jct_s() * 1.005
