"""FaultEvent/FaultSchedule validation, ordering, IO, and churn model."""

import pytest

from repro.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultSchedule,
    as_schedule,
    generate_churn,
)

pytestmark = pytest.mark.faults


def test_every_kind_constructs():
    for kind in FAULT_KINDS:
        target = "j1" if kind.startswith("job_") else None
        event = FaultEvent(time_s=1.0, kind=kind, target=target)
        assert event.kind == kind


@pytest.mark.parametrize(
    "kwargs",
    [
        {"time_s": 0.0, "kind": "power_surge"},
        {"time_s": -1.0, "kind": "server_crash"},
        {"time_s": 0.0, "kind": "job_preempt"},  # target required
        {"time_s": 0.0, "kind": "job_restart", "target": ""},
        {"time_s": 0.0, "kind": "server_crash", "magnitude": 0},
        {"time_s": 0.0, "kind": "cache_loss", "magnitude": 0.0},
        {"time_s": 0.0, "kind": "cache_recover", "magnitude": -5.0},
        {"time_s": 0.0, "kind": "bandwidth", "magnitude": 0.0},
    ],
)
def test_invalid_events_rejected(kwargs):
    with pytest.raises(ValueError):
        FaultEvent(**kwargs)


def test_schedule_sorts_by_time_stably():
    crash = FaultEvent(time_s=10.0, kind="server_crash")
    recover = FaultEvent(time_s=10.0, kind="server_recover")
    early = FaultEvent(time_s=5.0, kind="bandwidth", magnitude=0.5)
    schedule = FaultSchedule([crash, recover, early])
    assert schedule.events == (early, crash, recover)
    # Declared order survives the tie at t=10.
    flipped = FaultSchedule([recover, crash, early])
    assert flipped.events == (early, recover, crash)


def test_empty_schedule_is_falsy():
    assert not FaultSchedule()
    assert not FaultSchedule([])
    assert len(FaultSchedule()) == 0
    assert bool(FaultSchedule([FaultEvent(0.0, "server_crash")]))


def test_dict_roundtrip():
    schedule = FaultSchedule(
        [
            FaultEvent(time_s=1.0, kind="server_crash", magnitude=2),
            FaultEvent(time_s=2.0, kind="job_preempt", target="j1"),
            FaultEvent(time_s=3.0, kind="bandwidth", magnitude=0.25),
        ]
    )
    assert FaultSchedule.from_dicts(schedule.to_dicts()) == schedule


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown fault-spec fields"):
        FaultEvent.from_dict(
            {"time_s": 0.0, "kind": "server_crash", "severity": "high"}
        )


def test_load_save_roundtrip(tmp_path):
    schedule = FaultSchedule(
        [
            FaultEvent(time_s=60.0, kind="cache_loss", magnitude=1024.0),
            FaultEvent(time_s=120.0, kind="job_restart", target="j9"),
        ]
    )
    path = tmp_path / "faults.json"
    schedule.save(path)
    assert FaultSchedule.load(path) == schedule


def test_load_accepts_bare_list(tmp_path):
    path = tmp_path / "faults.json"
    path.write_text('[{"time_s": 5.0, "kind": "server_crash"}]')
    schedule = FaultSchedule.load(path)
    assert len(schedule) == 1
    assert schedule.events[0].kind == "server_crash"


def test_load_rejects_non_list(tmp_path):
    path = tmp_path / "faults.json"
    path.write_text('{"faults": "nope"}')
    with pytest.raises(ValueError):
        FaultSchedule.load(path)


def test_as_schedule_normalisation():
    assert as_schedule(None) is None
    assert as_schedule([]) is None
    assert as_schedule(FaultSchedule()) is None
    event = FaultEvent(time_s=0.0, kind="server_crash")
    schedule = FaultSchedule([event])
    assert as_schedule(schedule) is schedule
    assert as_schedule([event]) == schedule


def test_generate_churn_is_seed_deterministic():
    kwargs = dict(duration_s=48 * 3600.0, num_servers=8)
    assert generate_churn(7, **kwargs) == generate_churn(7, **kwargs)
    assert generate_churn(7, **kwargs) != generate_churn(8, **kwargs)


def test_generate_churn_pairs_crashes_with_recoveries():
    schedule = generate_churn(
        3, duration_s=7 * 24 * 3600.0, num_servers=8
    )
    kinds = [e.kind for e in schedule if e.kind.startswith("server_")]
    assert kinds.count("server_crash") == kinds.count("server_recover")
    assert kinds.count("server_crash") > 0


def test_generate_churn_streams_are_independent():
    base = dict(seed=5, duration_s=72 * 3600.0, num_servers=8)
    without_cache = generate_churn(**base)
    with_cache = generate_churn(
        **base, total_cache_mb=1e6, cache_loss_interval_s=6 * 3600.0
    )
    # Enabling the cache-loss stream adds cache_loss events without
    # perturbing the server/bandwidth draws.
    strip = lambda s: [e for e in s if e.kind != "cache_loss"]
    assert strip(with_cache) == strip(without_cache)
    assert any(e.kind == "cache_loss" for e in with_cache)


def test_generate_churn_validates_inputs():
    with pytest.raises(ValueError):
        generate_churn(0, duration_s=0.0, num_servers=4)
    with pytest.raises(ValueError):
        generate_churn(0, duration_s=100.0, num_servers=0)
