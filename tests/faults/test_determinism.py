"""Determinism: same schedule ⇒ same story, within and across simulators.

Within one simulator, two identical runs must produce identical event
logs (timestamps included). Across simulators, the *structure* must
match — the same fault and lifecycle events, on the same jobs, with the
same kinds/victims/reasons, in the same order — while timestamps may
differ (the minibatch emulator quantises fault application to decision
-interval boundaries).
"""

import pytest

from repro.faults import FaultEvent, FaultSchedule
from repro.obs import LIFECYCLE_TYPES, Tracer
from repro.sim.runner import run_experiment

from tests.faults.conftest import small_cluster, two_job_trace

pytestmark = pytest.mark.faults

SCHEDULE = FaultSchedule(
    [
        FaultEvent(150.0, "server_crash", magnitude=1),
        FaultEvent(300.0, "server_recover", magnitude=1),
    ]
)

#: Event types whose sequence must agree across simulators.
COMPARED = tuple(LIFECYCLE_TYPES) + (
    "fault_inject",
    "node_down",
    "node_up",
    "job_preempt",
    "job_restart",
)


def events_for(simulator):
    tracer = Tracer()
    run_experiment(
        small_cluster(),
        "fifo",
        "silod",
        two_job_trace(),
        simulator=simulator,
        faults=SCHEDULE,
        tracer=tracer,
    )
    return tracer.events


def signature(event):
    f = event.fields
    if event.etype == "fault_inject":
        return (f["kind"], f["target"], f["magnitude"])
    if event.etype in ("node_down", "node_up"):
        return (f["kind"],)
    if event.etype in ("job_preempt", "job_restart"):
        return (f["reason"],)
    return ()


def structure(events):
    return [
        (e.etype, e.job_id, signature(e))
        for e in events
        if e.etype in COMPARED
    ]


def event_dicts(events):
    out = []
    for e in events:
        d = e.to_dict()
        # The one intentionally non-deterministic field: wall-clock
        # scheduler decision latency.
        d.pop("latency_ms", None)
        out.append(d)
    return out


@pytest.mark.parametrize("simulator", ["fluid", "minibatch"])
def test_same_run_twice_is_identical(simulator):
    assert event_dicts(events_for(simulator)) == event_dicts(
        events_for(simulator)
    )


def test_fault_and_lifecycle_structure_matches_across_simulators():
    fluid = structure(events_for("fluid"))
    minibatch = structure(events_for("minibatch"))
    assert fluid == minibatch
    # And the structure is the expected one: the crash preempts both
    # running jobs (4 GPUs lost > 3 granted), the recovery preempts none.
    etypes = [etype for etype, _, _ in fluid]
    assert etypes.count("fault_inject") == 2
    assert etypes.count("node_down") == 1
    assert etypes.count("node_up") == 1
    assert etypes.count("job_preempt") == 2
    assert etypes.count("job_finish") == 2
