"""Job specification and progress accounting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.dataset import Dataset
from repro.cluster.job import Job, JobPhase, JobProgress


def make_job(**overrides):
    defaults = dict(
        job_id="j",
        model="resnet50",
        dataset=Dataset("d", 1000.0),
        num_gpus=1,
        ideal_throughput_mbps=100.0,
        total_work_mb=2500.0,
    )
    defaults.update(overrides)
    return Job(**defaults)


def test_job_validation():
    with pytest.raises(ValueError):
        make_job(num_gpus=0)
    with pytest.raises(ValueError):
        make_job(ideal_throughput_mbps=0.0)
    with pytest.raises(ValueError):
        make_job(total_work_mb=0.0)


def test_job_derived_quantities():
    job = make_job()
    assert job.num_epochs == pytest.approx(2.5)
    assert job.ideal_duration_s == pytest.approx(25.0)
    # Eq 5: f*/d.
    assert job.cache_efficiency() == pytest.approx(0.1)


def test_progress_epochs_and_boundaries():
    progress = JobProgress(job=make_job())
    assert progress.epoch_index == 0
    assert progress.work_to_epoch_boundary_mb == pytest.approx(1000.0)
    progress.advance(1500.0)
    assert progress.epoch_index == 1
    assert progress.epoch_position_mb == pytest.approx(500.0)
    assert progress.work_to_epoch_boundary_mb == pytest.approx(500.0)
    # Final partial epoch: boundary capped at remaining work.
    progress.advance(600.0)  # work_done = 2100, epoch 2, 400 remaining
    assert progress.epoch_index == 2
    assert progress.work_to_epoch_boundary_mb == pytest.approx(400.0)


def test_progress_completion():
    progress = JobProgress(job=make_job())
    progress.advance(1e9)  # clamped to total work
    assert progress.work_done_mb == pytest.approx(2500.0)
    assert progress.done
    assert progress.remaining_work_mb == 0.0


def test_progress_epoch_snap_near_boundary():
    # Float drift just below a boundary must not strand the epoch index.
    progress = JobProgress(job=make_job())
    progress.work_done_mb = 1000.0 - 1e-9
    assert progress.epoch_index == 1
    assert progress.epoch_position_mb == pytest.approx(0.0, abs=1e-6)


def test_progress_rejects_negative_advance():
    progress = JobProgress(job=make_job())
    with pytest.raises(ValueError):
        progress.advance(-1.0)


def test_jct_requires_finish():
    progress = JobProgress(job=make_job(submit_time_s=10.0))
    with pytest.raises(RuntimeError):
        progress.jct_s()
    progress.finish_time_s = 110.0
    assert progress.jct_s() == pytest.approx(100.0)


def test_phase_default():
    assert JobProgress(job=make_job()).phase is JobPhase.PENDING


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
        min_size=1,
        max_size=50,
    )
)
def test_progress_invariants_under_any_advances(steps):
    """Property: progress accounting never goes out of range."""
    progress = JobProgress(job=make_job())
    for step in steps:
        progress.advance(step)
        assert 0.0 <= progress.work_done_mb <= progress.job.total_work_mb
        assert progress.remaining_work_mb >= 0.0
        assert 0 <= progress.epoch_index <= progress.job.num_epochs + 1
        assert (
            progress.work_to_epoch_boundary_mb
            <= progress.job.dataset.size_mb + 1e-6
        )


def test_deadline_validation():
    assert make_job().deadline_s is None
    assert make_job(deadline_s=3600.0).deadline_s == 3600.0
    with pytest.raises(ValueError):
        make_job(deadline_s=0.0)
    with pytest.raises(ValueError):
        make_job(deadline_s=-5.0)
