"""Job fair-share weights."""

import pytest

from repro.cluster.dataset import Dataset
from repro.cluster.job import Job


def test_default_weight_is_one():
    job = Job(
        job_id="j",
        model="m",
        dataset=Dataset("d", 100.0),
        num_gpus=1,
        ideal_throughput_mbps=10.0,
        total_work_mb=100.0,
    )
    assert job.weight == 1.0


def test_weight_must_be_positive():
    with pytest.raises(ValueError):
        Job(
            job_id="j",
            model="m",
            dataset=Dataset("d", 100.0),
            num_gpus=1,
            ideal_throughput_mbps=10.0,
            total_work_mb=100.0,
            weight=0.0,
        )
