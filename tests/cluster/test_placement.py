"""Server-level placement and the one-pool validity check."""

import pytest

from repro.cluster.dataset import Dataset
from repro.cluster.hardware import Cluster
from repro.cluster.job import Job
from repro.cluster.placement import (
    CacheShardPlacer,
    GpuPlacer,
    PlacementError,
    validate_placement,
)

GB = 1024.0


def cluster(servers=4, gpus=4, cache_gb=100.0):
    return Cluster.build(servers, gpus, cache_gb * GB, 500.0)


def job(job_id, gpus=1, d_gb=50.0):
    return Job(
        job_id=job_id,
        model="m",
        dataset=Dataset(f"d-{job_id}", d_gb * GB),
        num_gpus=gpus,
        ideal_throughput_mbps=100.0,
        total_work_mb=2 * d_gb * GB,
    )


class TestGpuPlacer:
    def test_whole_job_fits_on_one_server(self):
        placer = GpuPlacer(cluster())
        placement = placer.place(job("a", gpus=4))
        assert placement.num_servers == 1
        assert placement.total_gpus == 4

    def test_best_fit_prefers_fuller_server(self):
        placer = GpuPlacer(cluster(servers=2, gpus=4))
        placer.place(job("first", gpus=2))  # leaves server with 2 free
        placement = placer.place(job("second", gpus=2))
        # Packs into the partially used server, not the empty one.
        assert placement.num_servers == 1
        assert placer.free_gpus == 4
        empty = [s for s, f in placer._free.items() if f == 4]
        assert len(empty) == 1

    def test_spill_across_servers(self):
        placer = GpuPlacer(cluster(servers=2, gpus=4))
        placement = placer.place(job("big", gpus=6))
        assert placement.num_servers == 2
        assert placement.total_gpus == 6

    def test_rejects_oversized_and_duplicates(self):
        placer = GpuPlacer(cluster(servers=1, gpus=4))
        placer.place(job("a", gpus=4))
        with pytest.raises(PlacementError):
            placer.place(job("b", gpus=1))
        with pytest.raises(PlacementError):
            placer.place(job("a", gpus=1))

    def test_release_returns_gpus(self):
        placer = GpuPlacer(cluster(servers=1, gpus=4))
        placer.place(job("a", gpus=4))
        placer.release("a")
        placer.release("a")  # idempotent
        assert placer.free_gpus == 4
        placer.place(job("b", gpus=4))


class TestCacheShardPlacer:
    def test_even_striping(self):
        placer = CacheShardPlacer(cluster(servers=4, cache_gb=100.0))
        shards = placer.place("ds", 200.0 * GB)
        assert len(shards) == 4
        for shard in shards:
            assert shard.size_mb == pytest.approx(50.0 * GB)

    def test_respects_capacity(self):
        placer = CacheShardPlacer(cluster(servers=2, cache_gb=10.0))
        with pytest.raises(PlacementError):
            placer.place("ds", 30.0 * GB)
        placer.place("ok", 20.0 * GB)
        assert placer.free_cache_mb == pytest.approx(0.0)

    def test_evict_frees_space(self):
        placer = CacheShardPlacer(cluster(servers=2, cache_gb=10.0))
        placer.place("ds", 20.0 * GB)
        placer.evict("ds")
        placer.evict("ds")  # idempotent
        assert placer.free_cache_mb == pytest.approx(20.0 * GB)
        assert placer.shards_of("ds") == []

    def test_duplicate_placement_rejected(self):
        placer = CacheShardPlacer(cluster())
        placer.place("ds", GB)
        with pytest.raises(PlacementError):
            placer.place("ds", GB)


class TestValidatePlacement:
    def _setup(self, rate, fabric_mbps=12500.0, disk_mbps=2000.0):
        cl = cluster(servers=4, gpus=4, cache_gb=200.0)
        for server in cl.servers:
            server.fabric_bandwidth_mbps = fabric_mbps
            server.local_disk_bandwidth_mbps = disk_mbps
        jobs = [job(f"j{i}") for i in range(4)]
        gpu_placer = GpuPlacer(cl)
        shard_placer = CacheShardPlacer(cl)
        for j in jobs:
            gpu_placer.place(j)
            shard_placer.place(j.dataset.name, j.dataset.size_mb)
        rates = {j.job_id: rate for j in jobs}
        return cl, jobs, gpu_placer, shard_placer, rates

    def test_datacenter_fabric_is_feasible(self):
        report = validate_placement(*self._setup(rate=1923.0))
        assert report.feasible
        # Even striping: every disk serves the same aggregate load.
        loads = list(report.disk_load_mbps.values())
        assert max(loads) - min(loads) < 1e-6

    def test_slow_fabric_is_flagged(self):
        report = validate_placement(
            *self._setup(rate=1923.0, fabric_mbps=125.0)
        )
        assert not report.feasible
        assert "NIC" in report.bottleneck

    def test_slow_disks_are_flagged(self):
        report = validate_placement(
            *self._setup(rate=1923.0, disk_mbps=100.0)
        )
        assert not report.feasible
        assert "disk" in report.bottleneck

    def test_idle_jobs_add_no_load(self):
        cl, jobs, gp, sp, _rates = self._setup(rate=0.0)
        report = validate_placement(cl, jobs, gp, sp, {})
        assert report.feasible
        assert sum(report.disk_load_mbps.values()) == 0.0


class TestGenerationAwarePlacement:
    def mixed(self):
        return Cluster.build_mixed(
            [("V100", 1), ("A100", 1)],
            gpus_per_server=4,
            cache_per_server_mb=100.0 * GB,
            remote_io_mbps=500.0,
        )

    def test_place_filters_by_generation(self):
        placer = GpuPlacer(self.mixed())
        placement = placer.place(job("a", gpus=2), generation="A100")
        a100_server = next(
            s.server_id
            for s in self.mixed().servers
            if s.gpu.name == "A100"
        )
        assert set(placement.gpus_by_server) == {a100_server}
        assert placer.free_gpus_of("A100") == 2
        assert placer.free_gpus_of("V100") == 4

    def test_pool_exhaustion_names_the_pool(self):
        placer = GpuPlacer(self.mixed())
        placer.place(job("a", gpus=4), generation="V100")
        with pytest.raises(PlacementError, match="V100"):
            placer.place(job("b", gpus=1), generation="V100")
        # The other pool is unaffected.
        placer.place(job("b", gpus=1), generation="A100")

    def test_generation_none_uses_the_whole_fleet(self):
        placer = GpuPlacer(self.mixed())
        placement = placer.place(job("wide", gpus=8))
        assert placement.total_gpus == 8
        assert placer.free_gpus == 0
