"""Hardware catalog and cluster construction."""

import pytest

from repro import units
from repro.cluster import hardware


def test_gpu_trend_motivation():
    # Figure 1's headline: GPU compute grew ~125x, egress only ~12x.
    gpu_growth, egress_growth = hardware.compute_growth_vs_egress_growth()
    assert gpu_growth == pytest.approx(125.0, rel=0.05)
    assert egress_growth == pytest.approx(12.0, rel=0.05)
    assert gpu_growth / egress_growth > 10


def test_gpu_trend_series_covers_all_years():
    rows = hardware.gpu_trend_series()
    years = [r["year"] for r in rows]
    assert years == sorted(years)
    assert {r["gpu"] for r in rows if r["gpu"]} == {
        "K80",
        "P100",
        "V100",
        "A100",
        "H100",
    }


def test_table2_resnet50_profiles():
    by_setup = {p.gpu_setup: p for p in hardware.RESNET50_TABLE2}
    assert by_setup["1xV100"].io_mb_per_second == 114.0
    assert by_setup["8xA100"].io_mb_per_second == 1923.0
    # IO demand scales with images/s at a constant bytes-per-image.
    v100 = by_setup["1xV100"]
    a100_8 = by_setup["8xA100"]
    bytes_per_image_v100 = v100.io_mb_per_second / v100.images_per_second
    bytes_per_image_a100 = a100_8.io_mb_per_second / a100_8.images_per_second
    assert bytes_per_image_v100 == pytest.approx(bytes_per_image_a100, rel=0.01)


def test_cluster_builders():
    micro = hardware.microbenchmark_cluster()
    assert micro.total_gpus == 8
    assert micro.total_cache_mb == pytest.approx(units.tb(2.0))
    assert micro.remote_io_mbps == pytest.approx(200.0)

    mid = hardware.cluster_96gpu()
    assert mid.total_gpus == 96
    assert mid.remote_io_mbps == pytest.approx(units.gbps(8.0))

    big = hardware.cluster_400gpu()
    assert big.total_gpus == 400
    assert big.remote_io_mbps == pytest.approx(units.gbps(32.0))


def test_table5_scaling_is_monotone():
    limits = hardware.REMOTE_IO_LIMITS_TABLE5
    assert (
        limits["8xV100"]
        < limits["96xK80"]
        < limits["400xV100"]
        < limits["production"]
    )


def test_server_defaults():
    cluster = hardware.Cluster.build(2, 4, units.tb(1.0), 200.0)
    assert len(cluster.servers) == 2
    assert all(s.num_gpus == 4 for s in cluster.servers)

# ----------------------------------------------------------------------
# Mixed-generation fleets (heterogeneity-aware scheduling).
# ----------------------------------------------------------------------


def test_h100_records_dense_alongside_sparsity_tflops():
    h100 = hardware.GPU_GENERATIONS["H100"]
    assert h100.fp32_tflops == 510.0  # Figure 1's with-sparsity point
    assert h100.dense_fp32_tflops == 67.0
    assert h100.dense_tflops == 67.0
    # Every other generation's headline number already is dense fp32.
    for name, spec in hardware.GPU_GENERATIONS.items():
        if name != "H100":
            assert spec.dense_tflops == spec.fp32_tflops


def test_build_mixed_pools_and_reference():
    cluster = hardware.Cluster.build_mixed(
        [("V100", 2), ("A100", 1)],
        gpus_per_server=4,
        cache_per_server_mb=units.gb(25),
        remote_io_mbps=200.0,
    )
    assert cluster.total_gpus == 12
    assert cluster.is_heterogeneous
    assert cluster.gpus_by_generation == {"V100": 8, "A100": 4}
    assert cluster.generations == ["V100", "A100"]  # release order
    # Majority generation wins the reference slot.
    assert cluster.gpu.name == "V100"
    assert [s.gpu.name for s in cluster.servers] == [
        "V100",
        "V100",
        "A100",
    ]


def test_build_mixed_reference_override_and_tie_break():
    tied = hardware.Cluster.build_mixed(
        [("A100", 1), ("K80", 1)],
        gpus_per_server=4,
        cache_per_server_mb=units.gb(25),
        remote_io_mbps=200.0,
    )
    # Equal GPU counts: the earliest release year wins the tie.
    assert tied.gpu.name == "K80"
    forced = hardware.Cluster.build_mixed(
        [("A100", 1), ("K80", 1)],
        gpus_per_server=4,
        cache_per_server_mb=units.gb(25),
        remote_io_mbps=200.0,
        reference="A100",
    )
    assert forced.gpu.name == "A100"


def test_build_mixed_single_entry_collapses_to_build():
    mixed = hardware.Cluster.build_mixed(
        [("V100", 2)],
        gpus_per_server=4,
        cache_per_server_mb=units.gb(25),
        remote_io_mbps=200.0,
    )
    plain = hardware.Cluster.build(2, 4, units.gb(25), 200.0)
    assert not mixed.is_heterogeneous
    assert mixed.gpus_by_generation == plain.gpus_by_generation
    assert mixed.total_cache_mb == plain.total_cache_mb
    assert mixed.gpu.name == plain.gpu.name


def test_build_mixed_rejects_bad_specs():
    with pytest.raises(ValueError):
        hardware.Cluster.build_mixed(
            [], gpus_per_server=4,
            cache_per_server_mb=1.0, remote_io_mbps=1.0,
        )
    with pytest.raises(ValueError):
        hardware.Cluster.build_mixed(
            [("TPUv4", 1)], gpus_per_server=4,
            cache_per_server_mb=1.0, remote_io_mbps=1.0,
        )
    with pytest.raises(ValueError):
        hardware.Cluster.build_mixed(
            [("V100", 0)], gpus_per_server=4,
            cache_per_server_mb=1.0, remote_io_mbps=1.0,
        )


def test_parse_gpu_mix():
    assert hardware.parse_gpu_mix("V100:2,A100:1") == [
        ("V100", 2),
        ("A100", 1),
    ]
    assert hardware.parse_gpu_mix(" K80:12 , P100:8 ") == [
        ("K80", 12),
        ("P100", 8),
    ]
    for bad in ("V100", "V100:x", "TPUv4:2", "V100:0", ""):
        with pytest.raises(ValueError):
            hardware.parse_gpu_mix(bad)
