"""Remote storage grants and the peer-read fabric model (Figure 3)."""

import pytest

from repro.cluster import storage


def test_remote_storage_grants_respect_limit():
    remote = storage.RemoteStorage(egress_limit_mbps=200.0)
    remote.grant("a", 120.0)
    remote.grant("b", 80.0)
    assert remote.available_mbps == pytest.approx(0.0)
    with pytest.raises(ValueError):
        remote.grant("c", 1.0)
    # Replacing a grant frees its old share.
    remote.grant("a", 20.0)
    remote.grant("c", 100.0)
    assert remote.granted_mbps == pytest.approx(200.0)


def test_remote_storage_revoke_and_clear():
    remote = storage.RemoteStorage(egress_limit_mbps=100.0)
    remote.grant("a", 60.0)
    remote.revoke("a")
    remote.revoke("a")  # idempotent
    assert remote.grant_of("a") == 0.0
    remote.grant("b", 100.0)
    remote.clear()
    assert remote.available_mbps == pytest.approx(100.0)


def test_remote_storage_validation():
    with pytest.raises(ValueError):
        storage.RemoteStorage(egress_limit_mbps=0.0)
    remote = storage.RemoteStorage(egress_limit_mbps=10.0)
    with pytest.raises(ValueError):
        remote.grant("a", -1.0)


def test_peer_read_scales_nearly_linearly():
    # Figure 3: with a datacenter fabric, 50 servers each demanding
    # 1923 MB/s (ResNet-50 on 8xA100) still load at full demand.
    single = storage.peer_read_throughput(1, 1923.0)
    fifty = storage.peer_read_throughput(50, 1923.0)
    assert single == pytest.approx(1923.0)
    assert fifty == pytest.approx(50 * 1923.0)


def test_peer_read_bottlenecked_by_slow_fabric():
    # A 1 Gbps fabric (125 MB/s) cannot carry the peer fraction.
    agg = storage.peer_read_throughput(10, 1923.0, fabric_mbps=125.0)
    assert agg < 10 * 1923.0
    assert agg == pytest.approx(10 * 125.0 / 0.9)


def test_local_read_capped_by_disk():
    assert storage.local_read_throughput(4, 3000.0, local_disk_mbps=2000.0) == (
        pytest.approx(8000.0)
    )


def test_scaling_series_shape():
    rows = storage.peer_read_scaling_series([1, 10, 50])
    assert [r["servers"] for r in rows] == [1, 10, 50]
    for row in rows:
        # Peer reads never exceed the no-bottleneck linear line.
        assert row["peer_read_gbps"] <= row["linear_gbps"] + 1e-9


def test_invalid_server_counts():
    with pytest.raises(ValueError):
        storage.peer_read_throughput(0, 100.0)
    with pytest.raises(ValueError):
        storage.local_read_throughput(0, 100.0)
