"""Dataset and registry behaviour."""

import pytest

from repro.cluster.dataset import Dataset, DatasetRegistry


def test_dataset_validation():
    with pytest.raises(ValueError):
        Dataset("bad", -1.0)
    with pytest.raises(ValueError):
        Dataset("bad", 100.0, num_items=0)


def test_item_size():
    d = Dataset("d", 1000.0, num_items=100)
    assert d.item_size_mb == pytest.approx(10.0)


def test_registry_add_and_get():
    registry = DatasetRegistry()
    d = Dataset("imagenet", 1000.0)
    assert registry.add(d) is d
    assert registry.get("imagenet") is d
    assert "imagenet" in registry
    assert registry.find("nope") is None
    with pytest.raises(KeyError):
        registry.get("nope")


def test_registry_rejects_conflicting_redefinition():
    registry = DatasetRegistry()
    registry.add(Dataset("d", 1000.0))
    # Identical re-registration is a no-op.
    registry.add(Dataset("d", 1000.0))
    with pytest.raises(ValueError):
        registry.add(Dataset("d", 2000.0))


def test_registry_iteration_and_total():
    registry = DatasetRegistry()
    registry.add(Dataset("a", 100.0))
    registry.add(Dataset("b", 200.0))
    assert len(registry) == 2
    assert {d.name for d in registry} == {"a", "b"}
    assert registry.total_size_mb() == pytest.approx(300.0)
