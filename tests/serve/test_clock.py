"""Virtual-clock semantics (`repro.serve.clock.VirtualClock`)."""

import math

import pytest

from repro.serve import VirtualClock

pytestmark = pytest.mark.serve


def test_deep_paused_clock_holds_before_time_zero():
    """``start_paused`` freezes *before* t=0 so t=0 arrivals stage."""
    clock = VirtualClock(start_paused=True)
    assert clock.paused
    assert clock.target_s() == -math.inf
    assert clock.seconds_until(0.0) is None  # unreachable while paused


def test_unlimited_clock_reaches_everything_immediately():
    clock = VirtualClock()  # speedup None = as fast as possible
    assert not clock.paused
    assert clock.target_s() == math.inf
    assert clock.seconds_until(1e12) == 0.0


def test_paced_clock_advances_virtual_time_with_wall_time():
    clock = VirtualClock(speedup=60.0)
    target = clock.target_s()
    assert target >= 0.0
    wait = clock.seconds_until(target + 600.0)
    # 600 virtual seconds at 60x is at most 10 wall seconds away.
    assert wait is not None
    assert 0.0 <= wait <= 10.0


def test_pause_freezes_the_watermark():
    clock = VirtualClock(speedup=60.0)
    clock.pause()
    held = clock.target_s()
    assert clock.paused
    assert clock.target_s() == held  # no drift while paused


def test_step_to_advances_but_never_rewinds():
    clock = VirtualClock(start_paused=True)
    clock.step_to(100.0)
    assert clock.paused
    assert clock.target_s() == 100.0
    clock.step_to(50.0)  # backwards: clamped
    assert clock.target_s() == 100.0
    clock.step_to(250.0)
    assert clock.target_s() == 250.0


def test_resume_from_deep_freeze_starts_at_time_zero():
    clock = VirtualClock(start_paused=True)
    clock.resume(speedup=60.0)
    assert not clock.paused
    assert clock.speedup == 60.0
    assert clock.target_s() >= 0.0


def test_resume_with_zero_speedup_means_unlimited():
    clock = VirtualClock(start_paused=True)
    clock.resume(speedup=0)
    assert clock.speedup is None
    assert clock.target_s() == math.inf
