"""Serve bench scenarios and the `BENCH_serve_*.json` artifact schema."""

import dataclasses

import pytest

from repro.serve.bench import (
    SERVE_BENCH_FIELDS,
    SERVE_BENCH_SCHEMA_VERSION,
    SERVE_SCENARIOS,
    ServeBenchScenario,
    load_serve_record,
    render_serve_record,
    run_serve_scenario,
    write_serve_record,
)

pytestmark = pytest.mark.serve

#: A sub-second scenario for CI: unpaced submissions, tiny backlog.
CI_SPEC = ServeBenchScenario(
    name="serve_ci",
    simulator="fluid",
    num_jobs=24,
    num_gpus=16,
    arrival_rate_per_s=2000.0,
    queue_limit=64,
)


def test_serve_scenario_meets_the_decision_throughput_floor(tmp_path):
    record = run_serve_scenario(CI_SPEC)
    # The acceptance floor: >= 200 scheduling decisions per second on a
    # tiny scenario (measured ~2000/s; 200 leaves 10x headroom for CI).
    assert record.decisions_per_sec >= 200.0
    assert record.jobs_submitted == CI_SPEC.num_jobs
    assert record.jobs_finished == CI_SPEC.num_jobs
    assert record.admit_to_place_p99_ms >= record.admit_to_place_p50_ms >= 0

    path = write_serve_record(record, tmp_path / "BENCH_serve_ci.json")
    loaded = load_serve_record(path)
    assert loaded == record
    rendered = render_serve_record(record)
    assert "serve_ci" in rendered
    assert "decisions/s" in rendered


def test_catalogue_scenarios_are_well_formed():
    assert set(SERVE_SCENARIOS) == {"serve_tiny", "serve_smoke"}
    for name, spec in SERVE_SCENARIOS.items():
        assert spec.name == name
        trace = spec.build_trace()
        assert len(trace) == spec.num_jobs
        assert spec.build_cluster().total_gpus == spec.num_gpus


def test_record_schema_matches_the_documented_field_tuple():
    from repro.serve.bench import ServeBenchRecord

    fields = tuple(f.name for f in dataclasses.fields(ServeBenchRecord))
    assert fields == SERVE_BENCH_FIELDS


def test_loader_rejects_schema_and_field_drift(tmp_path):
    record = run_serve_scenario(
        dataclasses.replace(CI_SPEC, num_jobs=4, arrival_rate_per_s=4000.0)
    )
    path = write_serve_record(record, tmp_path / "BENCH_x.json")

    import json

    data = json.loads(path.read_text())
    assert data["schema_version"] == SERVE_BENCH_SCHEMA_VERSION

    data["schema_version"] = 99
    bad = tmp_path / "bad_version.json"
    bad.write_text(json.dumps(data))
    with pytest.raises(ValueError):
        load_serve_record(bad)

    data["schema_version"] = SERVE_BENCH_SCHEMA_VERSION
    data["mystery_field"] = 1
    bad_field = tmp_path / "bad_field.json"
    bad_field.write_text(json.dumps(data))
    with pytest.raises(ValueError):
        load_serve_record(bad_field)
