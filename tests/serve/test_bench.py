"""Serve bench scenarios and the `BENCH_serve_*.json` artifact schema."""

import dataclasses

import pytest

from repro.serve.bench import (
    SERVE_BENCH_FIELDS,
    SERVE_BENCH_SCHEMA_VERSION,
    SERVE_SCENARIOS,
    ServeBenchScenario,
    load_serve_record,
    render_serve_record,
    run_serve_scenario,
    write_serve_record,
)

pytestmark = pytest.mark.serve

#: A sub-second scenario for CI: unpaced submissions, tiny backlog.
CI_SPEC = ServeBenchScenario(
    name="serve_ci",
    simulator="fluid",
    num_jobs=24,
    num_gpus=16,
    arrival_rate_per_s=2000.0,
    queue_limit=64,
)


def test_serve_scenario_meets_the_decision_throughput_floor(tmp_path):
    record = run_serve_scenario(CI_SPEC)
    # The acceptance floor: >= 200 scheduling decisions per second on a
    # tiny scenario (measured ~2000/s; 200 leaves 10x headroom for CI).
    assert record.decisions_per_sec >= 200.0
    assert record.jobs_submitted == CI_SPEC.num_jobs
    assert record.jobs_finished == CI_SPEC.num_jobs
    assert record.admit_to_place_p99_ms >= record.admit_to_place_p50_ms >= 0

    path = write_serve_record(record, tmp_path / "BENCH_serve_ci.json")
    loaded = load_serve_record(path)
    assert loaded == record
    rendered = render_serve_record(record)
    assert "serve_ci" in rendered
    assert "decisions/s" in rendered


def test_catalogue_scenarios_are_well_formed():
    assert set(SERVE_SCENARIOS) == {"serve_tiny", "serve_smoke"}
    for name, spec in SERVE_SCENARIOS.items():
        assert spec.name == name
        trace = spec.build_trace()
        assert len(trace) == spec.num_jobs
        assert spec.build_cluster().total_gpus == spec.num_gpus


def test_record_schema_matches_the_documented_field_tuple():
    from repro.serve.bench import ServeBenchRecord

    fields = tuple(f.name for f in dataclasses.fields(ServeBenchRecord))
    assert fields == SERVE_BENCH_FIELDS


def test_loader_rejects_schema_and_field_drift(tmp_path):
    record = run_serve_scenario(
        dataclasses.replace(CI_SPEC, num_jobs=4, arrival_rate_per_s=4000.0)
    )
    path = write_serve_record(record, tmp_path / "BENCH_x.json")

    import json

    data = json.loads(path.read_text())
    assert data["schema_version"] == SERVE_BENCH_SCHEMA_VERSION

    data["schema_version"] = 99
    bad = tmp_path / "bad_version.json"
    bad.write_text(json.dumps(data))
    with pytest.raises(ValueError):
        load_serve_record(bad)

    data["schema_version"] = SERVE_BENCH_SCHEMA_VERSION
    data["mystery_field"] = 1
    bad_field = tmp_path / "bad_field.json"
    bad_field.write_text(json.dumps(data))
    with pytest.raises(ValueError):
        load_serve_record(bad_field)


def test_record_carries_decision_latency_p99():
    record = run_serve_scenario(
        dataclasses.replace(CI_SPEC, num_jobs=4, arrival_rate_per_s=4000.0)
    )
    assert record.decision_latency_p99_ms > 0.0
    assert "decision p99" in render_serve_record(record)
    assert "decision_latency_p99_ms" in SERVE_BENCH_FIELDS
    assert SERVE_BENCH_SCHEMA_VERSION == 2


class TestCompareServeRecords:
    def _record(self, **overrides):
        from repro.serve.bench import ServeBenchRecord

        base = dict(
            schema_version=SERVE_BENCH_SCHEMA_VERSION,
            created_utc="2026-01-01T00:00:00Z",
            scenario="serve_ci",
            simulator="fluid",
            policy="fifo",
            cache="silod",
            num_jobs=24,
            num_gpus=16,
            arrival_rate_per_s=2000.0,
            wall_time_s=1.0,
            decisions_total=100,
            decisions_per_sec=100.0,
            jobs_submitted=24,
            jobs_finished=24,
            admit_to_place_p50_ms=2.0,
            admit_to_place_p99_ms=8.0,
            decision_latency_p99_ms=4.0,
            host={"platform": "test"},
        )
        base.update(overrides)
        return ServeBenchRecord(**base)

    def test_identical_records_have_no_failures(self):
        from repro.perf.record import has_failures
        from repro.serve.bench import compare_serve_records

        deltas = compare_serve_records(
            self._record(), self._record(), threshold=0.1
        )
        assert deltas and not has_failures(deltas)
        assert {d.metric for d in deltas} >= {
            "decisions_per_sec",
            "decision_latency_p99_ms",
            "wall_time_s",
        }

    def test_throughput_drop_and_latency_rise_regress(self):
        from repro.perf.record import has_failures
        from repro.serve.bench import compare_serve_records

        slower = self._record(
            decisions_per_sec=50.0, decision_latency_p99_ms=8.0
        )
        deltas = compare_serve_records(
            slower, self._record(), threshold=0.1
        )
        assert has_failures(deltas)
        regressed = {d.metric for d in deltas if d.regressed}
        assert "decisions_per_sec" in regressed
        assert "decision_latency_p99_ms" in regressed

    def test_anchor_drift_flags_but_never_regresses(self):
        from repro.perf.record import has_failures
        from repro.serve.bench import compare_serve_records

        drifted = self._record(jobs_finished=23)
        deltas = compare_serve_records(
            drifted, self._record(), threshold=0.1
        )
        by_name = {d.metric: d for d in deltas}
        assert by_name["jobs_finished"].drift
        assert not by_name["jobs_finished"].regressed
        # Drift alone is enough to fail a --compare run.
        assert has_failures(deltas)

    def test_identity_mismatch_raises(self):
        from repro.serve.bench import compare_serve_records

        other = self._record(scenario="serve_tiny")
        with pytest.raises(ValueError, match="scenario"):
            compare_serve_records(other, self._record(), threshold=0.1)

    def test_negative_threshold_rejected(self):
        from repro.serve.bench import compare_serve_records

        with pytest.raises(ValueError):
            compare_serve_records(
                self._record(), self._record(), threshold=-0.1
            )
