"""Full socket round-trips against a real server thread."""

import json
import socket

import pytest

from repro.serve import ServeClient, ServeError, ServeServer, ServerThread
from repro.serve.protocol import MAX_LINE_BYTES

from .conftest import job_payload, make_engine

pytestmark = pytest.mark.serve


def test_round_trip_under_paused_clock(live_server):
    host, port, _ = live_server
    with ServeClient(host=host, port=port) as client:
        assert client.ping()["ok"] is True
        for i in range(3):
            response = client.submit(job_payload(f"job-{i}"))
            assert response["job_id"] == f"job-{i}"
        status = client.status()
        assert status["paused"] is True
        assert status["jobs_submitted"] == 3
        # Deep-paused: everything staged, nothing admitted yet.
        assert status["job_counts"]["accepted"] == 3
        clock = client.clock("step", to_s=30.0)
        assert clock["paused"] is True
        metrics = client.metrics()
        assert metrics["serve"]["rejected_total"] == 0


def test_malformed_requests_answer_without_killing_the_connection(
    live_server,
):
    host, port, _ = live_server
    with socket.create_connection((host, port), timeout=10) as sock:
        stream = sock.makefile("rwb")
        hello = json.loads(stream.readline())
        assert hello["kind"] == "repro-serve"

        def roundtrip(raw: bytes) -> dict:
            stream.write(raw + b"\n")
            stream.flush()
            return json.loads(stream.readline())

        assert roundtrip(b"{not json")["error"] == "bad_json"
        assert roundtrip(b'{"op": "teleport"}')["error"] == "unknown_op"
        assert roundtrip(b'{"op": "submit"}')["error"] == "invalid_request"
        big = json.dumps(
            {"op": "ping", "pad": "x" * (MAX_LINE_BYTES + 16)}
        ).encode()
        assert roundtrip(big)["error"] == "too_large"
        # The connection survived all of it.
        assert roundtrip(b'{"op": "ping"}')["ok"] is True


def test_duplicate_and_overflow_reject_over_the_wire(live_server):
    host, port, _ = live_server
    with ServeClient(host=host, port=port) as client:
        client.submit(job_payload("job-0"))
        with pytest.raises(ServeError) as err:
            client.submit(job_payload("job-0"))
        assert err.value.reason == "duplicate_id"
        for i in range(1, 8):  # fill the queue (limit 8)
            client.submit(job_payload(f"job-{i}"))
        with pytest.raises(ServeError) as err:
            client.submit(job_payload("job-8"))
        assert err.value.reason == "queue_full"


def test_graceful_drain_finishes_backlog_then_stops():
    server = ServeServer(make_engine(queue_limit=8), port=0)
    thread = ServerThread(server)
    host, port = thread.start()
    try:
        with ServeClient(host=host, port=port) as client:
            for i in range(4):
                client.submit(job_payload(f"job-{i}"))
            client.shutdown(drain=True)
    finally:
        thread.join()
    engine = server.engine
    assert engine.stopped
    assert engine.jobs_finished == 4
    assert engine.status()["job_counts"]["finished"] == 4


def test_subscribe_streams_the_event_log(live_server):
    host, port, _ = live_server
    with ServeClient(host=host, port=port) as client:
        client.submit(job_payload("job-0"))
        tail = client.tail()
        header = next(tail)
        assert header == {"v": 1, "kind": "repro-events"}
        replayed = next(tail)
        assert replayed["etype"] == "service_start"


def test_http_endpoints_answer_when_enabled():
    import urllib.request

    server = ServeServer(make_engine(), port=0, http_port=0)
    thread = ServerThread(server)
    host, _ = thread.start()
    try:
        base = f"http://{host}:{server.http_port}"
        with urllib.request.urlopen(f"{base}/healthz", timeout=10) as rsp:
            assert json.loads(rsp.read())["ok"] is True
        with urllib.request.urlopen(f"{base}/status", timeout=10) as rsp:
            assert json.loads(rsp.read())["paused"] is True
        with urllib.request.urlopen(f"{base}/metrics", timeout=10) as rsp:
            assert rsp.headers["Content-Type"].startswith("text/plain")
            body = rsp.read().decode("utf-8")
            assert "# TYPE repro_serve_decisions_total counter" in body
            assert "repro_serve_queue_depth" in body
    finally:
        thread.stop(drain=False)
        thread.join()
