"""`repro report --tail` transport behaviour on stream endings.

The tail helper must treat a dropped or truncated subscriber stream as
an operational condition — print a plain reconnect message and render
the events that did arrive — never a raw traceback.
"""

import threading

import pytest

from repro.cli import _tail_events
from repro.serve import ServeClient, ServeServer, ServerThread

from .conftest import job_payload, make_engine

pytestmark = pytest.mark.serve

HELLO = b'{"kind": "repro-serve", "v": 1}\n'
ACK = b'{"ok": true, "streaming": true}\n'
HEADER = b'{"v": 1, "kind": "repro-events"}\n'
EVENT = (
    b'{"seq": 1, "ts_s": 0.0, "etype": "epoch_boundary", '
    b'"job_id": "j1", "epoch": 1}\n'
)


def test_tail_renders_partial_events_on_truncated_stream(
    scripted_server, capsys
):
    # One good event, then a line cut off mid-JSON with no newline —
    # what a killed server leaves in the client's buffer.
    host, port = scripted_server(
        HELLO + ACK + HEADER + EVENT + b'{"seq": 2, "ts_s": 1.0, "ety'
    )
    events = _tail_events(f"{host}:{port}")
    assert [e.etype for e in events] == ["epoch_boundary"]
    err = capsys.readouterr().err
    assert "closed mid-stream" in err
    assert f"--tail {host}:{port}" in err
    assert "Traceback" not in err


def test_tail_clean_eof_returns_everything(scripted_server, capsys):
    host, port = scripted_server(HELLO + ACK + HEADER + EVENT)
    events = _tail_events(f"{host}:{port}")
    assert [e.etype for e in events] == ["epoch_boundary"]
    # An orderly close is not an error: nothing on stderr.
    assert capsys.readouterr().err == ""


def test_tail_against_real_server_shutdown():
    """Killing a live server mid-subscribe must not raise in the tailer."""
    server = ServeServer(make_engine(queue_limit=8), port=0)
    thread = ServerThread(server)
    host, port = thread.start()
    result: dict = {}

    def tail():
        result["events"] = _tail_events(f"{host}:{port}")

    try:
        with ServeClient(host=host, port=port) as client:
            client.submit(job_payload("job-0"))
        tailer = threading.Thread(target=tail, daemon=True)
        tailer.start()
        # Give the subscriber time to connect and replay history, then
        # yank the server out from under it — no drain, no goodbye.
        tailer.join(timeout=1.0)
    finally:
        thread.stop(drain=False)
        thread.join()
    tailer.join(timeout=10.0)
    assert not tailer.is_alive()
    etypes = [e.etype for e in result["events"]]
    assert "service_start" in etypes


def test_tail_rejects_malformed_target():
    with pytest.raises(SystemExit):
        _tail_events("no-port-here")
