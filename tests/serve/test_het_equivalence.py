"""Online/batch equivalence on a mixed-generation fleet.

The heterogeneous placement path (generation pools, per-generation f*,
het water-filling) must not disturb the service's central guarantee:
an online run fed the same jobs is anchor-identical to the batch run
on the same mixed cluster, for both het objectives.
"""

import pytest

from repro import units
from repro.analysis.fidelity import localize_divergence
from repro.cluster.hardware import Cluster
from repro.obs import Tracer
from repro.sim.runner import run_experiment
from repro.workloads.trace import TraceConfig, generate_trace
from repro.workloads.trace_io import job_to_dict

from .conftest import make_engine

pytestmark = pytest.mark.serve

# Dense, multi-GPU jobs so the V100 pool must absorb overflow from the
# A100 pool — both generations serve jobs and show up in provenance.
TRACE = TraceConfig(
    num_jobs=12,
    seed=11,
    mean_interarrival_s=50.0,
    duration_median_s=900.0,
    gpu_mix=((2, 0.5), (4, 0.5)),
)


def mixed_cluster() -> Cluster:
    return Cluster.build_mixed(
        [("V100", 1), ("A100", 1)],
        gpus_per_server=4,
        cache_per_server_mb=units.gb(25),
        remote_io_mbps=units.gbps(1.6),
    )


def _batch_events(policy, simulator):
    tracer = Tracer()
    run_experiment(
        mixed_cluster(),
        policy,
        "silod",
        generate_trace(TRACE),
        simulator=simulator,
        tracer=tracer,
    )
    return tracer.events


def _online_engine(policy, simulator):
    engine = make_engine(
        policy=policy, simulator=simulator, cluster=mixed_cluster()
    )
    engine.start()
    for job in sorted(
        generate_trace(TRACE),
        key=lambda j: (j.submit_time_s, j.job_id),
        reverse=True,
    ):
        engine.submit(job_to_dict(job))
    engine.drain()
    return engine


@pytest.mark.parametrize("policy", ["het-max-min", "het-max-throughput"])
@pytest.mark.parametrize("simulator", ["fluid", "minibatch"])
def test_het_online_run_is_anchor_identical_to_batch(policy, simulator):
    batch = _batch_events(policy, simulator)
    engine = _online_engine(policy, simulator)
    online = engine.tracer.events
    assert localize_divergence(batch, online) is None
    assert localize_divergence(online, batch) is None


def test_het_provenance_generations_match_batch():
    """decision_job generation/f* provenance is identical either way."""

    def provenance(events):
        return [
            (
                round(e.ts_s, 9),
                e.job_id,
                e.fields.get("generation"),
                e.fields.get("f_star_gen_mbps"),
            )
            for e in events
            if e.etype == "decision_job"
        ]

    batch = provenance(_batch_events("het-max-min", "fluid"))
    online = provenance(
        _online_engine("het-max-min", "fluid").tracer.events
    )
    assert batch == online
    assert len(batch) > 0
    generations = {gen for _, _, gen, _ in batch}
    assert generations <= {"V100", "A100"}
    assert len(generations) == 2  # both pools actually serve jobs


def test_het_placement_service_describes_pools():
    """status/describe() narrates the heterogeneous placement state."""
    engine = _online_engine("het-max-min", "fluid")
    placement = engine.stack.describe()["placement"]
    assert placement["heterogeneity_aware"] is True
    assert placement["gpu_pools"] == {"V100": 4, "A100": 4}
    assert placement["default_generation"] in {"V100", "A100"}

    homogeneous = make_engine(policy="fifo")
    homogeneous.start()
    homogeneous.drain()
    plain = homogeneous.stack.describe()["placement"]
    assert plain["heterogeneity_aware"] is False
