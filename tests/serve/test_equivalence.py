"""Online/batch determinism: same seed + same submissions ⇒ same run.

The service's central guarantee (docs/SERVE.md): because the engine only
advances the simulator in exact event-sized hops, an online run fed the
same jobs produces event anchors bit-identical to the batch run —
``localize_divergence`` finds nothing, even though the online log also
carries service-lifecycle events (those are not anchors).
"""

import dataclasses

import pytest

from repro import units
from repro.analysis.fidelity import localize_divergence
from repro.faults.spec import FaultSchedule
from repro.obs import Tracer
from repro.obs.prov import render_explain
from repro.sim.runner import run_experiment
from repro.workloads.trace import TraceConfig, generate_trace
from repro.workloads.trace_io import job_to_dict

from .conftest import make_engine, small_cluster

pytestmark = pytest.mark.serve

TRACE = TraceConfig(
    num_jobs=8,
    seed=7,
    mean_interarrival_s=200.0,
    duration_median_s=600.0,
)

FAULTS = FaultSchedule.from_dicts(
    [
        {"time_s": 300.0, "kind": "server_crash", "magnitude": 1},
        {"time_s": 900.0, "kind": "server_recover", "magnitude": 1},
        {"time_s": 1500.0, "kind": "cache_loss", "magnitude": 4096.0},
    ]
)


def _batch_events(simulator, faults=None):
    tracer = Tracer()
    sim_kwargs = {"tracer": tracer}
    if faults is not None:
        sim_kwargs["faults"] = faults
    run_experiment(
        small_cluster(),
        "fifo",
        "silod",
        generate_trace(TRACE),
        simulator=simulator,
        **sim_kwargs,
    )
    return tracer.events


def _online_events(simulator, faults=None):
    sim_kwargs = {}
    if faults is not None:
        sim_kwargs["faults"] = faults
    engine = make_engine(simulator=simulator, **sim_kwargs)
    engine.start()
    # Submit in reverse arrival order: the engine's sorted insert must
    # restore the batch admission order regardless of wire order.
    for job in sorted(
        generate_trace(TRACE),
        key=lambda j: (j.submit_time_s, j.job_id),
        reverse=True,
    ):
        engine.submit(job_to_dict(job))
    engine.drain()
    return engine.tracer.events


@pytest.mark.parametrize("simulator", ["fluid", "minibatch"])
def test_online_run_is_anchor_identical_to_batch(simulator):
    batch = _batch_events(simulator)
    online = _online_events(simulator)
    assert localize_divergence(batch, online) is None
    assert localize_divergence(online, batch) is None
    # The online log differs only by its service-lifecycle narration.
    batch_types = {e.etype for e in batch}
    online_types = {e.etype for e in online}
    assert online_types - batch_types <= {
        "service_start",
        "service_stop",
        "clock_set",
    }


def test_online_run_with_faults_matches_batch_with_faults():
    """Satellite: --faults shares the cache re-allocation path exactly."""
    batch = _batch_events("fluid", faults=FAULTS)
    online = _online_events("fluid", faults=FAULTS)
    assert any(e.etype == "fault_inject" for e in online)
    assert localize_divergence(batch, online) is None


def test_online_loop_event_count_matches_batch():
    """The stepped loop counts iterations exactly like ``run()``."""
    from repro.sim.fluid import FluidSimulator
    from repro.sim.runner import make_system

    jobs = generate_trace(TRACE)
    scheduler, cache = make_system("fifo", "silod")
    batch_sim = FluidSimulator(small_cluster(), scheduler, cache, jobs)
    batch_sim.run()

    engine = make_engine()
    engine.start()
    for job in jobs:
        engine.submit(job_to_dict(job))
    engine.drain()
    assert engine.sim.loop_events == batch_sim.loop_events
    assert engine.sim.sched_rounds == batch_sim.sched_rounds


def test_same_submissions_twice_produce_identical_event_logs():
    """Two online runs with the same inputs are bit-identical."""

    def run_once():
        return [
            (e.seq, round(e.ts_s, 9), e.etype, e.job_id)
            for e in _online_events("fluid")
        ]

    assert run_once() == run_once()


# ----------------------------------------------------------------------
# Provenance and SLO equivalence (acceptance: `explain` output is
# bit-identical whether the events came from a batch run or the service).
# ----------------------------------------------------------------------

_PROVENANCE_TYPES = ("decision_epoch", "decision_job")
_SLO_TYPES = ("slo_warn", "slo_violation")


def _with_deadlines(jobs):
    """The equivalence trace with one impossible and one loose deadline."""
    jobs = sorted(jobs, key=lambda j: (j.submit_time_s, j.job_id))
    jobs[0] = dataclasses.replace(jobs[0], deadline_s=1.0)
    jobs[1] = dataclasses.replace(jobs[1], deadline_s=1e9)
    return jobs


def _batch_events_with_deadlines(simulator):
    tracer = Tracer()
    run_experiment(
        small_cluster(),
        "fifo",
        "silod",
        _with_deadlines(generate_trace(TRACE)),
        simulator=simulator,
        tracer=tracer,
    )
    return tracer.events


def _online_events_with_deadlines(simulator):
    engine = make_engine(simulator=simulator)
    engine.start()
    for job in reversed(_with_deadlines(generate_trace(TRACE))):
        engine.submit(job_to_dict(job))
    engine.drain()
    return engine.tracer.events


def _subsequence(events, etypes):
    return [
        (round(e.ts_s, 9), e.etype, e.job_id, e.fields)
        for e in events
        if e.etype in etypes
    ]


@pytest.mark.parametrize("simulator", ["fluid", "minibatch"])
def test_provenance_stream_is_bit_identical_batch_vs_online(simulator):
    batch = _batch_events_with_deadlines(simulator)
    online = _online_events_with_deadlines(simulator)
    assert _subsequence(batch, _PROVENANCE_TYPES) == _subsequence(
        online, _PROVENANCE_TYPES
    )
    assert len(_subsequence(batch, _PROVENANCE_TYPES)) > 0


def test_slo_stream_is_bit_identical_batch_vs_online():
    batch = _batch_events_with_deadlines("fluid")
    online = _online_events_with_deadlines("fluid")
    assert _subsequence(batch, _SLO_TYPES) == _subsequence(
        online, _SLO_TYPES
    )
    assert any(e.etype == "slo_violation" for e in batch)


def test_explain_renders_identically_batch_vs_online():
    batch = _batch_events_with_deadlines("fluid")
    online = _online_events_with_deadlines("fluid")
    for job in _with_deadlines(generate_trace(TRACE)):
        assert render_explain(batch, job.job_id) == render_explain(
            online, job.job_id
        )
