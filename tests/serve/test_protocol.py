"""Wire-protocol parsing and validation (`repro.serve.protocol`)."""

import json

import pytest

from repro.serve.protocol import (
    HELLO,
    MAX_LINE_BYTES,
    OPS,
    PROTOCOL_VERSION,
    REJECT_BAD_JSON,
    REJECT_INVALID,
    REJECT_REASONS,
    REJECT_TOO_LARGE,
    REJECT_UNKNOWN_OP,
    ProtocolError,
    encode_response,
    parse_request,
    validate_request,
)

pytestmark = pytest.mark.serve


def _line(obj) -> bytes:
    return json.dumps(obj).encode()


def test_hello_names_the_protocol_and_version():
    assert HELLO["kind"] == "repro-serve"
    assert HELLO["v"] == PROTOCOL_VERSION == 1


def test_parse_then_validate_round_trips_every_op():
    payloads = {
        "submit": {"job": {"job_id": "j1"}},
        "cancel": {"job_id": "j1"},
        "clock": {"action": "pause"},
    }
    for op in OPS:
        data = parse_request(_line({"op": op, **payloads.get(op, {})}))
        parsed_op, payload = validate_request(data)
        assert parsed_op == op
        assert "op" not in payload


@pytest.mark.parametrize(
    "raw,reason",
    [
        (b"{not json", REJECT_BAD_JSON),
        (_line([1, 2, 3]), REJECT_INVALID),
        (_line({"op": "teleport"}), REJECT_UNKNOWN_OP),
        (_line({"no_op": True}), REJECT_INVALID),
        (b"x" * (MAX_LINE_BYTES + 1), REJECT_TOO_LARGE),
    ],
)
def test_malformed_requests_reject_with_machine_readable_reason(raw, reason):
    with pytest.raises(ProtocolError) as err:
        op, payload = validate_request(parse_request(raw))
    assert err.value.reason == reason
    assert err.value.reason in REJECT_REASONS


@pytest.mark.parametrize(
    "request_obj",
    [
        {"op": "submit"},  # no job
        {"op": "submit", "job": "not-a-dict"},
        {"op": "cancel"},  # no job_id
        {"op": "cancel", "job_id": 7},
        {"op": "clock"},  # no action
        {"op": "clock", "action": "warp"},
        {"op": "clock", "action": "step"},  # step needs to_s
        {"op": "clock", "action": "step", "to_s": "soon"},
        {"op": "clock", "action": "resume", "speedup": -2},
    ],
)
def test_payload_validation_rejects_invalid_requests(request_obj):
    with pytest.raises(ProtocolError) as err:
        validate_request(parse_request(_line(request_obj)))
    assert err.value.reason == REJECT_INVALID


def test_protocol_error_renders_an_error_response():
    response = ProtocolError(REJECT_INVALID, "bad job").to_response()
    assert response == {
        "ok": False,
        "error": REJECT_INVALID,
        "detail": "bad job",
    }


def test_encode_response_is_one_json_line():
    encoded = encode_response({"ok": True, "job_id": "j1"})
    assert encoded.endswith(b"\n")
    assert encoded.count(b"\n") == 1
    assert json.loads(encoded) == {"ok": True, "job_id": "j1"}


@pytest.mark.parametrize("bad", ["tomorrow", -1.0, 0, True, []])
def test_submit_rejects_malformed_deadline(bad):
    from .conftest import job_payload

    job = {**job_payload("j1"), "deadline_s": bad}
    with pytest.raises(ProtocolError) as err:
        validate_request(parse_request(_line({"op": "submit", "job": job})))
    assert err.value.reason == REJECT_INVALID
    assert "deadline_s" in err.value.detail


def test_submit_accepts_valid_or_absent_deadline():
    from .conftest import job_payload

    with_deadline = {**job_payload("j1"), "deadline_s": 3600.0}
    op, payload = validate_request(
        parse_request(_line({"op": "submit", "job": with_deadline}))
    )
    assert op == "submit" and payload["job"]["deadline_s"] == 3600.0
    op, payload = validate_request(
        parse_request(_line({"op": "submit", "job": job_payload("j2")}))
    )
    assert op == "submit" and "deadline_s" not in payload["job"]
