"""Shared fixtures for the online-service suite.

Everything runs against tiny deterministic clusters so the full
socket round-trips stay well under a second. Engines default to a
deep-paused clock (``start_paused=True``) so tests can stage
submissions without the pump racing them.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro import units
from repro.cluster.hardware import Cluster
from repro.obs import StreamingTracer
from repro.serve import (
    OnlineEngine,
    ServeServer,
    ServerThread,
    ServiceStack,
    VirtualClock,
)


def small_cluster(servers: int = 2, gpus_per_server: int = 4) -> Cluster:
    return Cluster.build(
        num_servers=servers,
        gpus_per_server=gpus_per_server,
        cache_per_server_mb=units.gb(25),
        remote_io_mbps=units.gbps(1.6),
    )


def job_payload(
    job_id: str,
    dataset: str = "ds-shared",
    size_mb: float = 512.0,
    submit_time_s: float = 0.0,
    num_gpus: int = 1,
) -> dict:
    """A minimal v1 trace-format job dict (one epoch over the dataset)."""
    return {
        "v": 1,
        "job_id": job_id,
        "model": "resnet50",
        "dataset": {"name": dataset, "size_mb": size_mb, "num_items": 1000},
        "num_gpus": num_gpus,
        "ideal_throughput_mbps": 100.0,
        "total_work_mb": size_mb,
        "submit_time_s": submit_time_s,
        "regular": True,
    }


def make_engine(
    policy: str = "fifo",
    cache: str = "silod",
    queue_limit: int = 64,
    simulator: str = "fluid",
    paused: bool = True,
    cluster: Cluster | None = None,
    **sim_kwargs,
) -> OnlineEngine:
    stack = ServiceStack.build(policy, cache, queue_limit=queue_limit)
    return OnlineEngine(
        cluster if cluster is not None else small_cluster(),
        stack,
        clock=VirtualClock(start_paused=paused),
        simulator=simulator,
        tracer=StreamingTracer(),
        **sim_kwargs,
    )


@pytest.fixture
def live_server():
    """A paused-engine server on an ephemeral port, torn down on exit."""
    server = ServeServer(make_engine(queue_limit=8), port=0)
    thread = ServerThread(server)
    host, port = thread.start()
    try:
        yield host, port, server
    finally:
        thread.stop(drain=False)
        thread.join()


@pytest.fixture
def scripted_server():
    """A real TCP server that plays back a fixed byte script and closes.

    The returned function takes the raw bytes to play to *every*
    accepted connection (hello line included — the tail CLI opens one
    control connection plus one subscriber connection) and returns
    ``(host, port)``. Used to exercise client-side behaviour on abrupt
    stream endings that a healthy ``ServeServer`` never produces
    (truncated lines, mid-stream resets).
    """
    sockets = []
    threads = []

    def start(script: bytes):
        listener = socket.create_server(("127.0.0.1", 0))
        listener.settimeout(10.0)
        sockets.append(listener)

        def serve_one(conn):
            with conn:
                conn.sendall(script)
                # Read whatever the client sends (subscribe request)
                # so the close is orderly from our side.
                conn.settimeout(5.0)
                try:
                    conn.recv(65536)
                except OSError:
                    pass

        def accept_loop():
            while True:
                try:
                    conn, _ = listener.accept()
                except OSError:
                    return  # listener closed by teardown
                worker = threading.Thread(
                    target=serve_one, args=(conn,), daemon=True
                )
                worker.start()
                threads.append(worker)

        acceptor = threading.Thread(target=accept_loop, daemon=True)
        acceptor.start()
        return listener.getsockname()

    yield start
    for listener in sockets:
        listener.close()
    for thread in threads:
        thread.join(timeout=5.0)
