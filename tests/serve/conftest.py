"""Shared fixtures for the online-service suite.

Everything runs against tiny deterministic clusters so the full
socket round-trips stay well under a second. Engines default to a
deep-paused clock (``start_paused=True``) so tests can stage
submissions without the pump racing them.
"""

from __future__ import annotations

from repro import units
from repro.cluster.hardware import Cluster
from repro.obs import StreamingTracer
from repro.serve import OnlineEngine, ServiceStack, VirtualClock


def small_cluster(servers: int = 2, gpus_per_server: int = 4) -> Cluster:
    return Cluster.build(
        num_servers=servers,
        gpus_per_server=gpus_per_server,
        cache_per_server_mb=units.gb(25),
        remote_io_mbps=units.gbps(1.6),
    )


def job_payload(
    job_id: str,
    dataset: str = "ds-shared",
    size_mb: float = 512.0,
    submit_time_s: float = 0.0,
    num_gpus: int = 1,
) -> dict:
    """A minimal v1 trace-format job dict (one epoch over the dataset)."""
    return {
        "v": 1,
        "job_id": job_id,
        "model": "resnet50",
        "dataset": {"name": dataset, "size_mb": size_mb, "num_items": 1000},
        "num_gpus": num_gpus,
        "ideal_throughput_mbps": 100.0,
        "total_work_mb": size_mb,
        "submit_time_s": submit_time_s,
        "regular": True,
    }


def make_engine(
    policy: str = "fifo",
    cache: str = "silod",
    queue_limit: int = 64,
    simulator: str = "fluid",
    paused: bool = True,
    **sim_kwargs,
) -> OnlineEngine:
    stack = ServiceStack.build(policy, cache, queue_limit=queue_limit)
    return OnlineEngine(
        small_cluster(),
        stack,
        clock=VirtualClock(start_paused=paused),
        simulator=simulator,
        tracer=StreamingTracer(),
        **sim_kwargs,
    )
