"""Online engine behaviour (`repro.serve.engine.OnlineEngine`)."""

import pytest

from repro.obs import events as ev
from repro.serve import ProtocolError
from repro.serve.protocol import (
    REJECT_DUPLICATE,
    REJECT_INVALID,
    REJECT_QUEUE_FULL,
    REJECT_SHUTTING_DOWN,
)

from .conftest import job_payload, make_engine

pytestmark = pytest.mark.serve


def test_submissions_stage_while_deep_paused_then_run_on_drain():
    engine = make_engine()
    engine.start()
    for i in range(3):
        response = engine.submit(job_payload(f"job-{i}"))
        assert response["ok"] is True
    # Deep-paused: nothing processed yet, not even t=0 arrivals.
    assert engine.status()["job_counts"].get("accepted") == 3
    engine.pump()
    assert engine.status()["job_counts"].get("accepted") == 3
    result = engine.drain()
    assert engine.jobs_finished == 3
    assert len(result.finished_records()) == 3


def test_clock_step_admits_exactly_the_released_prefix():
    engine = make_engine()
    engine.start()
    engine.submit(job_payload("early", submit_time_s=0.0))
    engine.submit(job_payload("late", submit_time_s=7200.0))
    engine.clock_op("step", to_s=10.0)
    engine.pump()
    states = engine.status()["jobs"]
    assert states["early"] != "accepted"  # admitted inside the watermark
    assert states["late"] == "accepted"  # still beyond the watermark
    engine.drain()


def test_duplicate_submission_rejected_for_the_service_lifetime():
    engine = make_engine()
    engine.start()
    engine.submit(job_payload("job-0"))
    with pytest.raises(ProtocolError) as err:
        engine.submit(job_payload("job-0"))
    assert err.value.reason == REJECT_DUPLICATE
    rejects = [
        e for e in engine.tracer.events if e.etype == ev.JOB_REJECT
    ]
    assert len(rejects) == 1
    assert rejects[0].fields["reason"] == REJECT_DUPLICATE
    engine.drain()


def test_full_admission_queue_backpressures():
    engine = make_engine(queue_limit=2)
    engine.start()
    engine.submit(job_payload("job-0"))
    engine.submit(job_payload("job-1"))
    with pytest.raises(ProtocolError) as err:
        engine.submit(job_payload("job-2"))
    assert err.value.reason == REJECT_QUEUE_FULL
    assert engine.stack.admission.rejected_total == 1
    engine.drain()
    assert engine.jobs_finished == 2


def test_invalid_job_payload_is_rejected_not_crashed():
    engine = make_engine()
    engine.start()
    for bad in (
        {"v": 1, "model": "resnet50"},  # no job_id
        {"v": 1, "job_id": ""},  # empty job_id
        {"v": 1, "job_id": "j", "model": "resnet50"},  # no dataset/work
    ):
        with pytest.raises(ProtocolError) as err:
            engine.submit(bad)
        assert err.value.reason == REJECT_INVALID
    assert engine.jobs_submitted == 0
    engine.drain()


def test_cancel_frees_the_job_and_unknown_ids_reject():
    engine = make_engine()
    engine.start()
    engine.submit(job_payload("victim"))
    engine.submit(job_payload("survivor"))
    engine.clock_op("step", to_s=1.0)
    engine.pump()
    response = engine.cancel("victim", reason="client_request")
    assert response["ok"] is True
    with pytest.raises(ProtocolError) as err:
        engine.cancel("no-such-job")
    assert err.value.reason == REJECT_INVALID
    engine.drain()
    assert engine.status()["jobs"]["victim"] == "cancelled"
    assert engine.status()["jobs"]["survivor"] == "finished"
    cancels = [
        e for e in engine.tracer.events if e.etype == ev.JOB_CANCEL
    ]
    assert [e.job_id for e in cancels] == ["victim"]
    assert cancels[0].fields["reason"] == "client_request"


def test_graceful_drain_refuses_new_work_and_finishes_backlog():
    engine = make_engine()
    engine.start()
    engine.submit(job_payload("job-0"))
    result = engine.drain()
    assert len(result.finished_records()) == 1
    assert engine.stopped
    with pytest.raises(ProtocolError) as err:
        engine.submit(job_payload("job-1"))
    assert err.value.reason == REJECT_SHUTTING_DOWN
    # Idempotent: a second drain returns the same result.
    assert engine.drain() is result


def test_service_lifecycle_events_bracket_the_run():
    engine = make_engine()
    engine.start()
    engine.submit(job_payload("job-0"))
    engine.clock_op("pause")
    engine.drain()
    service = [
        e
        for e in engine.tracer.events
        if e.etype in ev.SERVICE_TYPES
    ]
    assert service[0].etype == ev.SERVICE_START
    assert service[-1].etype == ev.SERVICE_STOP
    assert service[-1].fields == {
        "reason": "drained",
        "jobs_submitted": 1,
        "jobs_finished": 1,
    }
    assert engine.tracer.events[0].etype == ev.SERVICE_START
    assert engine.tracer.events[-1].etype == ev.SERVICE_STOP


def test_metrics_report_latency_percentiles_and_queue_depth():
    engine = make_engine()
    engine.start()
    for i in range(4):
        engine.submit(job_payload(f"job-{i}"))
    engine.drain()
    serve = engine.metrics()["serve"]
    assert serve["decisions_total"] >= 1
    assert serve["admit_to_place_ms"]["count"] == 4
    assert serve["admit_to_place_ms"]["p50"] >= 0.0
    assert (
        serve["admit_to_place_ms"]["p99"]
        >= serve["admit_to_place_ms"]["p50"]
    )
    assert serve["queue_depth"] == 0


def test_minibatch_backend_drives_the_same_engine():
    engine = make_engine(simulator="minibatch")
    engine.start()
    engine.submit(job_payload("job-0"))
    engine.submit(job_payload("job-1"))
    engine.drain()
    assert engine.jobs_finished == 2
