"""Sliding-window histograms: bounds, percentiles, determinism."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs import MetricsRegistry, SlidingWindow, WINDOW_NAMES
from repro.obs.windows import DEFAULT_CAPACITY, nearest_rank

pytestmark = pytest.mark.obs

REPO = Path(__file__).resolve().parents[2]


def test_nearest_rank_convention():
    assert nearest_rank([], 0.99) == 0.0
    samples = sorted(float(i) for i in range(1, 101))
    assert nearest_rank(samples, 0.50) == 50.0
    assert nearest_rank(samples, 0.95) == 95.0
    assert nearest_rank(samples, 0.99) == 99.0
    assert nearest_rank([7.0], 0.99) == 7.0


def test_capacity_bounds_retention_but_not_observed_total():
    window = SlidingWindow(capacity=4)
    for i in range(10):
        window.observe(float(i), float(i))
    assert len(window) == 4
    assert window.observed_total == 10
    assert window.values() == [6.0, 7.0, 8.0, 9.0]
    assert window.last() == 9.0


def test_horizon_trims_old_samples():
    window = SlidingWindow(capacity=100, horizon_s=10.0)
    window.observe(0.0, 1.0)
    window.observe(5.0, 2.0)
    window.observe(16.0, 3.0)  # cutoff 6.0 evicts the t=0 and t=5 samples
    assert window.values() == [3.0]


def test_snapshot_shape_and_stability():
    window = SlidingWindow()
    for i in (5, 1, 3, 2, 4):
        window.observe(float(i), float(i))
    snap = window.snapshot()
    assert list(snap) == ["count", "observed_total", "p50", "p95", "p99"]
    assert snap == {
        "count": 5, "observed_total": 5, "p50": 3.0, "p95": 5.0,
        "p99": 5.0,
    }
    # Same observation sequence => byte-identical snapshot JSON.
    other = SlidingWindow()
    for i in (5, 1, 3, 2, 4):
        other.observe(float(i), float(i))
    assert json.dumps(snap) == json.dumps(other.snapshot())


def test_invalid_construction_rejected():
    with pytest.raises(ValueError):
        SlidingWindow(capacity=0)
    with pytest.raises(ValueError):
        SlidingWindow(horizon_s=0.0)


def test_registry_windows_created_on_first_observe():
    registry = MetricsRegistry()
    assert registry.window("jct_s") is None
    registry.observe("jct_s", 10.0, 120.0)
    registry.observe("jct_s", 20.0, 60.0, job_id="j1")
    cluster_window = registry.window("jct_s")
    assert cluster_window is not None and len(cluster_window) == 1
    assert cluster_window.capacity == DEFAULT_CAPACITY
    job_window = registry.window("jct_s", job_id="j1")
    assert job_window is not None and job_window.values() == [60.0]


def test_well_known_window_catalogue():
    assert WINDOW_NAMES == (
        "decision_latency_ms",
        "queue_depth",
        "cache_hit_ratio",
        "jct_s",
    )


_DETERMINISM_SCRIPT = """
import json
from repro import units
from repro.cluster.hardware import Cluster
from repro.obs import Tracer
from repro.sim.runner import run_experiment
from repro.workloads.trace import TraceConfig, generate_trace

cluster = Cluster.build(2, 4, units.gb(25), units.gbps(1.6))
jobs = generate_trace(TraceConfig(num_jobs=6, seed=11,
                                  mean_interarrival_s=300.0,
                                  duration_median_s=900.0))
tracer = Tracer()
run_experiment(cluster, "fifo", "silod", jobs, tracer=tracer)
snap = tracer.metrics.snapshot()
# Decision latency is wall-clock by design: machinery deterministic,
# values not. Drop it before comparing runs.
snap.get("cluster", {}).get("windows", {}).pop("decision_latency_ms", None)
print(json.dumps(snap, sort_keys=True))
"""


def _snapshot_in_subprocess(no_numpy: bool) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    if no_numpy:
        env["REPRO_NO_NUMPY"] = "1"
    else:
        env.pop("REPRO_NO_NUMPY", None)
    result = subprocess.run(
        [sys.executable, "-c", _DETERMINISM_SCRIPT],
        capture_output=True, text=True, timeout=120, env=env,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout.strip()


def test_window_percentiles_deterministic_across_reruns_and_backends():
    """Acceptance: same snapshot with and without numpy, run to run."""
    first = _snapshot_in_subprocess(no_numpy=False)
    again = _snapshot_in_subprocess(no_numpy=False)
    fallback = _snapshot_in_subprocess(no_numpy=True)
    assert first == again
    assert first == fallback
    snap = json.loads(first)
    windows = snap["cluster"]["windows"]
    assert set(windows) == {"queue_depth", "cache_hit_ratio", "jct_s"}
    assert windows["jct_s"]["count"] == 6
