"""Tracer behaviour: event ordering, validation, metrics, no-op path."""

import pytest

from repro.obs import (
    EVENT_FIELDS,
    EVENT_TYPES,
    NULL_TRACER,
    Event,
    NullTracer,
    Tracer,
    validate_event,
)

pytestmark = pytest.mark.obs


def _emit_one_of_each(tracer):
    tracer.job_submit(
        0.0, "j1", model="resnet50", dataset="d", num_gpus=2,
        dataset_mb=100.0, total_work_mb=300.0,
    )
    tracer.job_start(1.0, "j1", gpus=2, queue_delay_s=1.0)
    tracer.sched_decision(
        1.0, policy="fifo", storage_aware=True, num_jobs=1, num_running=1,
        gpus_granted=2, cache_granted_mb=50.0, io_granted_mbps=10.0,
        latency_ms=0.5,
    )
    tracer.alloc_change(2.0, "j1", gpus_before=2, gpus_after=1)
    tracer.cache_admit(2.0, "d", delta_mb=40.0, resident_mb=40.0, via="miss")
    tracer.cache_evict(
        3.0, "d", delta_mb=10.0, resident_mb=30.0, reason="target_shrink"
    )
    tracer.promote_effective(
        4.0, "j1", key="d", effective_mb=30.0, reason="epoch_boundary"
    )
    tracer.epoch_boundary(4.0, "j1", epoch=1)
    tracer.io_throttle(
        4.0, "j1", desired_mbps=20.0, hit_ratio=0.3,
        demand_mbps=14.0, grant_mbps=10.0,
    )
    tracer.fault_inject(4.5, kind="server_crash", target="", magnitude=1.0)
    tracer.node_down(4.5, kind="server", gpus_lost=8.0, cache_lost_mb=64.0)
    tracer.cache_invalidate(
        4.5, "d", delta_mb=5.0, resident_mb=25.0, cause="server_crash"
    )
    tracer.job_preempt(
        4.5, "j1", reason="server_crash", rollback_mb=10.0, epoch=1
    )
    tracer.node_up(4.8, kind="server", gpus_restored=8.0, cache_restored_mb=64.0)
    tracer.job_restart(4.8, "j1", reason="job_restart", epoch=1)
    tracer.decision_epoch(
        4.9, round=1, trigger="reschedule", num_running=1, num_queued=0,
        gpus_total=8.0, cache_total_mb=64.0, io_total_mbps=100.0,
    )
    tracer.decision_job(
        4.9, "j1", round=1, gpus=2.0, cache_mb=50.0, io_mbps=10.0,
        f_star_mbps=20.0, hit_ratio=0.3, est_mbps=14.3, io_bound=True,
        eff_cache_mb=30.0, score=0.0, generation="V100",
        f_star_gen_mbps={"V100": 20.0},
    )
    tracer.slo_warn(
        4.9, "j1", deadline_s=6.0, elapsed_s=4.9, remaining_s=1.1,
        ratio=0.8167,
    )
    tracer.slo_violation(
        5.0, "j1", deadline_s=4.0, jct_s=5.0, overrun_s=1.0,
        state="finished",
    )
    tracer.job_finish(5.0, "j1", jct_s=5.0, epochs_done=1)
    tracer.service_start(
        0.0, policy="fifo", cache="silod", simulator="fluid",
        gpus=16.0, queue_limit=64,
    )
    tracer.clock_set(0.0, action="resume", speedup=0.0, virtual_s=0.0)
    tracer.job_reject(5.5, "j2", reason="queue_full", queue_depth=64)
    tracer.job_cancel(5.5, "j1", reason="user", work_done_mb=120.0)
    tracer.service_stop(6.0, reason="drained", jobs_submitted=2, jobs_finished=1)


def test_typed_helpers_cover_every_event_type():
    tracer = Tracer()
    _emit_one_of_each(tracer)
    assert sorted({e.etype for e in tracer.events}) == sorted(EVENT_TYPES)


def test_events_are_schema_valid_and_sequenced():
    tracer = Tracer()
    _emit_one_of_each(tracer)
    for event in tracer.events:
        validate_event(event)
    seqs = [e.seq for e in tracer.events]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)


def test_emission_order_is_preserved_under_timestamp_ties():
    tracer = Tracer()
    tracer.epoch_boundary(1.0, "a", epoch=1)
    tracer.epoch_boundary(1.0, "b", epoch=1)
    tracer.epoch_boundary(1.0, "c", epoch=1)
    assert [e.job_id for e in tracer.events] == ["a", "b", "c"]


def test_validate_event_rejects_unknown_type_and_bad_fields():
    with pytest.raises(ValueError):
        validate_event(Event(0.0, "not_a_type"))
    with pytest.raises(ValueError):
        validate_event(Event(0.0, "epoch_boundary", "j", {}))
    with pytest.raises(ValueError):
        validate_event(
            Event(0.0, "epoch_boundary", "j", {"epoch": 1, "bogus": 2})
        )


def test_metrics_counters_track_events():
    tracer = Tracer()
    _emit_one_of_each(tracer)
    snap = tracer.metrics.snapshot()
    assert snap["cluster"]["counters"]["events_total"] == len(tracer.events)
    assert snap["cluster"]["counters"]["events.job_submit"] == 1
    assert snap["cluster"]["counters"]["cache.admitted_mb"] == 40.0
    assert snap["cluster"]["counters"]["cache.evicted_mb"] == 10.0
    # io_throttle above was capped (grant < demand).
    assert snap["jobs"]["j1"]["counters"]["io.throttled_rounds"] == 1


def test_io_throttle_derives_capped_flag():
    tracer = Tracer()
    tracer.io_throttle(
        0.0, "j", desired_mbps=10.0, hit_ratio=0.0,
        demand_mbps=10.0, grant_mbps=10.0,
    )
    tracer.io_throttle(
        0.0, "j", desired_mbps=10.0, hit_ratio=0.0,
        demand_mbps=10.0, grant_mbps=4.0,
    )
    assert [e.fields["capped"] for e in tracer.events] == [False, True]


def test_null_tracer_records_nothing():
    tracer = NullTracer()
    assert not tracer.enabled
    _emit_one_of_each(tracer)
    assert len(tracer) == 0
    assert tracer.metrics.snapshot() == {
        "schema_version": 2,
        "cluster": {"counters": {}, "gauges": {}},
        "jobs": {},
    }
    assert not NULL_TRACER.enabled


def test_max_events_cap_drops_and_counts():
    tracer = Tracer(max_events=3)
    for i in range(5):
        tracer.epoch_boundary(float(i), "j", epoch=i + 1)
    assert len(tracer.events) == 3
    assert tracer.dropped == 2


def test_clear_resets_events_and_metrics():
    tracer = Tracer()
    _emit_one_of_each(tracer)
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.metrics.snapshot() == {
        "schema_version": 2,
        "cluster": {"counters": {}, "gauges": {}},
        "jobs": {},
    }


def test_event_fields_schema_has_no_envelope_collisions():
    for etype, fields in EVENT_FIELDS.items():
        assert len(set(fields)) == len(fields), etype
        for reserved in ("seq", "ts_s", "etype", "job_id"):
            assert reserved not in fields, etype
