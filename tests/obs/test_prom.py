"""Prometheus text exposition of metrics snapshots."""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.prom import (
    PROMETHEUS_CONTENT_TYPE,
    render_metrics_response,
    render_snapshot,
)

pytestmark = pytest.mark.obs


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.inc("sched_rounds", 3)
    registry.set_gauge("gpus_busy", 6.0)
    registry.observe("queue_depth", 1.0, 2.0)
    registry.observe("queue_depth", 2.0, 4.0)
    registry.observe("jct_s", 5.0, 120.0, job_id="job-1")
    registry.set_gauge("cache_mb", 512.0, job_id="job-1")
    return registry


def test_content_type_is_exposition_v004():
    assert PROMETHEUS_CONTENT_TYPE.startswith("text/plain; version=0.0.4")


def test_render_snapshot_types_labels_and_values():
    text = render_snapshot(_populated_registry().snapshot())
    assert "# TYPE repro_sched_rounds counter" in text
    assert "repro_sched_rounds 3" in text
    assert "# TYPE repro_gpus_busy gauge" in text
    assert "# TYPE repro_window_queue_depth summary" in text
    assert 'repro_window_queue_depth{quantile="0.5"} 2' in text
    assert 'repro_window_queue_depth{quantile="0.99"} 4' in text
    assert "repro_window_queue_depth_count 2" in text
    # Job-scoped metrics carry the job label.
    assert 'repro_cache_mb{job="job-1"} 512' in text
    assert 'repro_window_jct_s{job="job-1",quantile="0.5"} 120' in text
    assert text.endswith("\n")


def test_type_header_precedes_first_sample_only_once():
    registry = MetricsRegistry()
    registry.inc("sched_rounds", 1)
    registry.inc("sched_rounds", 1, job_id="job-1")
    text = render_snapshot(registry.snapshot())
    assert text.count("# TYPE repro_sched_rounds counter") == 1
    lines = text.splitlines()
    first = lines.index("# TYPE repro_sched_rounds counter")
    assert lines[first + 1].startswith("repro_sched_rounds")


def test_equal_registries_render_byte_identical():
    assert render_snapshot(
        _populated_registry().snapshot()
    ) == render_snapshot(_populated_registry().snapshot())


def test_metric_names_are_sanitised():
    registry = MetricsRegistry()
    registry.inc("weird.name-1", 2)
    text = render_snapshot(registry.snapshot())
    assert "repro_weird_name_1 2" in text


def test_render_metrics_response_includes_serve_block():
    response = {
        "metrics": _populated_registry().snapshot(),
        "serve": {
            "decisions_total": 7,
            "decision_latency_p99_ms": 1.25,
            "queue_depth": 2,
            "rejected_total": 1,
            "admit_to_place_ms": {"p50": 3.0, "p99": 9.0, "count": 4},
        },
    }
    text = render_metrics_response(response)
    assert "# TYPE repro_serve_decisions_total counter" in text
    assert "repro_serve_decisions_total 7" in text
    assert "# TYPE repro_serve_decision_latency_p99_ms gauge" in text
    assert "repro_serve_decision_latency_p99_ms 1.25" in text
    assert "# TYPE repro_serve_admit_to_place_ms summary" in text
    assert 'repro_serve_admit_to_place_ms{quantile="0.99"} 9' in text
    assert "repro_serve_admit_to_place_ms_count 4" in text
    # The registry part renders exactly as render_snapshot would.
    assert render_snapshot(response["metrics"]).rstrip("\n") in text


def test_render_empty_snapshot():
    assert render_snapshot(MetricsRegistry().snapshot()) == "\n"
