"""Both simulators must tell the same story in events.

On a deterministic 2-job trace, the fluid simulator and the minibatch
emulator are required to emit the *same sequence* of lifecycle events
(``job_submit``/``job_start``/``job_finish`` with the same job ids, in
the same order) and the same per-job epoch-boundary sequences —
timestamps may differ (that is the fidelity gap), the structure may not.
"""

import pytest

from repro import units
from repro.cluster.dataset import Dataset
from repro.cluster.hardware import Cluster
from repro.obs import LIFECYCLE_TYPES, Tracer, validate_event
from repro.sim.runner import run_experiment
from repro.workloads.models import make_job

pytestmark = pytest.mark.obs


def _two_job_trace():
    ds_a = Dataset(name="d-a", size_mb=units.gb(20))
    ds_b = Dataset(name="d-b", size_mb=units.gb(30))
    return [
        make_job(
            "job-a", "resnet50", ds_a, num_gpus=2, num_epochs=3,
            submit_time_s=0.0,
        ),
        make_job(
            "job-b", "alexnet", ds_b, num_gpus=1, num_epochs=2,
            submit_time_s=120.0,
        ),
    ]


def _cluster():
    return Cluster.build(
        num_servers=2,
        gpus_per_server=4,
        cache_per_server_mb=units.gb(25),
        remote_io_mbps=units.gbps(1.6),
    )


@pytest.fixture(scope="module", params=["silod", "alluxio"])
def event_logs(request):
    logs = {}
    for simulator in ("fluid", "minibatch"):
        tracer = Tracer()
        extra = (
            {"reschedule_interval_s": 300.0}
            if simulator == "fluid"
            else {}
        )
        run_experiment(
            _cluster(),
            "fifo",
            request.param,
            _two_job_trace(),
            simulator=simulator,
            tracer=tracer,
            **extra,
        )
        logs[simulator] = tracer.events
    return logs


def test_all_events_schema_valid(event_logs):
    for events in event_logs.values():
        for event in events:
            validate_event(event)


def test_lifecycle_sequences_identical(event_logs):
    sequences = {
        simulator: [
            (e.etype, e.job_id)
            for e in events
            if e.etype in LIFECYCLE_TYPES
        ]
        for simulator, events in event_logs.items()
    }
    assert sequences["fluid"] == sequences["minibatch"]
    # And the sequence is complete: every job submits, starts, finishes.
    kinds = [etype for etype, _ in sequences["fluid"]]
    assert kinds.count("job_submit") == 2
    assert kinds.count("job_start") == 2
    assert kinds.count("job_finish") == 2


def test_epoch_sequences_identical(event_logs):
    def _epochs(events):
        out = {}
        for e in events:
            if e.etype == "epoch_boundary":
                out.setdefault(e.job_id, []).append(e.fields["epoch"])
        return out

    assert _epochs(event_logs["fluid"]) == _epochs(event_logs["minibatch"])


def test_finish_events_agree_on_epochs_done(event_logs):
    def _finishes(events):
        return {
            e.job_id: e.fields["epochs_done"]
            for e in events
            if e.etype == "job_finish"
        }

    assert _finishes(event_logs["fluid"]) == _finishes(
        event_logs["minibatch"]
    )
    # The trace is built in epochs, so the counts are known exactly.
    assert _finishes(event_logs["fluid"]) == {"job-a": 3, "job-b": 2}


def test_jcts_close_across_simulators(event_logs):
    def _jct(events, job_id):
        return next(
            e.fields["jct_s"]
            for e in events
            if e.etype == "job_finish" and e.job_id == job_id
        )

    for job_id in ("job-a", "job-b"):
        fluid = _jct(event_logs["fluid"], job_id)
        mini = _jct(event_logs["minibatch"], job_id)
        assert mini == pytest.approx(fluid, rel=0.1)
