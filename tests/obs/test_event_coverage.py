"""Every event type in the schema is exercised by at least one test.

A meta-test over the tests tree: when someone adds an event type to
``repro.obs.events.EVENT_TYPES`` without touching any test, this is the
test that fails — the schema's contract is only as good as the suite
that pins it down.
"""

import re
from pathlib import Path

import pytest

from repro.obs import events as ev

pytestmark = pytest.mark.obs

TESTS_DIR = Path(__file__).resolve().parents[1]


def _tests_corpus() -> str:
    parts = []
    for path in sorted(TESTS_DIR.rglob("*.py")):
        if path.name != Path(__file__).name:
            parts.append(path.read_text(encoding="utf-8"))
    return "\n".join(parts)


def test_every_event_type_appears_in_some_test():
    corpus = _tests_corpus()
    # An event type counts as exercised when its name appears as a
    # whole token — a quoted literal ("job_submit") or a typed tracer
    # helper call (tracer.job_submit(...)).
    unexercised = [
        etype
        for etype in ev.EVENT_TYPES
        if not re.search(rf"\b{re.escape(etype)}\b", corpus)
    ]
    assert not unexercised, (
        "event types declared in repro/obs/events.py but never named in "
        f"any test: {unexercised}; add a test that emits or asserts on "
        "each of them"
    )


def test_every_event_type_has_a_field_schema():
    assert set(ev.EVENT_FIELDS) == set(ev.EVENT_TYPES)
