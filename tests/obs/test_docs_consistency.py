"""Docs/code lockstep: the OBSERVABILITY.md schema must match the code.

Runs ``tools/check_obs_docs.py`` both in-process (for precise drift
assertions) and as a subprocess (the CI entry point operators use).
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.events import EVENT_FIELDS

pytestmark = pytest.mark.obs

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
TOOL = REPO_ROOT / "tools" / "check_obs_docs.py"
DOC = REPO_ROOT / "docs" / "OBSERVABILITY.md"


def _load_tool():
    import importlib.util

    spec = importlib.util.spec_from_file_location("check_obs_docs", TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_doc_schema_matches_code():
    tool = _load_tool()
    doc_schema = tool.parse_doc_schema(DOC.read_text())
    problems = tool.compare(
        doc_schema, {k: list(v) for k, v in EVENT_FIELDS.items()}
    )
    assert problems == []


def test_parser_sees_every_event_type():
    tool = _load_tool()
    doc_schema = tool.parse_doc_schema(DOC.read_text())
    assert sorted(doc_schema) == sorted(EVENT_FIELDS)


def test_compare_flags_drift_in_both_directions():
    tool = _load_tool()
    code = {"epoch_boundary": ["epoch"]}
    # Undocumented event type.
    assert tool.compare({}, code)
    # Phantom documented type.
    assert tool.compare(
        {"epoch_boundary": ["epoch"], "ghost": []}, code
    )
    # Field drift both ways.
    assert tool.compare({"epoch_boundary": ["epoch", "extra"]}, code)
    assert tool.compare({"epoch_boundary": []}, code)
    # In sync.
    assert tool.compare({"epoch_boundary": ["epoch"]}, code) == []


def test_cli_entry_point_passes():
    proc = subprocess.run(
        [sys.executable, str(TOOL)], capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stderr
    assert "in sync" in proc.stdout
