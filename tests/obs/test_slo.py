"""SLO tracking: tracker state machine, simulator wiring, reporting."""

import dataclasses

import pytest

from repro import units
from repro.cluster.hardware import Cluster
from repro.obs import NullTracer, Tracer
from repro.obs import events as ev
from repro.obs.report import render_slo_report, slo_attainment, slo_table
from repro.obs.slo import WARN_FRACTION, SLOTracker
from repro.sim.runner import run_experiment
from repro.workloads.trace import TraceConfig, generate_trace

pytestmark = pytest.mark.obs


def _etypes(tracer):
    return [e.etype for e in tracer.events]


class TestTracker:
    def test_no_deadline_no_tracking(self):
        tracer = Tracer()
        tracker = SLOTracker(tracer)
        tracker.register("j1", 0.0, None)
        assert len(tracker) == 0
        tracker.check(1e9)
        tracker.finish("j1", 1e9)
        assert tracer.events == []

    def test_warn_fires_once_at_threshold(self):
        tracer = Tracer()
        tracker = SLOTracker(tracer)
        tracker.register("j1", 100.0, 100.0)
        tracker.check(100.0 + WARN_FRACTION * 100.0 - 1.0)
        assert tracer.events == []
        tracker.check(100.0 + WARN_FRACTION * 100.0)
        tracker.check(100.0 + WARN_FRACTION * 100.0 + 5.0)
        assert _etypes(tracer) == [ev.SLO_WARN]
        fields = tracer.events[0].fields
        assert fields["deadline_s"] == 100.0
        assert fields["ratio"] == pytest.approx(WARN_FRACTION)
        assert fields["remaining_s"] == pytest.approx(20.0)

    def test_violation_while_running_fires_once(self):
        tracer = Tracer()
        tracker = SLOTracker(tracer)
        tracker.register("j1", 0.0, 50.0)
        tracker.check(60.0)
        tracker.check(70.0)
        assert _etypes(tracer) == [ev.SLO_VIOLATION]
        fields = tracer.events[0].fields
        assert fields["state"] == "running"
        assert fields["overrun_s"] == pytest.approx(10.0)
        # Late finish after a running-state violation stays silent.
        tracker.finish("j1", 80.0)
        assert _etypes(tracer) == [ev.SLO_VIOLATION]

    def test_late_finish_between_checkpoints_violates_as_finished(self):
        tracer = Tracer()
        tracker = SLOTracker(tracer)
        tracker.register("j1", 0.0, 50.0)
        tracker.check(30.0)  # inside the budget, below the warn line
        tracker.finish("j1", 55.0)
        assert _etypes(tracer) == [ev.SLO_VIOLATION]
        fields = tracer.events[0].fields
        assert fields["state"] == "finished"
        assert fields["jct_s"] == pytest.approx(55.0)

    def test_on_time_finish_is_silent(self):
        tracer = Tracer()
        tracker = SLOTracker(tracer)
        tracker.register("j1", 0.0, 100.0)
        tracker.check(50.0)
        tracker.finish("j1", 70.0)
        assert tracer.events == []
        tracker.check(1e9)  # job settled: nothing further ever fires
        assert tracer.events == []

    def test_discard_silences_cancelled_jobs(self):
        tracer = Tracer()
        tracker = SLOTracker(tracer)
        tracker.register("j1", 0.0, 10.0)
        tracker.discard("j1")
        tracker.check(1e9)
        tracker.finish("j1", 1e9)
        assert tracer.events == []

    def test_null_tracer_never_emits(self):
        tracker = SLOTracker(NullTracer())
        tracker.register("j1", 0.0, 10.0)
        tracker.check(1e9)
        tracker.finish("j1", 1e9)  # must not raise


def _run_with_deadlines(deadlines):
    """A fluid run with ``deadlines[i]`` attached to job ``i``."""
    cluster = Cluster.build(2, 4, units.gb(25), units.gbps(1.6))
    jobs = list(
        generate_trace(
            TraceConfig(
                num_jobs=max(4, len(deadlines)),
                seed=11,
                mean_interarrival_s=300.0,
                duration_median_s=900.0,
            )
        )
    )
    for i, deadline in enumerate(deadlines):
        if deadline is not None:
            jobs[i] = dataclasses.replace(jobs[i], deadline_s=deadline)
    tracer = Tracer()
    run_experiment(cluster, "fifo", "silod", jobs, tracer=tracer)
    return jobs, tracer.events


def test_simulator_emits_violation_for_impossible_deadline():
    jobs, events = _run_with_deadlines([1.0])
    violations = [e for e in events if e.etype == ev.SLO_VIOLATION]
    assert [e.job_id for e in violations] == [jobs[0].job_id]
    assert violations[0].fields["deadline_s"] == 1.0
    assert violations[0].fields["overrun_s"] > 0


def test_simulator_stays_silent_for_generous_deadline():
    _, events = _run_with_deadlines([1e9])
    assert not any(
        e.etype in (ev.SLO_WARN, ev.SLO_VIOLATION) for e in events
    )


def test_slo_table_and_attainment_with_injected_violation():
    jobs, events = _run_with_deadlines([1.0, 1e9])
    rows = slo_table(events)
    assert [r["job"] for r in rows] == sorted(
        [jobs[0].job_id, jobs[1].job_id]
    )
    by_job = {r["job"]: r for r in rows}
    assert by_job[jobs[0].job_id]["status"] == "violated"
    assert by_job[jobs[0].job_id]["margin_min"] < 0
    assert by_job[jobs[1].job_id]["status"] == "met"
    assert by_job[jobs[1].job_id]["margin_min"] > 0
    summary = slo_attainment(events)
    assert summary == {
        "jobs_with_deadline": 2,
        "met": 1,
        "violated": 1,
        "attainment": 0.5,
    }


def test_render_slo_report_headline_and_table():
    _, events = _run_with_deadlines([1.0, 1e9])
    text = render_slo_report(events)
    assert text.startswith("SLO attainment: 1/2 (50.0%) met, 1 violated")
    assert "deadline attainment" in text
    assert "violated" in text and "met" in text


def test_render_slo_report_without_deadlines():
    _, events = _run_with_deadlines([])
    assert render_slo_report(events) == (
        "SLO attainment: no job declared a deadline_s"
    )
    assert slo_attainment(events) is None
    assert slo_table(events) == []
