"""The report renderer: tables, timeline binning, dedup semantics."""

import pytest

from repro.obs import Tracer, render_report, save_timeline_csv, timeline_rows
from repro.obs.report import (
    cache_table,
    decision_audit,
    job_table,
    summary_rows,
)

pytestmark = pytest.mark.obs


@pytest.fixture
def tracer():
    t = Tracer()
    t.job_submit(
        0.0, "j1", model="resnet50", dataset="d", num_gpus=1,
        dataset_mb=100.0, total_work_mb=200.0,
    )
    t.sched_decision(
        0.0, policy="fifo", storage_aware=True, num_jobs=1, num_running=1,
        gpus_granted=1, cache_granted_mb=50.0, io_granted_mbps=20.0,
        latency_ms=0.2,
    )
    t.job_start(0.0, "j1", gpus=1, queue_delay_s=0.0)
    t.io_throttle(
        0.0, "j1", desired_mbps=40.0, hit_ratio=0.0,
        demand_mbps=40.0, grant_mbps=20.0,
    )
    t.cache_admit(60.0, "d", delta_mb=50.0, resident_mb=50.0, via="miss")
    t.epoch_boundary(100.0, "j1", epoch=1)
    t.promote_effective(
        100.0, "j1", key="d", effective_mb=50.0, reason="epoch_boundary"
    )
    t.io_throttle(
        100.0, "j1", desired_mbps=40.0, hit_ratio=0.5,
        demand_mbps=20.0, grant_mbps=20.0,
    )
    t.job_finish(200.0, "j1", jct_s=200.0, epochs_done=2)
    return t


def test_job_table(tracer):
    rows = job_table(tracer.events)
    assert len(rows) == 1
    row = rows[0]
    assert row["job"] == "j1"
    assert row["jct_min"] == pytest.approx(200.0 / 60.0)
    assert row["epochs"] == 2


def test_timeline_reconstructs_achieved_throughput(tracer):
    rows = timeline_rows(tracer.events, bins=2)
    assert len(rows) == 2
    # First window: hit 0, grant 20 -> achieved = min(40, 20/(1-0)) = 20.
    assert rows[0]["achieved_mbps"] == pytest.approx(20.0)
    assert rows[0]["remote_io_mbps"] == pytest.approx(20.0)
    # Second window: hit 0.5, grant 20 -> min(40, 20/0.5) = 40 (f*-bound).
    assert rows[1]["achieved_mbps"] == pytest.approx(40.0)
    assert rows[1]["ideal_mbps"] == pytest.approx(40.0)


def test_io_throttle_dedup_keeps_last_per_round(tracer):
    # A re-emission at the same (ts, job) — e.g. the minibatch emulator's
    # measured-hit pass — must supersede the model-based event.
    tracer.io_throttle(
        0.0, "j1", desired_mbps=40.0, hit_ratio=0.25,
        demand_mbps=30.0, grant_mbps=20.0,
    )
    rows = timeline_rows(tracer.events, bins=2)
    # achieved becomes min(40, 20/(1-0.25)) = 26.67 with the override.
    assert rows[0]["achieved_mbps"] == pytest.approx(20.0 / 0.75)


def test_decision_audit(tracer):
    rows = decision_audit(tracer.events)
    assert len(rows) == 1
    row = rows[0]
    assert row["policy"] == "fifo"
    assert row["rounds"] == 1
    assert row["mean_latency_ms"] == pytest.approx(0.2)


def test_cache_table(tracer):
    rows = cache_table(tracer.events)
    assert len(rows) == 1
    row = rows[0]
    assert row["key"] == "d"
    assert row["admitted_mb"] == pytest.approx(50.0)
    assert row["last_effective_mb"] == pytest.approx(50.0)


def test_summary_rows(tracer):
    stats = {r["metric"]: r["value"] for r in summary_rows(tracer.events)}
    assert stats["jobs submitted"] == 1
    assert stats["jobs finished"] == 1
    assert stats["events"] == len(tracer.events)


def test_render_report_contains_all_sections(tracer):
    text = render_report(tracer.events, bins=2)
    for title in (
        "run summary",
        "job lifecycle",
        "throughput timeline",
        "scheduler decision audit",
        "cache activity",
    ):
        assert title in text


def test_render_report_empty_log():
    assert "run summary" in render_report([])


def test_timeline_csv(tracer, tmp_path):
    path = tmp_path / "timeline.csv"
    save_timeline_csv(tracer.events, path, bins=2)
    lines = path.read_text().strip().splitlines()
    assert lines[0] == "t_min,running,achieved_mbps,ideal_mbps,remote_io_mbps"
    assert len(lines) == 3
