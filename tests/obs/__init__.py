"""Tests for the structured observability layer (``repro.obs``)."""
