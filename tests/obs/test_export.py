"""Exporters: JSONL round trip, CSV, Chrome trace_event validity."""

import csv
import json

import pytest

from repro.obs import (
    Tracer,
    chrome_trace,
    load_events,
    save_chrome_trace,
    save_events,
    save_events_csv,
)

pytestmark = pytest.mark.obs


@pytest.fixture
def tracer():
    t = Tracer()
    t.job_submit(
        0.0, "j1", model="resnet50", dataset="d", num_gpus=1,
        dataset_mb=10.0, total_work_mb=20.0,
    )
    t.sched_decision(
        0.0, policy="fifo", storage_aware=True, num_jobs=1, num_running=1,
        gpus_granted=1, cache_granted_mb=5.0, io_granted_mbps=2.0,
        latency_ms=0.1,
    )
    t.job_start(0.0, "j1", gpus=1, queue_delay_s=0.0)
    t.cache_admit(1.0, "d", delta_mb=5.0, resident_mb=5.0, via="miss")
    t.epoch_boundary(10.0, "j1", epoch=1)
    t.job_finish(20.0, "j1", jct_s=20.0, epochs_done=2)
    return t


def test_jsonl_round_trip(tracer, tmp_path):
    path = tmp_path / "events.jsonl"
    save_events(tracer.events, path)
    loaded = load_events(path)
    assert loaded == tracer.events


def test_jsonl_header_is_versioned(tracer, tmp_path):
    path = tmp_path / "events.jsonl"
    save_events(tracer.events, path)
    header = json.loads(path.read_text().splitlines()[0])
    assert header == {"v": 1, "kind": "repro-events"}


def test_load_rejects_foreign_files(tmp_path):
    path = tmp_path / "other.jsonl"
    path.write_text('{"kind": "something-else"}\n')
    with pytest.raises(ValueError):
        load_events(path)


def test_csv_export(tracer, tmp_path):
    path = tmp_path / "events.csv"
    save_events_csv(tracer.events, path)
    with open(path, newline="") as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == len(tracer.events)
    assert rows[0]["etype"] == "job_submit"
    fields = json.loads(rows[0]["fields_json"])
    assert fields["model"] == "resnet50"


def test_chrome_trace_is_valid_trace_event_json(tracer, tmp_path):
    path = tmp_path / "trace.json"
    save_chrome_trace(tracer.events, path)
    doc = json.loads(path.read_text())
    assert isinstance(doc["traceEvents"], list)
    phases = {"b", "e", "i", "C", "M"}
    for entry in doc["traceEvents"]:
        assert entry["ph"] in phases
        assert isinstance(entry["name"], str)
        assert isinstance(entry["pid"], int)
        if entry["ph"] != "M":
            assert isinstance(entry["ts"], (int, float))
            assert entry["ts"] >= 0


def test_chrome_trace_spans_jobs(tracer):
    doc = chrome_trace(tracer.events)
    spans = [e for e in doc["traceEvents"] if e["ph"] in ("b", "e")]
    begins = [e for e in spans if e["ph"] == "b"]
    ends = [e for e in spans if e["ph"] == "e"]
    assert len(begins) == len(ends) == 1
    assert begins[0]["id"] == ends[0]["id"]
    # Microsecond timestamps of simulated seconds.
    assert ends[0]["ts"] == pytest.approx(20.0 * 1e6)


def test_chrome_trace_has_counter_tracks(tracer):
    doc = chrome_trace(tracer.events)
    counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    assert counters, "sched_decision should drive counter tracks"
    assert all("args" in e for e in counters)
