"""MetricsRegistry snapshot contract: versioned, sorted, stable."""

import json

import pytest

from repro.obs import MetricsRegistry
from repro.obs.registry import METRICS_SCHEMA_VERSION

pytestmark = pytest.mark.obs


def test_snapshot_carries_schema_version():
    snap = MetricsRegistry().snapshot()
    assert snap["schema_version"] == METRICS_SCHEMA_VERSION == 2


def test_snapshot_keys_are_sorted_regardless_of_insertion_order():
    registry = MetricsRegistry()
    # Deliberately insert in reverse-alphabetical order, jobs included.
    registry.inc("zeta", 1)
    registry.inc("alpha", 1)
    registry.set_gauge("omega", 2.0)
    registry.set_gauge("beta", 1.0)
    registry.observe("queue_depth", 1.0, 3.0)
    registry.observe("cache_hit_ratio", 1.0, 0.5)
    registry.inc("anything", 1, job_id="job-2")
    registry.inc("anything", 1, job_id="job-1")
    snap = registry.snapshot()
    assert list(snap) == ["schema_version", "cluster", "jobs"]
    cluster = snap["cluster"]
    assert list(cluster["counters"]) == ["alpha", "zeta"]
    assert list(cluster["gauges"]) == ["beta", "omega"]
    assert list(cluster["windows"]) == ["cache_hit_ratio", "queue_depth"]
    assert list(snap["jobs"]) == ["job-1", "job-2"]


def test_windows_key_absent_until_first_observation():
    registry = MetricsRegistry()
    registry.inc("rounds", 1)
    assert "windows" not in registry.snapshot()["cluster"]
    registry.observe("queue_depth", 1.0, 1.0)
    assert "windows" in registry.snapshot()["cluster"]


def test_snapshot_is_json_stable_across_equal_registries():
    def build():
        registry = MetricsRegistry()
        registry.inc("rounds", 2)
        registry.observe("jct_s", 1.0, 10.0, job_id="j1")
        registry.set_gauge("gpus_busy", 4.0)
        return registry

    assert json.dumps(build().snapshot()) == json.dumps(build().snapshot())


def test_clear_resets_everything():
    registry = MetricsRegistry()
    registry.inc("rounds", 2)
    registry.observe("jct_s", 1.0, 10.0, job_id="j1")
    registry.clear()
    assert registry.snapshot() == {
        "schema_version": METRICS_SCHEMA_VERSION,
        "cluster": {"counters": {}, "gauges": {}},
        "jobs": {},
    }
    assert registry.job_ids() == []


def test_counter_and_gauge_accessors():
    registry = MetricsRegistry()
    assert registry.counter("missing") == 0
    assert registry.gauge("missing") is None
    registry.inc("rounds")
    registry.inc("rounds", 3, job_id="j1")
    registry.set_gauge("depth", 7.0)
    assert registry.counter("rounds") == 1
    assert registry.counter("rounds", job_id="j1") == 3
    assert registry.gauge("depth") == 7.0
    assert registry.job_ids() == ["j1"]
