"""Decision provenance: emission in the simulators, chain, rendering."""

import dataclasses

import pytest

from repro import units
from repro.cluster.hardware import Cluster
from repro.obs import Tracer
from repro.obs import events as ev
from repro.obs.prov import achieved_rate, decision_chain, render_explain
from repro.sim.runner import run_experiment
from repro.workloads.trace import TraceConfig, generate_trace

pytestmark = pytest.mark.obs


def _traced_run(
    cache: str = "silod",
    num_jobs: int = 6,
    duration_median_s: float = 900.0,
    **sim_kwargs,
):
    cluster = Cluster.build(2, 4, units.gb(25), units.gbps(1.6))
    jobs = generate_trace(
        TraceConfig(
            num_jobs=num_jobs,
            seed=11,
            mean_interarrival_s=300.0,
            duration_median_s=duration_median_s,
        )
    )
    tracer = Tracer()
    run_experiment(cluster, "fifo", cache, jobs, tracer=tracer, **sim_kwargs)
    return jobs, tracer.events


def test_every_round_emits_epoch_then_member_jobs():
    jobs, events = _traced_run()
    epochs = [e for e in events if e.etype == ev.DECISION_EPOCH]
    decisions = [e for e in events if e.etype == ev.DECISION_JOB]
    assert epochs and decisions
    # Round indices are unique and strictly increasing across epochs.
    rounds = [e.fields["round"] for e in epochs]
    assert rounds == sorted(rounds) and len(set(rounds)) == len(rounds)
    by_round = {}
    for d in decisions:
        by_round.setdefault(d.fields["round"], []).append(d)
    for epoch in epochs:
        members = by_round.get(epoch.fields["round"], [])
        assert len(members) == epoch.fields["num_running"]
        # Per-job records are sorted by job_id within the round.
        ids = [d.job_id for d in members]
        assert ids == sorted(ids)
        for d in members:
            assert d.ts_s == epoch.ts_s


def test_decision_job_fields_reconstruct_eq4():
    _, events = _traced_run()
    decisions = [e for e in events if e.etype == ev.DECISION_JOB]
    for d in decisions:
        f = d.fields
        est = achieved_rate(f["f_star_mbps"], f["hit_ratio"], f["io_mbps"])
        assert f["est_mbps"] == pytest.approx(est, abs=1e-9)
        assert f["io_bound"] == (f["est_mbps"] < f["f_star_mbps"] - 1e-9)
        assert 0.0 <= f["hit_ratio"] <= 1.0


def test_achieved_rate_mirrors_eq4():
    assert achieved_rate(100.0, 0.5, 20.0) == pytest.approx(40.0)
    assert achieved_rate(100.0, 0.5, 80.0) == pytest.approx(100.0)
    # Full hit: no remote demand, compute-bound at f* even with no grant.
    assert achieved_rate(100.0, 1.0, 0.0) == pytest.approx(100.0)
    assert achieved_rate(100.0, 0.0, 30.0) == pytest.approx(30.0)


def test_epoch_triggers_get_their_own_rounds():
    # Long jobs and a slow reschedule cadence so epoch boundaries land
    # between rounds and trigger storage-only decisions of their own.
    _, events = _traced_run(
        num_jobs=10,
        duration_median_s=3000.0,
        reschedule_interval_s=1800.0,
    )
    triggers = {
        e.fields["round"]: e.fields["trigger"]
        for e in events
        if e.etype == ev.DECISION_EPOCH
    }
    assert "reschedule" in triggers.values()
    assert "epoch" in triggers.values()
    # Each epoch-triggered decision has a round index of its own (not
    # reusing the enclosing reschedule round's).
    assert len(triggers) == len(set(triggers))


def test_decision_chain_orders_rounds_and_carries_triggers():
    jobs, events = _traced_run()
    chain = decision_chain(events, jobs[0].job_id)
    assert chain
    rounds = [rec.round for rec in chain]
    assert rounds == sorted(rounds)
    assert all(rec.trigger in ("reschedule", "epoch") for rec in chain)


def test_render_explain_output():
    jobs, events = _traced_run()
    job = jobs[0]
    text = render_explain(events, job.job_id)
    assert text.startswith(f"job {job.job_id}: ")
    assert "Eq.5 cache efficiency" in text
    assert "Eq.4: est = min(f*" in text
    assert "round " in text and "[reschedule]" in text
    chain = decision_chain(events, job.job_id)
    assert text.count("round ") == len(chain)


def test_render_explain_unknown_job_says_so():
    _, events = _traced_run(num_jobs=3)
    text = render_explain(events, "nope")
    assert "no decision records for 'nope'" in text


def test_render_explain_narrates_cache_share_moves():
    jobs, events = _traced_run()
    narrated = False
    for job in jobs:
        text = render_explain(events, job.job_id)
        if "cache share " in text:
            narrated = True
            assert ("rose" in text) or ("fell" in text)
    assert narrated, "no job's cache share ever moved across rounds"


def test_deadline_appears_in_explain_header():
    cluster = Cluster.build(2, 4, units.gb(25), units.gbps(1.6))
    jobs = generate_trace(
        TraceConfig(num_jobs=4, seed=3, mean_interarrival_s=200.0)
    )
    jobs = [dataclasses.replace(jobs[0], deadline_s=3600.0)] + list(
        jobs[1:]
    )
    tracer = Tracer()
    run_experiment(cluster, "fifo", "silod", jobs, tracer=tracer)
    text = render_explain(tracer.events, jobs[0].job_id)
    assert "deadline 3600s" in text


def test_baseline_caches_also_emit_provenance():
    _, events = _traced_run(cache="alluxio")
    assert any(e.etype == ev.DECISION_JOB for e in events)
