"""Hoard-style prefetching extension."""

import pytest

from repro.cache.prefetch import PrefetchingDataManager
from repro.cluster.dataset import Dataset
from repro.cluster.hardware import Cluster
from repro.cluster.job import Job
from repro.core.resources import Allocation
from repro.sim.fluid import FluidSimulator
from repro.sim.runner import make_system
from tests.cache.test_systems import context, job

GB = 1024.0


def queued_job(job_id, f_star=114.0, d_mb=100.0 * GB):
    return Job(
        job_id=job_id,
        model="m",
        dataset=Dataset(f"d-{job_id}", d_mb),
        num_gpus=1,
        ideal_throughput_mbps=f_star,
        total_work_mb=3 * d_mb,
    )


class TestPrefetchingDataManager:
    def test_without_queue_behaves_like_silod(self):
        jobs = [job("a", d_mb=1000.0)]
        allocation = Allocation()
        allocation.grant_remote_io("a", 50.0)
        ctx = context(jobs, allocation=allocation)
        decision = PrefetchingDataManager().decide(ctx)
        assert decision.prefetch_rates == {}

    def test_spare_bandwidth_prefetches_queued_datasets(self):
        running = [job("a", d_mb=1000.0)]
        waiting = [queued_job("q1"), queued_job("q2", f_star=10.0)]
        allocation = Allocation()
        allocation.grant_remote_io("a", 50.0)  # 150 MB/s spare of 200
        ctx = context(
            running, effective={"a": 0.0}, allocation=allocation
        )
        ctx.queued_jobs = waiting
        decision = PrefetchingDataManager().decide(ctx)
        assert decision.prefetch_rates
        # Queued datasets received cache targets within the pool.
        assert decision.cache_targets.get("d-q1", 0.0) > 0
        total_targets = sum(decision.cache_targets.values())
        assert total_targets <= ctx.total_cache_mb + 1e-6
        # Prefetch stays within the spare egress.
        spare = ctx.total_io_mbps - sum(decision.io_grants.values())
        assert sum(decision.prefetch_rates.values()) <= spare + 1e-6

    def test_prefetch_fraction_cap(self):
        running = []
        waiting = [queued_job("q1")]
        allocation = Allocation()
        ctx = context(running, allocation=allocation)
        ctx.queued_jobs = waiting
        manager = PrefetchingDataManager(max_prefetch_fraction=0.25)
        # decide() short-circuits with no running jobs; craft one runner.
        running = [job("a", d_mb=1000.0)]
        allocation.grant_remote_io("a", 0.0)
        ctx = context(running, effective={"a": 1000.0}, allocation=allocation)
        ctx.queued_jobs = waiting
        decision = manager.decide(ctx)
        assert sum(decision.prefetch_rates.values()) <= 0.25 * 200.0 + 1e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            PrefetchingDataManager(max_prefetch_fraction=1.5)


def test_prefetch_shortens_queued_jobs_cold_start():
    """End-to-end: with GPUs busy and egress idle, prefetching warms the
    queued job's dataset so it runs (near) compute-bound when scheduled."""
    # Egress (60 MB/s) below f* (100 MB/s): a cold first epoch is
    # IO-bound, which is exactly what prefetching removes.
    cluster = Cluster.build(1, 1, 200.0 * GB, 60.0)
    blocker = Job(
        job_id="blocker",
        model="m",
        dataset=Dataset("d-blocker", 50.0 * GB),
        num_gpus=1,
        ideal_throughput_mbps=100.0,
        total_work_mb=4 * 50.0 * GB,
    )
    follower = Job(
        job_id="follower",
        model="m",
        dataset=Dataset("d-follower", 50.0 * GB),
        num_gpus=1,
        ideal_throughput_mbps=100.0,
        total_work_mb=2 * 50.0 * GB,
        submit_time_s=1.0,
    )

    def run(cache):
        scheduler, cache_system = make_system("fifo", cache)
        return FluidSimulator(
            cluster,
            scheduler,
            cache_system,
            [blocker, follower],
            reschedule_interval_s=300.0,
        ).run()

    plain = run("silod")
    prefetched = run("silod-prefetch")
    jct = lambda result: {
        r.job_id: r.jct_s for r in result.finished_records()
    }
    # The blocker is unaffected; the follower starts warm and finishes
    # meaningfully earlier.
    assert jct(prefetched)["blocker"] == pytest.approx(
        jct(plain)["blocker"], rel=0.02
    )
    assert jct(prefetched)["follower"] < 0.92 * jct(plain)["follower"]
