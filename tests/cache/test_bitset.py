"""Per-job access bitsets (§6 delayed effectiveness)."""

from repro.cache.bitset import JobAccessBitset


def test_fresh_job_sees_preexisting_residents():
    bitset = JobAccessBitset()
    bitset.reset(resident={1, 2, 3})
    assert bitset.is_effective(1)
    assert not bitset.is_effective(9)
    assert bitset.epoch == 0


def test_mid_epoch_additions_are_not_effective_until_next_epoch():
    bitset = JobAccessBitset()
    bitset.reset(resident=set())
    bitset.mark_accessed(7)  # item 7 fetched and cached mid-epoch
    assert not bitset.is_effective(7)
    bitset.start_epoch(resident={7})
    assert bitset.is_effective(7)
    assert bitset.epoch == 1


def test_effective_count_intersects_with_residents():
    bitset = JobAccessBitset()
    bitset.start_epoch(resident={1, 2, 3, 4})
    # Two of the effective items have since been evicted.
    assert bitset.effective_count(resident={3, 4, 9}) == 2


def test_accessed_counter_resets_each_epoch():
    bitset = JobAccessBitset()
    bitset.mark_accessed(1)
    bitset.mark_accessed(2)
    assert bitset.accessed_this_epoch == 2
    bitset.start_epoch(resident=set())
    assert bitset.accessed_this_epoch == 0
