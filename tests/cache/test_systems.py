"""Cache-system decision logic (Alluxio, CoorDL, Quiver, SiloD, NoCache)."""

import pytest

from repro.cache.alluxio import AlluxioCache
from repro.cache.base import StorageContext
from repro.cache.coordl import CoorDLCache
from repro.cache.nocache import NoCache
from repro.cache.quiver import QuiverCache
from repro.cache.silod_cache import SiloDDataManager
from repro.cluster.dataset import Dataset
from repro.cluster.job import Job
from repro.core.estimator import SiloDPerfEstimator
from repro.core.resources import Allocation

TB = 1024.0 * 1024.0
GB = 1024.0


def job(job_id, f_star=114.0, d_mb=1.3 * TB, gpus=1, dataset_name=None):
    return Job(
        job_id=job_id,
        model="m",
        dataset=Dataset(dataset_name or f"d-{job_id}", d_mb),
        num_gpus=gpus,
        ideal_throughput_mbps=f_star,
        total_work_mb=2 * d_mb,
    )


def context(
    jobs,
    total_cache_mb=2 * TB,
    total_io=200.0,
    effective=None,
    first_epoch_done=True,
    allocation=None,
    total_gpus=8,
    clock_s=0.0,
):
    effective = effective or {}
    return StorageContext(
        running_jobs=jobs,
        gpu_grants={j.job_id: float(j.num_gpus) for j in jobs},
        total_gpus=total_gpus,
        total_cache_mb=total_cache_mb,
        total_io_mbps=total_io,
        effective_mb=lambda j: effective.get(j.job_id, 0.0),
        first_epoch_done=lambda j: first_epoch_done,
        estimator=SiloDPerfEstimator(),
        clock_s=clock_s,
        scheduler_allocation=allocation,
    )


class TestCoorDL:
    def test_static_per_gpu_targets(self):
        jobs = [job("img"), job("bert", f_star=8.0, d_mb=20.9 * TB, gpus=4)]
        ctx = context(jobs)
        decision = CoorDLCache().decide(ctx)
        # 2 TB / 8 GPUs = 256 GB per GPU.
        assert decision.cache_targets["img"] == pytest.approx(256 * GB)
        # BERT's 4 GPUs hold 1 TB — half the cluster cache, the paper's
        # "wastes half of the total cache capacity on BERT".
        assert decision.cache_targets["bert"] == pytest.approx(1 * TB)

    def test_targets_capped_at_dataset(self):
        jobs = [job("small", d_mb=10 * GB)]
        decision = CoorDLCache().decide(context(jobs))
        assert decision.cache_targets["small"] == pytest.approx(10 * GB)

    def test_explicit_provisioning(self):
        jobs = [job("a")]
        decision = CoorDLCache(cache_per_gpu_mb=368 * GB).decide(context(jobs))
        assert decision.cache_targets["a"] == pytest.approx(368 * GB)

    def test_hits_follow_effective_bytes(self):
        jobs = [job("a", d_mb=1000.0)]
        decision = CoorDLCache().decide(
            context(jobs, effective={"a": 250.0})
        )
        assert decision.hit_ratios["a"] == pytest.approx(0.25)

    def test_per_job_keys(self):
        assert CoorDLCache().per_job_keys
        assert CoorDLCache().cache_key(job("x")) == "x"


class TestAlluxio:
    def test_first_epoch_has_no_hits(self):
        jobs = [job("a"), job("b")]
        decision = AlluxioCache().decide(context(jobs, first_epoch_done=False))
        assert decision.hit_ratios == {"a": 0.0, "b": 0.0}

    def test_thrashing_hit_ratios_below_uniform(self):
        jobs = [job("a")]
        pool = 0.5 * TB  # scarcer than the 1.3 TB dataset
        decision = AlluxioCache().decide(
            context(
                jobs,
                total_cache_mb=pool,
                effective={"a": 1.3 * TB},  # fully churned-in pool
            )
        )
        gamma = pool / (1.3 * TB)
        assert 0 < decision.hit_ratios["a"] < gamma

    def test_fast_jobs_get_bigger_stack_share(self):
        jobs = [job("fast", f_star=200.0), job("slow", f_star=20.0)]
        decision = AlluxioCache().decide(context(jobs, total_io=1000.0))
        assert (
            decision.cache_targets["d-fast"]
            > decision.cache_targets["d-slow"]
        )

    def test_io_grants_within_capacity(self):
        jobs = [job(f"j{i}") for i in range(6)]
        decision = AlluxioCache().decide(context(jobs, total_io=200.0))
        assert sum(decision.io_grants.values()) <= 200.0 + 1e-6

    def test_empty(self):
        decision = AlluxioCache().decide(context([]))
        assert decision.cache_targets == {}


class TestQuiver:
    def test_whole_dataset_only(self):
        # 2 TB cache, two 1.3 TB datasets: one cached, remainder wasted.
        jobs = [job("rn0"), job("rn1")]
        cache = QuiverCache(profile_noise=0.0)
        decision = cache.decide(context(jobs))
        cached = [k for k, v in decision.cache_targets.items() if v > 0]
        assert len(cached) == 1
        uncached = [k for k, v in decision.cache_targets.items() if v == 0]
        assert len(uncached) == 1  # explicitly evicted, not partial

    def test_ranks_by_benefit_to_cost(self):
        jobs = [
            job("rn", f_star=114.0, d_mb=143 * GB),
            job("bert", f_star=2.0, d_mb=20.9 * TB),
        ]
        cache = QuiverCache(profile_noise=0.0)
        decision = cache.decide(context(jobs))
        assert decision.cache_targets["d-rn"] == pytest.approx(143 * GB)
        assert decision.cache_targets["d-bert"] == 0.0

    def test_noise_can_flip_selection_over_time(self):
        jobs = [job("rn0"), job("rn1")]
        cache = QuiverCache(
            profile_noise=0.6, profile_interval_s=1.0, hysteresis=1.0, seed=3
        )
        selections = set()
        for step in range(40):
            decision = cache.decide(context(jobs, clock_s=float(step * 10)))
            chosen = tuple(
                sorted(
                    k for k, v in decision.cache_targets.items() if v > 0
                )
            )
            selections.add(chosen)
        assert len(selections) > 1  # the ranking flipped at least once

    def test_hysteresis_stabilises_ties(self):
        jobs = [job("rn0"), job("rn1")]
        cache = QuiverCache(
            profile_noise=0.05,
            profile_interval_s=1.0,
            hysteresis=3.0,
            seed=3,
        )
        first = cache.decide(context(jobs, clock_s=0.0))
        initial = {k for k, v in first.cache_targets.items() if v > 0}
        for step in range(1, 30):
            decision = cache.decide(context(jobs, clock_s=float(step * 10)))
            chosen = {
                k for k, v in decision.cache_targets.items() if v > 0
            }
            assert chosen == initial

    def test_reset_clears_profiling(self):
        cache = QuiverCache()
        cache.decide(context([job("a")]))
        cache.reset()
        assert cache._selected == set()

    def test_validation(self):
        with pytest.raises(ValueError):
            QuiverCache(profile_noise=-1)
        with pytest.raises(ValueError):
            QuiverCache(profile_interval_s=0)
        with pytest.raises(ValueError):
            QuiverCache(hysteresis=0.5)


class TestSiloDDataManager:
    def test_requires_scheduler_allocation(self):
        with pytest.raises(ValueError):
            SiloDDataManager().decide(context([job("a")]))

    def test_enforces_cache_and_guaranteed_io(self):
        jobs = [job("a", d_mb=1000.0), job("b", d_mb=1000.0)]
        allocation = Allocation()
        allocation.grant_cache("d-a", 1000.0)
        allocation.grant_remote_io("a", 0.0)
        allocation.grant_remote_io("b", 114.0)
        ctx = context(
            jobs,
            effective={"a": 1000.0, "b": 0.0},
            allocation=allocation,
        )
        decision = SiloDDataManager().decide(ctx)
        assert decision.cache_targets == {"d-a": 1000.0}
        assert decision.hit_ratios["a"] == 1.0
        assert decision.io_grants["a"] == pytest.approx(0.0)
        assert decision.io_grants["b"] == pytest.approx(114.0)

    def test_enforcement_is_strict_throttling(self):
        # Grants cap fetches even when the job's instantaneous demand is
        # higher; the *policies* refresh grants from instantaneous
        # demands, not the enforcement layer.
        jobs = [job("a", d_mb=1000.0)]
        allocation = Allocation()
        allocation.grant_remote_io("a", 30.0)
        ctx = context(jobs, effective={"a": 0.0}, allocation=allocation)
        decision = SiloDDataManager().decide(ctx)
        assert decision.io_grants["a"] == pytest.approx(30.0)
        # And a grant above demand is capped at the demand.
        allocation.grant_remote_io("a", 500.0)
        decision = SiloDDataManager().decide(ctx)
        assert decision.io_grants["a"] == pytest.approx(114.0)

    def test_io_allocation_disabled_falls_back_to_fair_share(self):
        jobs = [job("a"), job("b")]
        allocation = Allocation()
        allocation.grant_remote_io("a", 200.0)
        allocation.grant_remote_io("b", 0.0)
        ctx = context(jobs, allocation=allocation)
        decision = SiloDDataManager(io_allocation=False).decide(ctx)
        # Fair share ignores the skewed grants.
        assert decision.io_grants["a"] == pytest.approx(
            decision.io_grants["b"]
        )


class TestNoCache:
    def test_everything_remote(self):
        jobs = [job("a"), job("b")]
        decision = NoCache().decide(context(jobs))
        assert decision.cache_targets == {}
        assert decision.hit_ratios == {"a": 0.0, "b": 0.0}
        assert sum(decision.io_grants.values()) <= 200.0 + 1e-6
