"""Item-granularity caches."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.items import LruItemCache, UniformItemCache, measure_hit_ratio


class TestUniformItemCache:
    def test_admits_until_capacity_then_stops(self):
        cache = UniformItemCache(2, rng=random.Random(0))
        assert not cache.access("a")
        assert not cache.access("b")
        assert not cache.access("c")  # full: not admitted
        assert cache.access("a")
        assert cache.access("b")
        assert not cache.access("c")  # still not cached
        assert cache.size == 2

    def test_never_evicts_on_access(self):
        cache = UniformItemCache(1, rng=random.Random(0))
        cache.access("a")
        for item in ["b", "c", "d"]:
            cache.access(item)
        assert "a" in cache

    def test_resize_shrink_evicts_randomly(self):
        cache = UniformItemCache(100, rng=random.Random(7))
        for i in range(100):
            cache.access(i)
        cache.resize(40)
        assert cache.size == 40
        assert cache.capacity == 40
        # Survivors are a subset of the original items.
        assert cache.snapshot() <= set(range(100))

    def test_resize_grow_keeps_items(self):
        cache = UniformItemCache(2, rng=random.Random(0))
        cache.access("a")
        cache.resize(10)
        assert "a" in cache
        assert cache.capacity == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformItemCache(-1, rng=random.Random(0))
        cache = UniformItemCache(1, rng=random.Random(0))
        with pytest.raises(ValueError):
            cache.resize(-2)


class TestLruItemCache:
    def test_evicts_least_recently_used(self):
        cache = LruItemCache(2)
        cache.access("a")
        cache.access("b")
        cache.access("c")  # evicts a
        assert "a" not in cache
        assert "b" in cache
        assert "c" in cache

    def test_hit_refreshes_recency(self):
        cache = LruItemCache(2)
        cache.access("a")
        cache.access("b")
        assert cache.access("a")  # refresh a
        cache.access("c")  # evicts b, not a
        assert "a" in cache
        assert "b" not in cache

    def test_zero_capacity_never_caches(self):
        cache = LruItemCache(0)
        assert not cache.access("a")
        assert cache.size == 0

    def test_resize_shrink_drops_lru_end(self):
        cache = LruItemCache(3)
        for item in ["a", "b", "c"]:
            cache.access(item)
        cache.resize(1)
        assert cache.snapshot() == {"c"}


def test_measure_hit_ratio_with_warmup():
    cache = UniformItemCache(10, rng=random.Random(0))
    stream = list(range(10)) * 3
    ratio = measure_hit_ratio(cache, stream, warmup=10)
    assert ratio == pytest.approx(1.0)


@given(
    capacity=st.integers(min_value=0, max_value=50),
    accesses=st.lists(st.integers(min_value=0, max_value=99), max_size=300),
)
@settings(max_examples=50)
def test_caches_never_exceed_capacity(capacity, accesses):
    for cache in (
        UniformItemCache(capacity, rng=random.Random(0)),
        LruItemCache(capacity),
    ):
        for item in accesses:
            cache.access(item)
            assert cache.size <= capacity


@given(
    accesses=st.lists(
        st.integers(min_value=0, max_value=20), min_size=1, max_size=200
    )
)
@settings(max_examples=50)
def test_infinite_capacity_caches_behave_identically(accesses):
    """With room for everything, uniform and LRU give identical hits."""
    uniform = UniformItemCache(1000, rng=random.Random(0))
    lru = LruItemCache(1000)
    for item in accesses:
        assert uniform.access(item) == lru.access(item)
