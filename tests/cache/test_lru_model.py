"""Validate the LRU thrashing closed form against item-level simulation.

The fluid simulator models LRU hit ratios with
``h(gamma) = gamma + (1 - gamma) ln(1 - gamma)`` (``gamma`` = stack share /
dataset). These tests drive an actual :class:`LruItemCache` with shuffled
once-per-epoch access streams and check the measured steady-state hit
ratio lands on the model.
"""

import math
import random

import pytest

from repro.cache.items import LruItemCache, UniformItemCache
from repro.cache.lru import (
    curriculum_hit_ratio,
    lru_epoch_hit_ratio,
    shared_lru_shares,
    uniform_epoch_hit_ratio,
)


def epoch_stream(num_items, num_epochs, rng):
    for _ in range(num_epochs):
        order = list(range(num_items))
        rng.shuffle(order)
        yield from order


def measured_lru_hit_ratio(num_items, capacity, epochs=8, seed=3):
    rng = random.Random(seed)
    cache = LruItemCache(capacity)
    hits = 0
    total = 0
    for i, item in enumerate(epoch_stream(num_items, epochs, rng)):
        hit = cache.access(item)
        if i >= 2 * num_items:  # skip two warmup epochs
            hits += int(hit)
            total += 1
    return hits / total


@pytest.mark.parametrize("gamma", [0.2, 0.4, 0.6, 0.8])
def test_closed_form_matches_item_simulation(gamma):
    num_items = 3000
    capacity = int(gamma * num_items)
    measured = measured_lru_hit_ratio(num_items, capacity)
    predicted = lru_epoch_hit_ratio(capacity, num_items)
    assert measured == pytest.approx(predicted, abs=0.03)


def test_closed_form_boundaries():
    assert lru_epoch_hit_ratio(0.0, 100.0) == 0.0
    assert lru_epoch_hit_ratio(100.0, 100.0) == 1.0
    assert lru_epoch_hit_ratio(200.0, 100.0) == 1.0


def test_closed_form_small_share_is_quadratic():
    gamma = 0.01
    h = lru_epoch_hit_ratio(gamma * 1000, 1000)
    assert h == pytest.approx(gamma**2 / 2, rel=0.05)


def test_lru_always_below_uniform():
    """Thrashing: LRU never beats uniform caching at equal size (§2.2)."""
    for gamma in [0.1, 0.3, 0.5, 0.7, 0.9, 0.99]:
        lru = lru_epoch_hit_ratio(gamma * 1000, 1000)
        uniform = uniform_epoch_hit_ratio(gamma * 1000, 1000)
        assert lru < uniform


def test_closed_form_monotone_in_share():
    values = [
        lru_epoch_hit_ratio(g * 500.0, 500.0)
        for g in [0.0, 0.25, 0.5, 0.75, 1.0]
    ]
    assert values == sorted(values)
    assert not math.isnan(values[2])


def test_uniform_item_cache_matches_c_over_d():
    """Uniform caching's expected hit ratio is exactly c/d after warmup."""
    num_items, capacity = 2000, 800
    rng = random.Random(5)
    cache = UniformItemCache(capacity, rng=random.Random(6))
    hits = total = 0
    for i, item in enumerate(epoch_stream(num_items, 6, rng)):
        hit = cache.access(item)
        if i >= num_items:  # after the first (cold) epoch
            hits += int(hit)
            total += 1
    assert hits / total == pytest.approx(capacity / num_items, abs=0.02)


def test_shared_shares_proportional_to_rates():
    shares = shared_lru_shares({"fast": 300.0, "slow": 100.0}, 1000.0)
    assert shares["fast"] == pytest.approx(750.0)
    assert shares["slow"] == pytest.approx(250.0)
    assert shared_lru_shares({"a": 0.0}, 1000.0) == {"a": 0.0}


def test_shared_pool_favors_fast_jobs_in_simulation():
    """Two jobs interleaved 3:1 in one LRU pool: the fast job's measured
    hit ratio exceeds the slow job's (the paper's §7.1.2 observation)."""
    rng = random.Random(11)
    num_items = 1500
    cache = LruItemCache(900)
    fast = epoch_stream(num_items, 12, random.Random(1))
    slow = epoch_stream(num_items, 4, random.Random(2))
    hits = {"fast": 0, "slow": 0}
    total = {"fast": 0, "slow": 0}
    for step in range(num_items * 12):
        for _ in range(3):
            item = next(fast, None)
            if item is not None:
                hit = cache.access(("fast", item))
                if step > num_items:
                    hits["fast"] += int(hit)
                    total["fast"] += 1
        item = next(slow, None)
        if item is not None:
            hit = cache.access(("slow", item))
            if step > num_items:
                hits["slow"] += int(hit)
                total["slow"] += 1
    ratio_fast = hits["fast"] / max(1, total["fast"])
    ratio_slow = hits["slow"] / max(1, total["slow"])
    assert ratio_fast > ratio_slow


def test_curriculum_hit_ratio_equal_for_both_policies():
    # Figure 16b's point: with replacement sampling, LRU = uniform.
    for policy_is_lru in (True, False):
        assert curriculum_hit_ratio(500.0, 1000.0, policy_is_lru) == (
            pytest.approx(0.5)
        )
    assert curriculum_hit_ratio(500.0, 0.0, True) == 1.0
