"""The acceptance bar: the repo lints clean with an empty baseline."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import build_passes, default_target, lint_paths
from repro.lint.findings import RULES

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def test_source_tree_lints_clean():
    """Every pass over every module of the library: zero findings."""
    findings = lint_paths([default_target()], build_passes())
    assert findings == [], "\n".join(f.render() for f in findings)


def test_checked_in_baseline_is_empty():
    baseline = json.loads(
        (REPO_ROOT / "tools" / "lint_baseline.json").read_text()
    )
    assert baseline["findings"] == []


def test_cli_strict_exits_zero(capsys):
    """``python -m repro lint --strict`` — the CI gate — passes."""
    assert main(["lint", "--strict"]) == 0
    assert "clean" in capsys.readouterr().out


def test_every_pass_rule_is_catalogued():
    """No pass can emit a rule id missing from the catalogue."""
    for lint_pass in build_passes():
        for rule in lint_pass.rules:
            assert rule in RULES, rule


def test_rule_prefixes_map_to_passes():
    """Catalogue ids (minus the engine's PAR001) trace to a pass."""
    prefixes = {
        rule[:3] for rule in RULES if not rule.startswith("PAR")
    }
    covered = {
        rule[:3]
        for lint_pass in build_passes()
        for rule in lint_pass.rules
    }
    assert prefixes == covered
