"""SARIF output: emitter and validator agree on minimal 2.1.0."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import Finding, to_sarif, validate_min_sarif

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def sample_findings():
    return [
        Finding("repro/sim/fluid.py", 10, "DET003", "wall clock"),
        Finding("repro/serve/engine.py", 3, "XDET001", "taint chain"),
    ]


class TestEmitter:
    def test_round_trip_validates(self):
        doc = to_sarif(sample_findings())
        assert validate_min_sarif(doc) == []
        # And survives JSON serialization unchanged.
        assert validate_min_sarif(json.loads(json.dumps(doc))) == []

    def test_one_result_per_finding_with_location(self):
        doc = to_sarif(sample_findings())
        results = doc["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["DET003", "XDET001"]
        location = results[0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "repro/sim/fluid.py"
        assert location["region"]["startLine"] == 10

    def test_rule_catalogue_covers_used_rules_only(self):
        doc = to_sarif(sample_findings())
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        assert sorted(r["id"] for r in rules) == ["DET003", "XDET001"]

    def test_empty_findings_still_validate(self):
        assert validate_min_sarif(to_sarif([])) == []


class TestValidator:
    def test_flags_missing_required_properties(self):
        doc = to_sarif(sample_findings())
        del doc["runs"][0]["results"][0]["ruleId"]
        doc["runs"][0]["results"][1]["locations"][0][
            "physicalLocation"
        ]["region"]["startLine"] = 0
        problems = validate_min_sarif(doc)
        assert any("ruleId" in p for p in problems)
        assert any("startLine" in p for p in problems)

    def test_flags_wrong_version_and_empty_runs(self):
        problems = validate_min_sarif({"version": "1.0", "runs": []})
        assert any("version" in p for p in problems)
        assert any("runs" in p for p in problems)


class TestCli:
    def test_sarif_format_output_validates(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nt = time.time()\n")
        code = main(
            [
                "lint",
                str(dirty),
                "--format",
                "sarif",
                "--baseline",
                str(tmp_path / "b.json"),
                "--no-cache",
            ]
        )
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert validate_min_sarif(doc) == []
        results = doc["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["DET003"]


def test_checked_in_ci_artifact_validates():
    """The SARIF log tools/ci.sh writes conforms and is clean."""
    artifact = REPO_ROOT / "benchmarks" / "results" / "lint.sarif"
    if not artifact.exists():
        pytest.skip("run tools/ci.sh to produce the artifact")
    doc = json.loads(artifact.read_text(encoding="utf-8"))
    assert validate_min_sarif(doc) == []
    assert doc["runs"][0]["results"] == []  # the tree lints clean.
