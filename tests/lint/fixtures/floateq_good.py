"""Fixture: the clean twin of ``floateq_bad`` — tolerant comparisons."""

EPS = 1e-9


def clock_compare(finish_s: float, deadline_s: float, count: int) -> bool:
    """Tolerance-based float comparison; int equality stays legal."""
    on_the_dot = abs(finish_s - deadline_s) < EPS
    exactly_two = count == 2
    return on_the_dot and exactly_two
