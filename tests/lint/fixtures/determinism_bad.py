"""Fixture: every determinism rule has a true positive here."""

import random
import time
from datetime import datetime
from random import shuffle  # DET002: binds the global RNG

import numpy as np


def entropy_soup(events):
    """Ambient entropy in every flavour the pass knows about."""
    rng = random.Random()  # DET001: unseeded
    gen = np.random.default_rng()  # DET001: unseeded
    jitter = random.random()  # DET002: global RNG state
    started = time.time()  # DET003: wall clock
    stamped = datetime.now()  # DET003: wall clock
    total = 0
    for tag in {"fifo", "sjf", "gavel"}:  # DET004: set-literal order
        total += hash(tag)  # DET005: salted hash
    ordered = sorted(events, key=hash)  # DET005: salted sort key
    shuffle(ordered)
    return rng, gen, jitter, started, stamped, total, ordered
