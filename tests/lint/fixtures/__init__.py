"""Fixture snippets for the lint-pass tests.

Each ``*_bad.py`` module contains at least one true positive per rule of
its pass; each ``*_good.py`` is the clean twin. The files are parsed by
the linter, never imported, so they may reference modules that are not
installed.
"""
