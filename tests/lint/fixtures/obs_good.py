"""Fixture: the clean twin of ``obs_bad`` — schema-conformant emits."""

from repro.obs import events as ev


def emit_conformant(tracer, ts_s: float) -> None:
    """Declared types, exact field sets, helpers used as intended."""
    tracer.emit(ts_s, ev.JOB_FINISH, "j1", jct_s=1.0, epochs_done=2)
    tracer.emit(ts_s, "epoch_boundary", "j1", epoch=1)
    tracer.epoch_boundary(ts_s, "j1", epoch=3)
    etype = pick_a_type()
    tracer.emit(ts_s, etype, "j1")  # dynamic: left to runtime validation


def pick_a_type() -> str:
    """A dynamic event type the static pass cannot resolve."""
    return "job_finish"
