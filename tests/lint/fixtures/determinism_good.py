"""Fixture: the clean twin of ``determinism_bad`` — zero findings."""

import random
import zlib

import numpy as np


def reproducible_soup(events, now_s: float, seed: int):
    """Seeded RNGs, event-clock time, stable ordering and digests."""
    rng = random.Random(seed)
    gen = np.random.default_rng(seed)
    jitter = rng.random()
    started = now_s
    total = 0
    for tag in ("fifo", "sjf", "gavel"):
        total += zlib.crc32(tag.encode("utf-8"))
    ordered = sorted(events, key=repr)
    rng.shuffle(ordered)
    return rng, gen, jitter, started, total, ordered
