"""Fixture: event-schema violations for the obs-schema pass."""

from repro.obs import events as ev


def emit_drifted(tracer, ts_s: float) -> None:
    """Undeclared types and field drift against repro.obs.events."""
    tracer.emit(ts_s, "job_teleport", "j1", reason="warp")  # OBS001
    tracer.emit(ts_s, ev.JOB_TELEPORT, "j1", reason="warp")  # OBS001
    tracer.emit(ts_s, "job_finish", "j1", jct_s=1.0)  # OBS002: missing
    tracer.emit(
        ts_s, ev.JOB_FINISH, "j1", jct_s=1.0, epochs_done=2, mood="good"
    )  # OBS002: extra
    tracer.epoch_boundary(ts_s, "j1", epoch=3, flavour="odd")  # OBS002
    # Service-lifecycle events outside repro/serve/: scope violations.
    tracer.service_start(  # OBS004
        ts_s, policy="fifo", cache="silod", simulator="fluid",
        gpus=16.0, queue_limit=64,
    )
    tracer.emit(  # OBS004
        ts_s, ev.CLOCK_SET, action="pause", speedup=0.0, virtual_s=ts_s
    )
