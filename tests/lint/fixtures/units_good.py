"""Fixture: the clean twin of ``units_bad`` — canonical units only."""

from repro import units


def egress_budget(total_mb: float, link_mbps: float) -> float:
    """Canonical-unit parameters, conversions via repro.units."""
    window_s = units.hours(2.0)
    drain_s = total_mb / link_mbps
    as_gb_for_report = units.mb_to_gb(total_mb)
    return drain_s + window_s + as_gb_for_report
