"""Fixture: scalar per-key cache sweep in a vectorization-aware module."""

from repro.perf.backend import numpy_enabled  # noqa: F401


def total_resident(cache_store) -> float:
    """Re-implements total_resident_mb with a per-key scan."""
    total = 0.0
    for key in cache_store.keys():  # PERF001: per-item cache sweep
        total += cache_store.resident_mb(key)
    return total


def shrink_all(cache_store, factor: float) -> None:
    """Per-key scalar writes over the whole store."""
    for key in cache_store.stale_first_keys():  # PERF001
        cache_store.set_resident_mb(
            key, cache_store.resident_mb(key) * factor
        )
