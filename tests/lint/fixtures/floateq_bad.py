"""Fixture: float-equality violations for the floateq pass."""


def clock_compare(finish_s: float, deadline_s: float, weight) -> bool:
    """Exact equality on clocks, unit values, and float literals."""
    on_the_dot = finish_s == deadline_s  # FLT001: unit-suffixed values
    default_weight = weight != 1.0  # FLT001: float literal
    return on_the_dot and default_weight
