"""XOBS fixture: an in-scope wrapper that emits a service event.

The emit line itself is legal (this file is under ``repro/serve/``);
the bug is calling this helper from outside the scope.
"""


def announce(tracer, ts_s):
    tracer.emit(ts_s, "service_start", port=0)
