"""XOBS fixture: out-of-scope caller of the in-scope emitting wrapper."""

from repro.serve import narrate


def drive(tracer):
    narrate.announce(tracer, 0.0)
