"""XUNI fixture: a helper whose return unit (seconds) must be inferred.

MB divided by MB/s is seconds; the fixpoint exports that unit to the
callers in ``unituse.py``.
"""


def transfer_time(size_mb, bw_mbps):
    return size_mb / bw_mbps
