"""Fixture package for the whole-program (phase 2) lint tests.

This tree mirrors the real package layout just enough for module
naming, scoping, and cross-module dataflow to behave as they do in the
repo: linted with ``display_root`` at ``fixtures/project``, these files
display as ``repro/...`` paths and index as ``repro.*`` modules.
"""
