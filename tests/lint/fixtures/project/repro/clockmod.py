"""XDET fixture: the entropy source, two call hops from the sink."""

import time


def read_clock():
    return time.time()
