"""XDET fixture: the laundering hop between source and sink.

The relative import also exercises the symbol table's level-1
``from .`` resolution.
"""

from .clockmod import read_clock


def stamp():
    return read_clock()
