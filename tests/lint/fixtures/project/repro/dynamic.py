"""Call-graph fixture: calls the table cannot resolve, by design.

``callback()`` and ``registry["key"]()`` must land in the graph's
explicit unresolved-call category; ``len`` is a proven builtin and
must not.
"""


def apply(callback, registry):
    count = len(registry)
    callback()
    registry["key"]()
    return count
