"""XDET fixture: the sink; the wall clock it records is two hops away."""

from repro import middle


def record(tracer):
    tracer.emit(0.0, "job_submit", stamp=middle.stamp())
