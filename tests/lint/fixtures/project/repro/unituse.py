"""XUNI fixture: cross-module unit bugs the per-file pass cannot see."""

from repro import units
from repro.unitdefs import transfer_time


def eta_ms(size_mb, bw_mbps):
    # XUNI001: transfer_time returns seconds, the target declares ms.
    wait_ms = transfer_time(size_mb, bw_mbps)
    return wait_ms


def wrong_param(delay_ms, bw_mbps):
    # XUNI002: an ms value bound to transfer_time's size_mb parameter.
    return transfer_time(delay_ms, bw_mbps)


def wrong_helper_arg(size_mb):
    # XUNI002: units.gb takes GB, this argument is MB.
    return units.gb(size_mb)
