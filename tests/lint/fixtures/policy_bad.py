"""Fixture: policy-interface violations for the policy pass."""

from repro.core.policies.base import SchedulingPolicy
from repro.sim import fluid  # POL002: simulator internals


class HollowPolicy(SchedulingPolicy):  # POL001: no schedule, no name
    """A policy that implements nothing and peeks everywhere."""

    def peek(self, simulator):
        """Reach straight into the simulator's private state."""
        return simulator._event_queue  # POL003

    def widen(self, allocation):
        """Mutate another object's private bookkeeping."""
        allocation._grants["j1"] = fluid and 1.0  # POL003


class SilentHetPolicy(SchedulingPolicy):  # POL004: no gen_scores
    """Claims heterogeneity awareness, publishes nothing."""

    name = "silent-het"
    heterogeneity_aware = True

    def schedule(self, jobs, total, ctx):
        """Allocate without ever exposing per-generation scores."""
        return ctx.estimator.empty_allocation()
