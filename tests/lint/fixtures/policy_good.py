"""Fixture: the clean twin of ``policy_bad`` — a conformant policy."""

from repro.core.policies.base import SchedulingPolicy


class WellBehavedPolicy(SchedulingPolicy):
    """Implements the interface; touches only public surface."""

    name = "well-behaved"

    def schedule(self, jobs, total, ctx):
        """Allocate through the public Allocation API only."""
        allocation = ctx.estimator.empty_allocation()
        for job in jobs:
            allocation.grant_gpus(job.job_id, job.num_gpus)
        return allocation


class RefinedPolicy(WellBehavedPolicy):
    """Inherits schedule() and name from a local conformant base."""

    def tiebreak(self, jobs):
        """A public helper; inherited interface keeps POL001 quiet."""
        return sorted(jobs, key=lambda job: job.job_id)


class HonestHetPolicy(WellBehavedPolicy):
    """Declares heterogeneity awareness and publishes gen scores."""

    name = "honest-het"
    heterogeneity_aware = True

    def schedule(self, jobs, total, ctx):
        """Publish per-generation f* before allocating."""
        for job in jobs:
            ctx.gen_scores[job.job_id] = {"V100": 100.0}
        return super().schedule(jobs, total, ctx)


class InheritedHetPolicy(HonestHetPolicy):
    """Inherits both the declaration and the publishing ancestor."""

    name = "inherited-het"
