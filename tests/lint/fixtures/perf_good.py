"""Fixture: the clean twin of ``perf_bad`` — bulk APIs and justified scans."""

from repro.perf.backend import numpy_enabled  # noqa: F401


def total_resident(cache_store) -> float:
    """The bulk accessor replaces the per-key scan."""
    return cache_store.total_resident_mb()


def reclaim(cache_store, overshoot_mb: float) -> None:
    """A deliberate scan on an off-nominal path, with justification."""
    # Reclaim only runs on overshoot and stops early; scan is fine.
    # lint: disable=PERF001
    for key in cache_store.stale_first_keys():
        _size, resident_mb, target_mb = cache_store.snapshot(key)
        cut = min(resident_mb - target_mb, overshoot_mb)
        if cut > 0:
            cache_store.set_resident_mb(key, resident_mb - cut)
            overshoot_mb -= cut
        if overshoot_mb <= 1e-6:
            return


def plain_dict_loop(counters) -> float:
    """Loops over non-cache state are not the pass's business."""
    total = 0.0
    for _name, value in counters.items():
        total += value
    return total
