"""Fixture: unit-convention violations for the units pass."""


def egress_budget(total_gb: float, link_gbps: float) -> float:  # UNI002 x2
    """Magic conversions instead of the repro.units helpers."""
    total_mb = total_gb * 1024.0  # UNI001
    link_mbps = link_gbps * 125.0  # UNI001
    bytes_per_bit = link_mbps / 8  # UNI001
    window_s = 2 * 3600.0  # UNI001
    return total_mb / link_mbps + bytes_per_bit + window_s
