"""Tests for the ``repro.lint`` invariant linter."""
