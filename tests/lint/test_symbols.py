"""Phase-1 symbol table: module naming, aliasing, method resolution."""

from pathlib import Path

import pytest

from repro.lint.engine import SourceFile
from repro.lint.symbols import SymbolTable, module_name_for

pytestmark = pytest.mark.lint

PROJECT = Path(__file__).parent / "fixtures" / "project"


def build_table(tmp_path, sources):
    files = []
    for name, text in sources.items():
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        files.append(SourceFile(path, tmp_path))
    return SymbolTable.build(files)


def project_table():
    files = [
        SourceFile(path, PROJECT)
        for path in sorted(PROJECT.rglob("*.py"))
    ]
    return SymbolTable.build(files)


class TestModuleNaming:
    def test_walks_init_chain(self):
        path = PROJECT / "repro" / "serve" / "narrate.py"
        assert module_name_for(path) == "repro.serve.narrate"

    def test_init_names_the_package(self):
        path = PROJECT / "repro" / "serve" / "__init__.py"
        assert module_name_for(path) == "repro.serve"

    def test_loose_script_keeps_bare_stem(self, tmp_path):
        script = tmp_path / "serve_smoke.py"
        script.write_text("x = 1\n")
        assert module_name_for(script) == "serve_smoke"


class TestImportAliasing:
    def test_plain_aliased_and_dotted_imports(self, tmp_path):
        table = build_table(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "import os.path\n"
                    "import json\n"
                )
            },
        )
        imports = table.modules["mod"].imports
        assert imports["np"] == "numpy"
        assert imports["os"] == "os"  # dotted import binds the root.
        assert imports["json"] == "json"

    def test_dotted_import_with_alias_binds_full_path(self, tmp_path):
        table = build_table(
            tmp_path, {"mod.py": "import repro.obs.events as ev\n"}
        )
        assert table.modules["mod"].imports["ev"] == "repro.obs.events"

    def test_from_import_alias(self, tmp_path):
        table = build_table(
            tmp_path,
            {"mod.py": "from collections import OrderedDict as OD\n"},
        )
        imports = table.modules["mod"].imports
        assert imports["OD"] == "collections.OrderedDict"

    def test_relative_import_resolves_inside_package(self):
        table = project_table()
        imports = table.modules["repro.middle"].imports
        assert imports["read_clock"] == "repro.clockmod.read_clock"
        symbol = table.function(
            table.resolve("repro.middle", "read_clock")
        )
        assert symbol is not None
        assert symbol.qname == "repro.clockmod.read_clock"


class TestResolution:
    def test_dotted_name_through_alias(self):
        table = project_table()
        resolved = table.resolve("repro.emitter", "middle.stamp")
        assert resolved == "repro.middle.stamp"
        assert table.function(resolved) is not None

    def test_local_definition_resolves_to_own_module(self):
        table = project_table()
        resolved = table.resolve("repro.dynamic", "apply")
        assert resolved == "repro.dynamic.apply"

    def test_unknown_name_is_none_not_a_guess(self):
        table = project_table()
        assert table.resolve("repro.emitter", "mystery.thing") is None
        assert table.resolve("no.such.module", "x") is None


class TestMethodResolution:
    SOURCE = (
        "class Base:\n"
        "    def ping(self):\n"
        "        return 1\n"
        "\n"
        "class Child(Base):\n"
        "    def run(self):\n"
        "        return self.ping()\n"
    )

    def test_walks_local_base_chain(self, tmp_path):
        table = build_table(tmp_path, {"mod.py": self.SOURCE})
        method = table.resolve_method("mod.Child", "ping")
        assert method is not None
        assert method.qname == "mod.Base.ping"

    def test_own_method_wins_over_base(self, tmp_path):
        table = build_table(tmp_path, {"mod.py": self.SOURCE})
        method = table.resolve_method("mod.Child", "run")
        assert method is not None
        assert method.qname == "mod.Child.run"

    def test_unknown_method_is_none(self, tmp_path):
        table = build_table(tmp_path, {"mod.py": self.SOURCE})
        assert table.resolve_method("mod.Child", "missing") is None
