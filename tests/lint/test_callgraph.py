"""Call graph: resolvable call shapes resolve, the rest is reported."""

from pathlib import Path

import pytest

from repro.lint.callgraph import CallGraph
from repro.lint.engine import SourceFile
from repro.lint.symbols import SymbolTable

pytestmark = pytest.mark.lint

PROJECT = Path(__file__).parent / "fixtures" / "project"


def build_graph(tmp_path, sources):
    files = []
    for name, text in sources.items():
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        files.append(SourceFile(path, tmp_path))
    return CallGraph.build(SymbolTable.build(files))


def project_graph():
    files = [
        SourceFile(path, PROJECT)
        for path in sorted(PROJECT.rglob("*.py"))
    ]
    return CallGraph.build(SymbolTable.build(files))


def edge_pairs(graph):
    return {(edge.caller, edge.callee) for edge in graph.edges}


class TestResolvedShapes:
    def test_direct_and_aliased_edges_span_modules(self):
        pairs = edge_pairs(project_graph())
        assert ("repro.emitter.record", "repro.middle.stamp") in pairs
        assert (
            "repro.middle.stamp",
            "repro.clockmod.read_clock",
        ) in pairs

    def test_self_and_super_dispatch(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "mod.py": (
                    "class Base:\n"
                    "    def ping(self):\n"
                    "        return 1\n"
                    "\n"
                    "class Child(Base):\n"
                    "    def run(self):\n"
                    "        self.ping()\n"
                    "        return super().ping()\n"
                )
            },
        )
        targets = [
            edge.callee for edge in graph.callees("mod.Child.run")
        ]
        # Both the self. and the super() call resolve through the base.
        assert targets == ["mod.Base.ping", "mod.Base.ping"]

    def test_constructor_call_edges_to_init(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "mod.py": (
                    "class Worker:\n"
                    "    def __init__(self):\n"
                    "        self.ready = True\n"
                    "\n"
                    "def make():\n"
                    "    return Worker()\n"
                )
            },
        )
        assert ("mod.make", "mod.Worker.__init__") in edge_pairs(graph)

    def test_registry_dispatch_fans_out_to_every_value(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "mod.py": (
                    "def alpha():\n"
                    "    return 1\n"
                    "\n"
                    "def beta():\n"
                    "    return 2\n"
                    "\n"
                    'POLICIES = {"a": alpha, "b": beta}\n'
                    "\n"
                    "def dispatch(key):\n"
                    "    return POLICIES[key]()\n"
                )
            },
        )
        targets = {
            edge.callee for edge in graph.callees("mod.dispatch")
        }
        assert targets == {"mod.alpha", "mod.beta"}


class TestUnresolvedCategory:
    def test_opaque_calls_are_reported_not_ignored(self):
        graph = project_graph()
        texts = {
            call.callee_text
            for call in graph.unresolved_in("repro.dynamic.apply")
        }
        assert "callback" in texts
        assert any(text.startswith("registry") for text in texts)

    def test_builtins_and_external_modules_are_proven(self):
        graph = project_graph()
        texts = {call.callee_text for call in graph.unresolved}
        assert "len" not in texts  # builtin: external, proven.
        # time.time() in clockmod resolves to an external module, not
        # an unresolved call.
        assert "time.time" not in texts

    def test_unresolved_sites_carry_location(self):
        graph = project_graph()
        call = next(
            c
            for c in graph.unresolved_in("repro.dynamic.apply")
            if c.callee_text == "callback"
        )
        assert call.rel_path == "repro/dynamic.py"
        assert call.line >= 1
