"""Engine behaviour: suppressions, baselines, CLI output, parse errors."""

import json

import pytest

from repro.cli import main
from repro.lint import Baseline, Finding, lint_paths
from repro.lint.passes.determinism import DeterminismPass

pytestmark = pytest.mark.lint


def lint_snippet(tmp_path, source, passes=None):
    path = tmp_path / "snippet.py"
    path.write_text(source)
    return lint_paths(
        [path], passes or [DeterminismPass()], display_root=tmp_path
    )


class TestSuppressions:
    def test_same_line_disable(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "import time\n"
            "t = time.time()  # lint: disable=DET003\n",
        )
        assert findings == []

    def test_preceding_comment_disable(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "import time\n"
            "# wall clock is fine here\n"
            "# lint: disable=DET003\n"
            "t = time.time()\n",
        )
        assert findings == []

    def test_disable_all_wildcard(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "import time\n"
            "t = time.time()  # lint: disable=all\n",
        )
        assert findings == []

    def test_wrong_rule_does_not_suppress(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "import time\n"
            "t = time.time()  # lint: disable=UNI001\n",
        )
        assert [f.rule for f in findings] == ["DET003"]

    def test_suppression_is_line_scoped(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "import time\n"
            "a = time.time()  # lint: disable=DET003\n"
            "b = time.time()\n",
        )
        assert len(findings) == 1
        assert findings[0].line == 3

    def test_trailing_disable_covers_the_whole_statement(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "import time\n"
            "t = (  # lint: disable=DET003\n"
            "    time.time()\n"
            ")\n",
        )
        assert findings == []

    def test_standalone_disable_covers_the_whole_statement(
        self, tmp_path
    ):
        findings = lint_snippet(
            tmp_path,
            "import time\n"
            "# lint: disable=DET003\n"
            "t = (\n"
            "    time.time()\n"
            ")\n",
        )
        assert findings == []

    def test_explanation_may_stack_after_the_disable(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "import time\n"
            "# lint: disable=DET003\n"
            "# the wall clock is deliberate: this measures real time\n"
            "t = time.time()\n",
        )
        assert findings == []

    def test_compound_header_does_not_shield_the_block(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "import time\n"
            "# lint: disable=DET003\n"
            "if True:\n"
            "    t = time.time()\n",
        )
        assert [f.line for f in findings] == [4]


class TestParseErrors:
    def test_syntax_error_yields_par001(self, tmp_path):
        findings = lint_snippet(tmp_path, "def broken(:\n")
        assert [f.rule for f in findings] == ["PAR001"]

    def test_other_files_still_linted(self, tmp_path):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        (tmp_path / "dirty.py").write_text(
            "import time\nt = time.time()\n"
        )
        findings = lint_paths(
            [tmp_path], [DeterminismPass()], display_root=tmp_path
        )
        assert sorted(f.rule for f in findings) == ["DET003", "PAR001"]


class TestBaseline:
    def make_finding(self, **overrides):
        base = {
            "path": "repro/x.py",
            "line": 3,
            "rule": "DET003",
            "message": "wall clock",
        }
        base.update(overrides)
        return Finding(**base)

    def test_matching_is_line_insensitive(self):
        recorded = self.make_finding(line=3)
        current = self.make_finding(line=99)
        new, stale = Baseline([recorded]).apply([current])
        assert new == [] and stale == []

    def test_new_findings_pass_through(self):
        baseline = Baseline([self.make_finding()])
        other = self.make_finding(rule="UNI001")
        new, stale = baseline.apply([other])
        assert new == [other]
        assert stale == [self.make_finding().key()]

    def test_multiset_semantics(self):
        one = self.make_finding()
        new, stale = Baseline([one]).apply([one, one])
        assert len(new) == 1 and stale == []

    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        finding = self.make_finding()
        Baseline.save(path, [finding])
        loaded = Baseline.load(path)
        new, stale = loaded.apply([finding])
        assert new == [] and stale == []

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "nope.json")
        assert len(baseline) == 0

    def test_duplicate_key_round_trip_keeps_the_count(self, tmp_path):
        """Two findings sharing a key survive save/load as a multiset."""
        path = tmp_path / "baseline.json"
        pair = [self.make_finding(line=3), self.make_finding(line=99)]
        assert pair[0].key() == pair[1].key()
        Baseline.save(path, pair)
        loaded = Baseline.load(path)
        assert len(loaded) == 2
        new, stale = loaded.apply(pair)
        assert new == [] and stale == []
        # A third occurrence exceeds the recorded count: it is new.
        new, _stale = loaded.apply(pair + [self.make_finding(line=7)])
        assert len(new) == 1

    def test_par001_can_be_baselined(self, tmp_path, capsys):
        """A tolerated parse error is absorbed; fixing it goes stale."""
        broken = tmp_path / "broken.py"
        broken.write_text("def broken(:\n")
        baseline = tmp_path / "b.json"
        assert (
            main(
                [
                    "lint",
                    str(broken),
                    "--baseline",
                    str(baseline),
                    "--write-baseline",
                ]
            )
            == 0
        )
        assert (
            main(["lint", str(broken), "--baseline", str(baseline)])
            == 0
        )
        broken.write_text("x = 1\n")
        assert (
            main(
                [
                    "lint",
                    str(broken),
                    "--baseline",
                    str(baseline),
                    "--strict",
                ]
            )
            == 1
        )
        assert "stale baseline" in capsys.readouterr().out


class TestCli:
    def write_dirty(self, tmp_path):
        path = tmp_path / "dirty.py"
        path.write_text("import time\nt = time.time()\n")
        return path

    def test_findings_exit_code_and_text(self, tmp_path, capsys):
        path = self.write_dirty(tmp_path)
        code = main(
            ["lint", str(path), "--baseline", str(tmp_path / "b.json")]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "DET003" in out and "1 finding(s)" in out

    def test_json_format(self, tmp_path, capsys):
        path = self.write_dirty(tmp_path)
        code = main(
            [
                "lint",
                str(path),
                "--format",
                "json",
                "--baseline",
                str(tmp_path / "b.json"),
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "DET003"
        assert payload["stale_baseline"] == []

    def test_write_then_pass_with_baseline(self, tmp_path, capsys):
        path = self.write_dirty(tmp_path)
        baseline = tmp_path / "b.json"
        assert (
            main(
                [
                    "lint",
                    str(path),
                    "--baseline",
                    str(baseline),
                    "--write-baseline",
                ]
            )
            == 0
        )
        assert (
            main(["lint", str(path), "--baseline", str(baseline)]) == 0
        )
        capsys.readouterr()

    def test_strict_fails_on_stale_baseline(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("x = 1\n")
        baseline = tmp_path / "b.json"
        Baseline.save(
            baseline,
            [Finding("clean.py", 1, "DET003", "gone")],
        )
        assert (
            main(["lint", str(path), "--baseline", str(baseline)]) == 0
        )
        assert (
            main(
                [
                    "lint",
                    str(path),
                    "--baseline",
                    str(baseline),
                    "--strict",
                ]
            )
            == 1
        )
        assert "stale baseline" in capsys.readouterr().out

    def test_select_unknown_pass_errors(self, tmp_path, capsys):
        code = main(["lint", str(tmp_path), "--select", "bogus"])
        assert code == 2
        assert "unknown pass" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (
            "DET001",
            "UNI002",
            "FLT001",
            "OBS001",
            "POL003",
            "XDET001",
            "XUNI002",
            "XOBS001",
        ):
            assert rule in out

    def test_explain_prints_the_long_doc(self, capsys):
        assert main(["lint", "--explain", "XDET001"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("XDET001:")
        assert "call chain" in out

    def test_explain_covers_engine_rules_too(self, capsys):
        assert main(["lint", "--explain", "PAR001"]) == 0
        assert "parse" in capsys.readouterr().out

    def test_explain_every_catalogued_rule(self, capsys):
        from repro.lint.findings import RULES

        for rule in RULES:
            assert main(["lint", "--explain", rule]) == 0, rule
        capsys.readouterr()

    def test_explain_unknown_rule_errors(self, capsys):
        assert main(["lint", "--explain", "NOPE999"]) == 2
        assert "unknown rule" in capsys.readouterr().out
