"""Each lint pass flags its bad fixture and accepts its clean twin."""

from pathlib import Path

import pytest

from repro.lint import build_passes, lint_paths
from repro.lint.passes.determinism import DeterminismPass
from repro.lint.passes.floateq import FloatEqualityPass
from repro.lint.passes.obs_schema import ObsSchemaPass
from repro.lint.passes.perf import PerfPass
from repro.lint.passes.policy import PolicyConformancePass
from repro.lint.passes.units import UnitsPass

FIXTURES = Path(__file__).parent / "fixtures"

pytestmark = pytest.mark.lint

#: (pass class, bad fixture, rule ids that must fire, clean fixture).
CASES = [
    (
        DeterminismPass,
        "determinism_bad.py",
        {"DET001", "DET002", "DET003", "DET004", "DET005"},
        "determinism_good.py",
    ),
    (
        UnitsPass,
        "units_bad.py",
        {"UNI001", "UNI002"},
        "units_good.py",
    ),
    (
        FloatEqualityPass,
        "floateq_bad.py",
        {"FLT001"},
        "floateq_good.py",
    ),
    (
        ObsSchemaPass,
        "obs_bad.py",
        {"OBS001", "OBS002", "OBS004"},
        "obs_good.py",
    ),
    (
        PolicyConformancePass,
        "policy_bad.py",
        {"POL001", "POL002", "POL003", "POL004"},
        "policy_good.py",
    ),
    (
        PerfPass,
        "perf_bad.py",
        {"PERF001"},
        "perf_good.py",
    ),
]


def run_single(pass_cls, fixture_name):
    return lint_paths(
        [FIXTURES / fixture_name], [pass_cls()], display_root=FIXTURES
    )


@pytest.mark.parametrize(
    "pass_cls,bad,expected_rules,good",
    CASES,
    ids=[c[0].name for c in CASES],
)
def test_bad_fixture_fires_every_rule(pass_cls, bad, expected_rules, good):
    findings = run_single(pass_cls, bad)
    fired = {f.rule for f in findings}
    assert expected_rules <= fired, (
        f"{pass_cls.name}: expected {sorted(expected_rules)}, "
        f"got {sorted(fired)}: {[f.render() for f in findings]}"
    )


@pytest.mark.parametrize(
    "pass_cls,bad,expected_rules,good",
    CASES,
    ids=[c[0].name for c in CASES],
)
def test_good_fixture_is_clean(pass_cls, bad, expected_rules, good):
    findings = run_single(pass_cls, good)
    assert findings == [], [f.render() for f in findings]


def test_determinism_counts_every_site():
    """The bad fixture's per-rule finding counts are exact."""
    findings = run_single(DeterminismPass, "determinism_bad.py")
    by_rule = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    assert by_rule == {
        "DET001": 2,  # random.Random(), np.random.default_rng()
        "DET002": 2,  # from random import shuffle; random.random()
        "DET003": 2,  # time.time(), datetime.now()
        "DET004": 1,  # set-literal iteration
        "DET005": 2,  # hash(tag), key=hash
    }


def test_units_pass_skips_units_module():
    """repro/units.py is the one legal home for conversion constants."""
    import repro.units as units_module

    findings = lint_paths(
        [Path(units_module.__file__)], [UnitsPass()]
    )
    assert findings == []


def test_obs_pass_reports_field_drift_detail():
    findings = run_single(ObsSchemaPass, "obs_bad.py")
    messages = "\n".join(f.message for f in findings)
    assert "job_teleport" in messages
    assert "missing fields ['epochs_done']" in messages
    assert "extra fields ['mood']" in messages
    assert "['flavour']" in messages  # helper-call drift


def test_obs004_counts_both_service_emission_forms():
    """OBS004 fires for the typed helper and the raw-emit spelling."""
    findings = run_single(ObsSchemaPass, "obs_bad.py")
    obs004 = [f for f in findings if f.rule == "OBS004"]
    assert len(obs004) == 2
    assert {"'service_start'" in f.message for f in obs004} == {True, False}


def test_obs004_exempts_serve_package_and_tracer_helpers():
    """The service and the helper definitions are the legal emit sites."""
    import repro.obs.tracer as tracer_module
    import repro.serve.engine as engine_module

    findings = lint_paths(
        [Path(engine_module.__file__), Path(tracer_module.__file__)],
        [ObsSchemaPass()],
    )
    assert [f for f in findings if f.rule == "OBS004"] == []


def test_perf_pass_only_covers_vectorized_modules(tmp_path):
    """The same sweep is legal in a module that never opted in."""
    source = FIXTURES / "perf_bad.py"
    opted_out = tmp_path / "plain.py"
    opted_out.write_text(
        "\n".join(
            line
            for line in source.read_text().splitlines()
            if "repro.perf.backend" not in line
        )
        + "\n"
    )
    assert lint_paths([opted_out], [PerfPass()]) == []


def test_build_passes_selects_by_name_and_rule():
    assert [p.name for p in build_passes(["determinism"])] == [
        "determinism"
    ]
    assert [p.name for p in build_passes(["UNI001"])] == ["units"]
    with pytest.raises(ValueError):
        build_passes(["no-such-pass"])
