"""Whole-program passes over the fixture project: XDET, XUNI, XOBS."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import IndexCache, lint_paths
from repro.lint.engine import ProjectIndex, SourceFile
from repro.lint.passes.xdet import CrossDeterminismPass
from repro.lint.passes.xobs import CrossObsScopePass
from repro.lint.passes.xuni import CrossUnitsPass

pytestmark = pytest.mark.lint

PROJECT = Path(__file__).parent / "fixtures" / "project"


def lint_project(passes, **kwargs):
    return lint_paths(
        [PROJECT], passes, display_root=PROJECT, **kwargs
    )


def write_tree(tmp_path, sources):
    for name, text in sources.items():
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return tmp_path


#: A minimal taint chain in loose modules: a.helper reads the clock,
#: b.record emits an event carrying it.
TAINT_SOURCE = (
    "import time\n"
    "\n"
    "def helper():\n"
    "    return time.time()\n"
)
TAINT_SINK = (
    "import a\n"
    "\n"
    "def record(tracer):\n"
    "    t = a.helper()\n"
    '    tracer.emit(0.0, "job_submit", t=t)\n'
)


class TestCrossDeterminism:
    def test_two_hop_chain_reaches_the_sink(self):
        findings = lint_project([CrossDeterminismPass()])
        assert [f.rule for f in findings] == ["XDET001"]
        finding = findings[0]
        assert finding.path == "repro/emitter.py"
        assert "wall-clock read" in finding.message
        assert "repro/clockmod.py" in finding.message
        # The full chain is rendered: sink -> hop -> source.
        assert "emitter.record" in finding.message
        assert "middle.stamp" in finding.message
        assert "clockmod.read_clock" in finding.message
        assert "->" in finding.message

    def test_one_hop_chain(self, tmp_path):
        write_tree(
            tmp_path, {"a.py": TAINT_SOURCE, "b.py": TAINT_SINK}
        )
        findings = lint_paths(
            [tmp_path], [CrossDeterminismPass()], display_root=tmp_path
        )
        assert [f.rule for f in findings] == ["XDET001"]
        assert findings[0].path == "b.py"

    def test_suppressed_source_is_sanctioned(self, tmp_path):
        sanctioned = TAINT_SOURCE.replace(
            "time.time()", "time.time()  # lint: disable=DET003"
        )
        write_tree(
            tmp_path, {"a.py": sanctioned, "b.py": TAINT_SINK}
        )
        findings = lint_paths(
            [tmp_path], [CrossDeterminismPass()], display_root=tmp_path
        )
        assert findings == []

    def test_edge_suppression_cuts_the_chain(self, tmp_path):
        cut = TAINT_SINK.replace(
            "t = a.helper()",
            "t = a.helper()  # lint: disable=XDET001",
        )
        write_tree(tmp_path, {"a.py": TAINT_SOURCE, "b.py": cut})
        findings = lint_paths(
            [tmp_path], [CrossDeterminismPass()], display_root=tmp_path
        )
        assert findings == []


class TestCrossUnits:
    def test_fixture_findings_are_exactly_the_planted_bugs(self):
        findings = lint_project([CrossUnitsPass()])
        assert [f.path for f in findings] == ["repro/unituse.py"] * 3
        by_rule = sorted(f.rule for f in findings)
        assert by_rule == ["XUNI001", "XUNI002", "XUNI002"]

    def test_return_unit_flows_into_suffix_mismatch(self):
        findings = lint_project([CrossUnitsPass()])
        xuni001 = [f for f in findings if f.rule == "XUNI001"]
        assert len(xuni001) == 1
        assert "s value assigned" in xuni001[0].message
        assert "ms" in xuni001[0].message

    def test_param_and_helper_bindings_are_checked(self):
        findings = lint_project([CrossUnitsPass()])
        messages = [
            f.message for f in findings if f.rule == "XUNI002"
        ]
        assert any("'size_mb'" in m and "expects MB" in m for m in messages)
        assert any("units.gb" in m and "expects GB" in m for m in messages)


class TestCrossObsScope:
    def test_wrapper_call_from_outside_the_scope_is_flagged(self):
        findings = lint_project([CrossObsScopePass()])
        assert [f.rule for f in findings] == ["XOBS001"]
        finding = findings[0]
        assert finding.path == "repro/outside.py"
        assert "'service_start'" in finding.message
        assert "repro/serve/" in finding.message

    def test_in_scope_emission_itself_is_not_flagged(self):
        findings = lint_project([CrossObsScopePass()])
        assert all(f.path != "repro/serve/narrate.py" for f in findings)


class TestSoundnessGap:
    def test_stats_report_unresolved_calls(self):
        stats = {}
        lint_project([CrossDeterminismPass()], stats=stats)
        # At least dynamic.apply's two opaque calls land in the gap.
        assert stats["unresolved_calls"] >= 2

    def test_index_attributes_unresolved_to_their_context(self):
        files = [
            SourceFile(path, PROJECT)
            for path in sorted(PROJECT.rglob("*.py"))
        ]
        index = ProjectIndex(files)
        texts = {
            call.callee_text
            for call in index.graph.unresolved_in("repro.dynamic.apply")
        }
        assert "callback" in texts

    def test_cli_json_surfaces_the_count(self, tmp_path, capsys):
        code = main(
            [
                "lint",
                str(PROJECT),
                "--select",
                "xdet",
                "--format",
                "json",
                "--baseline",
                str(tmp_path / "b.json"),
                "--no-cache",
            ]
        )
        assert code == 1  # the planted XDET001 chain.
        payload = json.loads(capsys.readouterr().out)
        assert payload["unresolved_calls"] >= 2
        assert [f["rule"] for f in payload["findings"]] == ["XDET001"]


class TestIndexCache:
    def test_warm_run_replays_findings_and_stats(self, tmp_path):
        cache = IndexCache(tmp_path / "cache.json")
        cold_stats, warm_stats = {}, {}
        cold = lint_project(
            [CrossDeterminismPass()], cache=cache, stats=cold_stats
        )
        assert (cache.misses, cache.hits) == (1, 0)
        warm = lint_project(
            [CrossDeterminismPass()], cache=cache, stats=warm_stats
        )
        assert (cache.misses, cache.hits) == (1, 1)
        assert warm == cold
        assert warm_stats == cold_stats

    def test_any_file_edit_invalidates(self, tmp_path):
        tree = write_tree(
            tmp_path / "tree",
            {"a.py": TAINT_SOURCE, "b.py": TAINT_SINK},
        )
        cache = IndexCache(tmp_path / "cache.json")
        lint_paths(
            [tree],
            [CrossDeterminismPass()],
            display_root=tree,
            cache=cache,
        )
        (tree / "a.py").write_text(TAINT_SOURCE + "\nEXTRA = 1\n")
        lint_paths(
            [tree],
            [CrossDeterminismPass()],
            display_root=tree,
            cache=cache,
        )
        assert (cache.misses, cache.hits) == (2, 0)

    def test_broken_cache_file_means_cold_run_not_crash(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{not json")
        cache = IndexCache(cache_path)
        findings = lint_project([CrossDeterminismPass()], cache=cache)
        assert [f.rule for f in findings] == ["XDET001"]
