"""The ``REPRO_NO_NUMPY`` backend switch (``repro.perf.backend``)."""

import os

import pytest

from repro.perf.backend import (
    BACKEND_FALLBACK,
    BACKEND_VECTORIZED,
    NO_NUMPY_ENV,
    backend_name,
    numpy_enabled,
    require_numpy,
    using_backend,
)

pytestmark = pytest.mark.perf


def test_env_flag_forces_fallback(monkeypatch):
    monkeypatch.setenv(NO_NUMPY_ENV, "1")
    assert not numpy_enabled()
    assert backend_name() == BACKEND_FALLBACK


def test_zero_and_empty_flag_keep_numpy(monkeypatch):
    for value in ("", "0"):
        monkeypatch.setenv(NO_NUMPY_ENV, value)
        assert numpy_enabled()
        assert backend_name() == BACKEND_VECTORIZED


def test_require_numpy_raises_under_fallback(monkeypatch):
    monkeypatch.setenv(NO_NUMPY_ENV, "1")
    with pytest.raises(RuntimeError, match="fallback"):
        require_numpy()


def test_require_numpy_returns_module(monkeypatch):
    monkeypatch.delenv(NO_NUMPY_ENV, raising=False)
    np = require_numpy()
    assert hasattr(np, "fromiter")


def test_using_backend_restores_environment(monkeypatch):
    monkeypatch.delenv(NO_NUMPY_ENV, raising=False)
    with using_backend(BACKEND_FALLBACK):
        assert backend_name() == BACKEND_FALLBACK
    assert NO_NUMPY_ENV not in os.environ
    monkeypatch.setenv(NO_NUMPY_ENV, "1")
    with using_backend(BACKEND_VECTORIZED):
        assert backend_name() == BACKEND_VECTORIZED
    assert os.environ[NO_NUMPY_ENV] == "1"


def test_using_backend_auto_is_a_noop(monkeypatch):
    monkeypatch.setenv(NO_NUMPY_ENV, "1")
    with using_backend(None):
        assert backend_name() == BACKEND_FALLBACK
    with using_backend("auto"):
        assert backend_name() == BACKEND_FALLBACK


def test_using_backend_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown backend"):
        with using_backend("simd"):
            pass
