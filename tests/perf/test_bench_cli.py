"""``repro bench`` end-to-end: measure, write, list, and compare."""

import json

import pytest

from repro.perf.bench import SCENARIOS, SUITES, run_scenario
from repro.perf.cli import main
from repro.perf.record import BENCH_SCHEMA_VERSION, load_record, write_record

pytestmark = pytest.mark.perf

TINY = ["--scenario", "fluid_tiny"]


def test_catalogue_contains_roadmap_scale_points():
    assert "fluid_10k_2k" in SCENARIOS
    assert SCENARIOS["fluid_10k_2k"].num_jobs == 10000
    assert SCENARIOS["fluid_10k_2k"].num_gpus == 2000
    for suite, names in SUITES.items():
        assert all(name in SCENARIOS for name in names), suite


def test_list_mode_prints_catalogue(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fluid_10k_2k" in out
    assert "scale" in out


def test_bench_writes_schema_versioned_artifact(tmp_path, capsys):
    assert main(TINY + ["--out-dir", str(tmp_path)]) == 0
    path = tmp_path / "BENCH_fluid_tiny.json"
    record = load_record(path)
    assert record.schema_version == BENCH_SCHEMA_VERSION
    assert record.scenario == "fluid_tiny"
    assert record.jobs_finished == record.num_jobs == 40
    assert record.events_total > 0
    assert record.rounds_total > 0
    assert record.wall_time_s > 0
    assert record.events_per_sec > 0
    out = capsys.readouterr().out
    assert "fluid_tiny" in out
    assert "BENCH_fluid_tiny.json" in out


def test_no_write_leaves_no_artifact(tmp_path, capsys):
    assert main(TINY + ["--out-dir", str(tmp_path), "--no-write"]) == 0
    assert list(tmp_path.iterdir()) == []


def test_compare_self_passes_and_regression_fails(tmp_path, capsys):
    record = run_scenario(SCENARIOS["fluid_tiny"])
    baseline = tmp_path / "BENCH_fluid_tiny.json"
    write_record(record, baseline)

    # Same machine, generous threshold: anchors match, metrics within
    # tolerance -> exit 0.
    assert main(["--compare", str(baseline), "--threshold", "5.0",
                 "--no-write"]) == 0

    # An absurdly fast fabricated baseline makes the re-run regress.
    raw = record.to_dict()
    raw["events_per_sec"] = record.events_per_sec * 1000.0
    raw["rounds_per_sec"] = record.rounds_per_sec * 1000.0
    fast = tmp_path / "fast.json"
    fast.write_text(json.dumps(raw))
    assert main(["--compare", str(fast), "--threshold", "0.25",
                 "--no-write"]) == 2
    out = capsys.readouterr().out
    assert "[REGRESSED]" in out


def test_compare_detects_anchor_drift(tmp_path, capsys):
    record = run_scenario(SCENARIOS["fluid_tiny"])
    raw = record.to_dict()
    raw["jobs_finished"] = record.jobs_finished - 1
    drifted = tmp_path / "drifted.json"
    drifted.write_text(json.dumps(raw))
    # Even an infinite threshold cannot excuse diverging simulations.
    assert main(["--compare", str(drifted), "--threshold", "100.0",
                 "--no-write"]) == 2
    assert "[DRIFT]" in capsys.readouterr().out


def test_unknown_scenario_is_rejected():
    with pytest.raises(ValueError, match="unknown scenario"):
        main(["--scenario", "fluid_1e9_jobs", "--no-write"])


def test_backend_flag_is_recorded(tmp_path):
    assert main(TINY + ["--backend", "fallback",
                        "--out-dir", str(tmp_path)]) == 0
    record = load_record(tmp_path / "BENCH_fluid_tiny.json")
    assert record.backend == "fallback"


def test_serve_baseline_routes_to_serve_comparator(tmp_path, capsys):
    from repro.serve.bench import (
        SERVE_SCENARIOS,
        run_serve_scenario,
        write_serve_record,
    )

    # Record the catalogue spec itself: the CLI re-runs by scenario name
    # and the comparator refuses identity drift.
    record = run_serve_scenario(SERVE_SCENARIOS["serve_tiny"])
    baseline = tmp_path / "BENCH_serve_tiny.json"
    write_serve_record(record, baseline)

    # A serve baseline re-runs its scenario and compares serve metrics —
    # without dragging the batch suite in.
    assert main(["--compare", str(baseline), "--threshold", "5.0",
                 "--no-write"]) == 0
    out = capsys.readouterr().out
    assert "decision_latency_p99_ms" in out
    assert "decisions_per_sec" in out
    assert "fluid_tiny" not in out

    # A fabricated impossibly fast baseline regresses the re-run.
    raw = record.to_dict()
    raw["decisions_per_sec"] = record.decisions_per_sec * 1000.0
    fast = tmp_path / "fast.json"
    fast.write_text(json.dumps(raw))
    assert main(["--compare", str(fast), "--threshold", "0.25",
                 "--no-write"]) == 2
    assert "[REGRESSED]" in capsys.readouterr().out


def test_unreadable_compare_baseline_exits_cleanly(tmp_path):
    missing = tmp_path / "nope.json"
    with pytest.raises(SystemExit):
        main(["--compare", str(missing), "--no-write"])
