"""Property-based vectorized-vs-fallback equivalence (the perf contract).

``docs/PERFORMANCE.md`` promises the numpy paths are *bit-identical* to
the pure-Python fallback — not merely close. These tests enforce that
with hypothesis: every seeded random trace must produce byte-for-byte
equal scheduling decisions, event sequences, and result records under
both backends, and the numeric primitives the argument rests on
(``np.floor_divide`` vs ``//``, elementwise min/mul) must agree exactly.
"""

import dataclasses
import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import units
from repro.cache.residency import ArrayResidencyStore, DictResidencyStore
from repro.cluster.hardware import Cluster
from repro.core.estimator import SiloDPerfEstimator
from repro.obs import Tracer
from repro.perf.backend import (
    BACKEND_FALLBACK,
    BACKEND_VECTORIZED,
    using_backend,
)
from repro.sim.runner import run_experiment
from repro.workloads.trace import (
    TraceConfig,
    arrival_rate_for_load,
    generate_trace,
)

pytestmark = pytest.mark.perf

np = pytest.importorskip("numpy")

from repro.perf.backend import numpy_enabled  # noqa: E402

#: Tests that build vectorized objects in-process (rather than through
#: a subprocess with its own environment) cannot run when REPRO_NO_NUMPY
#: forces the fallback — the constructors refuse, by design.
needs_vectorized = pytest.mark.skipif(
    not numpy_enabled(),
    reason="REPRO_NO_NUMPY forces the pure-Python fallback",
)


def bitwise(x):
    """A hashable, bit-exact view of any result structure.

    Floats are rendered with ``hex()`` so ``0.1 + 0.2`` and ``0.3``
    differ; NaN (the fairness ratio of an empty sample window) compares
    equal to itself, which ``==`` on raw floats would not.
    """
    if dataclasses.is_dataclass(x):
        return tuple(
            (f.name, bitwise(getattr(x, f.name)))
            for f in dataclasses.fields(x)
        )
    if isinstance(x, dict):
        return tuple(sorted((k, bitwise(v)) for k, v in x.items()))
    if isinstance(x, (list, tuple)):
        return tuple(bitwise(v) for v in x)
    if isinstance(x, float):
        return "nan" if math.isnan(x) else x.hex()
    return x


def tiny_trace(seed: int, num_jobs: int, gpus: int):
    cfg = TraceConfig(
        num_jobs=num_jobs,
        seed=seed,
        duration_median_s=3600.0,
        duration_sigma=1.2,
    )
    cfg.mean_interarrival_s = arrival_rate_for_load(cfg, gpus, load=1.5)
    return generate_trace(cfg)


def tiny_cluster(gpus: int) -> Cluster:
    return Cluster.build(
        num_servers=max(1, gpus // 4),
        gpus_per_server=4,
        cache_per_server_mb=4 * units.gb(92.0),
        remote_io_mbps=units.gbps(0.08 * gpus),
    )


#: Event fields measuring *wall-clock* (scheduler latency) rather than
#: simulated state — nondeterministic across any two runs, so excluded
#: from the bit-equivalence comparison.
WALL_CLOCK_FIELDS = frozenset({"latency_ms"})


def comparable(event) -> dict:
    return {
        k: v
        for k, v in event.to_dict().items()
        if k not in WALL_CLOCK_FIELDS
    }


def run_both(simulator: str, seed: int, num_jobs: int, gpus: int,
             **sim_kwargs):
    outcomes = {}
    for backend in (BACKEND_VECTORIZED, BACKEND_FALLBACK):
        with using_backend(backend):
            tracer = Tracer()
            result = run_experiment(
                tiny_cluster(gpus),
                "fifo",
                "silod",
                tiny_trace(seed, num_jobs, gpus),
                simulator=simulator,
                tracer=tracer,
                **sim_kwargs,
            )
            events = tuple(bitwise(comparable(e)) for e in tracer.events)
            outcomes[backend] = (bitwise(result), events)
    return outcomes


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    num_jobs=st.integers(8, 24),
    gpus=st.sampled_from([8, 16]),
)
def test_fluid_runs_are_bit_identical(seed, num_jobs, gpus):
    outcomes = run_both(
        "fluid", seed, num_jobs, gpus,
        reschedule_interval_s=1800.0, sample_interval_s=3600.0,
    )
    vec, fb = outcomes[BACKEND_VECTORIZED], outcomes[BACKEND_FALLBACK]
    assert vec[0] == fb[0], "result records / timeline diverged"
    assert vec[1] == fb[1], "event sequences diverged"
    assert len(vec[1]) > 0


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(0, 2**16), num_jobs=st.integers(8, 12))
def test_minibatch_runs_are_bit_identical(seed, num_jobs):
    outcomes = run_both(
        "minibatch", seed, num_jobs, 8,
        decision_interval_s=600.0, sample_interval_s=3600.0,
        item_size_mb=64.0,
    )
    vec, fb = outcomes[BACKEND_VECTORIZED], outcomes[BACKEND_FALLBACK]
    assert vec[0] == fb[0], "result records / timeline diverged"
    assert vec[1] == fb[1], "event sequences diverged"


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    num_jobs=st.integers(8, 64),
    grants=st.data(),
)
def test_estimator_batch_matches_scalar_loop(seed, num_jobs, grants):
    jobs = tiny_trace(seed, num_jobs, 16)
    gpus = [
        grants.draw(st.floats(0.0, 64.0, allow_nan=False))
        for _ in jobs
    ]
    est = SiloDPerfEstimator()
    with using_backend(BACKEND_VECTORIZED):
        vec = est.compute_bound_batch(jobs, gpus)
    with using_backend(BACKEND_FALLBACK):
        fb = est.compute_bound_batch(jobs, gpus)
    scalar = [est.compute_bound(j, g) for j, g in zip(jobs, gpus)]
    assert bitwise(vec) == bitwise(fb) == bitwise(scalar)


@settings(max_examples=200, deadline=None)
@given(
    a=st.floats(allow_nan=False, allow_infinity=False),
    b=st.floats(min_value=1e-9, max_value=1e12),
)
def test_floor_divide_matches_python(a, b):
    # The next-epoch-boundary sweep relies on np.floor_divide being the
    # same operation as CPython's float ``//``.
    ours = float(np.floor_divide(a, b))
    theirs = a // b
    assert bitwise(ours) == bitwise(theirs)


RESIDENCY_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("ensure"), st.integers(0, 7),
                  st.floats(1.0, 1e6, allow_nan=False)),
        st.tuples(st.just("set_resident"), st.integers(0, 7),
                  st.floats(0.0, 1e6, allow_nan=False)),
        st.tuples(st.just("set_target"), st.integers(0, 7),
                  st.floats(0.0, 1e6, allow_nan=False)),
        st.tuples(st.just("pop"), st.integers(0, 7), st.just(0.0)),
    ),
    min_size=1,
    max_size=40,
)


@needs_vectorized
@settings(max_examples=60, deadline=None)
@given(ops=RESIDENCY_OPS)
def test_residency_stores_stay_in_lockstep(ops):
    # The array-backed store must be observationally identical to the
    # dict reference under any interleaving of mutations.
    dict_store, array_store = DictResidencyStore(), ArrayResidencyStore()
    for op, idx, value in ops:
        key = f"k{idx}"
        for store in (dict_store, array_store):
            if op == "ensure":
                store.ensure(key, value)
            elif op == "set_resident" and key in store:
                store.set_resident_mb(key, value)
            elif op == "set_target" and key in store:
                store.set_target_mb(key, value)
            elif op == "pop":
                store.pop(key)
    assert dict_store.keys() == array_store.keys()
    assert len(dict_store) == len(array_store)
    for key in dict_store.keys():
        assert bitwise(dict_store.snapshot(key)) == bitwise(
            array_store.snapshot(key)
        )
    assert bitwise(dict_store.total_resident_mb()) == bitwise(
        array_store.total_resident_mb()
    )
    assert dict_store.stale_first_keys() == array_store.stale_first_keys()
    assert bitwise(dict_store.reclaim_candidates()) == bitwise(
        array_store.reclaim_candidates()
    )
    # The candidates are the stale-first walk minus the keys a reclaim
    # would skip (resident <= target), with the walk's own values.
    assert dict_store.reclaim_candidates() == [
        (key, dict_store.resident_mb(key), dict_store.target_mb(key))
        for key in dict_store.stale_first_keys()
        if dict_store.resident_mb(key) > dict_store.target_mb(key)
    ]


@needs_vectorized
@settings(max_examples=40, deadline=None)
@given(
    ops=RESIDENCY_OPS,
    targets=st.dictionaries(
        st.sampled_from([f"k{i}" for i in range(8)]),
        st.floats(0.0, 1e6, allow_nan=False),
        max_size=8,
    ),
)
def test_apply_targets_is_backend_identical(ops, targets):
    assume(targets)
    dict_store, array_store = DictResidencyStore(), ArrayResidencyStore()
    for op, idx, value in ops:
        key = f"k{idx}"
        for store in (dict_store, array_store):
            if op == "ensure":
                store.ensure(key, value)
            elif op == "set_resident" and key in store:
                store.set_resident_mb(key, value)
    sizes = {key: 2.0 * mb for key, mb in targets.items()}
    shrunk_dict = dict_store.apply_targets(dict(targets), dict(sizes))
    shrunk_array = array_store.apply_targets(dict(targets), dict(sizes))
    assert bitwise(shrunk_dict) == bitwise(shrunk_array)
    for key in targets:
        assert bitwise(dict_store.snapshot(key)) == bitwise(
            array_store.snapshot(key)
        )
