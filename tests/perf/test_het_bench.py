"""Het bench records: round-trip, drift comparison, ordering smoke."""

import dataclasses
import json

import pytest

from repro.perf.het_bench import (
    HET_BENCH_FIELDS,
    HET_BENCH_SCHEMA_VERSION,
    HET_POLICIES,
    HET_SCENARIOS,
    HetBenchRecord,
    HetBenchScenario,
    compare_het_records,
    load_het_record,
    render_het_record,
    run_het_scenario,
    write_het_record,
)
from repro.perf.record import has_failures

pytestmark = pytest.mark.perf


def record(**overrides) -> HetBenchRecord:
    base = dict(
        schema_version=HET_BENCH_SCHEMA_VERSION,
        scenario="het_tiny",
        simulator="fluid",
        cache="silod",
        num_jobs=16,
        num_gpus=12,
        gpu_mix="V100:2,A100:1",
        policies=list(HET_POLICIES),
        agg_throughput_mbps={
            "fifo": 100.0,
            "het-max-min": 120.0,
            "het-max-throughput": 125.0,
        },
        avg_jct_min={
            "fifo": 200.0,
            "het-max-min": 170.0,
            "het-max-throughput": 180.0,
        },
        jobs_finished={
            "fifo": 16,
            "het-max-min": 16,
            "het-max-throughput": 16,
        },
        ordering_ok=True,
        wall_time_s=2.0,
        created_utc="2026-08-07T00:00:00Z",
        host={"python": "3.11.7"},
    )
    base.update(overrides)
    return HetBenchRecord(**base)


def test_het_bench_fields_match_dataclass_order():
    assert HET_BENCH_FIELDS == tuple(
        f.name for f in dataclasses.fields(HetBenchRecord)
    )
    assert HET_BENCH_FIELDS[0] == "schema_version"


def test_write_load_roundtrip(tmp_path):
    rec = record()
    path = write_het_record(rec, tmp_path / "BENCH_het_tiny.json")
    assert load_het_record(path) == rec
    assert json.loads(path.read_text())["gpu_mix"] == "V100:2,A100:1"


def test_load_rejects_schema_drift(tmp_path):
    path = write_het_record(record(), tmp_path / "BENCH_het_tiny.json")
    payload = json.loads(path.read_text())
    payload["schema_version"] = HET_BENCH_SCHEMA_VERSION + 1
    path.write_text(json.dumps(payload))
    with pytest.raises(ValueError):
        load_het_record(path)
    payload["schema_version"] = HET_BENCH_SCHEMA_VERSION
    del payload["ordering_ok"]
    path.write_text(json.dumps(payload))
    with pytest.raises(ValueError):
        load_het_record(path)


def test_compare_flags_simulated_drift_bit_exactly():
    base = record()
    same = compare_het_records(record(), base, threshold=1.05)
    assert not has_failures(same)
    drifted = record()
    drifted.agg_throughput_mbps["het-max-min"] = 120.001
    deltas = compare_het_records(drifted, base, threshold=1.05)
    failing = [d for d in deltas if d.drift or d.regressed]
    assert [d.metric for d in failing] == ["agg[het-max-min]"]
    assert has_failures(deltas)


def test_compare_flags_ordering_regression():
    broken = record(ordering_ok=False)
    deltas = compare_het_records(broken, record(), threshold=1.05)
    assert any(d.metric == "ordering_ok" and d.drift for d in deltas)


def test_compare_rejects_identity_mismatch():
    other = record(gpu_mix="K80:12,P100:8,V100:5")
    with pytest.raises(ValueError):
        compare_het_records(other, record(), threshold=1.05)


def test_wall_time_is_thresholded_not_bit_exact():
    slower = record(wall_time_s=2.05)
    deltas = compare_het_records(slower, record(), threshold=1.10)
    wall = next(d for d in deltas if d.metric == "wall_time_s")
    assert not wall.regressed and not wall.drift


def test_render_mentions_every_policy():
    text = render_het_record(record())
    for policy in HET_POLICIES:
        assert policy in text
    assert "V100:2,A100:1" in text


def test_catalogue_scenarios_are_wellformed():
    assert list(HET_SCENARIOS) == ["het_tiny", "het_philly"]
    for name, spec in HET_SCENARIOS.items():
        assert spec.name == name
        assert spec.num_gpus == spec.gpus_per_server * sum(
            n for _, n in spec.gpu_mix
        )
        assert spec.build_cluster().is_heterogeneous


def test_run_het_scenario_smoke():
    """A miniature mixed fleet runs the sweep with the ordering intact."""
    spec = HetBenchScenario(
        name="het_micro",
        gpu_mix=(("V100", 1), ("A100", 1)),
        num_jobs=8,
        seed=7,
        duration_median_s=1200.0,
    )
    rec = run_het_scenario(spec)
    assert rec.scenario == "het_micro"
    assert rec.policies == list(HET_POLICIES)
    assert set(rec.agg_throughput_mbps) == set(HET_POLICIES)
    assert all(v > 0 for v in rec.agg_throughput_mbps.values())
    assert all(
        rec.jobs_finished[p] <= spec.num_jobs for p in HET_POLICIES
    )
    # Determinism: the same spec reproduces every simulated metric.
    again = run_het_scenario(spec)
    assert again.agg_throughput_mbps == rec.agg_throughput_mbps
    assert again.avg_jct_min == rec.avg_jct_min
    assert again.ordering_ok == rec.ordering_ok
