"""Schema-versioned bench records and ``--compare`` semantics."""

import dataclasses
import json

import pytest

from repro.perf.record import (
    ARTIFACT_SCHEMA_VERSION,
    BENCH_FIELDS,
    BENCH_SCHEMA_VERSION,
    BenchRecord,
    compare_records,
    has_failures,
    load_benchmark_artifact,
    load_record,
    write_benchmark_artifact,
    write_record,
)

pytestmark = pytest.mark.perf


def record(**overrides) -> BenchRecord:
    base = dict(
        schema_version=BENCH_SCHEMA_VERSION,
        scenario="fluid_smoke",
        simulator="fluid",
        policy="fifo",
        cache="silod",
        num_jobs=120,
        num_gpus=64,
        backend="vectorized",
        wall_time_s=2.0,
        peak_rss_mb=100.0,
        events_total=1000,
        events_per_sec=500.0,
        rounds_total=40,
        rounds_per_sec=20.0,
        sim_time_s=86400.0,
        jobs_finished=120,
        avg_jct_min=42.5,
        created_utc="2026-08-07T00:00:00Z",
        host={"python": "3.11.7"},
    )
    base.update(overrides)
    return BenchRecord(**base)


def test_bench_fields_match_dataclass_order():
    assert BENCH_FIELDS == tuple(
        f.name for f in dataclasses.fields(BenchRecord)
    )
    assert BENCH_FIELDS[0] == "schema_version"


def test_write_load_roundtrip(tmp_path):
    rec = record()
    path = write_record(rec, tmp_path / "BENCH_fluid_smoke.json")
    assert load_record(path) == rec
    # The JSON layout preserves field declaration order.
    assert list(json.loads(path.read_text())) == list(BENCH_FIELDS)


def test_load_rejects_wrong_schema_version(tmp_path):
    path = write_record(record(schema_version=99), tmp_path / "b.json")
    with pytest.raises(ValueError, match="schema version"):
        load_record(path)


def test_load_rejects_unknown_and_missing_fields(tmp_path):
    raw = record().to_dict()
    raw["surprise"] = 1
    path = tmp_path / "b.json"
    path.write_text(json.dumps(raw))
    with pytest.raises(ValueError, match="unknown bench fields"):
        load_record(path)
    del raw["surprise"]
    del raw["wall_time_s"]
    path.write_text(json.dumps(raw))
    with pytest.raises(ValueError, match="missing bench fields"):
        load_record(path)


def test_compare_flags_throughput_drop_only():
    baseline = record()
    same = compare_records(record(), baseline, threshold=0.25)
    assert not has_failures(same)
    slower = compare_records(
        record(events_per_sec=300.0), baseline, threshold=0.25
    )
    assert has_failures(slower)
    regressed = [d.metric for d in slower if d.regressed]
    assert regressed == ["events_per_sec"]
    # Faster-than-baseline never regresses a throughput metric.
    faster = compare_records(
        record(events_per_sec=5000.0, rounds_per_sec=200.0),
        baseline,
        threshold=0.25,
    )
    assert not has_failures(faster)


def test_compare_flags_cost_rise_only():
    baseline = record()
    bloated = compare_records(
        record(peak_rss_mb=200.0, wall_time_s=1.0),
        baseline,
        threshold=0.25,
    )
    assert [d.metric for d in bloated if d.regressed] == ["peak_rss_mb"]


def test_compare_within_threshold_passes():
    deltas = compare_records(
        record(wall_time_s=2.4, events_per_sec=420.0),
        record(),
        threshold=0.25,
    )
    assert not has_failures(deltas)


def test_compare_flags_anchor_drift():
    deltas = compare_records(
        record(jobs_finished=119), record(), threshold=0.25
    )
    drifted = [d.metric for d in deltas if d.drift]
    assert drifted == ["jobs_finished"]
    assert has_failures(deltas)


def test_compare_rejects_identity_mismatch():
    with pytest.raises(ValueError, match="scenario differs"):
        compare_records(record(scenario="other"), record(), threshold=0.25)
    with pytest.raises(ValueError, match="num_gpus differs"):
        compare_records(record(num_gpus=128), record(), threshold=0.25)


def test_compare_rejects_negative_threshold():
    with pytest.raises(ValueError, match="non-negative"):
        compare_records(record(), record(), threshold=-0.1)


def test_delta_render_marks_failures():
    deltas = compare_records(
        record(events_per_sec=10.0, jobs_finished=119),
        record(),
        threshold=0.25,
    )
    rendered = "\n".join(d.render() for d in deltas)
    assert "[REGRESSED]" in rendered
    assert "[DRIFT]" in rendered


def test_benchmark_artifact_roundtrip(tmp_path):
    path = write_benchmark_artifact(
        "ext_sweep", "cells", {"cells": [{"gpus": 16}]}, tmp_path
    )
    assert path.name == "ext_sweep.json"
    raw = load_benchmark_artifact(path)
    assert raw["schema_version"] == ARTIFACT_SCHEMA_VERSION
    assert raw["kind"] == "cells"
    assert raw["data"] == {"cells": [{"gpus": 16}]}


def test_benchmark_artifact_rejects_wrong_version(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema_version": 0, "data": None}))
    with pytest.raises(ValueError, match="schema version"):
        load_benchmark_artifact(path)
