"""Irregular-job partitioning end-to-end (§6)."""

import pytest

from repro.cluster.dataset import Dataset
from repro.cluster.hardware import Cluster
from repro.cluster.job import Job
from repro.sim.runner import make_system
from repro.sim.fluid import FluidSimulator

GB = 1024.0


def job(job_id, regular, f_star=100.0, d_gb=40.0, epochs=3.0):
    return Job(
        job_id=job_id,
        model="m",
        dataset=Dataset(f"d-{job_id}", d_gb * GB),
        num_gpus=1,
        ideal_throughput_mbps=f_star,
        total_work_mb=epochs * d_gb * GB,
        regular=regular,
    )


def run(jobs):
    cluster = Cluster.build(1, 4, 100.0 * GB, 80.0)
    scheduler, cache_system = make_system("fifo", "silod")
    return FluidSimulator(cluster, scheduler, cache_system, jobs).run()


def test_mixed_cluster_completes():
    jobs = [
        job("reg-0", True),
        job("reg-1", True),
        job("irr-0", False),
    ]
    result = run(jobs)
    assert len(result.finished_records()) == 3


def test_irregular_jobs_make_progress():
    jobs = [job("reg-0", True), job("irr-0", False)]
    result = run(jobs)
    by_id = {r.job_id: r for r in result.records}
    assert by_id["irr-0"].finished
    assert by_id["irr-0"].jct_s < float("inf")


def test_regular_jobs_not_starved_by_irregular_pool():
    """Regular jobs keep their co-designed storage benefits even when an
    irregular job shares the cluster."""
    mixed = run([job("reg-0", True), job("irr-0", False)])
    alone = run([job("reg-0", True)])
    reg_mixed = next(
        r for r in mixed.records if r.job_id == "reg-0"
    )
    reg_alone = alone.records[0]
    # Sharing the cluster can slow it down, but not catastrophically
    # (both fit on the 4 GPUs; only storage is contended).
    assert reg_mixed.jct_s < reg_alone.jct_s * 3.0
