"""Dataset sharing end-to-end (§6, §7.3)."""

import pytest

from repro.cluster.hardware import Cluster
from repro.sim.runner import run_experiment
from repro.workloads.trace import TraceConfig, generate_trace

GB = 1024.0


def cluster():
    return Cluster.build(2, 8, 8 * 128.0 * GB, 300.0)


def trace(shared_fraction):
    cfg = TraceConfig(
        num_jobs=40,
        seed=21,
        shared_dataset_fraction=shared_fraction,
        mean_interarrival_s=240.0,
        duration_median_s=2400.0,
    )
    return generate_trace(cfg)


@pytest.mark.parametrize("policy", ["fifo", "sjf"])
def test_sharing_improves_average_jct(policy):
    """Figure 15: more jobs sharing datasets -> lower average JCT."""
    no_sharing = run_experiment(
        cluster(), policy, "silod", trace(0.0),
        reschedule_interval_s=1200.0,
    )
    full_sharing = run_experiment(
        cluster(), policy, "silod", trace(1.0),
        reschedule_interval_s=1200.0,
    )
    assert (
        full_sharing.average_jct_minutes()
        < no_sharing.average_jct_minutes()
    )


def test_sharing_cuts_remote_io_usage():
    no_sharing = run_experiment(
        cluster(), "fifo", "silod", trace(0.0),
        reschedule_interval_s=1200.0,
    )
    full_sharing = run_experiment(
        cluster(), "fifo", "silod", trace(1.0),
        reschedule_interval_s=1200.0,
    )
    def total_io(result):
        return sum(s.remote_io_used_mbps for s in result.timeline)

    assert total_io(full_sharing) < total_io(no_sharing)
