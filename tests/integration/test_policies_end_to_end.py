"""End-to-end policy behaviour on contended traces."""

import pytest

from repro.cluster.hardware import Cluster
from repro.sim.runner import run_experiment, run_matrix
from repro.workloads.trace import (
    TraceConfig,
    arrival_rate_for_load,
    generate_trace,
)

GB = 1024.0


def contended_cluster():
    # 32 GPUs with scarce egress so storage decisions matter.
    return Cluster.build(4, 8, 8 * 256.0 * GB, 400.0)


@pytest.fixture(scope="module")
def trace():
    cfg = TraceConfig(num_jobs=80, seed=11, duration_median_s=2400.0)
    cfg.mean_interarrival_s = arrival_rate_for_load(cfg, 32, load=1.6)
    return generate_trace(cfg)


@pytest.fixture(scope="module")
def matrix(trace):
    return run_matrix(
        contended_cluster(),
        trace,
        policies=("fifo", "sjf", "gavel"),
        caches=("silod", "coordl"),
        reschedule_interval_s=1200.0,
        sample_interval_s=1800.0,
    )


def test_everything_completes(matrix):
    for (policy, cache), result in matrix.items():
        assert len(result.finished_records()) == 80, (policy, cache)


def test_silod_beats_decoupled_baseline_on_jct(matrix):
    for policy in ("fifo", "sjf"):
        silod = matrix[(policy, "silod")].average_jct_minutes()
        coordl = matrix[(policy, "coordl")].average_jct_minutes()
        assert silod < coordl * 1.02, policy
    # Gavel optimises fairness, not JCT; the paper itself observes it may
    # cede some JCT/makespan to the baselines (§7.2). Allow a margin.
    silod = matrix[("gavel", "silod")].average_jct_minutes()
    coordl = matrix[("gavel", "coordl")].average_jct_minutes()
    assert silod < coordl * 1.15


def test_sjf_improves_average_jct_over_fifo(matrix):
    assert (
        matrix[("sjf", "silod")].average_jct_minutes()
        < matrix[("fifo", "silod")].average_jct_minutes()
    )


def test_gavel_silod_fairness_is_top_tier(matrix):
    # At this small scale every co-designed configuration saturates near
    # the fairness cap; the decisive cross-system gaps appear at cluster
    # scale (benchmarks/test_fig13_fairness.py). Here we assert Gavel-SiloD
    # sits within the top tier and clearly above the worst configuration.
    fairness = {
        key: result.average_fairness_ratio()
        for key, result in matrix.items()
    }
    gavel_silod = fairness[("gavel", "silod")]
    assert gavel_silod >= max(fairness.values()) - 0.05, fairness
    assert gavel_silod >= min(fairness.values()), fairness


def test_gpu_speed_scaling_amplifies_silod_gains():
    """Figure 14b's mechanism: faster GPUs raise IO demand, so the gap
    between co-design and the baseline grows with GPU speed."""
    gaps = []
    for scale in (1.0, 4.0):
        cfg = TraceConfig(
            num_jobs=40, seed=5, gpu_scale=scale, duration_median_s=2400.0
        )
        cfg.mean_interarrival_s = arrival_rate_for_load(cfg, 32, load=1.4)
        trace = generate_trace(cfg)
        silod = run_experiment(
            contended_cluster(), "gavel", "silod", trace,
            reschedule_interval_s=1200.0,
        )
        base = run_experiment(
            contended_cluster(), "gavel", "coordl", trace,
            reschedule_interval_s=1200.0,
        )
        gaps.append(
            base.average_jct_minutes() / silod.average_jct_minutes()
        )
    assert gaps[1] > gaps[0] * 0.98  # gain does not shrink with speed
