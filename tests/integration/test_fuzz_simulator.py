"""Property-based fuzzing of the fluid simulator.

Random small traces are driven through random (policy, cache)
configurations, and the physical invariants are asserted on every run:

* every job finishes (no deadlock, no lost work);
* finish >= start >= submit for every job;
* remote IO usage never exceeds the egress cap;
* effective cached bytes never exceed resident bytes;
* resident bytes never exceed the cache pool.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.dataset import Dataset
from repro.cluster.hardware import Cluster
from repro.cluster.job import Job
from repro.sim.fluid import FluidSimulator
from repro.sim.runner import make_system

GB = 1024.0

job_specs = st.lists(
    st.tuples(
        st.floats(min_value=5.0, max_value=200.0),   # f* MB/s
        st.floats(min_value=1.0, max_value=60.0),    # dataset GB
        st.floats(min_value=0.2, max_value=5.0),     # epochs
        st.integers(min_value=1, max_value=4),       # gpus
        st.floats(min_value=0.0, max_value=5_000.0), # submit
    ),
    min_size=1,
    max_size=6,
)


@st.composite
def scenarios(draw):
    specs = draw(job_specs)
    jobs = [
        Job(
            job_id=f"fuzz-{i}",
            model="fuzz",
            dataset=Dataset(f"d-{i}", d_gb * GB),
            num_gpus=gpus,
            ideal_throughput_mbps=f_star,
            total_work_mb=max(1.0, epochs * d_gb * GB),
            submit_time_s=submit,
        )
        for i, (f_star, d_gb, epochs, gpus, submit) in enumerate(specs)
    ]
    policy = draw(st.sampled_from(["fifo", "sjf", "gavel", "las"]))
    cache = draw(
        st.sampled_from(["silod", "alluxio", "coordl", "quiver"])
    )
    cache_gb = draw(st.floats(min_value=5.0, max_value=150.0))
    egress = draw(st.floats(min_value=10.0, max_value=400.0))
    return jobs, policy, cache, cache_gb, egress


@given(scenario=scenarios())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_fluid_simulator_invariants(scenario):
    jobs, policy, cache, cache_gb, egress = scenario
    cluster = Cluster.build(2, 4, cache_gb * GB / 2, egress)
    scheduler, cache_system = make_system(policy, cache)
    sim = FluidSimulator(
        cluster,
        scheduler,
        cache_system,
        jobs,
        reschedule_interval_s=600.0,
        sample_interval_s=900.0,
    )
    result = sim.run()

    # Everything finishes, in causal order.
    assert len(result.finished_records()) == len(jobs)
    for record in result.records:
        assert record.start_time_s >= record.submit_time_s - 1e-6
        assert record.finish_time_s >= record.start_time_s - 1e-6
        assert math.isfinite(record.jct_s)

    # Physical budgets hold at every sample.
    for sample in result.timeline:
        assert (
            sample.remote_io_used_mbps
            <= cluster.remote_io_mbps * (1 + 1e-6)
        )
        assert (
            sample.effective_cache_mb
            <= sample.resident_cache_mb + 1e-6
        )
        assert (
            sample.resident_cache_mb
            <= cluster.total_cache_mb * (1 + 1e-6)
        )
        assert sample.total_throughput_mbps >= -1e-9
