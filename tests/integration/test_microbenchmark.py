"""End-to-end: the 8-V100 micro-benchmark (§7.1.1, Table 6, Figure 9).

These are shape assertions against the paper's qualitative results:
SiloD best, Quiver second, CoorDL third, Alluxio (LRU) last; SiloD reaches
the optimal post-warmup throughput of ~374 MB/s; the cached data becomes
effective around minute ~470 (paper: 460).
"""

import pytest

from repro import units
from repro.cluster.hardware import microbenchmark_cluster
from repro.sim.runner import run_experiment
from repro.workloads.trace import microbenchmark_trace


@pytest.fixture(scope="module")
def results():
    return {
        cache: run_experiment(
            microbenchmark_cluster(),
            "fifo",
            cache,
            microbenchmark_trace(),
            sample_interval_s=600.0,
        )
        for cache in ("silod", "coordl", "alluxio", "quiver")
    }


def test_all_jobs_finish(results):
    for result in results.values():
        assert len(result.finished_records()) == 5


def test_paper_ordering_of_cache_systems(results):
    jct = {name: r.average_jct_minutes() for name, r in results.items()}
    assert jct["silod"] < jct["quiver"] < jct["coordl"] < jct["alluxio"]
    makespan = {name: r.makespan_minutes() for name, r in results.items()}
    assert makespan["silod"] == min(makespan.values())


def test_improvement_magnitudes_in_papers_range(results):
    jct = {name: r.average_jct_minutes() for name, r in results.items()}
    # Paper Table 6: CoorDL/SiloD = 1.27, Alluxio/SiloD = 1.30,
    # Quiver/SiloD = 1.07. Accept a generous band around those shapes.
    assert 1.1 < jct["coordl"] / jct["silod"] < 1.6
    assert 1.1 < jct["alluxio"] / jct["silod"] < 1.7
    assert 1.0 < jct["quiver"] / jct["silod"] < 1.5


def test_silod_reaches_optimal_steady_throughput(results):
    """Figure 9: after warmup SiloD sustains ~374 MB/s — every job at its
    ideal speed — with no data-loading bottleneck."""
    timeline = results["silod"].timeline
    plateau = [
        s.total_throughput_mbps
        for s in timeline
        if units.seconds_to_minutes(s.time_s) in range(0, 3000)
        and units.seconds_to_minutes(s.time_s) > 600
        and s.running_jobs == 5
    ]
    assert plateau
    assert max(plateau) == pytest.approx(374.0, rel=0.02)


def test_first_epoch_identical_across_systems(results):
    """Figure 9: before cached items become effective (~minute 460) every
    system performs the same (all data is fetched remotely)."""
    early = {}
    for name, result in results.items():
        values = [
            s.total_throughput_mbps
            for s in result.timeline
            if 60.0 <= units.seconds_to_minutes(s.time_s) <= 300.0
        ]
        early[name] = sum(values) / len(values)
    baseline = early["silod"]
    for name, value in early.items():
        assert value == pytest.approx(baseline, rel=0.05), name


def test_remote_io_capacity_never_exceeded(results):
    for result in results.values():
        for s in result.timeline:
            assert s.remote_io_used_mbps <= 200.0 * 1.001


def test_cache_warmup_completes_near_minute_470(results):
    """The four image jobs enter epoch 2 around minute ~470 (paper: 460);
    SiloD's throughput then jumps from ~200 to ~374 MB/s."""
    timeline = results["silod"].timeline
    jump_minute = None
    for s in timeline:
        if s.total_throughput_mbps > 300.0:
            jump_minute = units.seconds_to_minutes(s.time_s)
            break
    assert jump_minute is not None
    assert 400 <= jump_minute <= 560
