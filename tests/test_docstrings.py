"""Quality gate: every public item in the library carries a docstring."""

import importlib
import inspect
import pkgutil

import repro

#: Private names and re-exports are exempt; everything else must document.
EXEMPT_NAMES = {"__init__", "__main__"}


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it would run the CLI
        yield importlib.import_module(info.name)


def _public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-export; documented at its definition site
        yield name, member


def test_every_module_has_a_docstring():
    undocumented = [
        module.__name__
        for module in _walk_modules()
        if not (module.__doc__ or "").strip()
    ]
    assert not undocumented, undocumented


def test_every_public_class_and_function_has_a_docstring():
    undocumented = []
    for module in _walk_modules():
        for name, member in _public_members(module):
            if not (member.__doc__ or "").strip():
                undocumented.append(f"{module.__name__}.{name}")
    assert not undocumented, undocumented


def test_every_public_method_has_a_docstring():
    undocumented = []
    for module in _walk_modules():
        for cls_name, cls in _public_members(module):
            if not inspect.isclass(cls):
                continue
            for name, method in vars(cls).items():
                if name.startswith("_") or name in EXEMPT_NAMES:
                    continue
                if not (
                    inspect.isfunction(method)
                    or isinstance(method, property)
                ):
                    continue
                doc = (
                    method.fget.__doc__
                    if isinstance(method, property)
                    else method.__doc__
                )
                if (doc or "").strip():
                    continue
                # Overrides inherit the contract (and docstring) of the
                # base-class method they implement.
                inherited = any(
                    (getattr(base, name, None) is not None)
                    and (
                        (getattr(base, name).__doc__ or "").strip()
                    )
                    for base in cls.__mro__[1:]
                )
                if not inherited:
                    undocumented.append(
                        f"{module.__name__}.{cls_name}.{name}"
                    )
    assert not undocumented, undocumented
