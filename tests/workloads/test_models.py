"""Model zoo and Figure 6's cache-efficiency spectrum."""

import pytest

from repro.workloads import datasets as ds
from repro.workloads.models import (
    FIGURE6_JOBS,
    MODEL_ZOO,
    cache_efficiency_mbps_per_gb,
    figure6_series,
    make_job,
)


def test_profiled_io_demands_match_figure6_caption():
    assert MODEL_ZOO["resnet50"].io_demand_v100_mbps == 114.0
    assert MODEL_ZOO["resnet152"].io_demand_v100_mbps == 43.0
    assert MODEL_ZOO["efficientnet-b1"].io_demand_v100_mbps == 69.0
    assert MODEL_ZOO["vlad"].io_demand_v100_mbps == 10.0
    assert MODEL_ZOO["bert"].io_demand_v100_mbps == 2.0


def test_figure6_has_eleven_jobs_with_papers_extremes():
    assert len(FIGURE6_JOBS) == 11
    rows = figure6_series()
    best, worst = rows[0], rows[-1]
    assert best["model"] == "resnet50"
    assert best["dataset"] == "imagenet-1k"
    assert best["cache_efficiency_mbps_per_gb"] == pytest.approx(0.80, abs=0.01)
    assert worst["model"] == "bert"
    assert worst["cache_efficiency_mbps_per_gb"] == pytest.approx(
        9.5e-5, rel=0.05
    )
    # The paper's ~8000x spread between the extremes.
    spread = (
        best["cache_efficiency_mbps_per_gb"]
        / worst["cache_efficiency_mbps_per_gb"]
    )
    assert spread > 8000


def test_figure6_series_is_sorted_descending():
    values = [r["cache_efficiency_mbps_per_gb"] for r in figure6_series()]
    assert values == sorted(values, reverse=True)


def test_cache_efficiency_figure6_middle_entries():
    # ResNet-50 on OpenImages: 114 / 660 GB ~ 0.17.
    assert cache_efficiency_mbps_per_gb("resnet50", ds.OPEN_IMAGES) == (
        pytest.approx(0.17, abs=0.01)
    )
    # EfficientNetB1 on ImageNet-1k: 69 / 143 ~ 0.48.
    assert cache_efficiency_mbps_per_gb(
        "efficientnet-b1", ds.IMAGENET_1K
    ) == pytest.approx(0.48, abs=0.01)


def test_make_job_by_epochs():
    job = make_job("j", "resnet50", ds.IMAGENET_1K, num_epochs=13)
    assert job.total_work_mb == pytest.approx(13 * ds.IMAGENET_1K.size_mb)
    assert job.ideal_throughput_mbps == 114.0


def test_make_job_by_duration_follows_paper_recipe():
    # §7: steps = V100 throughput x sampled duration.
    job = make_job(
        "j", "resnet50", ds.IMAGENET_1K, duration_at_ideal_s=3600.0
    )
    assert job.total_work_mb == pytest.approx(114.0 * 3600.0)
    assert job.ideal_duration_s == pytest.approx(3600.0)


def test_make_job_scales_with_gpus_and_generation():
    job = make_job(
        "j", "resnet50", ds.IMAGENET_1K, num_gpus=8, num_epochs=1
    )
    assert job.ideal_throughput_mbps == pytest.approx(8 * 114.0)
    scaled = make_job(
        "j2", "resnet50", ds.IMAGENET_1K, num_gpus=1, num_epochs=1,
        gpu_scale=4.0,
    )
    assert scaled.ideal_throughput_mbps == pytest.approx(4 * 114.0)


def test_make_job_requires_exactly_one_work_spec():
    with pytest.raises(ValueError):
        make_job("j", "resnet50", ds.IMAGENET_1K)
    with pytest.raises(ValueError):
        make_job(
            "j", "resnet50", ds.IMAGENET_1K,
            num_epochs=1, duration_at_ideal_s=60.0,
        )
