"""Trace serialization and statistics."""

import json

import pytest

from repro.workloads.trace import TraceConfig, generate_trace
from repro.workloads.trace_io import (
    job_from_dict,
    job_to_dict,
    load_trace,
    save_trace,
    trace_summary,
)


def test_roundtrip_preserves_everything(tmp_path):
    jobs = generate_trace(TraceConfig(num_jobs=40, seed=5))
    path = tmp_path / "trace.jsonl"
    save_trace(jobs, path)
    loaded = load_trace(path)
    assert len(loaded) == len(jobs)
    for original, restored in zip(jobs, loaded):
        assert restored.job_id == original.job_id
        assert restored.model == original.model
        assert restored.dataset.name == original.dataset.name
        assert restored.dataset.size_mb == original.dataset.size_mb
        assert restored.num_gpus == original.num_gpus
        assert restored.total_work_mb == original.total_work_mb
        assert restored.submit_time_s == original.submit_time_s
        assert restored.regular == original.regular


def test_shared_datasets_share_instances(tmp_path):
    jobs = generate_trace(
        TraceConfig(num_jobs=30, seed=5, shared_dataset_fraction=1.0)
    )
    path = tmp_path / "trace.jsonl"
    save_trace(jobs, path)
    loaded = load_trace(path)
    by_name = {}
    for job in loaded:
        by_name.setdefault(job.dataset.name, job.dataset)
        # Same name -> identical object (cache-sharing semantics).
        assert job.dataset is by_name[job.dataset.name]


def test_rejects_bad_versions_and_bad_json(tmp_path):
    data = job_to_dict(generate_trace(TraceConfig(num_jobs=1, seed=1))[0])
    data["v"] = 99
    with pytest.raises(ValueError):
        job_from_dict(data, {})
    path = tmp_path / "bad.jsonl"
    path.write_text("{not json}\n")
    with pytest.raises(ValueError):
        load_trace(path)


def test_blank_lines_are_skipped(tmp_path):
    jobs = generate_trace(TraceConfig(num_jobs=3, seed=2))
    path = tmp_path / "trace.jsonl"
    lines = [json.dumps(job_to_dict(j)) for j in jobs]
    path.write_text("\n".join([lines[0], "", lines[1], lines[2], ""]))
    assert len(load_trace(path)) == 3


def test_trace_summary():
    jobs = generate_trace(
        TraceConfig(num_jobs=100, seed=9, shared_dataset_fraction=0.5)
    )
    summary = trace_summary(jobs)
    assert summary["num_jobs"] == 100
    assert 0 < summary["num_datasets"] < 100
    assert summary["sharing_fraction"] > 0
    assert summary["median_ideal_duration_min"] > 0
    assert abs(sum(summary["gpu_mix"].values()) - 1.0) < 1e-9
    assert trace_summary([]) == {"num_jobs": 0}


def test_deadline_round_trips_only_when_declared(tmp_path):
    import dataclasses

    jobs = list(generate_trace(TraceConfig(num_jobs=3, seed=5)))
    jobs[0] = dataclasses.replace(jobs[0], deadline_s=1800.0)
    # Jobs without a deadline serialize without the key at all, so
    # SLO-free traces are byte-identical to pre-deadline ones.
    assert "deadline_s" in job_to_dict(jobs[0])
    assert "deadline_s" not in job_to_dict(jobs[1])
    path = tmp_path / "trace.jsonl"
    save_trace(jobs, path)
    restored = load_trace(path)
    assert restored[0].deadline_s == 1800.0
    assert restored[1].deadline_s is None
    explicit_null = job_from_dict(
        {**job_to_dict(jobs[0]), "deadline_s": None}, {}
    )
    assert explicit_null.deadline_s is None
