"""Dataset catalog (Tables 1 and 4)."""

import pytest

from repro import units
from repro.workloads import datasets as ds


def test_table4_sizes():
    assert ds.IMAGENET_22K.size_mb == pytest.approx(units.tb(1.36))
    assert ds.OPEN_IMAGES.size_mb == pytest.approx(units.gb(660))
    assert ds.IMAGENET_1K.size_mb == pytest.approx(units.gb(143))
    assert ds.YOUTUBE_8M.size_mb == pytest.approx(units.tb(1.46))
    assert ds.WEB_SEARCH.size_mb == pytest.approx(units.tb(20.9))


def test_default_registry_contains_table4():
    registry = ds.default_registry()
    assert len(registry) == 5
    assert "imagenet-1k" in registry


def test_synthetic_images():
    synth = ds.synthetic_images("synth-0")
    assert synth.size_mb == pytest.approx(units.tb(1.3))
    # ~110 KB items, like ImageNet.
    assert synth.item_size_mb == pytest.approx(0.110, rel=0.01)


def test_table1_growth_rows():
    rows = ds.table1_rows()
    assert len(rows) == 5
    by_task = {r["task"]: r for r in rows}
    assert by_task["task-1"]["year_2020_tb"] == pytest.approx(25.0)
    assert by_task["task-1"]["in_24_months_tb"] == pytest.approx(100.0)
    # Every surveyed task grows; task-5 grows the most (~267x).
    assert all(r["growth_factor"] > 1 for r in rows)
    assert by_task["task-5"]["growth_factor"] == pytest.approx(266.7, rel=0.01)
