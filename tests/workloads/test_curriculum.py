"""Curriculum learning (Eq 10, Figure 16)."""

import pytest

from repro.cluster.dataset import Dataset
from repro.workloads.curriculum import (
    ExponentialPacing,
    simulate_curriculum_jct,
)


def test_pacing_validation():
    with pytest.raises(ValueError):
        ExponentialPacing(num_items=100, starting_percent=0.0)
    with pytest.raises(ValueError):
        ExponentialPacing(num_items=100, alpha=1.0)
    with pytest.raises(ValueError):
        ExponentialPacing(num_items=100, step=0)


def test_pacing_grows_exponentially_and_saturates():
    pacing = ExponentialPacing(
        num_items=1000, starting_percent=0.1, alpha=2.0, step=100
    )
    assert pacing.visible_items(0) == 100
    assert pacing.visible_items(99) == 100
    assert pacing.visible_items(100) == 200
    assert pacing.visible_items(200) == 400
    assert pacing.visible_items(10_000) == 1000  # saturated
    with pytest.raises(ValueError):
        pacing.visible_items(-1)


def test_iterations_to_full():
    pacing = ExponentialPacing(
        num_items=1000, starting_percent=0.1, alpha=2.0, step=100
    )
    full_at = pacing.iterations_to_full()
    assert pacing.visible_items(full_at) == 1000
    assert pacing.visible_items(full_at - 101) < 1000


def test_series_fractions_monotone():
    pacing = ExponentialPacing(num_items=1000, step=1000)
    rows = pacing.series(total_iterations=20_000, points=20)
    fractions = [r["fraction_of_data"] for r in rows]
    assert fractions == sorted(fractions)
    assert fractions[-1] == pytest.approx(100.0)


def test_curriculum_lru_matches_uniform_jct():
    """Figure 16b: under curriculum sampling LRU no longer thrashes and
    both cache policies complete in essentially the same time."""
    dataset = Dataset("imagenet-22k-small", 20_000.0, num_items=2_000)
    pacing = ExponentialPacing(
        num_items=2_000, starting_percent=0.04, alpha=1.5, step=5_000
    )
    kwargs = dict(
        dataset=dataset,
        pacing=pacing,
        total_iterations=60_000,
        cache_mb=10_000.0,
        compute_step_s=0.05,
        remote_io_mbps=100.0,
        seed=9,
    )
    uniform = simulate_curriculum_jct(policy="uniform", **kwargs)
    lru = simulate_curriculum_jct(policy="lru", **kwargs)
    assert lru.jct_s == pytest.approx(uniform.jct_s, rel=0.05)
    assert lru.hit_ratio > 0.3
    assert uniform.hit_ratio > 0.3


def test_curriculum_small_working_set_is_cache_friendly():
    """Early iterations sample a small prefix: with a cache larger than
    the prefix, hits dominate even for LRU."""
    dataset = Dataset("d", 10_000.0, num_items=1_000)
    pacing = ExponentialPacing(
        num_items=1_000, starting_percent=0.1, alpha=2.0, step=100_000
    )
    result = simulate_curriculum_jct(
        dataset=dataset,
        pacing=pacing,
        total_iterations=5_000,
        cache_mb=2_000.0,  # twice the initial working set
        policy="lru",
        compute_step_s=0.01,
        remote_io_mbps=50.0,
    )
    assert result.hit_ratio > 0.8


def test_simulate_validation():
    dataset = Dataset("d", 1000.0, num_items=100)
    pacing = ExponentialPacing(num_items=100)
    with pytest.raises(ValueError):
        simulate_curriculum_jct(
            dataset, pacing, 10, 100.0, "fifo", 0.1, 10.0
        )
    with pytest.raises(ValueError):
        simulate_curriculum_jct(
            dataset, pacing, 0, 100.0, "lru", 0.1, 10.0
        )
