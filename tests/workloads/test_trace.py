"""Synthetic trace generation."""

import pytest

from repro.workloads.trace import (
    TraceConfig,
    arrival_rate_for_load,
    expected_gpu_seconds_per_job,
    figure4_trace,
    generate_trace,
    microbenchmark_trace,
)


def test_trace_is_reproducible():
    a = generate_trace(TraceConfig(num_jobs=50, seed=7))
    b = generate_trace(TraceConfig(num_jobs=50, seed=7))
    assert [j.job_id for j in a] == [j.job_id for j in b]
    assert [j.submit_time_s for j in a] == [j.submit_time_s for j in b]
    assert [j.total_work_mb for j in a] == [j.total_work_mb for j in b]
    c = generate_trace(TraceConfig(num_jobs=50, seed=8))
    assert [j.total_work_mb for j in c] != [j.total_work_mb for j in a]


def test_trace_respects_bounds():
    cfg = TraceConfig(num_jobs=200, seed=1)
    jobs = generate_trace(cfg)
    assert len(jobs) == 200
    gpu_counts = {g for g, _p in cfg.gpu_mix}
    for job in jobs:
        assert job.num_gpus in gpu_counts
        ideal = job.total_work_mb / job.ideal_throughput_mbps
        assert (
            cfg.duration_min_s - 1e-6
            <= ideal
            <= cfg.duration_max_s + 1e-6
        )
    submits = [j.submit_time_s for j in jobs]
    assert submits == sorted(submits)


def test_private_datasets_by_default():
    jobs = generate_trace(TraceConfig(num_jobs=30, seed=2))
    names = [j.dataset.name for j in jobs]
    assert len(set(names)) == len(names)


def test_shared_dataset_fraction():
    cfg = TraceConfig(num_jobs=300, seed=3, shared_dataset_fraction=1.0)
    jobs = generate_trace(cfg)
    names = {j.dataset.name for j in jobs}
    # Everyone draws from the shared pool (one instance per mix entry).
    assert len(names) <= 11
    assert all("shared" in n for n in names)

    half = TraceConfig(num_jobs=400, seed=3, shared_dataset_fraction=0.5)
    shared = sum(
        1 for j in generate_trace(half) if "shared" in j.dataset.name
    )
    assert 0.4 <= shared / 400 <= 0.6


def test_gpu_scale_raises_throughput():
    base = generate_trace(TraceConfig(num_jobs=20, seed=4))
    fast = generate_trace(TraceConfig(num_jobs=20, seed=4, gpu_scale=4.0))
    for slow_job, fast_job in zip(base, fast):
        assert fast_job.ideal_throughput_mbps == pytest.approx(
            4 * slow_job.ideal_throughput_mbps
        )


def test_arrival_rate_for_load():
    cfg = TraceConfig()
    per_job = expected_gpu_seconds_per_job(cfg)
    interarrival = arrival_rate_for_load(cfg, total_gpus=96, load=1.0)
    assert interarrival == pytest.approx(per_job / 96)
    # Doubling the load halves the inter-arrival gap.
    assert arrival_rate_for_load(cfg, 96, 2.0) == pytest.approx(
        interarrival / 2
    )
    with pytest.raises(ValueError):
        arrival_rate_for_load(cfg, 0, 1.0)


def test_microbenchmark_trace_matches_paper_setup():
    jobs = microbenchmark_trace()
    assert len(jobs) == 5
    by_model = {}
    for job in jobs:
        by_model.setdefault(job.model, []).append(job)
    assert len(by_model["resnet50"]) == 2
    assert len(by_model["efficientnet-b1"]) == 2
    bert = by_model["bert"][0]
    assert bert.num_gpus == 4
    assert bert.num_epochs == pytest.approx(0.07)
    assert bert.ideal_throughput_mbps == pytest.approx(8.0)
    # Image jobs each use a distinct 1.3 TB dataset.
    image_datasets = {
        j.dataset.name for j in jobs if j.model != "bert"
    }
    assert len(image_datasets) == 4


def test_figure4_trace():
    jobs = figure4_trace()
    assert len(jobs) == 2
    assert jobs[0].dataset.name != jobs[1].dataset.name
    assert jobs[0].dataset.size_mb == jobs[1].dataset.size_mb
