"""Diurnal arrival modulation in the trace generator."""

import numpy as np
import pytest

from repro.workloads.trace import TraceConfig, generate_trace


def arrivals(amplitude, num_jobs=2000, seed=3):
    cfg = TraceConfig(
        num_jobs=num_jobs,
        seed=seed,
        mean_interarrival_s=120.0,
        diurnal_amplitude=amplitude,
    )
    return np.array([j.submit_time_s for j in generate_trace(cfg)])


def test_zero_amplitude_is_plain_poisson():
    flat = arrivals(0.0)
    gaps = np.diff(flat)
    # Exponential gaps: mean ~ 120, CV ~ 1.
    assert np.mean(gaps) == pytest.approx(120.0, rel=0.1)
    assert np.std(gaps) / np.mean(gaps) == pytest.approx(1.0, abs=0.15)


def test_diurnal_concentrates_arrivals_in_peak_hours():
    times = arrivals(0.8)
    period = 24 * 3600.0
    phase = (times % period) / period
    # The sinusoid peaks in the first half-period (sin > 0): a strong
    # majority of arrivals land there.
    peak_fraction = float(np.mean(phase < 0.5))
    assert peak_fraction > 0.6
    flat_fraction = float(
        np.mean((arrivals(0.0) % period) / period < 0.5)
    )
    assert peak_fraction > flat_fraction + 0.05


def test_amplitude_validation():
    with pytest.raises(ValueError):
        generate_trace(TraceConfig(num_jobs=1, diurnal_amplitude=1.5))


def test_diurnal_preserves_mean_rate_roughly():
    flat = arrivals(0.0)[-1]
    wavy = arrivals(0.8)[-1]
    # Thinning by a zero-mean sinusoid keeps the long-run horizon close.
    assert wavy == pytest.approx(flat, rel=0.35)
