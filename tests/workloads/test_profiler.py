"""Offline job profiling."""

import pytest

from repro.cluster.dataset import Dataset
from repro.workloads.models import make_job
from repro.workloads.profiler import profile_job, profile_jobs, scaling_table

GB = 1024.0


def small_dataset(name="prof-ds", size_gb=20.0):
    return Dataset(name, size_gb * GB)


def test_profile_recovers_declared_f_star():
    job = make_job("p1", "resnet50", small_dataset(), num_epochs=2)
    result = profile_job(job, item_size_mb=256.0)
    assert result.measured_f_star_mbps == pytest.approx(114.0, rel=0.05)
    assert result.error < 0.05


def test_profile_multi_gpu_job():
    job = make_job(
        "p8", "resnet50", small_dataset("prof-8"), num_gpus=8, num_epochs=1
    )
    result = profile_job(job, item_size_mb=256.0)
    # Table 2's near-linear scaling: ~8x the single-GPU rate.
    assert result.measured_f_star_mbps == pytest.approx(8 * 114.0, rel=0.05)


def test_profile_jobs_batch():
    jobs = [
        make_job("a", "resnet50", small_dataset("prof-a"), num_epochs=1),
        make_job("b", "bert", small_dataset("prof-b"), num_epochs=1),
    ]
    results = profile_jobs(jobs, item_size_mb=256.0)
    assert [r.job_id for r in results] == ["a", "b"]
    assert results[1].measured_f_star_mbps == pytest.approx(2.0, rel=0.1)


def test_scaling_table():
    table = scaling_table(
        "efficientnet-b1",
        small_dataset("prof-scale"),
        gpu_counts=[1, 4],
        make_job_fn=lambda job_id, model, ds, num_gpus: make_job(
            job_id, model, ds, num_gpus=num_gpus, num_epochs=1
        ),
        item_size_mb=256.0,
    )
    assert table[4] == pytest.approx(4 * table[1], rel=0.1)


def test_profile_validation():
    job = make_job("v", "resnet50", small_dataset("prof-v"), num_epochs=1)
    with pytest.raises(ValueError):
        profile_job(job, profile_epochs=0.0)
