"""Cross-validation of the two simulators (the Table 6 fidelity check).

The paper validates its simulator against the real/accelerated cluster and
reports JCT errors within a few percent. Here the item-level minibatch
emulator plays the cluster's role and the fluid simulator must track it.
"""

import pytest

from repro.cluster.dataset import Dataset
from repro.cluster.hardware import Cluster
from repro.cluster.job import Job
from repro.sim.fluid import FluidSimulator
from repro.sim.metrics import relative_error
from repro.sim.minibatch import MinibatchEmulator
from repro.sim.runner import make_system

GB = 1024.0


def cluster():
    return Cluster.build(1, 4, 80.0 * GB, 50.0)


def jobs():
    specs = [
        ("fast", 50.0, 100.0, 4.0, 0.0),
        ("mid", 60.0, 60.0, 3.0, 0.0),
        ("slow", 40.0, 20.0, 2.0, 600.0),
    ]
    return [
        Job(
            job_id=name,
            model="test",
            dataset=Dataset(f"d-{name}", d_gb * GB),
            num_gpus=1,
            ideal_throughput_mbps=f_star,
            total_work_mb=epochs * d_gb * GB,
            submit_time_s=submit,
        )
        for name, d_gb, f_star, epochs, submit in specs
    ]


# Uniform-caching systems have an exact expected-hit model, so the fluid
# simulator tracks the emulator tightly (the paper reports <=3.2% JCT /
# <=4.4% makespan errors for its simulator). The LRU closed form is a
# stack-distance approximation, so Alluxio gets a slightly looser band.
@pytest.mark.parametrize(
    ("cache", "tolerance"),
    [("silod", 0.06), ("coordl", 0.06), ("alluxio", 0.10)],
)
def test_fluid_tracks_minibatch_emulator(cache, tolerance):
    scheduler_f, cache_f = make_system("fifo", cache)
    fluid = FluidSimulator(cluster(), scheduler_f, cache_f, jobs()).run()
    scheduler_m, cache_m = make_system("fifo", cache)
    emulated = MinibatchEmulator(
        cluster(), scheduler_m, cache_m, jobs(), item_size_mb=128.0
    ).run()

    fluid_jct = fluid.average_jct_s()
    emu_jct = emulated.average_jct_s()
    assert relative_error(emu_jct, fluid_jct) < tolerance

    fluid_makespan = fluid.makespan_s()
    emu_makespan = emulated.makespan_s()
    assert relative_error(emu_makespan, fluid_makespan) < tolerance


def test_per_job_jcts_also_track():
    scheduler_f, cache_f = make_system("fifo", "silod")
    fluid = FluidSimulator(cluster(), scheduler_f, cache_f, jobs()).run()
    scheduler_m, cache_m = make_system("fifo", "silod")
    emulated = MinibatchEmulator(
        cluster(), scheduler_m, cache_m, jobs(), item_size_mb=128.0
    ).run()
    fluid_by_id = {r.job_id: r.jct_s for r in fluid.finished_records()}
    emu_by_id = {r.job_id: r.jct_s for r in emulated.finished_records()}
    assert set(fluid_by_id) == set(emu_by_id)
    for job_id in fluid_by_id:
        assert relative_error(emu_by_id[job_id], fluid_by_id[job_id]) < 0.15
