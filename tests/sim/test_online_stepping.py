"""The stepped-execution protocol both simulators expose for `repro.serve`.

``begin() / step(limit_s) / finish()`` plus the peek-only
``next_event_time()`` and the online mutators ``submit_job`` /
``cancel_job``. The batch ``run()`` executes exactly this protocol, so
stepping by hand must reproduce it bit-for-bit — including the
``loop_events`` counter the perf bench anchors on.
"""

import pytest

from repro import units
from repro.cluster.dataset import Dataset
from repro.cluster.hardware import Cluster
from repro.sim.fluid import FluidSimulator
from repro.sim.minibatch import MinibatchEmulator
from repro.sim.runner import make_system
from repro.workloads.models import make_job

SIMULATORS = {"fluid": FluidSimulator, "minibatch": MinibatchEmulator}


def small_cluster() -> Cluster:
    return Cluster.build(
        num_servers=2,
        gpus_per_server=4,
        cache_per_server_mb=units.gb(25),
        remote_io_mbps=units.gbps(1.6),
    )


def three_jobs():
    ds = Dataset(name="d-step", size_mb=units.gb(10))
    return [
        make_job(
            f"job-{i}", "resnet50", ds, num_gpus=1, num_epochs=2,
            submit_time_s=120.0 * i,
        )
        for i in range(3)
    ]


def build(sim_name, jobs, **kwargs):
    scheduler, cache = make_system("fifo", "silod")
    return SIMULATORS[sim_name](
        small_cluster(), scheduler, cache, jobs, **kwargs
    )


@pytest.mark.parametrize("sim_name", ["fluid", "minibatch"])
def test_manual_stepping_reproduces_run_exactly(sim_name):
    batch = build(sim_name, three_jobs())
    batch_result = batch.run()

    stepped = build(sim_name, three_jobs())
    stepped.begin()
    while stepped.step():
        pass
    stepped_result = stepped.finish()

    assert stepped.loop_events == batch.loop_events
    assert stepped.sched_rounds == batch.sched_rounds
    assert stepped.clock_s == batch.clock_s
    assert stepped_result.average_jct_s() == batch_result.average_jct_s()
    assert stepped_result.end_time_s == batch_result.end_time_s


@pytest.mark.parametrize("sim_name", ["fluid", "minibatch"])
def test_next_event_time_is_a_pure_peek(sim_name):
    sim = build(sim_name, three_jobs())
    sim.begin()
    t_next = sim.next_event_time()
    assert t_next is not None
    before = (sim.clock_s, sim.loop_events)
    assert sim.next_event_time() == t_next  # idempotent
    assert (sim.clock_s, sim.loop_events) == before  # no advance
    sim.step()
    assert sim.clock_s >= before[0]
    while sim.step():
        pass
    sim.finish()
    assert sim.next_event_time() is None  # drained


@pytest.mark.parametrize("sim_name", ["fluid", "minibatch"])
def test_limit_gate_holds_events_beyond_the_watermark(sim_name):
    sim = build(sim_name, three_jobs())
    sim.begin()
    t_next = sim.next_event_time()
    # A watermark before the first event: nothing may process.
    assert sim.step(limit_s=t_next - 60.0) is False
    assert sim.next_event_time() == t_next
    # Raising the watermark releases it.
    assert sim.step(limit_s=t_next) is True
    while sim.step():
        pass
    sim.finish()


def test_gated_step_does_not_count_loop_events():
    """The gate returns before the iteration counter (CI anchors)."""
    sim = build("fluid", three_jobs())
    sim.begin()
    counted = sim.loop_events
    t_next = sim.next_event_time()
    sim.step(limit_s=t_next - 60.0)
    assert sim.loop_events == counted


@pytest.mark.parametrize("sim_name", ["fluid", "minibatch"])
def test_submit_job_out_of_order_lands_in_arrival_order(sim_name):
    jobs = three_jobs()
    sim = build(sim_name, [])
    sim.begin()
    for job in reversed(jobs):  # worst-case wire order
        sim.submit_job(job)
    while sim.step():
        pass
    result = sim.finish()
    records = {r.job_id: r for r in result.finished_records()}
    assert set(records) == {"job-0", "job-1", "job-2"}
    # Arrival order == submit-time order, not wire order.
    assert (
        records["job-0"].start_time_s
        <= records["job-1"].start_time_s
        <= records["job-2"].start_time_s
    )


@pytest.mark.parametrize("sim_name", ["fluid", "minibatch"])
def test_submit_job_rejects_duplicates_even_after_finish(sim_name):
    jobs = three_jobs()
    sim = build(sim_name, jobs)
    sim.begin()
    while sim.step():
        pass
    with pytest.raises(ValueError):
        sim.submit_job(jobs[0])
    sim.finish()


@pytest.mark.parametrize("sim_name", ["fluid", "minibatch"])
def test_cancel_running_job_frees_it_and_run_completes(sim_name):
    sim = build(sim_name, three_jobs())
    sim.begin()
    sim.step()  # admit at least the first arrival
    assert sim.cancel_job("job-0", reason="test") is True
    assert sim.cancel_job("job-0") is False  # already gone
    assert sim.cancel_job("never-existed") is False
    while sim.step():
        pass
    result = sim.finish()
    finished = {r.job_id for r in result.finished_records()}
    assert finished == {"job-1", "job-2"}


def test_cancel_pending_job_before_arrival():
    """Cancelling a job still in the trace tail removes it unstarted."""
    sim = build("fluid", three_jobs())
    sim.begin()
    assert sim.cancel_job("job-2", reason="test") is True
    while sim.step():
        pass
    result = sim.finish()
    finished = {r.job_id for r in result.finished_records()}
    assert finished == {"job-0", "job-1"}
