"""Analysis helpers: tables, fidelity, estimator accuracy."""

import pytest

from repro.analysis.fidelity import (
    compare_simulators,
    estimator_accuracy_vs_emulator,
)
from repro.analysis.tables import (
    format_value,
    improvement_summary,
    render_series,
    render_table,
)
from repro.cluster.dataset import Dataset
from repro.cluster.hardware import Cluster
from repro.cluster.job import Job

GB = 1024.0


def test_format_value():
    assert format_value(None) == "-"
    assert format_value(float("nan")) == "nan"
    assert format_value(1234.5) == "1,234"
    assert format_value(3.14159) == "3.14"
    assert format_value(0.000123) == "0.000123"
    assert format_value("x") == "x"


def test_render_table_alignment():
    out = render_table(
        [{"a": 1.0, "b": "xx"}, {"a": 20.0, "b": "y"}], title="T"
    )
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "b" in lines[1]
    assert len(lines) == 5
    assert render_table([]) == "(no rows)"


def test_render_series_bars_scale():
    out = render_series(
        [{"x": 1, "y": 10.0}, {"x": 2, "y": 20.0}], "x", "y", width=10
    )
    lines = out.splitlines()
    assert lines[1].count("#") == 10
    assert lines[0].count("#") == 5


def test_improvement_summary_orders_lower_is_better():
    rows = improvement_summary({"silod": 100.0, "alluxio": 250.0})
    assert rows[0]["system"] == "silod"
    assert rows[1]["vs_best"] == pytest.approx(2.5)


def make_job():
    return Job(
        job_id="j",
        model="test",
        dataset=Dataset("d", 40.0 * GB, num_items=int(40 * GB / 256)),
        num_gpus=1,
        ideal_throughput_mbps=100.0,
        total_work_mb=4 * 40.0 * GB,
    )


def test_estimator_accuracy_within_3_percent():
    """The paper's claim: SiloDPerf predicts job throughput within ~3%."""
    report = estimator_accuracy_vs_emulator(
        make_job(), cache_mb=20.0 * GB, remote_io_mbps=40.0,
        item_size_mb=256.0,
    )
    assert report["error"] < 0.03
    # The configuration is IO-bound: prediction is below f*.
    assert report["predicted_mbps"] < 100.0


def test_estimator_accuracy_compute_bound_case():
    report = estimator_accuracy_vs_emulator(
        make_job(), cache_mb=50.0 * GB, remote_io_mbps=200.0,
        item_size_mb=256.0,
    )
    assert report["predicted_mbps"] == pytest.approx(100.0)
    assert report["error"] < 0.03


def test_compare_simulators_produces_small_errors():
    cluster = Cluster.build(1, 2, 50.0 * GB, 60.0)
    jobs = [make_job()]
    report = compare_simulators(
        cluster, "fifo", "silod", jobs, item_size_mb=256.0
    )
    assert report.jct_error < 0.05
    assert report.makespan_error < 0.05
    row = report.as_row()
    assert row["cache"] == "silod"
    assert row["jct_error_%"] < 5.0
