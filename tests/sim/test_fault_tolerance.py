"""Fault injection: §6's fault-tolerance claims, observed end to end.

The paper argues SiloD recovers from data-manager crashes with no lasting
damage (allocations live in pod annotations, cache content on local
disk), while losing a server costs the cache shards it held. Both are
injected into the fluid simulator and their JCT impact measured.
"""

import pytest

from repro.cluster.dataset import Dataset
from repro.cluster.hardware import Cluster
from repro.cluster.job import Job
from repro.sim.fluid import FluidSimulator
from repro.sim.runner import make_system

GB = 1024.0


def cluster(servers=4):
    return Cluster.build(servers, 1, 60.0 * GB, 50.0)


def jobs():
    return [
        Job(
            job_id=f"j{i}",
            model="m",
            dataset=Dataset(f"d-{i}", 40.0 * GB),
            num_gpus=1,
            ideal_throughput_mbps=80.0,
            total_work_mb=4 * 40.0 * GB,
        )
        for i in range(2)
    ]


def run(cache="silod", **faults):
    scheduler, cache_system = make_system("fifo", cache)
    return FluidSimulator(
        cluster(), scheduler, cache_system, jobs(), **faults
    ).run()


def test_data_manager_crash_is_harmless_for_silod():
    """§6: crash recovery reconstructs state; JCT is unaffected."""
    clean = run()
    crashed = run(data_manager_crash_times_s=[5_000.0, 20_000.0])
    assert crashed.average_jct_s() == pytest.approx(
        clean.average_jct_s(), rel=0.01
    )


def test_data_manager_crash_resets_quiver_profiles():
    """Quiver's in-memory profiles die with the crash (its selections can
    churn afterwards); the run still completes."""
    crashed = run(cache="quiver", data_manager_crash_times_s=[5_000.0])
    assert len(crashed.finished_records()) == 2


def run_small(cache="silod", **faults):
    # Two servers: losing one evicts half of every dataset, enough to
    # push the jobs back into the IO bottleneck until refilled.
    scheduler, cache_system = make_system("fifo", cache)
    return FluidSimulator(
        cluster(servers=2), scheduler, cache_system, jobs(), **faults
    ).run()


def test_server_loss_costs_cached_data():
    """Losing 1 of 2 servers evicts half the resident bytes after warmup:
    jobs must re-fetch, so JCT degrades — but boundedly."""
    clean = run_small()
    # Inject after the first epochs (~1650 s) so there is state to lose.
    lossy = run_small(server_loss_times_s=[2_000.0])
    assert lossy.average_jct_s() > clean.average_jct_s() * 1.02
    # The loss is bounded: well under one full extra epoch per job.
    epoch_s = 40.0 * GB / 25.0
    assert lossy.average_jct_s() < clean.average_jct_s() + epoch_s


def test_multiple_server_losses_degrade_monotonically():
    one = run_small(server_loss_times_s=[2_000.0])
    two = run_small(server_loss_times_s=[2_000.0, 2_600.0])
    assert two.average_jct_s() >= one.average_jct_s() - 1.0
