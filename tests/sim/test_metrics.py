"""RunResult metrics."""

import math

import pytest

from repro.sim.metrics import (
    JobRecord,
    RunResult,
    TimelineSample,
    improvement_factor,
    percentile_jct_minutes,
    relative_error,
    summarize_matrix,
)


def record(job_id, submit, finish, start=None):
    return JobRecord(
        job_id=job_id,
        model="m",
        dataset="d",
        num_gpus=1,
        submit_time_s=submit,
        start_time_s=start if start is not None else submit,
        finish_time_s=finish,
    )


def sample(time_s, fairness=1.0, resident=100.0, effective=90.0, running=1):
    return TimelineSample(
        time_s=time_s,
        running_jobs=running,
        queued_jobs=0,
        total_throughput_mbps=100.0,
        ideal_throughput_mbps=120.0,
        remote_io_used_mbps=50.0,
        fairness_ratio=fairness,
        resident_cache_mb=resident,
        effective_cache_mb=effective,
    )


def result(records, timeline=()):
    return RunResult(
        scheduler_name="fifo",
        cache_name="silod",
        records=records,
        timeline=list(timeline),
        end_time_s=1000.0,
    )


def test_average_jct_and_makespan():
    r = result([record("a", 0, 600), record("b", 60, 1200)])
    assert r.average_jct_s() == pytest.approx((600 + 1140) / 2)
    assert r.average_jct_minutes() == pytest.approx((600 + 1140) / 120)
    assert r.makespan_s() == pytest.approx(1200)


def test_unfinished_jobs_poison_makespan_not_jct():
    unfinished = JobRecord("c", "m", "d", 1, 0.0, None, None)
    r = result([record("a", 0, 600), unfinished])
    assert r.average_jct_s() == pytest.approx(600)
    assert math.isnan(r.makespan_s())
    assert not unfinished.finished
    assert math.isinf(unfinished.jct_s)


def test_jct_cdf_is_monotone():
    r = result([record(str(i), 0, 60 * (i + 1)) for i in range(5)])
    cdf = r.jct_cdf()
    xs = [x for x, _ in cdf]
    ys = [y for _, y in cdf]
    assert xs == sorted(xs)
    assert ys[-1] == pytest.approx(1.0)


def test_fairness_and_effective_cache_averages():
    r = result(
        [record("a", 0, 60)],
        timeline=[
            sample(0, fairness=1.0),
            sample(600, fairness=3.0),
            sample(1200, fairness=float("nan")),
            sample(1800, fairness=2.0, running=0),  # idle: excluded
        ],
    )
    assert r.average_fairness_ratio() == pytest.approx(2.0)
    assert r.average_effective_cache_fraction() == pytest.approx(0.9)


def test_peak_remote_io_and_series():
    r = result([record("a", 0, 60)], timeline=[sample(0), sample(600)])
    assert r.peak_remote_io_mbps() == pytest.approx(50.0)
    series = r.throughput_series()
    assert series[1][0] == pytest.approx(10.0)  # 600 s = 10 min


def test_improvement_and_relative_error():
    assert improvement_factor(200.0, 100.0) == pytest.approx(2.0)
    assert math.isnan(improvement_factor(200.0, 0.0))
    assert relative_error(100.0, 103.0) == pytest.approx(0.03)
    assert math.isnan(relative_error(0.0, 1.0))


def test_summarize_matrix():
    r = result([record("a", 0, 600)])
    rows = summarize_matrix({("fifo", "silod"): r})
    assert rows[0]["scheduler"] == "fifo"
    assert rows[0]["avg_jct_min"] == pytest.approx(10.0)


def test_percentiles():
    r = result([record(str(i), 0, 60 * (i + 1)) for i in range(100)])
    pct = percentile_jct_minutes(r, [0, 50, 100])
    assert pct[0] == pytest.approx(1.0)
    assert pct[100] == pytest.approx(100.0)
    assert 49 <= pct[50] <= 52
    with pytest.raises(ValueError):
        percentile_jct_minutes(r, [150])
