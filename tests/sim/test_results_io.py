"""RunResult serialization round trips."""

import math

import pytest

from repro import units
from repro.cluster.hardware import Cluster
from repro.sim.results_io import (
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.sim.runner import run_experiment
from repro.workloads.datasets import synthetic_images
from repro.workloads.models import make_job

GB = 1024.0


def small_result():
    cluster = Cluster.build(1, 2, 20.0 * GB, 100.0)
    jobs = [
        make_job(
            "a", "resnet50", synthetic_images("r-a", size_mb=units.tb(0.005)),
            num_epochs=2,
        ),
        make_job(
            "b", "bert", synthetic_images("r-b", size_mb=units.tb(0.005)),
            num_epochs=1, submit_time_s=30.0,
        ),
    ]
    return run_experiment(cluster, "fifo", "silod", jobs,
                          sample_interval_s=120.0)


def test_round_trip_preserves_metrics(tmp_path):
    result = small_result()
    path = tmp_path / "result.json"
    save_result(result, path)
    restored = load_result(path)
    assert restored.scheduler_name == result.scheduler_name
    assert restored.cache_name == result.cache_name
    assert restored.average_jct_s() == pytest.approx(result.average_jct_s())
    assert restored.makespan_s() == pytest.approx(result.makespan_s())
    assert len(restored.timeline) == len(result.timeline)
    # NaN fairness samples survive the JSON trip as NaN.
    for original, copied in zip(result.timeline, restored.timeline):
        if math.isnan(original.fairness_ratio):
            assert math.isnan(copied.fairness_ratio)
        else:
            assert copied.fairness_ratio == pytest.approx(
                original.fairness_ratio
            )


def test_version_check():
    result = small_result()
    data = result_to_dict(result)
    data["v"] = 42
    with pytest.raises(ValueError):
        result_from_dict(data)
