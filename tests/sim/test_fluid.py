"""Fluid simulator semantics."""

import pytest

from repro.cluster.dataset import Dataset
from repro.cluster.hardware import Cluster
from repro.core.policies.fifo import FifoPolicy
from repro.core.silod import SiloDScheduler
from repro.sim.fluid import FluidSimulator
from repro.sim.runner import make_system
from repro.workloads.models import make_job

GB = 1024.0


def small_cluster(cache_gb=100.0, io_mbps=100.0, gpus=4):
    return Cluster.build(
        num_servers=1,
        gpus_per_server=gpus,
        cache_per_server_mb=cache_gb * GB,
        remote_io_mbps=io_mbps,
    )


def simple_job(job_id, d_gb=50.0, f_star=100.0, epochs=4.0, submit=0.0, gpus=1):
    from repro.cluster.job import Job

    return Job(
        job_id=job_id,
        model="test",
        dataset=Dataset(f"d-{job_id}", d_gb * GB),
        num_gpus=gpus,
        ideal_throughput_mbps=f_star,
        total_work_mb=epochs * d_gb * GB,
        submit_time_s=submit,
    )


def run(jobs, cluster=None, policy="fifo", cache="silod", **kwargs):
    scheduler, cache_system = make_system(policy, cache)
    sim = FluidSimulator(
        cluster or small_cluster(), scheduler, cache_system, jobs, **kwargs
    )
    return sim.run()


def test_single_compute_bound_job_runs_at_ideal():
    # IO 100 >= f* 100 never bottlenecks even uncached... except nothing
    # else competes, so JCT equals ideal duration.
    job = simple_job("a", d_gb=10.0, f_star=50.0, epochs=2.0)
    result = run([job])
    rec = result.records[0]
    assert rec.finish_time_s == pytest.approx(job.ideal_duration_s, rel=0.01)


def test_io_bound_job_slows_to_bandwidth_then_speeds_up_with_cache():
    # f* 100 vs 40 MB/s egress; dataset fits in cache entirely.
    job = simple_job("a", d_gb=50.0, f_star=100.0, epochs=4.0)
    cluster = small_cluster(cache_gb=60.0, io_mbps=40.0)
    result = run([job], cluster=cluster)
    # Epoch 1 at 40 MB/s, epochs 2-4 at 100 MB/s (fully cached).
    d = 50.0 * GB
    expected = d / 40.0 + 3 * d / 100.0
    assert result.records[0].finish_time_s == pytest.approx(expected, rel=0.02)


def test_delayed_effectiveness_first_epoch_has_no_hits():
    job = simple_job("a", d_gb=50.0, f_star=100.0, epochs=2.0)
    cluster = small_cluster(cache_gb=60.0, io_mbps=40.0)
    result = run([job], cluster=cluster, sample_interval_s=60.0)
    d = 50.0 * GB
    first_epoch_end = d / 40.0
    for s in result.timeline:
        if 0 < s.time_s < first_epoch_end - 60:
            assert s.total_throughput_mbps == pytest.approx(40.0, rel=0.05)


def test_jobs_queue_when_gpus_are_scarce():
    jobs = [simple_job(f"j{i}", gpus=4, d_gb=5.0, epochs=1.0) for i in range(2)]
    result = run(jobs, cluster=small_cluster(gpus=4, io_mbps=500.0))
    finishes = sorted(r.finish_time_s for r in result.records)
    # Strictly serialized: second job finishes roughly twice as late.
    assert finishes[1] >= finishes[0] * 1.9


def test_arrivals_are_respected():
    jobs = [
        simple_job("early", submit=0.0, d_gb=5.0, epochs=1.0),
        simple_job("late", submit=10_000.0, d_gb=5.0, epochs=1.0),
    ]
    result = run(jobs, cluster=small_cluster(io_mbps=500.0))
    by_id = {r.job_id: r for r in result.records}
    assert by_id["late"].start_time_s >= 10_000.0


def test_max_time_leaves_jobs_unfinished():
    job = simple_job("slow", d_gb=100.0, f_star=10.0, epochs=10.0)
    result = run([job], max_time_s=1000.0)
    assert result.records[0].finish_time_s is None
    assert result.end_time_s <= 1000.0 + 1e-6


def test_duplicate_job_ids_rejected():
    jobs = [simple_job("same"), simple_job("same")]
    scheduler, cache_system = make_system("fifo", "silod")
    with pytest.raises(ValueError):
        FluidSimulator(small_cluster(), scheduler, cache_system, jobs)


def test_dataset_sharing_jobs_share_cache():
    shared = Dataset("shared", 50.0 * GB)
    jobs = [
        make_job("a", "resnet50", shared, num_epochs=3.0),
        make_job("b", "resnet50", shared, num_epochs=3.0, submit_time_s=1.0),
    ]
    cluster = small_cluster(cache_gb=60.0, io_mbps=60.0)
    result = run(jobs, cluster=cluster)
    # Both at f*=114 against 60 MB/s egress: without sharing, steady state
    # would need 114*2*(1-c/d) with c=30GB each -> 91 MB/s > 60. With
    # sharing, the single 50 GB copy is fully cached and both run at f*.
    d = 50.0 * GB
    for rec in result.records:
        # Total work 3 epochs; first epoch throttled, rest at full speed.
        assert rec.finish_time_s < d / 30.0 + 2.5 * d / 114.0


def test_fairness_timeline_is_recorded():
    jobs = [simple_job("a", epochs=2.0), simple_job("b", epochs=2.0)]
    result = run(jobs, policy="gavel")
    assert any(
        s.running_jobs > 0 and s.fairness_ratio > 0 for s in result.timeline
    )


def test_effective_cache_tracked_in_timeline():
    job = simple_job("a", d_gb=50.0, f_star=100.0, epochs=3.0)
    cluster = small_cluster(cache_gb=60.0, io_mbps=40.0)
    result = run([job], cluster=cluster, sample_interval_s=120.0)
    assert any(s.resident_cache_mb > 0 for s in result.timeline)
    assert any(s.effective_cache_mb > 0 for s in result.timeline)
    # Effectiveness never exceeds residency.
    for s in result.timeline:
        assert s.effective_cache_mb <= s.resident_cache_mb + 1e-6


def test_scheduler_name_and_cache_name_propagate():
    result = run([simple_job("a", d_gb=5.0, epochs=1.0)], cache="alluxio")
    assert result.scheduler_name == "fifo"
    assert result.cache_name == "alluxio"
