"""Minibatch testbed emulator semantics."""

import pytest

from repro.cluster.dataset import Dataset
from repro.cluster.hardware import Cluster
from repro.cluster.job import Job
from repro.sim.minibatch import MinibatchEmulator
from repro.sim.runner import make_system

GB = 1024.0


def small_cluster(cache_gb=60.0, io_mbps=40.0, gpus=4):
    return Cluster.build(1, gpus, cache_gb * GB, io_mbps)


def simple_job(job_id, d_gb=50.0, f_star=100.0, epochs=3.0, submit=0.0, gpus=1):
    return Job(
        job_id=job_id,
        model="test",
        dataset=Dataset(f"d-{job_id}", d_gb * GB),
        num_gpus=gpus,
        ideal_throughput_mbps=f_star,
        total_work_mb=epochs * d_gb * GB,
        submit_time_s=submit,
    )


def run(jobs, cluster=None, policy="fifo", cache="silod", **kwargs):
    scheduler, cache_system = make_system(policy, cache)
    emulator = MinibatchEmulator(
        cluster or small_cluster(),
        scheduler,
        cache_system,
        jobs,
        item_size_mb=256.0,
        **kwargs,
    )
    return emulator.run()


def test_compute_bound_job_matches_ideal_duration():
    job = simple_job("a", d_gb=20.0, f_star=50.0, epochs=2.0)
    cluster = small_cluster(io_mbps=200.0)
    result = run([job], cluster=cluster)
    assert result.records[0].finish_time_s == pytest.approx(
        job.ideal_duration_s, rel=0.05
    )


def test_io_bound_then_cached_epochs():
    job = simple_job("a", d_gb=50.0, f_star=100.0, epochs=3.0)
    cluster = small_cluster(cache_gb=60.0, io_mbps=40.0)
    result = run([job], cluster=cluster)
    d = 50.0 * GB
    expected = d / 40.0 + 2 * d / 100.0
    assert result.records[0].finish_time_s == pytest.approx(expected, rel=0.06)


def test_lru_pool_thrashes_versus_uniform():
    """Same job, cache smaller than the dataset: Alluxio's LRU pool takes
    visibly longer than SiloD's uniform caching (the §7.1.1 thrashing)."""
    cluster = small_cluster(cache_gb=30.0, io_mbps=40.0)

    def fresh_job():
        return simple_job("a", d_gb=50.0, f_star=100.0, epochs=6.0)

    silod = run([fresh_job()], cluster=cluster, cache="silod")
    alluxio = run([fresh_job()], cluster=cluster, cache="alluxio")
    assert (
        alluxio.records[0].finish_time_s
        > silod.records[0].finish_time_s * 1.05
    )


def test_arrival_and_queueing():
    jobs = [
        simple_job("a", gpus=4, d_gb=10.0, epochs=1.0),
        simple_job("b", gpus=4, d_gb=10.0, epochs=1.0, submit=5.0),
    ]
    result = run(jobs, cluster=small_cluster(gpus=4, io_mbps=500.0))
    by_id = {r.job_id: r for r in result.records}
    assert by_id["b"].start_time_s >= by_id["a"].finish_time_s - 120.0


def test_max_time_cuts_off():
    job = simple_job("slow", d_gb=100.0, f_star=10.0, epochs=10.0)
    result = run([job], max_time_s=2000.0)
    assert result.records[0].finish_time_s is None


def test_duplicate_ids_rejected():
    scheduler, cache_system = make_system("fifo", "silod")
    with pytest.raises(ValueError):
        MinibatchEmulator(
            small_cluster(),
            scheduler,
            cache_system,
            [simple_job("x"), simple_job("x")],
        )


def test_timeline_reports_throughput():
    job = simple_job("a", d_gb=20.0, f_star=50.0, epochs=2.0)
    result = run([job], cluster=small_cluster(io_mbps=200.0))
    busy = [s for s in result.timeline if s.total_throughput_mbps > 0]
    assert busy
    for s in busy:
        assert s.total_throughput_mbps <= 60.0  # ~f* plus sampling noise
