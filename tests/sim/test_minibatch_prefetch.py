"""Prefetch admission in the minibatch emulator."""

from repro.cluster.dataset import Dataset
from repro.cluster.hardware import Cluster
from repro.cluster.job import Job
from repro.sim.minibatch import MinibatchEmulator
from repro.sim.runner import make_system

GB = 1024.0


def test_emulator_prefetch_warms_queued_dataset():
    # One GPU held by a low-IO job; the queued job's dataset is prefetched
    # with the idle egress, so its items are already cached at start.
    cluster = Cluster.build(1, 1, 100.0 * GB, 60.0)
    blocker = Job(
        job_id="blocker",
        model="m",
        dataset=Dataset("d-blocker", 10.0 * GB),
        num_gpus=1,
        ideal_throughput_mbps=5.0,  # barely touches the egress
        total_work_mb=2 * 10.0 * GB,
    )
    follower = Job(
        job_id="follower",
        model="m",
        dataset=Dataset("d-follower", 20.0 * GB),
        num_gpus=1,
        ideal_throughput_mbps=100.0,
        total_work_mb=2 * 20.0 * GB,
        submit_time_s=1.0,
    )

    def run(cache):
        scheduler, cache_system = make_system("fifo", cache)
        return MinibatchEmulator(
            cluster,
            scheduler,
            cache_system,
            [blocker, follower],
            item_size_mb=128.0,
        ).run()

    plain = run("silod")
    prefetched = run("silod-prefetch")
    jct = lambda r: {x.job_id: x.jct_s for x in r.finished_records()}
    assert jct(prefetched)["follower"] < jct(plain)["follower"]
