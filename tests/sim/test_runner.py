"""Experiment runner factory and coupling rule."""

import pytest

from repro import units
from repro.cache.silod_cache import SiloDDataManager
from repro.cluster.hardware import Cluster
from repro.sim.runner import (
    CACHES,
    POLICIES,
    make_cache,
    make_policy,
    make_system,
    run_experiment,
    run_matrix,
)
from repro.workloads.models import make_job
from repro.workloads.datasets import synthetic_images

GB = 1024.0


def tiny_trace():
    return [
        make_job(
            "a",
            "resnet50",
            synthetic_images("s-a", size_mb=units.tb(0.01)),
            num_epochs=2,
        ),
        make_job(
            "b",
            "efficientnet-b1",
            synthetic_images("s-b", size_mb=units.tb(0.01)),
            num_epochs=2,
        ),
    ]


def tiny_cluster():
    return Cluster.build(1, 4, 15.0 * GB, 100.0)


def test_factories_cover_all_names():
    for name in POLICIES:
        assert make_policy(name).name == name
    for name in CACHES:
        assert make_cache(name).name == name
    with pytest.raises(ValueError):
        make_policy("lifo")
    with pytest.raises(ValueError):
        make_cache("memcached")


def test_coupling_rule():
    scheduler, cache = make_system("fifo", "silod")
    assert scheduler.storage_aware
    assert isinstance(cache, SiloDDataManager)
    scheduler, cache = make_system("gavel", "alluxio")
    assert not scheduler.storage_aware


def test_ablation_cache_names():
    cache = make_cache("silod-no-io-alloc")
    assert cache.name == "silod-no-io-alloc"
    scheduler, cache = make_system("gavel", "silod-no-io-alloc")
    assert scheduler.storage_aware  # still the co-designed scheduler


def test_run_experiment_both_simulators():
    for simulator in ("fluid", "minibatch"):
        result = run_experiment(
            tiny_cluster(),
            "fifo",
            "silod",
            tiny_trace(),
            simulator=simulator,
        )
        assert len(result.finished_records()) == 2
    with pytest.raises(ValueError):
        run_experiment(
            tiny_cluster(), "fifo", "silod", tiny_trace(), simulator="magic"
        )


def test_run_matrix_covers_grid():
    results = run_matrix(
        tiny_cluster(),
        tiny_trace(),
        policies=("fifo", "sjf"),
        caches=("silod", "coordl"),
    )
    assert set(results) == {
        ("fifo", "silod"),
        ("fifo", "coordl"),
        ("sjf", "silod"),
        ("sjf", "coordl"),
    }
    for result in results.values():
        assert len(result.finished_records()) == 2
