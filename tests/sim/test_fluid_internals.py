"""White-box tests of the fluid simulator's cache dynamics.

These pin down the §6 semantics the integration tests rely on: random
eviction scales effectiveness proportionally, stale (unallocated) data is
reclaimed under pool pressure, and fills never exceed targets or the pool.
"""

import pytest

from repro.cluster.dataset import Dataset
from repro.cluster.hardware import Cluster
from repro.cluster.job import Job, JobProgress
from repro.sim.fluid import FluidSimulator
from repro.sim.runner import make_system

GB = 1024.0


def make_sim(jobs=(), cache_gb=100.0, io=100.0):
    scheduler, cache_system = make_system("fifo", "silod")
    cluster = Cluster.build(2, 2, cache_gb * GB / 2, io)
    return FluidSimulator(cluster, scheduler, cache_system, list(jobs))


def job(job_id, d_gb=10.0):
    return Job(
        job_id=job_id,
        model="m",
        dataset=Dataset(f"d-{job_id}", d_gb * GB),
        num_gpus=1,
        ideal_throughput_mbps=50.0,
        total_work_mb=2 * d_gb * GB,
    )


def put_key(sim, key, size_mb, resident_mb, target_mb):
    """Seed one residency-store entry (backend-agnostic)."""
    sim._cache.ensure(key, size_mb)
    sim._cache.set_size_mb(key, size_mb)
    sim._cache.set_resident_mb(key, resident_mb)
    sim._cache.set_target_mb(key, target_mb)


class TestShrink:
    def test_random_eviction_scales_effectiveness(self):
        j = job("a")
        sim = make_sim([j])
        sim._active[j.job_id] = JobProgress(job=j)
        put_key(
            sim, "d-a", size_mb=10.0 * GB, resident_mb=8.0 * GB,
            target_mb=8.0 * GB,
        )
        sim._effective["a"] = 6.0 * GB
        sim._shrink("d-a", 4.0 * GB)
        assert sim._cache.resident_mb("d-a") == pytest.approx(4.0 * GB)
        # Effectiveness halves with the resident bytes (random victims).
        assert sim._effective["a"] == pytest.approx(3.0 * GB)

    def test_shrink_to_zero(self):
        j = job("a")
        sim = make_sim([j])
        sim._active[j.job_id] = JobProgress(job=j)
        put_key(sim, "d-a", size_mb=GB, resident_mb=GB, target_mb=GB)
        sim._effective["a"] = GB
        sim._shrink("d-a", 0.0)
        assert sim._cache.resident_mb("d-a") == 0.0
        assert sim._effective["a"] == 0.0


class TestReclaimOvershoot:
    def test_stale_keys_reclaimed_first(self):
        sim = make_sim(cache_gb=10.0)
        put_key(
            sim, "stale", size_mb=8.0 * GB, resident_mb=8.0 * GB,
            target_mb=0.0,
        )
        put_key(
            sim, "live", size_mb=6.0 * GB, resident_mb=6.0 * GB,
            target_mb=6.0 * GB,
        )
        sim._reclaim_overshoot()
        assert sim._cache.total_resident_mb() <= 10.0 * GB + 1e-6
        # The allocated key is untouched; the stale one paid.
        assert sim._cache.resident_mb("live") == pytest.approx(6.0 * GB)
        assert sim._cache.resident_mb("stale") == pytest.approx(4.0 * GB)

    def test_proportional_backstop_when_targets_oversubscribe(self):
        sim = make_sim(cache_gb=10.0)
        # A misbehaving cache system targeted 2x the pool.
        for name in ("a", "b"):
            put_key(
                sim, name, size_mb=10.0 * GB, resident_mb=10.0 * GB,
                target_mb=10.0 * GB,
            )
        sim._reclaim_overshoot()
        assert sim._cache.total_resident_mb() <= 10.0 * GB * (1 + 1e-6)

    def test_no_action_when_under_budget(self):
        sim = make_sim(cache_gb=10.0)
        put_key(sim, "a", size_mb=GB, resident_mb=GB, target_mb=GB)
        sim._reclaim_overshoot()
        assert sim._cache.resident_mb("a") == pytest.approx(GB)


class TestAttainedService:
    def test_attained_service_tracks_progress(self):
        j = job("a", d_gb=10.0)
        sim = make_sim([j])
        progress = JobProgress(job=j)
        progress.work_done_mb = 5.0 * GB
        sim._active[j.job_id] = progress
        # 5 GB at 50 MB/s on 1 GPU -> 102.4 s of GPU service.
        assert sim._attained_service_s(j) == pytest.approx(
            5.0 * GB / 50.0
        )

    def test_unknown_job_has_zero_service(self):
        sim = make_sim()
        assert sim._attained_service_s(job("ghost")) == 0.0
