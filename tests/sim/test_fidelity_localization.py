"""Fidelity auto-localization: where do the two simulators first diverge?

When the fluid-vs-minibatch error is large, ``localize_divergence`` diffs
the two structured event logs on their shared anchor sequence (lifecycle,
epoch boundaries, fault preempts/restarts) and reports the earliest
disagreeing event per job.
"""

import pytest

from repro import units
from repro.analysis.fidelity import (
    DivergencePoint,
    compare_simulators,
    localize_divergence,
)
from repro.cluster.dataset import Dataset
from repro.cluster.hardware import Cluster
from repro.faults import FaultEvent
from repro.obs.events import Event
from repro.workloads.models import make_job

pytestmark = pytest.mark.faults


def _log(*specs):
    """Build a synthetic event log from (ts, etype, job_id, fields)."""
    return [
        Event(ts_s=ts, etype=etype, job_id=job_id, fields=dict(fields))
        for ts, etype, job_id, fields in specs
    ]


def _clean_log():
    return _log(
        (0.0, "job_submit", "j1", {}),
        (0.0, "job_start", "j1", {}),
        (10.0, "epoch_boundary", "j1", {"epoch": 1}),
        (20.0, "epoch_boundary", "j1", {"epoch": 2}),
        (20.0, "job_finish", "j1", {}),
    )


def test_identical_logs_have_no_divergence():
    assert localize_divergence(_clean_log(), _clean_log()) is None


def test_timestamps_are_not_compared():
    shifted = [
        Event(e.ts_s + 37.0, e.etype, e.job_id, dict(e.fields))
        for e in _clean_log()
    ]
    assert localize_divergence(_clean_log(), shifted) is None


def test_tampered_epoch_is_localized():
    tampered = _clean_log()
    tampered[3] = Event(20.0, "epoch_boundary", "j1", {"epoch": 99})
    point = localize_divergence(_clean_log(), tampered)
    assert isinstance(point, DivergencePoint)
    assert point.job_id == "j1"
    assert point.index == 3
    assert point.fluid_event.fields["epoch"] == 2
    assert point.emulator_event.fields["epoch"] == 99
    assert "epoch=2" in point.describe()
    assert "epoch=99" in point.describe()


def test_truncated_sequence_is_localized():
    point = localize_divergence(_clean_log(), _clean_log()[:3])
    assert point is not None
    assert point.index == 3
    assert point.emulator_event is None
    assert "<no event>" in point.describe()


def test_earliest_diverging_job_wins():
    # j1 diverges at t=20, j2 already at t=5.
    fluid = _clean_log() + _log(
        (2.0, "job_submit", "j2", {}),
        (5.0, "job_start", "j2", {}),
    )
    emulator = _clean_log()[:3] + _log(
        (2.0, "job_submit", "j2", {}),
    )
    point = localize_divergence(fluid, emulator)
    assert point.job_id == "j2"
    assert point.index == 1
    assert point.fluid_event.etype == "job_start"


def test_compare_simulators_localizes_real_runs():
    cluster = Cluster.build(
        num_servers=2,
        gpus_per_server=4,
        cache_per_server_mb=units.gb(25),
        remote_io_mbps=units.gbps(1.6),
    )
    jobs = [
        make_job(
            "job-a",
            "resnet50",
            Dataset(name="d-a", size_mb=units.gb(20)),
            num_gpus=2,
            num_epochs=3,
            submit_time_s=0.0,
        )
    ]
    report = compare_simulators(
        cluster,
        "fifo",
        "silod",
        jobs,
        faults=[FaultEvent(150.0, "server_crash", magnitude=1)],
        localize=True,
    )
    # The anchor sequences are required to agree even under faults, so
    # localization on healthy simulators reports no divergence.
    assert report.divergence is None
    assert report.jct_error == pytest.approx(0.0, abs=0.25)


def test_compare_simulators_without_localize_keeps_divergence_none():
    cluster = Cluster.build(
        num_servers=1,
        gpus_per_server=2,
        cache_per_server_mb=units.gb(25),
        remote_io_mbps=units.gbps(1.6),
    )
    jobs = [
        make_job(
            "job-a",
            "resnet50",
            Dataset(name="d-a", size_mb=units.gb(10)),
            num_gpus=2,
            num_epochs=2,
            submit_time_s=0.0,
        )
    ]
    report = compare_simulators(cluster, "fifo", "silod", jobs)
    assert report.divergence is None
