"""Heterogeneous placement: fluid vs minibatch, and collapse to Gavel.

Two guarantees pin the heterogeneity layer:

* **Cross-simulator equivalence** — on a mixed-generation fleet both
  het policies drive the fluid simulator and the minibatch emulator
  through the same anchor-event sequence (``localize_divergence``
  finds nothing) with small JCT error.
* **Collapse** — on a single-generation fleet ``het-max-min`` is
  *bit-identical* to ``gavel``: the speedup factor is exactly ``1.0``,
  so every grant, score, and finish time matches to the last bit. Only
  the policy's name (and the het-only ``f_star_gen_mbps`` provenance
  field) may differ. Holds under both numeric backends.
"""

import pytest

from repro import units
from repro.analysis.fidelity import compare_simulators, localize_divergence
from repro.cluster.dataset import Dataset
from repro.cluster.hardware import Cluster
from repro.obs import Tracer
from repro.perf.backend import BACKEND_FALLBACK, using_backend
from repro.sim.runner import run_experiment
from repro.workloads.models import make_job

pytestmark = pytest.mark.perf

HET_POLICIES = ("het-max-min", "het-max-throughput")

#: Event fields that legitimately differ between a het policy and its
#: homogeneous twin (or carry wall-clock time).
_POLICY_BEARING = {"policy", "f_star_gen_mbps", "latency_ms"}


def mixed_cluster() -> Cluster:
    return Cluster.build_mixed(
        [("V100", 2), ("A100", 1)],
        gpus_per_server=4,
        cache_per_server_mb=units.gb(25),
        remote_io_mbps=units.gbps(1.6),
    )


def homogeneous_cluster() -> Cluster:
    return Cluster.build(
        num_servers=3,
        gpus_per_server=4,
        cache_per_server_mb=units.gb(25),
        remote_io_mbps=units.gbps(1.6),
    )


def small_jobs():
    return [
        make_job(
            f"job-{i}",
            "resnet50",
            Dataset(name=f"d-{i % 2}", size_mb=units.gb(8 + 4 * (i % 2))),
            num_gpus=1 + (i % 3),
            num_epochs=2,
            submit_time_s=120.0 * i,
        )
        for i in range(5)
    ]


@pytest.mark.parametrize("policy", HET_POLICIES)
def test_het_policies_cross_simulator_equivalence(policy):
    """Fluid and minibatch agree on anchors for both het objectives."""
    report = compare_simulators(
        mixed_cluster(),
        policy,
        "silod",
        small_jobs(),
        localize=True,
    )
    assert report.divergence is None
    assert report.jct_error == pytest.approx(0.0, abs=0.25)


def _traced_run(policy, simulator="fluid"):
    tracer = Tracer()
    result = run_experiment(
        homogeneous_cluster(),
        policy,
        "silod",
        small_jobs(),
        simulator=simulator,
        tracer=tracer,
    )
    return result, tracer.events


def _normalised(events):
    """Event tuples with policy-identity and wall-clock fields dropped."""
    return [
        (
            e.ts_s.hex(),
            e.etype,
            e.job_id,
            {
                k: (v.hex() if isinstance(v, float) else v)
                for k, v in e.fields.items()
                if k not in _POLICY_BEARING
            },
        )
        for e in events
    ]


@pytest.mark.parametrize("simulator", ["fluid", "minibatch"])
def test_het_max_min_collapses_to_gavel_on_homogeneous(simulator):
    """Single-generation fleet: het-max-min == gavel, bit for bit."""
    het_result, het_events = _traced_run("het-max-min", simulator)
    gavel_result, gavel_events = _traced_run("gavel", simulator)
    assert _normalised(het_events) == _normalised(gavel_events)
    assert [
        (r.job_id, r.jct_s.hex())
        for r in het_result.finished_records()
    ] == [
        (r.job_id, r.jct_s.hex())
        for r in gavel_result.finished_records()
    ]
    # The het run still narrates which generation served each job.
    decision_gens = {
        e.fields.get("generation")
        for e in het_events
        if e.etype == "decision_job"
    }
    assert decision_gens == {"V100"}


def test_collapse_holds_under_fallback_backend():
    """The REPRO_NO_NUMPY=1 path honours the same collapse."""
    with using_backend(BACKEND_FALLBACK):
        het_result, het_events = _traced_run("het-max-min")
        gavel_result, gavel_events = _traced_run("gavel")
    assert _normalised(het_events) == _normalised(gavel_events)
    assert [r.jct_s.hex() for r in het_result.finished_records()] == [
        r.jct_s.hex() for r in gavel_result.finished_records()
    ]


@pytest.mark.parametrize("policy", HET_POLICIES)
def test_het_runs_are_deterministic(policy):
    """Two identical mixed-fleet runs produce identical event logs."""

    def run_once():
        tracer = Tracer()
        run_experiment(
            mixed_cluster(),
            policy,
            "silod",
            small_jobs(),
            tracer=tracer,
        )
        return _normalised(tracer.events)

    first = run_once()
    assert first == run_once()
    assert localize_divergence([], []) is None  # sanity: helper importable
