"""Simulators: fluid (cluster scale) and minibatch (testbed emulation)."""

from repro.sim.fluid import FluidSimulator
from repro.sim.metrics import JobRecord, RunResult, TimelineSample
from repro.sim.minibatch import MinibatchEmulator
from repro.sim.runner import make_system, run_experiment, run_matrix

__all__ = [
    "FluidSimulator",
    "MinibatchEmulator",
    "RunResult",
    "JobRecord",
    "TimelineSample",
    "make_system",
    "run_experiment",
    "run_matrix",
]
