"""Experiment runner: build (policy x cache) systems and run traces.

The evaluation sweeps a matrix of three scheduling policies (FIFO, SJF,
Gavel) against four storage configurations (SiloD co-design, Alluxio,
CoorDL, Quiver). This module provides the factory used by every benchmark
and example, with the paper's coupling rule built in: choosing the
``"silod"`` cache makes the scheduler storage-aware (the co-design), any
baseline cache runs the *vanilla* policy with storage decided
independently.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.cache.alluxio import AlluxioCache
from repro.cache.base import CacheSystem
from repro.cache.coordl import CoorDLCache
from repro.cache.nocache import NoCache
from repro.cache.prefetch import PrefetchingDataManager
from repro.cache.quiver import QuiverCache
from repro.cache.silod_cache import SiloDDataManager
from repro.cluster.hardware import Cluster
from repro.cluster.job import Job
from repro.core.policies.base import SchedulingPolicy
from repro.core.policies.fifo import FifoPolicy
from repro.core.policies.gavel import GavelPolicy
from repro.core.policies.het import (
    HetMaxMinPolicy,
    HetMaxThroughputPolicy,
)
from repro.core.policies.las import LasPolicy
from repro.core.policies.objectives import (
    FinishTimeFairnessPolicy,
    MaxTotalThroughputPolicy,
)
from repro.core.policies.sjf import SjfPolicy
from repro.core.silod import SiloDScheduler
from repro.sim.fluid import FluidSimulator
from repro.sim.metrics import RunResult
from repro.sim.minibatch import MinibatchEmulator

POLICIES = ("fifo", "sjf", "gavel")
CACHES = ("silod", "alluxio", "coordl", "quiver")


def make_policy(name: str) -> SchedulingPolicy:
    """Instantiate a scheduling policy by name."""
    if name == "fifo":
        return FifoPolicy()
    if name == "sjf":
        return SjfPolicy()
    if name == "gavel":
        return GavelPolicy()
    if name == "las":
        return LasPolicy()
    if name == "max-throughput":
        return MaxTotalThroughputPolicy()
    if name == "finish-time-fairness":
        return FinishTimeFairnessPolicy()
    if name == "het-max-min":
        return HetMaxMinPolicy()
    if name == "het-max-throughput":
        return HetMaxThroughputPolicy()
    raise ValueError(f"unknown policy {name!r}; expected one of {POLICIES}")


def make_cache(name: str, **kwargs) -> CacheSystem:
    """Instantiate a cache system by name."""
    if name == "silod":
        return SiloDDataManager(**kwargs)
    if name == "silod-no-io-alloc":
        return SiloDDataManager(io_allocation=False, **kwargs)
    if name == "silod-prefetch":
        return PrefetchingDataManager(**kwargs)
    if name == "alluxio":
        return AlluxioCache(**kwargs)
    if name == "coordl":
        return CoorDLCache(**kwargs)
    if name == "quiver":
        return QuiverCache(**kwargs)
    if name == "nocache":
        return NoCache(**kwargs)
    raise ValueError(f"unknown cache {name!r}; expected one of {CACHES}")


def make_system(
    policy: str, cache: str, cache_kwargs: Optional[dict] = None
) -> Tuple[SiloDScheduler, CacheSystem]:
    """Build a (scheduler, cache system) pair with the coupling rule.

    The SiloD configurations run the policy storage-aware (Algorithm 1);
    baseline caches run the vanilla policy and decide storage themselves.
    """
    cache_system = make_cache(cache, **(cache_kwargs or {}))
    storage_aware = isinstance(cache_system, SiloDDataManager)
    scheduler = SiloDScheduler(
        make_policy(policy), storage_aware=storage_aware
    )
    return scheduler, cache_system


def run_experiment(
    cluster: Cluster,
    policy: str,
    cache: str,
    jobs: Sequence[Job],
    simulator: str = "fluid",
    cache_kwargs: Optional[dict] = None,
    **sim_kwargs,
) -> RunResult:
    """Run one (policy, cache) cell over a trace and return the result.

    Extra keyword arguments (including ``tracer=`` for a
    :class:`repro.obs.Tracer` capturing structured events) are forwarded
    to the simulator constructor.
    """
    scheduler, cache_system = make_system(policy, cache, cache_kwargs)
    if simulator == "fluid":
        sim = FluidSimulator(
            cluster, scheduler, cache_system, jobs, **sim_kwargs
        )
    elif simulator == "minibatch":
        sim = MinibatchEmulator(
            cluster, scheduler, cache_system, jobs, **sim_kwargs
        )
    else:
        raise ValueError("simulator must be 'fluid' or 'minibatch'")
    return sim.run()


def run_matrix(
    cluster: Cluster,
    jobs: Sequence[Job],
    policies: Iterable[str] = POLICIES,
    caches: Iterable[str] = CACHES,
    simulator: str = "fluid",
    **sim_kwargs,
) -> Dict[Tuple[str, str], RunResult]:
    """Run every (policy, cache) combination — Figure 12's grid."""
    results: Dict[Tuple[str, str], RunResult] = {}
    for policy in policies:
        for cache in caches:
            results[(policy, cache)] = run_experiment(
                cluster, policy, cache, jobs, simulator, **sim_kwargs
            )
    return results
