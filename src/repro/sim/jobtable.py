"""Columnar per-job progress state for the fluid simulator's hot loop.

Between events the fluid simulator repeatedly answers four questions
over the whole active set — when is the next completion, when is the
next epoch boundary, advance everyone by ``dt``, who just finished or
crossed an epoch — and each was a Python loop over
:class:`~repro.cluster.job.JobProgress` objects. :class:`JobTable`
stores the loop-carried scalars (work done, total work, epoch size,
throughput, miss rate, completed epochs) columnarly so those sweeps are
single numpy expressions; the pure-Python fallback (``REPRO_NO_NUMPY=1``)
runs the same arithmetic as explicit loops.

Rows are append-only in admission order — exactly the insertion order of
the simulator's ``_active`` dict — and retirement tombstones a row via a
:class:`~repro.cache.bitset.RowBitset` instead of compacting, so
ascending row order is always the fallback's iteration order and
``np.nonzero`` row lists line up with it.

Equivalence contract (``docs/PERFORMANCE.md``): both backends produce
bit-identical floats. Every vectorized expression mirrors the scalar
formula operation for operation (same operand order, same intermediate
expressions); reductions are value-only ``min``s (order-independent);
and the one subtle primitive — float floor division in the epoch index —
relies on ``np.floor_divide`` matching CPython's ``//`` for positive
finite doubles, which the property tests fuzz explicitly.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.cache.bitset import RowBitset
from repro.perf.backend import numpy_enabled, require_numpy


class JobTable:
    """Columnar mirror of per-job progress for one simulation run.

    Parameters
    ----------
    capacity:
        Expected number of rows (the trace length); the table grows past
        it if needed.
    rate_eps:
        Rates at or below this are "stalled" (the simulator's
        ``_RATE_EPS``).
    work_eps_mb:
        Work remaining at or below this counts as completed (the
        simulator's ``_WORK_EPS_MB``).
    snap_mb:
        The epoch-boundary snap tolerance
        (:data:`repro.cluster.job._EPOCH_SNAP_MB`'s value).
    done_eps_mb:
        The ``JobProgress.done`` threshold (promotion skips done jobs).
    vectorized:
        Backend override; ``None`` consults ``REPRO_NO_NUMPY``.
    """

    def __init__(
        self,
        capacity: int,
        rate_eps: float,
        work_eps_mb: float,
        snap_mb: float,
        done_eps_mb: float = 1e-9,
        vectorized: Optional[bool] = None,
    ) -> None:
        self._vectorized = (
            numpy_enabled() if vectorized is None else vectorized
        )
        self._rate_eps = rate_eps
        self._work_eps = work_eps_mb
        self._snap = snap_mb
        self._done_eps = done_eps_mb
        self._n = 0
        self._job_ids: List[str] = []
        self._rows = {}  # job_id -> row
        #: Interned GPU-generation names; the ``_gen`` column stores
        #: indices into this list (-1 = unassigned). Kept as small-int
        #: codes so the column stays numeric on both backends.
        self._gen_names: List[str] = []
        self._gen_codes = {}  # name -> index
        capacity = max(1, capacity)
        if self._vectorized:
            np = require_numpy()
            self._np = np
            self._work = np.zeros(capacity)
            self._total = np.zeros(capacity)
            self._epoch = np.ones(capacity)  # avoid 0-division on spares
            self._rate = np.zeros(capacity)
            self._miss = np.zeros(capacity)
            self._epochs_done = np.zeros(capacity)
            self._gen = np.full(capacity, -1, dtype=np.intp)
            self._alive = RowBitset(capacity, vectorized=True)
        else:
            self._work = [0.0] * capacity
            self._total = [0.0] * capacity
            self._epoch = [1.0] * capacity
            self._rate = [0.0] * capacity
            self._miss = [0.0] * capacity
            self._epochs_done = [0.0] * capacity
            self._gen = [-1] * capacity
            #: Ordered set of live rows (dict preserves admission order;
            #: rows only append, so iteration is ascending).
            self._live = {}

    @property
    def backend(self) -> str:
        """``"vectorized"`` or ``"fallback"``."""
        return "vectorized" if self._vectorized else "fallback"

    # ------------------------------------------------------------------
    # Row lifecycle.
    # ------------------------------------------------------------------

    def _grow(self, capacity: int) -> None:
        if self._vectorized:
            np = self._np
            new_cap = max(capacity, 2 * len(self._work))
            for name, fill in (
                ("_work", 0.0),
                ("_total", 0.0),
                ("_epoch", 1.0),
                ("_rate", 0.0),
                ("_miss", 0.0),
                ("_epochs_done", 0.0),
            ):
                old = getattr(self, name)
                new = np.full(new_cap, fill)
                new[: len(old)] = old
                setattr(self, name, new)
            gen = np.full(new_cap, -1, dtype=np.intp)
            gen[: len(self._gen)] = self._gen
            self._gen = gen
            self._alive.grow(new_cap)
        else:
            extra = max(capacity - len(self._work), len(self._work))
            self._work.extend([0.0] * extra)
            self._total.extend([0.0] * extra)
            self._epoch.extend([1.0] * extra)
            self._rate.extend([0.0] * extra)
            self._miss.extend([0.0] * extra)
            self._epochs_done.extend([0.0] * extra)
            self._gen.extend([-1] * extra)

    def admit(self, job_id: str, total_work_mb: float, epoch_mb: float) -> int:
        """Append a row for a newly admitted job; returns its row index."""
        if self._n >= len(self._work):
            self._grow(self._n + 1)
        row = self._n
        self._n += 1
        self._job_ids.append(job_id)
        self._rows[job_id] = row
        self._work[row] = 0.0
        self._total[row] = total_work_mb
        self._epoch[row] = epoch_mb
        self._rate[row] = 0.0
        self._miss[row] = 0.0
        self._epochs_done[row] = 0.0
        self._gen[row] = -1
        if self._vectorized:
            self._alive.set(row)
        else:
            self._live[row] = None
        return row

    def retire(self, row: int) -> None:
        """Tombstone a finished job's row (rates zeroed, mask cleared)."""
        self._rate[row] = 0.0
        self._miss[row] = 0.0
        if self._vectorized:
            self._alive.clear(row)
        else:
            self._live.pop(row, None)

    def row_of(self, job_id: str) -> Optional[int]:
        """Row index for ``job_id`` (``None`` if never admitted)."""
        return self._rows.get(job_id)

    def job_id(self, row: int) -> str:
        """The job id admitted at ``row``."""
        return self._job_ids[row]

    # ------------------------------------------------------------------
    # Scalar accessors (always plain Python floats).
    # ------------------------------------------------------------------

    def work_done_mb(self, row: int) -> float:
        """Work completed so far at ``row``, in MB."""
        return float(self._work[row])

    def set_work_done_mb(self, row: int, value: float) -> None:
        """Overwrite ``row``'s completed work (preemption rollback)."""
        self._work[row] = value

    def rate(self, row: int) -> float:
        """Current end-to-end throughput at ``row``, in MB/s."""
        return float(self._rate[row])

    def miss_rate(self, row: int) -> float:
        """Current remote-fetch (miss) rate at ``row``, in MB/s."""
        return float(self._miss[row])

    def epochs_done(self, row: int) -> int:
        """Epoch boundaries already promoted for ``row``."""
        return int(self._epochs_done[row])

    def set_epochs_done(self, row: int, value: int) -> None:
        """Record that ``row`` has promoted ``value`` epoch boundaries."""
        self._epochs_done[row] = float(value)

    def set_generation(self, row: int, name: Optional[str]) -> None:
        """Record ``row``'s assigned GPU generation (``None`` clears)."""
        if name is None:
            self._gen[row] = -1
            return
        code = self._gen_codes.get(name)
        if code is None:
            code = len(self._gen_names)
            self._gen_codes[name] = code
            self._gen_names.append(name)
        self._gen[row] = code

    def generation(self, row: int) -> Optional[str]:
        """``row``'s assigned GPU generation, or ``None``."""
        code = int(self._gen[row])
        if code < 0:
            return None
        return self._gen_names[code]

    def clear_rates(self) -> None:
        """Zero every row's throughput and miss rate (pre-recompute)."""
        if self._vectorized:
            self._rate[: self._n] = 0.0
            self._miss[: self._n] = 0.0
        else:
            for row in range(self._n):
                self._rate[row] = 0.0
                self._miss[row] = 0.0

    def set_rate(self, row: int, rate: float, miss_rate: float) -> None:
        """Install ``row``'s freshly recomputed throughput and miss rate."""
        self._rate[row] = rate
        self._miss[row] = miss_rate

    def set_rates_bulk(
        self,
        rows: Sequence[int],
        rates: Sequence[float],
        miss_rates: Sequence[float],
    ) -> None:
        """Scatter freshly recomputed rates for many rows at once.

        One fancy-indexed assignment instead of per-row numpy scalar
        writes — the rate recompute runs on every storage decision, so
        the per-element write cost matters. Accepts lists or arrays.
        """
        if len(rows) == 0:
            return
        if self._vectorized:
            np = self._np
            idx = np.asarray(rows, dtype=np.intp)
            self._rate[idx] = np.asarray(rates, dtype=float)
            self._miss[idx] = np.asarray(miss_rates, dtype=float)
            return
        for row, rate, miss in zip(rows, rates, miss_rates):
            self._rate[row] = rate
            self._miss[row] = miss

    # ------------------------------------------------------------------
    # Whole-table sweeps (the per-event hot path).
    # ------------------------------------------------------------------

    def advance(self, dt: float) -> None:
        """Advance every live, moving job by ``rate * dt`` (work-capped)."""
        if self._vectorized:
            np = self._np
            n = self._n
            if n == 0:
                return
            work = self._work[:n]
            rate = self._rate[:n]
            moving = self._alive.mask(n) & (rate > self._rate_eps)
            # Same expression as the scalar path:
            # min(total, work + rate * dt).
            np.copyto(
                work,
                np.minimum(self._total[:n], work + rate * dt),
                where=moving,
            )
            return
        for row in self._live:
            rate = self._rate[row]
            if rate > self._rate_eps:
                self._work[row] = min(
                    self._total[row], self._work[row] + rate * dt
                )

    def next_completion_time(self, clock_s: float) -> float:
        """Earliest ``clock + remaining/rate`` over live, moving jobs."""
        if self._vectorized:
            np = self._np
            n = self._n
            if n == 0:
                return math.inf
            rate = self._rate[:n]
            idx = np.nonzero(self._alive.mask(n) & (rate > self._rate_eps))[0]
            if idx.size == 0:
                return math.inf
            remaining = np.maximum(
                0.0, self._total[idx] - self._work[idx]
            )
            return float(np.min(clock_s + remaining / rate[idx]))
        best = math.inf
        for row in self._live:
            rate = self._rate[row]
            if rate > self._rate_eps:
                remaining = max(0.0, self._total[row] - self._work[row])
                best = min(best, clock_s + remaining / rate)
        return best

    def next_epoch_boundary_time(self, clock_s: float) -> float:
        """Earliest upcoming epoch boundary strictly before completion."""
        if self._vectorized:
            np = self._np
            n = self._n
            if n == 0:
                return math.inf
            rate = self._rate[:n]
            idx = np.nonzero(self._alive.mask(n) & (rate > self._rate_eps))[0]
            if idx.size == 0:
                return math.inf
            work = self._work[idx]
            epoch = self._epoch[idx]
            remaining = np.maximum(0.0, self._total[idx] - work)
            # JobProgress.work_to_epoch_boundary_mb, term by term.
            epoch_index = np.floor_divide(work + self._snap, epoch)
            position = np.maximum(0.0, work - epoch_index * epoch)
            to_boundary = np.minimum(epoch - position, remaining)
            sel = to_boundary < remaining - self._work_eps
            if not sel.any():
                return math.inf
            return float(
                np.min(clock_s + to_boundary[sel] / rate[idx][sel])
            )
        best = math.inf
        for row in self._live:
            rate = self._rate[row]
            if rate <= self._rate_eps:
                continue
            work = self._work[row]
            epoch = self._epoch[row]
            remaining = max(0.0, self._total[row] - work)
            epoch_index = (work + self._snap) // epoch
            position = max(0.0, work - epoch_index * epoch)
            to_boundary = min(epoch - position, remaining)
            if to_boundary < remaining - self._work_eps:
                best = min(best, clock_s + to_boundary / rate)
        return best

    def completed_rows(self) -> List[int]:
        """Live rows whose remaining work is within ``work_eps`` (asc)."""
        if self._vectorized:
            np = self._np
            n = self._n
            if n == 0:
                return []
            remaining = np.maximum(0.0, self._total[:n] - self._work[:n])
            mask = self._alive.mask(n) & (remaining <= self._work_eps)
            return np.nonzero(mask)[0].tolist()
        done = []
        for row in self._live:
            remaining = max(0.0, self._total[row] - self._work[row])
            if remaining <= self._work_eps:
                done.append(row)
        return done

    def epoch_flips(self) -> List[Tuple[int, int]]:
        """``(row, epochs_now)`` for unfinished jobs past a new boundary."""
        if self._vectorized:
            np = self._np
            n = self._n
            if n == 0:
                return []
            work = self._work[:n]
            remaining = np.maximum(0.0, self._total[:n] - work)
            epoch_index = np.floor_divide(
                work + self._snap, self._epoch[:n]
            )
            mask = (
                self._alive.mask(n)
                & (remaining > self._done_eps)
                & (epoch_index > self._epochs_done[:n])
            )
            rows = np.nonzero(mask)[0]
            counts = epoch_index[rows].astype(int)
            return list(zip(rows.tolist(), counts.tolist()))
        flips = []
        for row in self._live:
            work = self._work[row]
            remaining = max(0.0, self._total[row] - work)
            epoch_index = (work + self._snap) // self._epoch[row]
            if remaining > self._done_eps and (
                epoch_index > self._epochs_done[row]
            ):
                flips.append((row, int(epoch_index)))
        return flips
