"""RunResult serialization.

Experiment outputs are written as JSON so that sweeps can be archived,
diffed across code versions, and post-processed without re-simulating.
The format is self-describing and versioned like the trace format.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Union

from repro.sim.metrics import JobRecord, RunResult, TimelineSample

_VERSION = 1


def _clean(value):
    """JSON cannot carry inf/nan; encode them as None."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def result_to_dict(result: RunResult) -> dict:
    """A JSON-safe representation of a run result."""
    return {
        "v": _VERSION,
        "scheduler": result.scheduler_name,
        "cache": result.cache_name,
        "end_time_s": result.end_time_s,
        "records": [
            {
                "job_id": r.job_id,
                "model": r.model,
                "dataset": r.dataset,
                "num_gpus": r.num_gpus,
                "submit_time_s": r.submit_time_s,
                "start_time_s": r.start_time_s,
                "finish_time_s": r.finish_time_s,
            }
            for r in result.records
        ],
        "timeline": [
            {
                "time_s": s.time_s,
                "running_jobs": s.running_jobs,
                "queued_jobs": s.queued_jobs,
                "total_throughput_mbps": s.total_throughput_mbps,
                "ideal_throughput_mbps": s.ideal_throughput_mbps,
                "remote_io_used_mbps": s.remote_io_used_mbps,
                "fairness_ratio": _clean(s.fairness_ratio),
                "resident_cache_mb": s.resident_cache_mb,
                "effective_cache_mb": s.effective_cache_mb,
            }
            for s in result.timeline
        ],
    }


def result_from_dict(data: dict) -> RunResult:
    """Rebuild a run result from its JSON form."""
    if data.get("v") != _VERSION:
        raise ValueError(f"unsupported result format version {data.get('v')}")
    records = [
        JobRecord(
            job_id=r["job_id"],
            model=r["model"],
            dataset=r["dataset"],
            num_gpus=int(r["num_gpus"]),
            submit_time_s=float(r["submit_time_s"]),
            start_time_s=r["start_time_s"],
            finish_time_s=r["finish_time_s"],
        )
        for r in data["records"]
    ]
    timeline = [
        TimelineSample(
            time_s=float(s["time_s"]),
            running_jobs=int(s["running_jobs"]),
            queued_jobs=int(s["queued_jobs"]),
            total_throughput_mbps=float(s["total_throughput_mbps"]),
            ideal_throughput_mbps=float(s["ideal_throughput_mbps"]),
            remote_io_used_mbps=float(s["remote_io_used_mbps"]),
            fairness_ratio=(
                float("nan")
                if s["fairness_ratio"] is None
                else float(s["fairness_ratio"])
            ),
            resident_cache_mb=float(s["resident_cache_mb"]),
            effective_cache_mb=float(s["effective_cache_mb"]),
        )
        for s in data["timeline"]
    ]
    return RunResult(
        scheduler_name=data["scheduler"],
        cache_name=data["cache"],
        records=records,
        timeline=timeline,
        end_time_s=float(data["end_time_s"]),
    )


def save_result(result: RunResult, path: Union[str, Path]) -> None:
    """Write a run result as JSON."""
    Path(path).write_text(json.dumps(result_to_dict(result)))


def load_result(path: Union[str, Path]) -> RunResult:
    """Read a run result written by :func:`save_result`."""
    return result_from_dict(json.loads(Path(path).read_text()))
