"""Minibatch-granularity testbed emulator.

The paper evaluates on real clusters by replacing GPU compute with
``sleep()`` of a profiled per-batch duration ("GPU acceleration", §7) —
the IO path stays real. This module is the same idea one level down: it
emulates, per job, the two-stage pipeline of Figure 5 —

    [data load: cache hit (local disk) | miss (throttled remote fetch)]
      -> [compute: profiled step duration]

over **item-granularity caches** (`repro.cache.items`) with real admission
and eviction, per-epoch reshuffled access orders, and bounded prefetching.
It is deliberately implemented independently of the fluid simulator's
closed-form models so the two can cross-validate (our analog of Table 6's
fidelity columns).

Time is processed in fixed *decision intervals*: at each boundary the
scheduling policy and the cache system re-decide (arrivals, completions,
re-profiling), and within the interval each job advances its pipeline
item by item under fixed grants.
"""

from __future__ import annotations

import math
import random
import zlib
from collections import deque
from typing import Dict, List, Optional, Sequence

from repro.cache.alluxio import AlluxioCache
from repro.cache.base import CacheSystem, StorageContext, StorageDecision
from repro.cache.items import LruItemCache, UniformItemCache
from repro.cache.silod_cache import SiloDDataManager
from repro.core.policies import io_share
from repro.cluster.hardware import Cluster
from repro.cluster.job import Job, JobPhase, JobProgress
from repro.core.policies.gavel import fairness_ratio
from repro.core.resources import Allocation, ResourceVector
from repro.core.silod import SiloDScheduler
from repro.faults.injector import FaultInjector
from repro.faults.spec import ScheduleLike, as_schedule
from repro.obs.prov import emit_decision_provenance
from repro.obs.slo import SLOTracker
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.metrics import JobRecord, RunResult, TimelineSample

#: Cache key used for the shared LRU pool in cache events (the pool is
#: one arena shared by every dataset, unlike the per-key uniform caches).
_LRU_POOL_KEY = "lru_pool"


class _JobRuntime:
    """Per-job pipeline state at item granularity."""

    def __init__(
        self,
        job: Job,
        item_size_mb: float,
        seed: int,
        prefetch_depth: int = 16,
    ) -> None:
        self.job = job
        self.item_size_mb = item_size_mb
        self.epoch_items = max(1, int(round(job.dataset.size_mb / item_size_mb)))
        self.total_items = max(
            1, int(round(job.total_work_mb / item_size_mb))
        )
        self.items_done = 0
        self.epoch_pos = 0
        self.epochs_done = 0
        self.effective_items = 0
        self.rng = random.Random(seed)
        self.order: List[int] = list(range(self.epoch_items))
        self.rng.shuffle(self.order)
        self.io_free_t = 0.0
        self.comp_free_t = 0.0
        # Measured hit statistics feeding the work-conserving bandwidth
        # division used by scheduler-oblivious cache systems.
        self.hits_recent = 0
        self.accesses_recent = 0
        self.prefetch_depth = prefetch_depth
        self.comp_finish_history: deque = deque(maxlen=prefetch_depth)
        #: Assigned GPU generation this round (mirrors the fluid
        #: simulator's job-table gen column); ``None`` until scheduled.
        self.generation: Optional[str] = None
        self.start_time_s: Optional[float] = None
        self.finish_time_s: Optional[float] = None
        # Per-interval accounting for throughput/IO timelines.
        self.bytes_consumed_interval = 0.0
        self.bytes_fetched_interval = 0.0
        # Whether the pipeline ran in the previous interval; after an idle
        # gap its clocks must be re-based to "now".
        self.ran_last_interval = False

    @property
    def done(self) -> bool:
        """Whether every item of the job's work has been consumed."""
        return self.items_done >= self.total_items

    def next_item(self) -> int:
        """Item id the pipeline will read next (current epoch order)."""
        return self.order[self.epoch_pos]

    def advance_item(self) -> None:
        """Consume one item; reshuffle at epoch boundaries."""
        self.items_done += 1
        self.epoch_pos += 1
        if self.epoch_pos >= self.epoch_items:
            self.epoch_pos = 0
            self.epochs_done += 1
            self.rng.shuffle(self.order)


class MinibatchEmulator:
    """Item-level pipeline emulator for a (scheduler, cache system) pair.

    Parameters
    ----------
    cluster, scheduler, cache_system, jobs:
        As in :class:`repro.sim.fluid.FluidSimulator`.
    item_size_mb:
        Emulation granularity: datasets are divided into items of this
        size and one training step consumes one item. Hit statistics are
        granularity-independent in expectation; smaller items cost more
        CPU time.
    decision_interval_s:
        Cadence at which policies and grants refresh.
    local_read_mbps:
        Local-disk read bandwidth serving cache hits (Figure 3's premise
        is that hits are effectively never the bottleneck).
    faults:
        A :class:`repro.faults.FaultSchedule` (or sequence of
        :class:`~repro.faults.FaultEvent`), the same spec the fluid
        simulator accepts. Events are applied at the next decision
        interval boundary at or after their scheduled time (batch
        granularity); an empty/absent schedule is a strict no-op. See
        ``docs/FAULTS.md``.
    tracer:
        Structured-event sink (``repro.obs``); same schema as the fluid
        simulator, with per-item cache activity aggregated to one
        ``cache_admit``/``cache_evict`` per key per decision interval.
        ``None`` (default) keeps the free no-op tracer.
    """

    def __init__(
        self,
        cluster: Cluster,
        scheduler: SiloDScheduler,
        cache_system: CacheSystem,
        jobs: Sequence[Job],
        item_size_mb: float = 64.0,
        decision_interval_s: float = 60.0,
        sample_interval_s: float = 600.0,
        local_read_mbps: float = 2000.0,
        seed: int = 0,
        max_time_s: Optional[float] = None,
        faults: ScheduleLike = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        ids = [job.job_id for job in jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("job ids must be unique")
        #: Every id ever seen (trace + online submissions).
        self._known_ids = set(ids)
        self.cluster = cluster
        self.scheduler = scheduler
        self.cache_system = cache_system
        # Adopt the cluster's GPU-generation mix (mirrors the fluid
        # simulator: no-op numerics on homogeneous fleets).
        scheduler.enable_heterogeneity(cluster)
        self._tracer = tracer if tracer is not None else NULL_TRACER
        if tracer is not None:
            scheduler.tracer = tracer
        #: Items admitted per cache key within the current interval
        #: (flushed to aggregated ``cache_admit`` events).
        self._admits_interval: Dict[str, int] = {}
        self.total = ResourceVector(
            gpus=cluster.total_gpus,
            cache_mb=cluster.total_cache_mb,
            remote_io_mbps=cluster.remote_io_mbps,
        )
        self._trace = sorted(jobs, key=lambda j: (j.submit_time_s, j.job_id))
        self._item_size_mb = item_size_mb
        self._interval_s = decision_interval_s
        self._sample_interval_s = sample_interval_s
        self._local_read_mbps = local_read_mbps
        self._seed = seed
        self._max_time_s = max_time_s
        self._is_lru = isinstance(cache_system, AlluxioCache)
        schedule = as_schedule(faults)
        self._injector = (
            FaultInjector(schedule, cluster, tracer=self._tracer)
            if schedule is not None
            else None
        )
        #: The pristine capacity vector churn is measured against; when a
        #: fault schedule is active, ``self.total`` is rebuilt from it.
        self._base_total = self.total
        #: Jobs held out of scheduling by an explicit ``job_preempt``.
        self._blocked: set = set()

        #: Training steps (item fetch+compute) emulated — the emulator's
        #: unit of work for ``repro bench`` events/sec.
        self.loop_events = 0
        #: Scheduling rounds run (``repro bench`` rounds/sec).
        self.sched_rounds = 0
        #: Storage-decision rounds; unique index in the provenance
        #: events (here every round is a reschedule — the emulator has
        #: no separate epoch-triggered decisions).
        self.decision_rounds = 0
        #: Deadline (``deadline_s``) watcher; checked at interval
        #: boundaries only, so warn/violation sequences are
        #: deterministic.
        self._slo = SLOTracker(self._tracer)

        self.clock_s = 0.0
        self._arrival_idx = 0
        self._active: Dict[str, _JobRuntime] = {}
        self._finished: List[_JobRuntime] = []
        self._allocation = Allocation()
        self._decision = StorageDecision({}, {}, {})
        self._uniform_caches: Dict[str, UniformItemCache] = {}
        self._lru_pool = LruItemCache(
            int(cluster.total_cache_mb / item_size_mb)
        )
        self._timeline: List[TimelineSample] = []
        self._last_sample_s = 0.0
        #: Tick state armed by :meth:`begin` (instance attribute so the
        #: loop can be driven one interval at a time by ``repro.serve``).
        self._next_sample = 0.0
        self._begun = False

    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        """Run to completion (or ``max_time_s``) and return the result."""
        self.begin()
        while self.step():
            pass
        return self.finish()

    def begin(self) -> None:
        """Arm the decision loop (idempotent; ``run`` calls it for you).

        Same stepped protocol as the fluid simulator — ``begin()``,
        ``step()`` until ``False``, ``finish()`` — except one step is one
        decision interval (the emulator's native granularity), not one
        event.
        """
        if self._begun:
            return
        self._begun = True
        self.cache_system.reset()
        self._next_sample = 0.0

    def next_event_time(self) -> Optional[float]:
        """Virtual time the next decision interval starts (``None`` = never)."""
        if self._done():
            return None
        if self._max_time_s is not None and self.clock_s >= self._max_time_s:
            return None
        if not self._active and self._arrival_idx < len(self._trace):
            return max(
                self.clock_s, self._trace[self._arrival_idx].submit_time_s
            )
        return self.clock_s

    def step(self, limit_s: Optional[float] = None) -> bool:
        """Run one decision interval; ``False`` when nothing (more) happened.

        With ``limit_s``, an interval starting strictly beyond that
        virtual time is left unprocessed — the online driver's gate.
        """
        t_start = self.next_event_time()
        if t_start is None:
            return False
        if limit_s is not None and t_start > limit_s + 1e-9:
            return False
        if not self._active and self._arrival_idx < len(self._trace):
            self.clock_s = max(
                self.clock_s,
                self._trace[self._arrival_idx].submit_time_s,
            )
        self._admit_arrivals()
        self._retire_completions()
        self._apply_fault_schedule()
        self._reschedule()
        self._slo.check(self.clock_s)
        t_end = self.clock_s + self._interval_s
        self._run_interval(t_end)
        if self.clock_s >= self._next_sample:
            self._sample()
            self._next_sample = self.clock_s + self._sample_interval_s
        self.clock_s = t_end
        return True

    def finish(self) -> RunResult:
        """Final retire + sample + counters; returns the run's result."""
        self._retire_completions()
        self._sample()
        self._publish_counters()
        return self._result()

    # ------------------------------------------------------------------
    # Online mutation (``repro.serve``).
    # ------------------------------------------------------------------

    def submit_job(self, job: Job) -> None:
        """Inject a job into the pending trace (online admission).

        Sorted insertion among the not-yet-admitted tail keeps the
        admission sequence — and the per-job shuffle seeds, which hang
        off the admission index — identical to a batch run whose trace
        contained the job from the start.
        """
        if job.job_id in self._known_ids:
            raise ValueError(f"duplicate job id {job.job_id!r}")
        self._known_ids.add(job.job_id)
        key = (job.submit_time_s, job.job_id)
        lo, hi = self._arrival_idx, len(self._trace)
        while lo < hi:
            mid = (lo + hi) // 2
            probe = self._trace[mid]
            if (probe.submit_time_s, probe.job_id) <= key:
                lo = mid + 1
            else:
                hi = mid
        self._trace.insert(lo, job)

    def cancel_job(self, job_id: str, reason: str = "user") -> bool:
        """Withdraw a job (online cancellation); ``True`` if it existed.

        A still-pending job is removed from the trace; an active one
        retires immediately with no finish time. The re-allocation lands
        at the next decision-interval boundary — batch granularity,
        matching how the emulator applies faults.
        """
        for idx in range(self._arrival_idx, len(self._trace)):
            if self._trace[idx].job_id == job_id:
                del self._trace[idx]
                self._slo.discard(job_id)
                if self._tracer.enabled:
                    self._tracer.job_cancel(
                        self.clock_s, job_id, reason=reason,
                        work_done_mb=0.0,
                    )
                return True
        rt = self._active.get(job_id)
        if rt is None:
            return False
        self._finished.append(rt)
        del self._active[job_id]
        self._blocked.discard(job_id)
        self._slo.discard(job_id)
        if self.cache_system.per_job_keys:
            self._uniform_caches.pop(job_id, None)
        if self._tracer.enabled:
            self._tracer.job_cancel(
                self.clock_s, job_id, reason=reason,
                work_done_mb=rt.items_done * self._item_size_mb,
            )
        return True

    def _publish_counters(self) -> None:
        """Push the run's step/round totals into the obs registry.

        Mirrors :meth:`repro.sim.fluid.FluidSimulator._publish_counters`;
        the shared :data:`~repro.obs.tracer.NULL_TRACER` singleton is
        never written.
        """
        if self._tracer is NULL_TRACER:
            return
        self._tracer.metrics.inc("sim.events", float(self.loop_events))
        self._tracer.metrics.inc("sim.sched_rounds", float(self.sched_rounds))

    # ------------------------------------------------------------------

    def _done(self) -> bool:
        return self._arrival_idx >= len(self._trace) and not self._active

    def _admit_arrivals(self) -> None:
        while (
            self._arrival_idx < len(self._trace)
            and self._trace[self._arrival_idx].submit_time_s
            <= self.clock_s + 1e-9
        ):
            job = self._trace[self._arrival_idx]
            self._arrival_idx += 1
            runtime = _JobRuntime(
                job,
                self._item_size_mb,
                seed=self._seed * 1_000_003 + self._arrival_idx,
            )
            self._active[job.job_id] = runtime
            if self._tracer.enabled:
                self._tracer.job_submit(
                    job.submit_time_s,
                    job.job_id,
                    model=job.model,
                    dataset=job.dataset.name,
                    num_gpus=job.num_gpus,
                    dataset_mb=job.dataset.size_mb,
                    total_work_mb=job.total_work_mb,
                    deadline_s=job.deadline_s,
                )
            self._slo.register(
                job.job_id, job.submit_time_s, job.deadline_s
            )

    def _retire_completions(self) -> None:
        for job_id in list(self._active):
            runtime = self._active[job_id]
            if runtime.done:
                self._finished.append(runtime)
                del self._active[job_id]
                if self.cache_system.per_job_keys:
                    self._uniform_caches.pop(job_id, None)
                finish = (
                    runtime.finish_time_s
                    if runtime.finish_time_s is not None
                    else self.clock_s
                )
                if self._tracer.enabled:
                    self._tracer.job_finish(
                        finish,
                        job_id,
                        jct_s=finish - runtime.job.submit_time_s,
                        epochs_done=runtime.epochs_done,
                    )
                self._slo.finish(job_id, finish)

    # ------------------------------------------------------------------
    # Fault schedule (``repro.faults``).
    # ------------------------------------------------------------------

    def _apply_fault_schedule(self) -> None:
        """Apply due fault events at this decision-interval boundary.

        The emulator's analog of the fluid simulator's handler: faults
        land at batch granularity (the first boundary at or after their
        scheduled time), and the reschedule that follows every interval
        re-runs the allocator on the shrunk capacity.
        """
        if self._injector is None:
            return
        due = self._injector.pop_due(self.clock_s)
        if not due:
            return
        for event in due:
            effect = self._injector.apply(event, self.clock_s)
            if effect.evict_fraction > 0:
                self._invalidate_fraction(
                    effect.evict_fraction, cause=event.kind
                )
            if effect.preempt_gpus > 0:
                victims = self._injector.select_victims(
                    {
                        job_id: self._allocation.gpus_of(job_id)
                        for job_id in self._active
                    },
                    effect.preempt_gpus,
                )
                for job_id in victims:
                    self._preempt_job(job_id, reason=event.kind)
            if event.kind == "job_preempt" and effect.job_id in self._active:
                self._blocked.add(effect.job_id)
                self._preempt_job(effect.job_id, reason=event.kind)
            elif event.kind == "job_restart":
                self._blocked.discard(effect.job_id)
                if self._tracer.enabled and effect.job_id in self._active:
                    self._tracer.job_restart(
                        self.clock_s,
                        effect.job_id,
                        reason=event.kind,
                        epoch=self._active[effect.job_id].epochs_done,
                    )
        self.total = self._injector.effective_total(self._base_total)
        if self._is_lru:
            # The shared pool tracks the (possibly shrunk) capacity; LRU
            # eviction handles any overflow.
            self._lru_pool.resize(
                int(self.total.cache_mb / self._item_size_mb)
            )

    def _invalidate_fraction(self, fraction: float, cause: str) -> None:
        """A fault destroyed ``fraction`` of every cache's items.

        Implemented through the caches' public ``resize``: shrinking to
        the kept size evicts (uniform caches pick victims at random, the
        LRU pool drops its coldest entries), then the capacity is
        restored so refills can proceed.
        """
        keep_ratio = max(0.0, 1.0 - fraction)
        tracer = self._tracer
        if self._is_lru:
            before = self._lru_pool.size
            keep = int(before * keep_ratio)
            if before > 0 and keep < before:
                cap = self._lru_pool.capacity
                self._lru_pool.resize(keep)
                self._lru_pool.resize(cap)
                if tracer.enabled:
                    tracer.cache_invalidate(
                        self.clock_s,
                        _LRU_POOL_KEY,
                        delta_mb=(before - keep) * self._item_size_mb,
                        resident_mb=keep * self._item_size_mb,
                        cause=cause,
                    )
        else:
            for key in sorted(self._uniform_caches):
                cache = self._uniform_caches[key]
                before = cache.size
                keep = int(before * keep_ratio)
                if before <= 0 or keep >= before:
                    continue
                cap = cache.capacity
                cache.resize(keep)
                cache.resize(cap)
                if tracer.enabled:
                    tracer.cache_invalidate(
                        self.clock_s,
                        key,
                        delta_mb=(before - keep) * self._item_size_mb,
                        resident_mb=keep * self._item_size_mb,
                        cause=cause,
                    )
        # Lost items were a uniform sample of what each job could hit.
        for rt in self._active.values():
            rt.effective_items = int(rt.effective_items * keep_ratio)

    def _preempt_job(self, job_id: str, reason: str) -> None:
        """Epoch-granularity restart: replay the current epoch."""
        rt = self._active.get(job_id)
        if rt is None:
            return
        rollback_items = rt.epoch_pos
        rt.items_done = max(0, rt.items_done - rt.epoch_pos)
        rt.epoch_pos = 0
        rt.ran_last_interval = False
        rt.comp_finish_history.clear()
        if self._tracer.enabled:
            self._tracer.job_preempt(
                self.clock_s,
                job_id,
                reason=reason,
                rollback_mb=rollback_items * self._item_size_mb,
                epoch=rt.epochs_done,
            )

    # ------------------------------------------------------------------
    # Scheduling and cache-state plumbing.
    # ------------------------------------------------------------------

    def _cache_items_of(self, key: str) -> int:
        if self._is_lru:
            return self._lru_pool.size
        cache = self._uniform_caches.get(key)
        return cache.size if cache else 0

    def _effective_mb(self, job: Job) -> float:
        runtime = self._active.get(job.job_id)
        if runtime is None:
            return 0.0
        return runtime.effective_items * self._item_size_mb

    def _reschedule(self) -> None:
        self.sched_rounds += 1
        jobs = [
            rt.job
            for rt in self._active.values()
            if rt.job.job_id not in self._blocked
        ]
        tracer = self._tracer
        old_gpus = dict(self._allocation.gpus) if tracer.enabled else {}
        self._allocation = self.scheduler.schedule(
            jobs,
            self.total,
            now_s=self.clock_s,
            effective_cache_mb=self._effective_mb,
        )
        # Mirror the round's generation placement (the fluid simulator's
        # job-table gen column) onto the per-job runtimes.
        generations = self.scheduler.last_generations
        default_gen = self.scheduler.default_generation
        for rt in self._active.values():
            rt.generation = generations.get(
                rt.job.job_id, default_gen
            )
        running = [
            rt.job
            for rt in self._active.values()
            if self._allocation.gpus_of(rt.job.job_id) > 0
        ]
        running_ids = {job.job_id for job in running}
        queued = [
            rt.job
            for rt in self._active.values()
            if rt.job.job_id not in running_ids
        ]
        for rt in self._active.values():
            if (
                self._allocation.gpus_of(rt.job.job_id) > 0
                and rt.start_time_s is None
            ):
                rt.start_time_s = self.clock_s
                key = self.cache_system.cache_key(rt.job)
                rt.effective_items = self._cache_items_of(key)
                if tracer.enabled:
                    job_id = rt.job.job_id
                    tracer.job_start(
                        self.clock_s,
                        job_id,
                        gpus=self._allocation.gpus_of(job_id),
                        queue_delay_s=self.clock_s
                        - rt.job.submit_time_s,
                    )
                    tracer.promote_effective(
                        self.clock_s,
                        job_id,
                        key=key,
                        effective_mb=rt.effective_items
                        * self._item_size_mb,
                        reason="job_start",
                    )
        if tracer.enabled:
            seen = set(old_gpus) | set(self._allocation.gpus)
            for job_id in sorted(seen):
                if job_id not in self._active:
                    continue
                before = old_gpus.get(job_id, 0.0)
                after = self._allocation.gpus_of(job_id)
                if abs(before - after) > 1e-9:
                    tracer.alloc_change(
                        self.clock_s,
                        job_id,
                        gpus_before=before,
                        gpus_after=after,
                    )
        ctx = StorageContext(
            running_jobs=running,
            gpu_grants=dict(self._allocation.gpus),
            total_gpus=self.total.gpus,
            total_cache_mb=self.total.cache_mb,
            total_io_mbps=self.total.remote_io_mbps,
            effective_mb=self._effective_mb,
            first_epoch_done=lambda job: (
                self._active[job.job_id].epochs_done > 0
                if job.job_id in self._active
                else True
            ),
            estimator=self.scheduler.estimator,
            clock_s=self.clock_s,
            scheduler_allocation=self._allocation,
            queued_jobs=queued,
            tracer=self._tracer,
        )
        self._decision = self.cache_system.reallocate(ctx)
        if not isinstance(self.cache_system, SiloDDataManager):
            self._work_conserving_io_grants(running)
        if not self._is_lru:
            self._apply_uniform_targets(running)
            self._admit_prefetched_items()
        self.decision_rounds += 1
        if tracer.enabled:
            estimator = self.scheduler.estimator
            emit_decision_provenance(
                tracer,
                self.clock_s,
                self.decision_rounds,
                "reschedule",
                running,
                len(queued),
                self.total.gpus,
                self.total.cache_mb,
                self.total.remote_io_mbps,
                dict(self._allocation.gpus),
                self.cache_system.cache_key,
                self._decision.cache_targets,
                self._decision.hit_ratios,
                self._decision.io_grants,
                {
                    job.job_id: estimator.compute_bound(
                        job, self._allocation.gpus_of(job.job_id)
                    )
                    for job in running
                },
                self._effective_mb,
                self.scheduler.last_scores,
                generations=self.scheduler.last_generations,
                gen_f_stars=self.scheduler.last_gen_scores,
                default_generation=self.scheduler.default_generation,
            )

    def _work_conserving_io_grants(self, running: Sequence[Job]) -> None:
        """Re-divide egress over *measured* demands for baseline systems.

        Without scheduler throttling, the account's egress cap is shared
        by the jobs' competing fetch streams, which is work-conserving:
        bandwidth one job does not pull is available to the rest, and the
        division tracks actual (not modelled) miss rates. Each job's
        demand is estimated from its recently observed hit ratio; model
        hit ratios seed jobs without history. Unclaimed bandwidth is
        spread evenly so a job whose model over-promised hits (e.g. a
        stale shared LRU) can still fetch.
        """
        demands = {}
        profile = {}
        for job in running:
            rt = self._active.get(job.job_id)
            f_star = self.scheduler.estimator.compute_bound(
                job, self._allocation.gpus_of(job.job_id)
            )
            if rt is not None and rt.accesses_recent >= 20:
                hit = rt.hits_recent / rt.accesses_recent
            else:
                hit = self._decision.hit_ratios.get(job.job_id, 0.0)
            demands[job.job_id] = f_star * (1.0 - hit)
            profile[job.job_id] = (f_star, hit)
        grants = io_share.max_min_waterfill(
            demands, self.total.remote_io_mbps
        )
        leftover = self.total.remote_io_mbps - sum(grants.values())
        if leftover > 1e-9 and running:
            bonus = leftover / len(running)
            for job in running:
                grants[job.job_id] = grants.get(job.job_id, 0.0) + bonus
        self._decision.io_grants = grants
        if self._tracer.enabled:
            # Re-emit io_throttle with the *measured* hit ratios: these
            # events supersede the cache system's model-based ones for
            # this round (the report keeps the last per (time, job)).
            for job in running:
                f_star, hit = profile[job.job_id]
                self._tracer.io_throttle(
                    self.clock_s,
                    job.job_id,
                    desired_mbps=f_star,
                    hit_ratio=hit,
                    demand_mbps=demands[job.job_id],
                    grant_mbps=grants.get(job.job_id, 0.0),
                )
        for rt in self._active.values():
            rt.hits_recent = 0
            rt.accesses_recent = 0

    def _apply_uniform_targets(self, running: Sequence[Job]) -> None:
        targets = self._decision.cache_targets
        for key, target_mb in targets.items():
            capacity = int(target_mb / self._item_size_mb)
            cache = self._uniform_caches.get(key)
            if cache is None:
                # zlib.crc32 is stable across processes, unlike builtin
                # hash() on str, so per-key eviction streams reproduce.
                key_digest = zlib.crc32(key.encode("utf-8")) % 9973
                cache = UniformItemCache(
                    capacity, rng=random.Random(self._seed + key_digest)
                )
                self._uniform_caches[key] = cache
            else:
                before = cache.size
                cache.resize(capacity)
                if cache.size < before:
                    # Random eviction scales effectiveness down (§6).
                    ratio = cache.size / before if before else 0.0
                    for rt in self._active.values():
                        if self.cache_system.cache_key(rt.job) == key:
                            rt.effective_items = int(
                                rt.effective_items * ratio
                            )
                    if self._tracer.enabled:
                        self._tracer.cache_evict(
                            self.clock_s,
                            key,
                            delta_mb=(before - cache.size)
                            * self._item_size_mb,
                            resident_mb=cache.size * self._item_size_mb,
                            reason="target_shrink",
                        )
        # Keys with no target are shrunk to zero only if the pool
        # oversubscribes (uniform caching never evicts eagerly).
        total_items = sum(c.size for c in self._uniform_caches.values())
        pool_items = int(self.total.cache_mb / self._item_size_mb)
        if total_items > pool_items:
            for key in list(self._uniform_caches):
                if key not in targets:
                    freed = self._uniform_caches[key].size
                    self._uniform_caches[key].resize(0)
                    total_items -= freed
                    if freed and self._tracer.enabled:
                        self._tracer.cache_evict(
                            self.clock_s,
                            key,
                            delta_mb=freed * self._item_size_mb,
                            resident_mb=0.0,
                            reason="reclaim",
                        )
                    if total_items <= pool_items:
                        break

    def _admit_prefetched_items(self) -> None:
        """Fetch random uncached items of prefetch-targeted datasets."""
        if not self._decision.prefetch_rates:
            return
        epoch_items_by_key = {}
        for rt in self._active.values():
            epoch_items_by_key[self.cache_system.cache_key(rt.job)] = (
                rt.epoch_items
            )
        rng = random.Random(self._seed * 7919 + int(self.clock_s))
        for key, rate in self._decision.prefetch_rates.items():
            cache = self._uniform_caches.get(key)
            population = epoch_items_by_key.get(key)
            if cache is None or not population or rate <= 0:
                continue
            budget_items = int(rate * self._interval_s / self._item_size_mb)
            before = cache.size
            for _ in range(budget_items):
                if cache.size >= cache.capacity:
                    break
                cache.access((key, rng.randrange(population)))
            if self._tracer.enabled and cache.size > before:
                self._tracer.cache_admit(
                    self.clock_s,
                    key,
                    delta_mb=(cache.size - before) * self._item_size_mb,
                    resident_mb=cache.size * self._item_size_mb,
                    via="prefetch",
                )

    # ------------------------------------------------------------------
    # The per-interval pipeline.
    # ------------------------------------------------------------------

    def _run_interval(self, t_end: float) -> None:
        tracer = self._tracer
        lru_before = self._lru_pool.size
        if tracer.enabled:
            self._admits_interval = {}
        for rt in self._active.values():
            job = rt.job
            gpus = self._allocation.gpus_of(job.job_id)
            if gpus <= 0 or rt.done:
                rt.ran_last_interval = False
                continue
            f_star = self.scheduler.estimator.compute_bound(job, gpus)
            if f_star <= 0:
                continue
            step_time = self._item_size_mb / f_star
            io_rate = self._decision.io_grants.get(job.job_id, 0.0)
            fetch_time = (
                self._item_size_mb / io_rate if io_rate > 0 else math.inf
            )
            local_time = self._item_size_mb / self._local_read_mbps
            if not rt.ran_last_interval:
                # Re-base after idle/preemption; while running, the
                # pipeline clocks carry over so no lead time is lost.
                rt.io_free_t = max(rt.io_free_t, self.clock_s)
                rt.comp_free_t = max(rt.comp_free_t, self.clock_s)
            self._run_job_pipeline(
                rt, t_end, step_time, fetch_time, local_time
            )
            rt.ran_last_interval = True
        if tracer.enabled:
            self._flush_cache_events(t_end, lru_before)

    def _flush_cache_events(self, t_end: float, lru_before: int) -> None:
        """Emit the interval's aggregated cache_admit/evict events.

        Item-level churn is aggregated to one ``cache_admit`` per key
        per interval; for the shared LRU pool, evictions are derived
        from the pool's size delta and emitted against the pool-wide
        ``lru_pool`` key (per-key victims are not attributable).
        """
        inserted = 0
        for key in sorted(self._admits_interval):
            items = self._admits_interval[key]
            if items <= 0:
                continue
            inserted += items
            if self._is_lru:
                resident = self._lru_pool.size * self._item_size_mb
            else:
                cache = self._uniform_caches.get(key)
                resident = (cache.size if cache else 0) * self._item_size_mb
            self._tracer.cache_admit(
                t_end,
                key,
                delta_mb=items * self._item_size_mb,
                resident_mb=resident,
                via="miss",
            )
        self._admits_interval = {}
        if self._is_lru:
            evicted = inserted + lru_before - self._lru_pool.size
            if evicted > 0:
                self._tracer.cache_evict(
                    t_end,
                    _LRU_POOL_KEY,
                    delta_mb=evicted * self._item_size_mb,
                    resident_mb=self._lru_pool.size * self._item_size_mb,
                    reason="lru",
                )

    def _run_job_pipeline(
        self,
        rt: _JobRuntime,
        t_end: float,
        step_time: float,
        fetch_time: float,
        local_time: float,
    ) -> None:
        key = self.cache_system.cache_key(rt.job)
        tracing = self._tracer.enabled
        target_items = int(
            self._decision.cache_targets.get(key, 0.0) / self._item_size_mb
        )
        steps = 0
        while rt.comp_free_t < t_end and not rt.done:
            steps += 1
            item = (key, rt.next_item())
            if self._is_lru:
                hit = self._lru_pool.access(item)
                if tracing and not hit and self._lru_pool.capacity > 0:
                    self._admits_interval[key] = (
                        self._admits_interval.get(key, 0) + 1
                    )
            else:
                cache = self._uniform_caches.get(key)
                hit = cache is not None and item in cache
                if not hit and cache is not None and cache.size < target_items:
                    cache.access(item)  # admit under target
                    if tracing:
                        self._admits_interval[key] = (
                            self._admits_interval.get(key, 0) + 1
                        )
            rt.accesses_recent += 1
            if hit:
                rt.hits_recent += 1
                io_time = local_time
            else:
                io_time = fetch_time
                if math.isinf(io_time):
                    # No remote bandwidth: the job stalls this interval.
                    rt.comp_free_t = t_end
                    break
                rt.bytes_fetched_interval += self._item_size_mb
            # Bounded prefetch: the loader may run at most
            # ``prefetch_depth`` items ahead of compute.
            gate = (
                rt.comp_finish_history[0]
                if len(rt.comp_finish_history) == rt.prefetch_depth
                else 0.0
            )
            io_start = max(rt.io_free_t, gate)
            rt.io_free_t = io_start + io_time
            comp_start = max(rt.comp_free_t, rt.io_free_t)
            rt.comp_free_t = comp_start + step_time
            rt.comp_finish_history.append(rt.comp_free_t)
            rt.bytes_consumed_interval += self._item_size_mb
            was_last_of_epoch = rt.epoch_pos == rt.epoch_items - 1
            rt.advance_item()
            if was_last_of_epoch:
                # Delayed effectiveness: everything resident *now* becomes
                # usable from the next epoch on.
                rt.effective_items = self._cache_items_of(key)
                if tracing and not rt.done:
                    # The final epoch's boundary coincides with completion
                    # and is not emitted — matching the fluid simulator.
                    self._tracer.epoch_boundary(
                        rt.comp_free_t, rt.job.job_id, epoch=rt.epochs_done
                    )
                    self._tracer.promote_effective(
                        rt.comp_free_t,
                        rt.job.job_id,
                        key=key,
                        effective_mb=rt.effective_items * self._item_size_mb,
                        reason="epoch_boundary",
                    )
            if rt.done:
                rt.finish_time_s = rt.comp_free_t
        self.loop_events += steps

    # ------------------------------------------------------------------
    # Sampling and results.
    # ------------------------------------------------------------------

    def _sample(self) -> None:
        interval = max(self.clock_s - self._last_sample_s, self._interval_s)
        self._last_sample_s = self.clock_s
        running_jobs = []
        throughputs: Dict[str, float] = {}
        io_used = 0.0
        achieved = 0.0
        ideal = 0.0
        for rt in self._active.values():
            gpus = self._allocation.gpus_of(rt.job.job_id)
            if gpus <= 0:
                continue
            running_jobs.append(rt.job)
            rate = rt.bytes_consumed_interval / interval
            throughputs[rt.job.job_id] = rate
            achieved += rate
            io_used += rt.bytes_fetched_interval / interval
            ideal += self.scheduler.estimator.compute_bound(rt.job, gpus)
            rt.bytes_consumed_interval = 0.0
            rt.bytes_fetched_interval = 0.0
        mature = [
            job
            for job in running_jobs
            if self._active[job.job_id].epochs_done > 0
        ]
        fairness = fairness_ratio(
            mature,
            throughputs,
            self.total,
            self.scheduler.estimator,
            storage_aware=True,
            num_jobs=len(running_jobs),
        )
        if self._is_lru:
            resident = self._lru_pool.size * self._item_size_mb
        else:
            resident = (
                sum(c.size for c in self._uniform_caches.values())
                * self._item_size_mb
            )
        effective = sum(
            rt.effective_items * self._item_size_mb
            for rt in self._active.values()
        )
        self._timeline.append(
            TimelineSample(
                time_s=self.clock_s,
                running_jobs=len(running_jobs),
                queued_jobs=len(self._active) - len(running_jobs),
                total_throughput_mbps=achieved,
                ideal_throughput_mbps=ideal,
                remote_io_used_mbps=io_used,
                fairness_ratio=fairness,
                resident_cache_mb=resident,
                effective_cache_mb=min(effective, resident),
            )
        )

    def _result(self) -> RunResult:
        records = []
        everything = self._finished + list(self._active.values())
        for rt in sorted(everything, key=lambda r: r.job.submit_time_s):
            records.append(
                JobRecord(
                    job_id=rt.job.job_id,
                    model=rt.job.model,
                    dataset=rt.job.dataset.name,
                    num_gpus=rt.job.num_gpus,
                    submit_time_s=rt.job.submit_time_s,
                    start_time_s=rt.start_time_s,
                    finish_time_s=rt.finish_time_s,
                )
            )
        return RunResult(
            scheduler_name=self.scheduler.policy.name,
            cache_name=self.cache_system.name,
            records=records,
            timeline=self._timeline,
            end_time_s=self.clock_s,
        )
