"""Fluid event-driven cluster simulator.

This is the reproduction's analog of the paper's ~5.2 kLoC Go simulator
(§7.2). Instead of simulating every mini-batch, it exploits the property
SiloDPerf itself rests on: between *events*, every job's throughput is
constant, so the simulator advances analytically from event to event.

Events
------
* **job arrival / completion / reschedule tick** — the scheduling policy
  runs and produces a fresh joint allocation;
* **epoch boundary** — a job's newly cached items become effective (§6
  "delayed effectiveness") and the storage decision (hit ratios, IO
  grants, placement targets) is recomputed without re-running the policy;
* **sample tick** — a timeline sample is recorded.

Cache dynamics
--------------
Resident bytes per cache key fill at the jobs' miss rates (solving the
exact exponential ODE when sharing jobs may re-fetch already-resident
items), are capped at the system's placement target, and are evicted
randomly (proportional effectiveness loss) when a target shrinks. A job's
*effective* bytes are promoted to the key's resident bytes at each of its
epoch boundaries, and initialised from resident bytes when it starts —
which is how dataset sharing pays off immediately (§7.3).

Backends
--------
The per-event sweeps over the active set (advance, next-event search,
completion/epoch detection) live in a columnar
:class:`~repro.sim.jobtable.JobTable`, and per-key cache residency in a
:class:`~repro.cache.residency.ResidencyStore`; both are numpy-backed
when available and pure Python under ``REPRO_NO_NUMPY=1``, with
bit-identical results either way (the ``repro.perf`` equivalence
contract — see ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.base import (
    CacheSystem,
    StorageBatchHints,
    StorageContext,
    StorageDecision,
)
from repro.cache.residency import make_residency_store
from repro.cluster.hardware import Cluster
from repro.cluster.job import _EPOCH_SNAP_MB, Job, JobPhase, JobProgress
from repro.core.policies.gavel import fairness_ratio
from repro.core.resources import Allocation, ResourceVector
from repro.core.silod import SiloDScheduler
from repro.faults.injector import FaultInjector
from repro.faults.spec import ScheduleLike, as_schedule
from repro.obs.prov import emit_decision_provenance
from repro.obs.slo import SLOTracker
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.perf.backend import numpy_enabled, require_numpy
from repro.sim.jobtable import JobTable
from repro.sim.metrics import JobRecord, RunResult, TimelineSample

#: Work below this many MB counts as "done" (guards float drift).
_WORK_EPS_MB = 1e-3
#: Rate below this many MB/s counts as "stalled".
_RATE_EPS = 1e-9


class _EpochView:
    """Per-allocation-epoch gathers over the running set.

    The storage decision runs on every epoch boundary, but its per-job
    inputs — who is running, their table rows, GPU grants, compute
    bounds, dataset sizes, remote-IO allocations — only change when the
    scheduler re-allocates (membership changes always trigger a
    reschedule before the next decision). Gathering them once per
    allocation epoch turns the per-decision cost from O(jobs) Python
    loops into a few dict lookups.

    The view is rebuilt lazily after every invalidation; consumers must
    treat every field (including ``gpu_grants``) as read-only.
    """

    __slots__ = (
        "running",
        "job_ids",
        "queued",
        "rows",
        "gpu_grants",
        "f_stars",
        "hints",
        "keys_list",
        "key_codes",
        "job_keys",
        "store_rows",
        "store_rows_version",
    )

    running: List[Job]
    job_ids: List[str]
    queued: List[Job]
    rows: List[Optional[int]]
    gpu_grants: Dict[str, float]
    f_stars: List[float]
    hints: StorageBatchHints
    #: Distinct cache keys of the running set, first-sharer order; with
    #: ``key_codes`` (small-int key per running job, numpy) and
    #: ``job_keys`` (key string per running job) these make the rate
    #: recompute's per-key grouping pure array math. ``None`` under the
    #: pure-Python backend.
    keys_list: Optional[List[str]]
    key_codes: object
    job_keys: Optional[List[str]]
    #: Lazy ``resolve_fill_rows`` result over ``keys_list`` (store row
    #: per key code), revalidated against the store's keyset version.
    store_rows: object
    store_rows_version: int


class FluidSimulator:
    """Simulate a (scheduler, cache system) pair over a job trace.

    Parameters
    ----------
    cluster:
        Hardware: GPUs, aggregate cache pool, egress limit.
    scheduler:
        A :class:`SiloDScheduler` (wrap any policy; set
        ``storage_aware=False`` for the decoupled baselines).
    cache_system:
        The cache subsystem enforcing (or deciding) storage.
    jobs:
        The trace. Jobs must have distinct ids.
    reschedule_interval_s:
        Cadence of periodic policy reruns between arrivals/completions.
    sample_interval_s:
        Cadence of timeline samples.
    max_time_s:
        Hard stop; unfinished jobs are reported with no finish time.
    data_manager_crash_times_s:
        Fault injection (§6): at each time the data manager crashes and
        recovers — allocations are reconstructed from the (durable)
        scheduler state and cache content survives on local disk, but any
        in-memory cache-system state (e.g. Quiver's online profiles) is
        lost and a full re-schedule runs.
    server_loss_times_s:
        Fault injection: at each time one server is lost outright; with
        even striping, ``1/num_servers`` of every dataset's resident and
        effective bytes disappear (a *restart* would lose nothing — the
        content is on disk — so this is the harsher case).
    faults:
        A :class:`repro.faults.FaultSchedule` (or sequence of
        :class:`~repro.faults.FaultEvent`) driving the full churn model:
        server crash/recover with job preemption and cache-shard
        invalidation, cache-node loss, bandwidth flaps, and explicit job
        preempt/restart. Events are applied analytically at their exact
        times and every application triggers a reschedule round. An
        empty/absent schedule is a strict no-op. See ``docs/FAULTS.md``.
    tracer:
        Structured-event sink (``repro.obs``). When given, the simulator
        emits the full event schema (job lifecycle, epoch boundaries,
        effectiveness promotions, cache admissions/evictions, allocation
        changes) and propagates the tracer to the scheduler and cache
        system. ``None`` (default) keeps the free no-op tracer.
    """

    def __init__(
        self,
        cluster: Cluster,
        scheduler: SiloDScheduler,
        cache_system: CacheSystem,
        jobs: Sequence[Job],
        reschedule_interval_s: float = 600.0,
        sample_interval_s: float = 600.0,
        max_time_s: Optional[float] = None,
        data_manager_crash_times_s: Sequence[float] = (),
        server_loss_times_s: Sequence[float] = (),
        faults: ScheduleLike = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        ids = [job.job_id for job in jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("job ids must be unique")
        #: Every id ever seen (trace + online submissions) — duplicate
        #: submissions are rejected for the life of the simulator, even
        #: after the original job finished.
        self._known_ids = set(ids)
        self.cluster = cluster
        self.scheduler = scheduler
        self.cache_system = cache_system
        # Adopt the cluster's GPU-generation mix (no-op numerics on
        # homogeneous fleets; installs the het estimator on mixed ones).
        scheduler.enable_heterogeneity(cluster)
        self._tracer = tracer if tracer is not None else NULL_TRACER
        if tracer is not None:
            scheduler.tracer = tracer
        self.total = ResourceVector(
            gpus=cluster.total_gpus,
            cache_mb=cluster.total_cache_mb,
            remote_io_mbps=cluster.remote_io_mbps,
        )
        self._trace = sorted(jobs, key=lambda j: (j.submit_time_s, j.job_id))
        self._reschedule_interval_s = reschedule_interval_s
        self._sample_interval_s = sample_interval_s
        self._max_time_s = max_time_s
        self._crash_times = sorted(data_manager_crash_times_s)
        self._loss_times = sorted(server_loss_times_s)
        schedule = as_schedule(faults)
        self._injector = (
            FaultInjector(schedule, cluster, tracer=self._tracer)
            if schedule is not None
            else None
        )
        #: The pristine capacity vector churn is measured against; when a
        #: fault schedule is active, ``self.total`` is rebuilt from it.
        self._base_total = self.total
        #: Jobs held out of scheduling by an explicit ``job_preempt``.
        self._blocked: set = set()

        #: Event-loop iterations processed (``repro bench`` events/sec).
        self.loop_events = 0
        #: Scheduling rounds run (``repro bench`` rounds/sec).
        self.sched_rounds = 0
        #: Storage-decision rounds run; every round gets a unique index
        #: in the ``decision_epoch``/``decision_job`` provenance events
        #: (a policy reschedule and an epoch-boundary decision are
        #: distinct rounds).
        self.decision_rounds = 0
        #: Deadline (``deadline_s``) watcher; checked only from the
        #: event loop so warn/violation sequences are deterministic.
        self._slo = SLOTracker(self._tracer)

        self.clock_s = 0.0
        self._arrival_idx = 0
        self._active: Dict[str, JobProgress] = {}
        self._finished: List[JobProgress] = []
        #: Per-key residency/target state (dict or numpy columns).
        self._cache = make_residency_store()
        #: Columnar per-job progress and rates for the hot sweeps.
        self._table = JobTable(
            capacity=len(jobs),
            rate_eps=_RATE_EPS,
            work_eps_mb=_WORK_EPS_MB,
            snap_mb=_EPOCH_SNAP_MB,
        )
        #: Cache key per admitted job (``cache_key`` is deterministic, so
        #: it is computed once at admission instead of per event).
        self._job_key: Dict[str, str] = {}
        #: ``(key, [(job_id, miss_rate), ...])`` for jobs currently
        #: filling their key, refreshed by every rate recompute — the
        #: advance loop walks this short grouping instead of the whole
        #: active set.
        self._filler_groups: List[Tuple[str, List[Tuple[str, float]]]] = []
        #: ``_filler_groups`` split by contributor count: single-filler
        #: keys run through the store's bulk fill plan, shared keys take
        #: the scalar exponential path (``math.exp`` — deliberately never
        #: vectorized, see docs/PERFORMANCE.md).
        self._filler_singles: List[Tuple[str, float]] = []
        self._filler_multis: List[
            Tuple[str, List[Tuple[str, float]]]
        ] = []
        #: Store-prepared fill plan for the single-filler keys (lazy).
        self._fill_plan = None
        #: Columnar source for the fill plan — ``(epoch view, key codes,
        #: rates)`` from the vectorized rate recompute; ``None`` when the
        #: recompute produced ``_filler_singles`` pairs instead.
        self._fill_src = None
        #: Per-allocation-epoch job gathers (lazy; see ``_epoch_view``).
        self._epoch: Optional[_EpochView] = None
        #: ``(cache_targets, store plan)`` of the last applied decision;
        #: reused while the decision and the key set are unchanged.
        self._targets_plan: Optional[Tuple[Dict[str, float], object]] = None
        #: Active sharers per cache key (admission order), so eviction's
        #: effectiveness scaling touches only the key's own jobs.
        self._key_jobs: Dict[str, List[str]] = {}
        self._effective: Dict[str, float] = {}
        self._epochs_done: Dict[str, int] = {}
        self._allocation = Allocation()
        self._decision = StorageDecision({}, {}, {})
        self._timeline: List[TimelineSample] = []
        #: Tick state armed by :meth:`begin` (instance attributes so the
        #: loop can be driven one event at a time by ``repro.serve``).
        self._next_sample = 0.0
        self._next_reschedule = 0.0
        self._begun = False

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        """Run to completion (or ``max_time_s``) and return the result."""
        self.begin()
        max_events = 20_000_000
        for _ in range(max_events):
            if not self.step():
                break
        else:
            raise RuntimeError("fluid simulation exceeded the event budget")
        return self.finish()

    def begin(self) -> None:
        """Arm the event loop (idempotent; ``run`` calls it for you).

        The stepped protocol — ``begin()``, then ``step()`` until it
        returns ``False``, then ``finish()`` — is what ``run`` executes
        internally; ``repro.serve`` drives the same three methods one
        event at a time against a virtual clock, so online and batch
        execution share a single code path.
        """
        if self._begun:
            return
        self._begun = True
        self.cache_system.reset()
        self._next_sample = 0.0
        self._next_reschedule = 0.0

    def next_event_time(self) -> Optional[float]:
        """Earliest time the next event can happen (``None`` = never).

        Purely a peek: no state changes. ``repro.serve`` uses it to gate
        :meth:`step` against the virtual clock; the returned time is
        always an exact event time, so a gated driver advances the
        simulation in the same event-sized hops as :meth:`run` (float
        non-associativity makes arbitrary intermediate hops diverge).
        """
        if self._done():
            return None
        t_next = self._peek_next_time()
        return None if math.isinf(t_next) else t_next

    def _peek_next_time(self) -> float:
        """The batch loop's candidate sweep (``inf`` = nothing pending)."""
        candidates = [self._next_arrival_time()]
        if self._active:
            candidates.append(self._next_reschedule)
            candidates.append(self._next_sample)
            candidates.append(self._next_completion_time())
            candidates.append(self._next_epoch_boundary_time())
        if self._crash_times:
            candidates.append(max(self.clock_s, self._crash_times[0]))
        if self._loss_times:
            candidates.append(max(self.clock_s, self._loss_times[0]))
        if self._injector is not None:
            t_fault = self._injector.next_time()
            if t_fault is not None:
                candidates.append(max(self.clock_s, t_fault))
        if self._max_time_s is not None:
            candidates.append(self._max_time_s)
        return min(t for t in candidates if t is not None)

    def step(self, limit_s: Optional[float] = None) -> bool:
        """Process the next event; ``False`` when nothing (more) happened.

        With ``limit_s``, an event strictly beyond that virtual time is
        left unprocessed (and uncounted) — the online driver's gate. The
        ungated call sequence is exactly the body of the historical
        monolithic loop, including the ``loop_events`` accounting.
        """
        if self._done():
            return False
        t_next = self._peek_next_time()
        if limit_s is not None and t_next > limit_s + 1e-9:
            return False
        self.loop_events += 1
        if math.isinf(t_next):
            return False  # nothing can ever happen again
        self._advance_to(t_next)

        if self._max_time_s is not None and self.clock_s >= self._max_time_s:
            return False

        changed = False
        changed |= self._admit_arrivals()
        changed |= self._retire_completions()
        changed |= self._inject_faults()
        changed |= self._apply_fault_schedule()
        epoch_flip = self._promote_epoch_boundaries()

        if changed or self.clock_s >= self._next_reschedule:
            self._reschedule()
            self._next_reschedule = self.clock_s + self._reschedule_interval_s
        elif epoch_flip:
            self._storage_decide(trigger="epoch")
        self._slo.check(self.clock_s)

        if self.clock_s >= self._next_sample:
            self._sample()
            self._next_sample = self.clock_s + self._sample_interval_s
        return True

    def finish(self) -> RunResult:
        """Final sample + counters; returns the run's result."""
        self._sample()
        self._publish_counters()
        return self._result()

    # ------------------------------------------------------------------
    # Online mutation (``repro.serve``).
    # ------------------------------------------------------------------

    def submit_job(self, job: Job) -> None:
        """Inject a job into the pending trace (online admission).

        The job is inserted in ``(submit_time_s, job_id)`` order among
        the not-yet-admitted tail, so the admission sequence — and with
        it every order-sensitive downstream structure — is identical to
        a batch run whose trace contained the job from the start.
        """
        if job.job_id in self._known_ids:
            raise ValueError(f"duplicate job id {job.job_id!r}")
        self._known_ids.add(job.job_id)
        key = (job.submit_time_s, job.job_id)
        lo, hi = self._arrival_idx, len(self._trace)
        while lo < hi:
            mid = (lo + hi) // 2
            probe = self._trace[mid]
            if (probe.submit_time_s, probe.job_id) <= key:
                lo = mid + 1
            else:
                hi = mid
        self._trace.insert(lo, job)

    def cancel_job(self, job_id: str, reason: str = "user") -> bool:
        """Withdraw a job (online cancellation); ``True`` if it existed.

        A still-pending job is removed from the trace; an active one
        retires immediately as :attr:`JobPhase.CANCELLED` (no finish
        time) with its cache sharing dissolved, and the scheduler re-runs
        right away — membership changes always trigger a reschedule.
        """
        for idx in range(self._arrival_idx, len(self._trace)):
            if self._trace[idx].job_id == job_id:
                del self._trace[idx]
                self._slo.discard(job_id)
                if self._tracer.enabled:
                    self._tracer.job_cancel(
                        self.clock_s, job_id, reason=reason,
                        work_done_mb=0.0,
                    )
                return True
        progress = self._active.get(job_id)
        if progress is None:
            return False
        row = self._table.row_of(job_id)
        if row is not None:
            progress.work_done_mb = self._table.work_done_mb(row)
            self._table.retire(row)
        progress.phase = JobPhase.CANCELLED
        self._finished.append(progress)
        del self._active[job_id]
        self._blocked.discard(job_id)
        self._slo.discard(job_id)
        if self._tracer.enabled:
            self._tracer.job_cancel(
                self.clock_s, job_id, reason=reason,
                work_done_mb=progress.work_done_mb,
            )
        self._effective.pop(job_id, None)
        sharers = self._key_jobs.get(self._job_key.get(job_id))
        if sharers is not None and job_id in sharers:
            sharers.remove(job_id)
        if self.cache_system.per_job_keys:
            self._cache.pop(job_id)
        self._invalidate_epoch_view()
        self._reschedule()
        self._next_reschedule = self.clock_s + self._reschedule_interval_s
        return True

    def _publish_counters(self) -> None:
        """Push the run's loop/round totals into the obs registry.

        ``repro bench`` reads these through a fresh (disabled)
        ``NullTracer`` — counting costs nothing in the hot loop and the
        shared :data:`~repro.obs.tracer.NULL_TRACER` singleton is never
        written.
        """
        if self._tracer is NULL_TRACER:
            return
        self._tracer.metrics.inc("sim.events", float(self.loop_events))
        self._tracer.metrics.inc("sim.sched_rounds", float(self.sched_rounds))

    # ------------------------------------------------------------------
    # Event timing.
    # ------------------------------------------------------------------

    def _done(self) -> bool:
        return self._arrival_idx >= len(self._trace) and not self._active

    def _next_arrival_time(self) -> Optional[float]:
        if self._arrival_idx >= len(self._trace):
            return None
        return max(self.clock_s, self._trace[self._arrival_idx].submit_time_s)

    def _next_completion_time(self) -> float:
        return self._table.next_completion_time(self.clock_s)

    def _next_epoch_boundary_time(self) -> float:
        return self._table.next_epoch_boundary_time(self.clock_s)

    def _key_of(self, job: Job) -> str:
        """The job's cache key (precomputed at admission when possible)."""
        key = self._job_key.get(job.job_id)
        if key is None:
            key = self.cache_system.cache_key(job)
        return key

    # ------------------------------------------------------------------
    # Time advancement.
    # ------------------------------------------------------------------

    def _advance_to(self, t: float) -> None:
        dt = t - self.clock_s
        if dt <= 0:
            self.clock_s = max(self.clock_s, t)
            return
        # Job progress (one masked sweep over the job table).
        self._table.advance(dt)
        # Cache fill. A job's own misses are by definition items it has
        # not read this epoch and that are not effective for it, so they
        # are always *new* to the cache when the job is the key's only
        # filler: resident bytes grow linearly at the miss rate. When
        # several jobs share a key, an item missed by one may already
        # have been fetched by another; the duplicate probability is
        # approximated by the resident fraction, giving the exponential
        # ODE dR/dt = (d - R) * K with K = sum_j m_j / (d - eff_j).
        # Only jobs with a positive miss rate can fill, and that set is
        # fixed between rate recomputes — walk the precomputed list.
        store = self._cache
        tracer = self._tracer
        if tracer.enabled:
            # The tracing path walks every group scalar-wise so each
            # key's cache_admit event carries its exact before/after.
            for key, contribs in self._filler_groups:
                snap = store.snapshot(key)
                if snap is None:
                    continue
                size_mb, resident_mb, target_mb = snap
                if resident_mb >= target_mb - 1e-9:
                    continue
                contributions = [
                    (miss, self._effective.get(job_id, 0.0))
                    for job_id, miss in contribs
                ]
                cap = min(target_mb, size_mb)
                if len(contributions) == 1:
                    miss, _eff = contributions[0]
                    filled = resident_mb + miss * dt
                else:
                    k = sum(
                        miss / max(1e-9, size_mb - eff)
                        for miss, eff in contributions
                    )
                    filled = size_mb - (size_mb - resident_mb) * math.exp(
                        -k * dt
                    )
                before = resident_mb
                new_resident = min(cap, filled)
                store.set_resident_mb(key, new_resident)
                if new_resident - before > 1e-6:
                    tracer.cache_admit(
                        t,
                        key,
                        delta_mb=new_resident - before,
                        resident_mb=new_resident,
                        via="miss",
                    )
        else:
            # Single-filler keys: one store-level bulk plan (linear fill,
            # bit-identical to the scalar arithmetic above). The plan
            # caches the key->row resolution between rate recomputes and
            # reports staleness if the key set changed underneath.
            plan = self._fill_plan
            if plan is None:
                plan = self._build_fill_plan()
            if plan is not None and not store.run_fill_plan(plan, dt):
                # Keyset changed under the plan: re-resolve and retry.
                plan = self._build_fill_plan()
                if plan is not None:
                    store.run_fill_plan(plan, dt)
            # Shared keys solve the exponential ODE with math.exp — kept
            # scalar on purpose: np.exp is not guaranteed bit-identical
            # to libm's exp (see docs/PERFORMANCE.md).
            for key, contribs in self._filler_multis:
                snap = store.snapshot(key)
                if snap is None:
                    continue
                size_mb, resident_mb, target_mb = snap
                if resident_mb >= target_mb - 1e-9:
                    continue
                k = sum(
                    miss
                    / max(1e-9, size_mb - self._effective.get(job_id, 0.0))
                    for job_id, miss in contribs
                )
                filled = size_mb - (size_mb - resident_mb) * math.exp(
                    -k * dt
                )
                store.set_resident_mb(
                    key, min(min(target_mb, size_mb), filled)
                )
        # Hoard-style prefetching: spare egress warms queued datasets.
        if self._decision.prefetch_rates:
            for key, rate in self._decision.prefetch_rates.items():
                snap = store.snapshot(key)
                if snap is None or rate <= 0:
                    continue
                size_mb, resident_mb, target_mb = snap
                cap = min(target_mb, size_mb)
                before = resident_mb
                new_resident = min(cap, resident_mb + rate * dt)
                store.set_resident_mb(key, new_resident)
                if tracer.enabled and new_resident - before > 1e-6:
                    tracer.cache_admit(
                        t,
                        key,
                        delta_mb=new_resident - before,
                        resident_mb=new_resident,
                        via="prefetch",
                    )
        # New admissions may not push the pool past its capacity: data of
        # unallocated (stale) keys is reclaimed to make room, exactly as
        # a real cache evicts unpinned blocks on admission.
        self._reclaim_overshoot()
        self.clock_s = t

    # ------------------------------------------------------------------
    # Event handlers.
    # ------------------------------------------------------------------

    def _admit_arrivals(self) -> bool:
        changed = False
        while (
            self._arrival_idx < len(self._trace)
            and self._trace[self._arrival_idx].submit_time_s
            <= self.clock_s + 1e-9
        ):
            job = self._trace[self._arrival_idx]
            self._arrival_idx += 1
            self._active[job.job_id] = JobProgress(job=job)
            self._epochs_done[job.job_id] = 0
            self._table.admit(
                job.job_id, job.total_work_mb, job.dataset.size_mb
            )
            key = self.cache_system.cache_key(job)
            self._job_key[job.job_id] = key
            self._key_jobs.setdefault(key, []).append(job.job_id)
            if self._tracer.enabled:
                self._tracer.job_submit(
                    job.submit_time_s,
                    job.job_id,
                    model=job.model,
                    dataset=job.dataset.name,
                    num_gpus=job.num_gpus,
                    dataset_mb=job.dataset.size_mb,
                    total_work_mb=job.total_work_mb,
                    deadline_s=job.deadline_s,
                )
            self._slo.register(
                job.job_id, job.submit_time_s, job.deadline_s
            )
            changed = True
        if changed:
            self._invalidate_epoch_view()
        return changed

    def _retire_completions(self) -> bool:
        changed = False
        for row in self._table.completed_rows():
            job_id = self._table.job_id(row)
            progress = self._active[job_id]
            # Sync the (otherwise table-resident) work counter so the
            # progress object retires with its true final state.
            progress.work_done_mb = self._table.work_done_mb(row)
            progress.phase = JobPhase.FINISHED
            progress.finish_time_s = self.clock_s
            self._finished.append(progress)
            del self._active[job_id]
            self._table.retire(row)
            if self._tracer.enabled:
                # epoch_index counts completed epochs at this point
                # (unlike _epochs_done, which excludes the final
                # epoch — its boundary coincides with completion).
                self._tracer.job_finish(
                    self.clock_s,
                    job_id,
                    jct_s=self.clock_s - progress.job.submit_time_s,
                    epochs_done=progress.epoch_index,
                )
            self._slo.finish(job_id, self.clock_s)
            self._effective.pop(job_id, None)
            key = self._job_key.get(job_id)
            sharers = self._key_jobs.get(key)
            if sharers is not None:
                # The emptied list stays: it records "no active sharer"
                # and spares _scale_effective the O(active) fallback scan
                # every time this stale key is later shrunk/reclaimed.
                sharers.remove(job_id)
            if self.cache_system.per_job_keys:
                # Private caches die with their jobs.
                self._cache.pop(job_id)
            changed = True
        if changed:
            self._invalidate_epoch_view()
        return changed

    def _inject_faults(self) -> bool:
        """Apply any due fault-injection events (§6 fault tolerance)."""
        changed = False
        while self._crash_times and self._crash_times[0] <= self.clock_s + 1e-9:
            self._crash_times.pop(0)
            # In-memory cache-system state is gone; allocations and the
            # on-disk cache content survive. Recovery = a fresh schedule.
            self.cache_system.reset()
            changed = True
        while self._loss_times and self._loss_times[0] <= self.clock_s + 1e-9:
            self._loss_times.pop(0)
            n = max(1, len(self.cluster.servers))
            survival = (n - 1) / n
            # Churn is rare and touches every key once; the scan is fine.
            # lint: disable=PERF001
            for key in self._cache.keys():
                self._shrink(
                    key,
                    self._cache.resident_mb(key) * survival,
                    reason="server_loss",
                )
            changed = True
        return changed

    def _apply_fault_schedule(self) -> bool:
        """Apply due ``repro.faults`` schedule entries (churn model).

        Capacity changes take hold analytically at the event's exact
        time; returning ``True`` makes the caller re-run the scheduler,
        so SiloD re-allocates cache within the same round the fault
        lands in.
        """
        if self._injector is None:
            return False
        due = self._injector.pop_due(self.clock_s)
        if not due:
            return False
        for event in due:
            effect = self._injector.apply(event, self.clock_s)
            if effect.evict_fraction > 0:
                self._invalidate_fraction(
                    effect.evict_fraction, cause=event.kind
                )
            if effect.preempt_gpus > 0:
                victims = self._injector.select_victims(
                    {
                        job_id: self._allocation.gpus_of(job_id)
                        for job_id in self._active
                    },
                    effect.preempt_gpus,
                )
                for job_id in victims:
                    self._preempt_job(job_id, reason=event.kind)
            if event.kind == "job_preempt" and effect.job_id in self._active:
                self._blocked.add(effect.job_id)
                self._preempt_job(effect.job_id, reason=event.kind)
            elif event.kind == "job_restart":
                self._blocked.discard(effect.job_id)
                if self._tracer.enabled and effect.job_id in self._active:
                    self._tracer.job_restart(
                        self.clock_s,
                        effect.job_id,
                        reason=event.kind,
                        epoch=self._active[effect.job_id].epoch_index,
                    )
        self.total = self._injector.effective_total(self._base_total)
        self._reclaim_overshoot()
        return True

    def _invalidate_fraction(self, fraction: float, cause: str) -> None:
        """A fault destroyed ``fraction`` of every key's resident bytes.

        Even striping: every dataset loses the same share, and each
        job's effective bytes shrink in ratio (the lost items were a
        uniform sample of what it could hit).
        """
        ratio = max(0.0, 1.0 - fraction)
        tracer = self._tracer
        for key in sorted(self._cache.keys()):
            before = self._cache.resident_mb(key)
            if before <= 0:
                continue
            after = before * ratio
            self._cache.set_resident_mb(key, after)
            if tracer.enabled and before - after > 1e-6:
                tracer.cache_invalidate(
                    self.clock_s,
                    key,
                    delta_mb=before - after,
                    resident_mb=after,
                    cause=cause,
                )
            self._scale_effective(key, ratio)

    def _preempt_job(self, job_id: str, reason: str) -> None:
        """Epoch-granularity restart: roll back to the last boundary."""
        progress = self._active.get(job_id)
        if progress is None:
            return
        row = self._table.row_of(job_id)
        if row is not None:
            progress.work_done_mb = self._table.work_done_mb(row)
        rollback = progress.epoch_position_mb
        progress.work_done_mb = max(0.0, progress.work_done_mb - rollback)
        if row is not None:
            self._table.set_work_done_mb(row, progress.work_done_mb)
        if self._tracer.enabled:
            self._tracer.job_preempt(
                self.clock_s,
                job_id,
                reason=reason,
                rollback_mb=rollback,
                epoch=progress.epoch_index,
            )

    def _promote_epoch_boundaries(self) -> bool:
        """Detect epoch crossings; promote resident -> effective (§6)."""
        flipped = False
        for row, epochs_now in self._table.epoch_flips():
            job_id = self._table.job_id(row)
            job = self._active[job_id].job
            self._epochs_done[job_id] = epochs_now
            self._table.set_epochs_done(row, epochs_now)
            key = self._job_key[job_id]
            snap = self._cache.snapshot(key)
            resident = snap[1] if snap is not None else 0.0
            self._effective[job_id] = min(job.dataset.size_mb, resident)
            if self._tracer.enabled:
                self._tracer.epoch_boundary(
                    self.clock_s, job_id, epoch=epochs_now
                )
                self._tracer.promote_effective(
                    self.clock_s,
                    job_id,
                    key=key,
                    effective_mb=self._effective[job_id],
                    reason="epoch_boundary",
                )
            flipped = True
        return flipped

    # ------------------------------------------------------------------
    # Scheduling and storage decisions.
    # ------------------------------------------------------------------

    def _reschedule(self) -> None:
        self.sched_rounds += 1
        jobs = [
            p.job
            for p in self._active.values()
            if p.job.job_id not in self._blocked
        ]
        tracer = self._tracer
        old_gpus = dict(self._allocation.gpus) if tracer.enabled else {}
        self._allocation = self.scheduler.schedule(
            jobs,
            self.total,
            now_s=self.clock_s,
            effective_cache_mb=lambda job: self._effective.get(
                job.job_id, 0.0
            ),
            attained_service_s=self._attained_service_s,
            # The dict behind the lambda above, for the policies' per-job
            # hot loops (identical values by construction).
            effective_cache_map=self._effective,
        )
        # Mirror the round's generation placement into the job table's
        # gen column (trivially the reference generation on homogeneous
        # fleets); ``generation_of`` reads it back.
        generations = self.scheduler.last_generations
        default_gen = self.scheduler.default_generation
        for progress in self._active.values():
            job_id = progress.job.job_id
            row = self._table.row_of(job_id)
            if row is not None:
                self._table.set_generation(
                    row, generations.get(job_id, default_gen)
                )
        self._invalidate_epoch_view()
        if tracer.enabled:
            start_candidates = self._active.values()
        else:
            # Only granted jobs can start; walking the (short) grant dict
            # beats scanning the whole active set. State outcomes are
            # identical — starts are independent per job — but the
            # traced path keeps active-set order for stable event order.
            start_candidates = [
                self._active[job_id]
                for job_id, gpus in self._allocation.gpus.items()
                if gpus > 0 and job_id in self._active
            ]
        for progress in start_candidates:
            job_id = progress.job.job_id
            if self._allocation.gpus_of(job_id) > 0:
                if progress.start_time_s is None:
                    progress.start_time_s = self.clock_s
                    progress.phase = JobPhase.RUNNING
                    # A freshly started job immediately benefits from data
                    # already resident for its dataset (sharing, §7.3).
                    key = self._key_of(progress.job)
                    snap = self._cache.snapshot(key)
                    self._effective[job_id] = min(
                        progress.job.dataset.size_mb,
                        snap[1] if snap is not None else 0.0,
                    )
                    if tracer.enabled:
                        tracer.job_start(
                            self.clock_s,
                            job_id,
                            gpus=self._allocation.gpus_of(job_id),
                            queue_delay_s=self.clock_s
                            - progress.job.submit_time_s,
                        )
                        tracer.promote_effective(
                            self.clock_s,
                            job_id,
                            key=key,
                            effective_mb=self._effective[job_id],
                            reason="job_start",
                        )
        if tracer.enabled:
            seen = set(old_gpus) | set(self._allocation.gpus)
            for job_id in sorted(seen):
                if job_id not in self._active:
                    continue
                before = old_gpus.get(job_id, 0.0)
                after = self._allocation.gpus_of(job_id)
                if abs(before - after) > 1e-9:
                    tracer.alloc_change(
                        self.clock_s,
                        job_id,
                        gpus_before=before,
                        gpus_after=after,
                    )
        self._storage_decide()

    def _attained_service_s(self, job: Job) -> float:
        """GPU-seconds of service the job has attained (for LAS).

        Derived from progress: ``work_done / f*`` is the compute time the
        job has effectively received at its requested GPU count.
        """
        progress = self._active.get(job.job_id)
        if progress is None or job.ideal_throughput_mbps <= 0:
            return 0.0
        row = self._table.row_of(job.job_id)
        work_done_mb = (
            self._table.work_done_mb(row)
            if row is not None
            else progress.work_done_mb
        )
        return work_done_mb / job.ideal_throughput_mbps * job.num_gpus

    def generation_of(self, job_id: str) -> Optional[str]:
        """The GPU generation ``job_id`` is currently placed on.

        Read from the job table's gen column; ``None`` before the job's
        first scheduling round (or for unknown ids).
        """
        row = self._table.row_of(job_id)
        if row is None:
            return None
        return self._table.generation(row)

    def _running_jobs(self) -> List[Job]:
        return [
            p.job
            for p in self._active.values()
            if self._allocation.gpus_of(p.job.job_id) > 0
        ]

    def _invalidate_epoch_view(self) -> None:
        """Drop per-epoch gathers (membership/allocation changed)."""
        self._epoch = None
        self._targets_plan = None

    def _epoch_view(self) -> _EpochView:
        """The current allocation epoch's job gathers (built lazily)."""
        view = self._epoch
        if view is not None:
            return view
        view = _EpochView()
        allocation = self._allocation
        gpu_map = allocation.gpus
        running: List[Job] = []
        queued: List[Job] = []
        for progress in self._active.values():
            job = progress.job
            if gpu_map.get(job.job_id, 0.0) > 0:
                running.append(job)
            else:
                queued.append(job)
        job_ids = [job.job_id for job in running]
        table = self._table
        view.running = running
        view.job_ids = job_ids
        view.queued = queued
        view.rows = [table.row_of(job_id) for job_id in job_ids]
        view.gpu_grants = dict(gpu_map)
        f_stars = self.scheduler.estimator.compute_bound_batch(
            running, [gpu_map.get(job_id, 0.0) for job_id in job_ids]
        )
        view.f_stars = f_stars
        rates_arr = size_arr = io_alloc_arr = None
        view.keys_list = view.key_codes = view.job_keys = None
        view.store_rows = None
        view.store_rows_version = -1
        if numpy_enabled() and running:
            np = require_numpy()
            n = len(running)
            rates_arr = np.asarray(f_stars, float)
            size_arr = np.fromiter(
                (job.dataset.size_mb for job in running), float, count=n
            )
            io_map = allocation.remote_io
            io_alloc_arr = np.fromiter(
                (io_map.get(job_id, 0.0) for job_id in job_ids),
                float,
                count=n,
            )
            # Key identity per running job, encoded as small ints so the
            # rate recompute can group fillers by key without a per-job
            # Python loop.
            key_index: Dict[str, int] = {}
            keys_list: List[str] = []
            job_keys: List[str] = []
            codes: List[int] = []
            for job in running:
                key = self._key_of(job)
                job_keys.append(key)
                code = key_index.get(key)
                if code is None:
                    code = len(keys_list)
                    key_index[key] = code
                    keys_list.append(key)
                codes.append(code)
            view.keys_list = keys_list
            view.key_codes = np.asarray(codes, dtype=np.intp)
            view.job_keys = job_keys
        # The positive-grant filter every decide would rebuild; the
        # epoch's decisions share this one dict (read-only per the
        # hints contract).
        targets = {
            name: cache_mb
            for name, cache_mb in allocation.cache.items()
            if cache_mb > 0
        }
        view.hints = StorageBatchHints(
            job_ids=job_ids,
            rates=f_stars,
            effective=self._effective,
            rates_arr=rates_arr,
            size_arr=size_arr,
            io_alloc_arr=io_alloc_arr,
            targets=targets,
        )
        self._epoch = view
        return view

    def _storage_decide(self, trigger: str = "reschedule") -> None:
        self.decision_rounds += 1
        view = self._epoch_view()
        ctx = StorageContext(
            running_jobs=view.running,
            gpu_grants=view.gpu_grants,
            total_gpus=self.total.gpus,
            total_cache_mb=self.total.cache_mb,
            total_io_mbps=self.total.remote_io_mbps,
            effective_mb=lambda job: self._effective.get(job.job_id, 0.0),
            first_epoch_done=lambda job: self._epochs_done.get(
                job.job_id, 0
            )
            > 0,
            estimator=self.scheduler.estimator,
            clock_s=self.clock_s,
            scheduler_allocation=self._allocation,
            queued_jobs=view.queued,
            tracer=self._tracer,
            batch=view.hints,
        )
        self._decision = self.cache_system.reallocate(ctx)
        self._apply_targets()
        self._recompute_rates(view.running)
        if self._tracer.enabled:
            emit_decision_provenance(
                self._tracer,
                self.clock_s,
                self.decision_rounds,
                trigger,
                view.running,
                len(view.queued),
                self.total.gpus,
                self.total.cache_mb,
                self.total.remote_io_mbps,
                view.gpu_grants,
                self._key_of,
                self._decision.cache_targets,
                self._decision.hit_ratios,
                self._decision.io_grants,
                dict(zip(view.job_ids, view.f_stars)),
                lambda job: self._effective.get(job.job_id, 0.0),
                self.scheduler.last_scores,
                generations=self.scheduler.last_generations,
                gen_f_stars=self.scheduler.last_gen_scores,
                default_generation=self.scheduler.default_generation,
            )

    def _apply_targets(self) -> None:
        targets = self._decision.cache_targets
        store = self._cache
        cached = self._targets_plan
        if cached is not None and cached[0] == targets:
            # Same decision against the same key set: replay the
            # store-prepared plan (clear_targets_except is a no-op — no
            # key gained a target since the full application below).
            over = store.apply_targets_prepared(cached[1])
            if over is not None:
                for key, new_target in over:
                    self._shrink(key, new_target)
                self._reclaim_overshoot()
                return
        # Dataset size per targeted key, from its most recently admitted
        # active sharer — the job whose write would win the historical
        # full scan over the active set.
        sizes = {}
        for key in targets:
            sharers = self._key_jobs.get(key)
            if sharers:
                sizes[key] = self._active[
                    sharers[-1]
                ].job.dataset.size_mb
        # Keys the current decision does not mention are unallocated:
        # their target drops to zero so the oversubscription pass below
        # can reclaim them. Their data stays resident opportunistically
        # until that happens (uniform caching never evicts eagerly).
        self._cache.clear_targets_except(targets)
        plan = store.prepare_targets(targets, sizes)
        self._targets_plan = (dict(targets), plan)
        for key, new_target in store.apply_targets_prepared(plan) or ():
            self._shrink(key, new_target)
        # Keys without a current target keep their data only while the
        # total pool is not oversubscribed (uniform caching never evicts
        # eagerly); stale keys are evicted first when space is needed.
        self._reclaim_overshoot()

    def _reclaim_overshoot(self) -> None:
        """Keep total resident bytes within the pool capacity.

        Over-target keys (stale data first — smallest targets) are shrunk
        until the pool fits; if every key is exactly at target and the
        targets themselves oversubscribe (a misbehaving cache system),
        everything is scaled back proportionally as a backstop.
        """
        store = self._cache
        overshoot = store.total_resident_mb() - self.total.cache_mb
        if overshoot <= 1e-6:
            return
        # The store pre-filters to over-resident keys in stale-first
        # order; the cut sequence stays a Python loop because the
        # running `overshoot -= cut` subtraction chain is order- and
        # rounding-sensitive.
        for key, resident_mb, target_mb in store.reclaim_candidates():
            cut = min(resident_mb - target_mb, overshoot)
            self._shrink(key, resident_mb - cut, reason="reclaim")
            overshoot -= cut
            if overshoot <= 1e-6:
                return
        if overshoot > 1e-6:
            total = store.total_resident_mb()
            if total > 0:
                factor = self.total.cache_mb / total
                # Proportional backstop: already off-nominal, full scan.
                # lint: disable=PERF001
                for key in store.keys():
                    self._shrink(
                        key,
                        store.resident_mb(key) * factor,
                        reason="reclaim",
                    )

    def _shrink(
        self,
        key: str,
        new_mb: float,
        reason: str = "target_shrink",
    ) -> None:
        """Random eviction to ``new_mb``: effectiveness shrinks in ratio."""
        before = self._cache.resident_mb(key)
        if before <= 0:
            return
        ratio = max(0.0, new_mb) / before
        after = max(0.0, new_mb)
        self._cache.set_resident_mb(key, after)
        if self._tracer.enabled and before - after > 1e-6:
            self._tracer.cache_evict(
                self.clock_s,
                key,
                delta_mb=before - after,
                resident_mb=after,
                reason=reason,
            )
        self._scale_effective(key, ratio)

    def _scale_effective(self, key: str, ratio: float) -> None:
        """Shrink every sharer's effective bytes after a random eviction."""
        job_ids = self._key_jobs.get(key)
        if job_ids is None:
            # No admitted sharer tracks this key (e.g. state injected by
            # white-box tests): fall back to scanning the active set.
            job_ids = [
                p.job.job_id
                for p in self._active.values()
                if self._key_of(p.job) == key
            ]
        for job_id in job_ids:
            self._effective[job_id] = (
                self._effective.get(job_id, 0.0) * ratio
            )

    def _recompute_rates(self, running: Sequence[Job]) -> None:
        table = self._table
        table.clear_rates()
        view = self._epoch
        if view is not None and view.running is running:
            # The per-epoch gathers cover exactly this job list.
            running = view.running
            f_stars = view.f_stars
            job_ids = view.job_ids
            rows = view.rows
            f_arr = view.hints.rates_arr
        else:
            view = None
            running = list(running)
            f_stars = self.scheduler.estimator.compute_bound_batch(
                running,
                [self._allocation.gpus_of(job.job_id) for job in running],
            )
            job_ids = [job.job_id for job in running]
            rows = [table.row_of(job_id) for job_id in job_ids]
            f_arr = None
        hit_ratios = self._decision.hit_ratios
        io_grants = self._decision.io_grants
        n = len(running)
        groups: Dict[str, List[Tuple[str, float]]] = {}
        if table.backend == "vectorized" and n >= 8:
            np = require_numpy()
            if f_arr is None:
                f_arr = np.asarray(f_stars, float)
            batch = self._decision.batch
            if batch is not None and batch.job_ids is job_ids:
                # The decision's columnar mirror is aligned with this
                # epoch's job list — skip the dict gathers entirely.
                hit_src = batch.hit_arr
                grant = batch.io_grant_arr
            else:
                hit_src = np.fromiter(
                    (hit_ratios.get(jid, 0.0) for jid in job_ids),
                    float,
                    count=n,
                )
                grant = np.fromiter(
                    (io_grants.get(jid, 0.0) for jid in job_ids),
                    float,
                    count=n,
                )
            hit = np.minimum(1.0, np.maximum(0.0, hit_src))
            miss = 1.0 - hit
            # Same selection as the scalar branch below: the division's
            # inf/nan where miss vanishes is discarded by the where().
            with np.errstate(divide="ignore", invalid="ignore"):
                io_rate = grant / miss
            rate_arr = np.where(
                miss <= 1e-12, f_arr, np.minimum(f_arr, io_rate)
            )
            miss_arr = rate_arr * miss
            table.set_rates_bulk(rows, rate_arr, miss_arr)
            if (
                view is not None
                and view.key_codes is not None
                and not self._tracer.enabled
                and self._cache.backend == "vectorized"
            ):
                # Columnar grouping: count positive-miss fillers per key
                # with bincount; single-filler keys become the fill
                # plan's (code, rate) columns directly, shared keys drop
                # to the (short) scalar exponential list. No events are
                # emitted in this mode, so ``_filler_groups`` (the
                # traced walk's structure) stays empty.
                codes = view.key_codes
                pos = np.nonzero(miss_arr > 0)[0]
                singles_codes = rates_of_singles = None
                multis: Dict[str, List[Tuple[str, float]]] = {}
                if pos.size:
                    counts = np.bincount(
                        codes[pos], minlength=len(view.keys_list)
                    )
                    sharers = counts[codes[pos]]
                    single_i = pos[sharers == 1]
                    if single_i.size:
                        singles_codes = codes[single_i]
                        rates_of_singles = miss_arr[single_i]
                    multi_i = pos[sharers > 1]
                    if multi_i.size:
                        job_keys = view.job_keys
                        for i, miss_rate in zip(
                            multi_i.tolist(),
                            miss_arr[multi_i].tolist(),
                        ):
                            multis.setdefault(job_keys[i], []).append(
                                (job_ids[i], miss_rate)
                            )
                self._filler_groups = []
                self._filler_singles = []
                self._filler_multis = list(multis.items())
                self._fill_src = (
                    (view, singles_codes, rates_of_singles)
                    if singles_codes is not None
                    else None
                )
                self._fill_plan = None
                return
            miss_list = miss_arr.tolist()
            for i in np.nonzero(miss_arr > 0)[0].tolist():
                job_id = job_ids[i]
                groups.setdefault(self._job_key[job_id], []).append(
                    (job_id, miss_list[i])
                )
        else:
            rates: List[float] = []
            miss_rates: List[float] = []
            for job_id, f_star in zip(job_ids, f_stars):
                hit = min(1.0, max(0.0, hit_ratios.get(job_id, 0.0)))
                miss = 1.0 - hit
                grant = io_grants.get(job_id, 0.0)
                if miss <= 1e-12:
                    rate = f_star
                else:
                    rate = min(f_star, grant / miss)
                miss_rate = rate * miss
                rates.append(rate)
                miss_rates.append(miss_rate)
                if miss_rate > 0:
                    groups.setdefault(self._job_key[job_id], []).append(
                        (job_id, miss_rate)
                    )
            table.set_rates_bulk(rows, rates, miss_rates)
        # Only these jobs can fill the cache until the next recompute;
        # _advance_to walks this per-key grouping (keys in first-filler
        # order, contributions in running order) instead of the whole
        # active set. Single-filler keys (linear fill) additionally get
        # a store-level bulk plan; shared keys keep the scalar
        # exponential path.
        self._filler_groups = list(groups.items())
        singles: List[Tuple[str, float]] = []
        multis: List[Tuple[str, List[Tuple[str, float]]]] = []
        for key, contribs in self._filler_groups:
            if len(contribs) == 1:
                singles.append((key, contribs[0][1]))
            else:
                multis.append((key, contribs))
        self._filler_singles = singles
        self._filler_multis = multis
        self._fill_src = None
        self._fill_plan = None

    def _build_fill_plan(self):
        """Assemble the store fill plan for the current single fillers.

        The columnar source resolves key codes to store rows through the
        epoch view's (keyset-versioned) row cache — missing keys are
        dropped exactly as ``make_fill_plan`` skips them; the pair-list
        source delegates to the store. Returns ``None`` when there is
        nothing to fill.
        """
        store = self._cache
        src = self._fill_src
        if src is not None:
            view, codes, rates = src
            if (
                view.store_rows is None
                or view.store_rows_version != store.keyset_version
            ):
                view.store_rows_version, view.store_rows = (
                    store.resolve_fill_rows(view.keys_list)
                )
            rows = view.store_rows[codes]
            found = rows >= 0
            if not found.all():
                rows = rows[found]
                rates = rates[found]
            plan = store.fill_plan_from_rows(
                view.store_rows_version, rows, rates
            )
        elif self._filler_singles:
            plan = store.make_fill_plan(self._filler_singles)
        else:
            plan = None
        self._fill_plan = plan
        return plan

    # ------------------------------------------------------------------
    # Sampling and results.
    # ------------------------------------------------------------------

    def _sample(self) -> None:
        view = self._epoch_view()
        running = view.running
        table = self._table
        estimator = self.scheduler.estimator
        ideal = sum(view.f_stars)
        throughput: Dict[str, float] = {}
        miss_rate: Dict[str, float] = {}
        for job, row in zip(running, view.rows):
            if row is not None:
                throughput[job.job_id] = table.rate(row)
                miss_rate[job.job_id] = table.miss_rate(row)
        achieved = sum(throughput.get(j.job_id, 0.0) for j in running)
        io_used = sum(miss_rate.get(j.job_id, 0.0) for j in running)
        mature = [
            job
            for job in running
            if self._epochs_done.get(job.job_id, 0) > 0
        ]
        fairness = fairness_ratio(
            mature,
            throughput,
            self.total,
            estimator,
            storage_aware=True,
            num_jobs=len(running),
        )
        # Figure 8's view: bytes allocated to *running* jobs (stale data
        # of departed jobs lingers but is not "allocated") vs the bytes
        # their jobs can actually hit.
        live_keys = {self._key_of(job) for job in running}
        resident = sum(
            self._cache.resident_mb(key)
            for key in self._cache.keys()
            if key in live_keys
        )
        by_key: Dict[str, float] = {}
        for job in running:
            key = self._key_of(job)
            by_key[key] = max(
                by_key.get(key, 0.0), self._effective.get(job.job_id, 0.0)
            )
        effective = sum(by_key.values())
        self._timeline.append(
            TimelineSample(
                time_s=self.clock_s,
                running_jobs=len(running),
                queued_jobs=len(self._active) - len(running),
                total_throughput_mbps=achieved,
                ideal_throughput_mbps=ideal,
                remote_io_used_mbps=io_used,
                fairness_ratio=fairness,
                resident_cache_mb=resident,
                effective_cache_mb=effective,
            )
        )

    def _result(self) -> RunResult:
        records = []
        all_progress = self._finished + list(self._active.values())
        for progress in sorted(
            all_progress, key=lambda p: p.job.submit_time_s
        ):
            job = progress.job
            records.append(
                JobRecord(
                    job_id=job.job_id,
                    model=job.model,
                    dataset=job.dataset.name,
                    num_gpus=job.num_gpus,
                    submit_time_s=job.submit_time_s,
                    start_time_s=progress.start_time_s,
                    finish_time_s=progress.finish_time_s,
                )
            )
        return RunResult(
            scheduler_name=self.scheduler.policy.name,
            cache_name=self.cache_system.name,
            records=records,
            timeline=self._timeline,
            end_time_s=self.clock_s,
        )
