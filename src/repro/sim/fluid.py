"""Fluid event-driven cluster simulator.

This is the reproduction's analog of the paper's ~5.2 kLoC Go simulator
(§7.2). Instead of simulating every mini-batch, it exploits the property
SiloDPerf itself rests on: between *events*, every job's throughput is
constant, so the simulator advances analytically from event to event.

Events
------
* **job arrival / completion / reschedule tick** — the scheduling policy
  runs and produces a fresh joint allocation;
* **epoch boundary** — a job's newly cached items become effective (§6
  "delayed effectiveness") and the storage decision (hit ratios, IO
  grants, placement targets) is recomputed without re-running the policy;
* **sample tick** — a timeline sample is recorded.

Cache dynamics
--------------
Resident bytes per cache key fill at the jobs' miss rates (solving the
exact exponential ODE when sharing jobs may re-fetch already-resident
items), are capped at the system's placement target, and are evicted
randomly (proportional effectiveness loss) when a target shrinks. A job's
*effective* bytes are promoted to the key's resident bytes at each of its
epoch boundaries, and initialised from resident bytes when it starts —
which is how dataset sharing pays off immediately (§7.3).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence

from repro.cache.base import CacheSystem, StorageContext, StorageDecision
from repro.cluster.hardware import Cluster
from repro.cluster.job import Job, JobPhase, JobProgress
from repro.core.policies.gavel import fairness_ratio
from repro.core.resources import Allocation, ResourceVector
from repro.core.silod import SiloDScheduler
from repro.faults.injector import FaultInjector
from repro.faults.spec import ScheduleLike, as_schedule
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.metrics import JobRecord, RunResult, TimelineSample

#: Work below this many MB counts as "done" (guards float drift).
_WORK_EPS_MB = 1e-3
#: Rate below this many MB/s counts as "stalled".
_RATE_EPS = 1e-9


@dataclasses.dataclass
class _CacheKeyState:
    """Resident bytes and placement target for one cache key."""

    size_mb: float  # dataset size (fill ceiling)
    resident_mb: float = 0.0
    target_mb: float = 0.0


class FluidSimulator:
    """Simulate a (scheduler, cache system) pair over a job trace.

    Parameters
    ----------
    cluster:
        Hardware: GPUs, aggregate cache pool, egress limit.
    scheduler:
        A :class:`SiloDScheduler` (wrap any policy; set
        ``storage_aware=False`` for the decoupled baselines).
    cache_system:
        The cache subsystem enforcing (or deciding) storage.
    jobs:
        The trace. Jobs must have distinct ids.
    reschedule_interval_s:
        Cadence of periodic policy reruns between arrivals/completions.
    sample_interval_s:
        Cadence of timeline samples.
    max_time_s:
        Hard stop; unfinished jobs are reported with no finish time.
    data_manager_crash_times_s:
        Fault injection (§6): at each time the data manager crashes and
        recovers — allocations are reconstructed from the (durable)
        scheduler state and cache content survives on local disk, but any
        in-memory cache-system state (e.g. Quiver's online profiles) is
        lost and a full re-schedule runs.
    server_loss_times_s:
        Fault injection: at each time one server is lost outright; with
        even striping, ``1/num_servers`` of every dataset's resident and
        effective bytes disappear (a *restart* would lose nothing — the
        content is on disk — so this is the harsher case).
    faults:
        A :class:`repro.faults.FaultSchedule` (or sequence of
        :class:`~repro.faults.FaultEvent`) driving the full churn model:
        server crash/recover with job preemption and cache-shard
        invalidation, cache-node loss, bandwidth flaps, and explicit job
        preempt/restart. Events are applied analytically at their exact
        times and every application triggers a reschedule round. An
        empty/absent schedule is a strict no-op. See ``docs/FAULTS.md``.
    tracer:
        Structured-event sink (``repro.obs``). When given, the simulator
        emits the full event schema (job lifecycle, epoch boundaries,
        effectiveness promotions, cache admissions/evictions, allocation
        changes) and propagates the tracer to the scheduler and cache
        system. ``None`` (default) keeps the free no-op tracer.
    """

    def __init__(
        self,
        cluster: Cluster,
        scheduler: SiloDScheduler,
        cache_system: CacheSystem,
        jobs: Sequence[Job],
        reschedule_interval_s: float = 600.0,
        sample_interval_s: float = 600.0,
        max_time_s: Optional[float] = None,
        data_manager_crash_times_s: Sequence[float] = (),
        server_loss_times_s: Sequence[float] = (),
        faults: ScheduleLike = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        ids = [job.job_id for job in jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("job ids must be unique")
        self.cluster = cluster
        self.scheduler = scheduler
        self.cache_system = cache_system
        self._tracer = tracer if tracer is not None else NULL_TRACER
        if tracer is not None:
            scheduler.tracer = tracer
        self.total = ResourceVector(
            gpus=cluster.total_gpus,
            cache_mb=cluster.total_cache_mb,
            remote_io_mbps=cluster.remote_io_mbps,
        )
        self._trace = sorted(jobs, key=lambda j: (j.submit_time_s, j.job_id))
        self._reschedule_interval_s = reschedule_interval_s
        self._sample_interval_s = sample_interval_s
        self._max_time_s = max_time_s
        self._crash_times = sorted(data_manager_crash_times_s)
        self._loss_times = sorted(server_loss_times_s)
        schedule = as_schedule(faults)
        self._injector = (
            FaultInjector(schedule, cluster, tracer=self._tracer)
            if schedule is not None
            else None
        )
        #: The pristine capacity vector churn is measured against; when a
        #: fault schedule is active, ``self.total`` is rebuilt from it.
        self._base_total = self.total
        #: Jobs held out of scheduling by an explicit ``job_preempt``.
        self._blocked: set = set()

        self.clock_s = 0.0
        self._arrival_idx = 0
        self._active: Dict[str, JobProgress] = {}
        self._finished: List[JobProgress] = []
        self._cache: Dict[str, _CacheKeyState] = {}
        self._effective: Dict[str, float] = {}
        self._epochs_done: Dict[str, int] = {}
        self._allocation = Allocation()
        self._decision = StorageDecision({}, {}, {})
        self._throughput: Dict[str, float] = {}
        self._miss_rate: Dict[str, float] = {}
        self._timeline: List[TimelineSample] = []

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        """Run to completion (or ``max_time_s``) and return the result."""
        self.cache_system.reset()
        next_sample = 0.0
        next_reschedule = 0.0
        max_events = 20_000_000
        for _ in range(max_events):
            if self._done():
                break
            candidates = [self._next_arrival_time()]
            if self._active:
                candidates.append(next_reschedule)
                candidates.append(next_sample)
                candidates.append(self._next_completion_time())
                candidates.append(self._next_epoch_boundary_time())
            if self._crash_times:
                candidates.append(max(self.clock_s, self._crash_times[0]))
            if self._loss_times:
                candidates.append(max(self.clock_s, self._loss_times[0]))
            if self._injector is not None:
                t_fault = self._injector.next_time()
                if t_fault is not None:
                    candidates.append(max(self.clock_s, t_fault))
            if self._max_time_s is not None:
                candidates.append(self._max_time_s)
            t_next = min(t for t in candidates if t is not None)
            if math.isinf(t_next):
                break  # nothing can ever happen again
            self._advance_to(t_next)

            if self._max_time_s is not None and self.clock_s >= self._max_time_s:
                break

            changed = False
            changed |= self._admit_arrivals()
            changed |= self._retire_completions()
            changed |= self._inject_faults()
            changed |= self._apply_fault_schedule()
            epoch_flip = self._promote_epoch_boundaries()

            if changed or self.clock_s >= next_reschedule:
                self._reschedule()
                next_reschedule = self.clock_s + self._reschedule_interval_s
            elif epoch_flip:
                self._storage_decide()

            if self.clock_s >= next_sample:
                self._sample()
                next_sample = self.clock_s + self._sample_interval_s
        else:
            raise RuntimeError("fluid simulation exceeded the event budget")
        self._sample()
        return self._result()

    # ------------------------------------------------------------------
    # Event timing.
    # ------------------------------------------------------------------

    def _done(self) -> bool:
        return self._arrival_idx >= len(self._trace) and not self._active

    def _next_arrival_time(self) -> Optional[float]:
        if self._arrival_idx >= len(self._trace):
            return None
        return max(self.clock_s, self._trace[self._arrival_idx].submit_time_s)

    def _next_completion_time(self) -> float:
        best = math.inf
        for progress in self._active.values():
            rate = self._throughput.get(progress.job.job_id, 0.0)
            if rate > _RATE_EPS:
                best = min(best, self.clock_s + progress.remaining_work_mb / rate)
        return best

    def _next_epoch_boundary_time(self) -> float:
        best = math.inf
        for progress in self._active.values():
            rate = self._throughput.get(progress.job.job_id, 0.0)
            if rate <= _RATE_EPS:
                continue
            to_boundary = progress.work_to_epoch_boundary_mb
            if to_boundary < progress.remaining_work_mb - _WORK_EPS_MB:
                best = min(best, self.clock_s + to_boundary / rate)
        return best

    # ------------------------------------------------------------------
    # Time advancement.
    # ------------------------------------------------------------------

    def _advance_to(self, t: float) -> None:
        dt = t - self.clock_s
        if dt <= 0:
            self.clock_s = max(self.clock_s, t)
            return
        # Job progress.
        for progress in self._active.values():
            rate = self._throughput.get(progress.job.job_id, 0.0)
            if rate > _RATE_EPS:
                progress.advance(rate * dt)
        # Cache fill. A job's own misses are by definition items it has
        # not read this epoch and that are not effective for it, so they
        # are always *new* to the cache when the job is the key's only
        # filler: resident bytes grow linearly at the miss rate. When
        # several jobs share a key, an item missed by one may already
        # have been fetched by another; the duplicate probability is
        # approximated by the resident fraction, giving the exponential
        # ODE dR/dt = (d - R) * K with K = sum_j m_j / (d - eff_j).
        fillers: Dict[str, List] = {}
        for progress in self._active.values():
            job = progress.job
            miss = self._miss_rate.get(job.job_id, 0.0)
            if miss <= _RATE_EPS:
                continue
            key = self.cache_system.cache_key(job)
            state = self._cache.get(key)
            if state is None or state.resident_mb >= state.target_mb - 1e-9:
                continue
            fillers.setdefault(key, []).append(
                (miss, self._effective.get(job.job_id, 0.0))
            )
        tracer = self._tracer
        for key, contributions in fillers.items():
            state = self._cache[key]
            cap = min(state.target_mb, state.size_mb)
            if len(contributions) == 1:
                miss, _eff = contributions[0]
                filled = state.resident_mb + miss * dt
            else:
                k = sum(
                    miss / max(1e-9, state.size_mb - eff)
                    for miss, eff in contributions
                )
                filled = state.size_mb - (
                    state.size_mb - state.resident_mb
                ) * math.exp(-k * dt)
            before = state.resident_mb
            state.resident_mb = min(cap, filled)
            if tracer.enabled and state.resident_mb - before > 1e-6:
                tracer.cache_admit(
                    t,
                    key,
                    delta_mb=state.resident_mb - before,
                    resident_mb=state.resident_mb,
                    via="miss",
                )
        # Hoard-style prefetching: spare egress warms queued datasets.
        for key, rate in self._decision.prefetch_rates.items():
            state = self._cache.get(key)
            if state is None or rate <= 0:
                continue
            cap = min(state.target_mb, state.size_mb)
            before = state.resident_mb
            state.resident_mb = min(cap, state.resident_mb + rate * dt)
            if tracer.enabled and state.resident_mb - before > 1e-6:
                tracer.cache_admit(
                    t,
                    key,
                    delta_mb=state.resident_mb - before,
                    resident_mb=state.resident_mb,
                    via="prefetch",
                )
        # New admissions may not push the pool past its capacity: data of
        # unallocated (stale) keys is reclaimed to make room, exactly as
        # a real cache evicts unpinned blocks on admission.
        self._reclaim_overshoot()
        self.clock_s = t

    # ------------------------------------------------------------------
    # Event handlers.
    # ------------------------------------------------------------------

    def _admit_arrivals(self) -> bool:
        changed = False
        while (
            self._arrival_idx < len(self._trace)
            and self._trace[self._arrival_idx].submit_time_s
            <= self.clock_s + 1e-9
        ):
            job = self._trace[self._arrival_idx]
            self._arrival_idx += 1
            self._active[job.job_id] = JobProgress(job=job)
            self._epochs_done[job.job_id] = 0
            if self._tracer.enabled:
                self._tracer.job_submit(
                    job.submit_time_s,
                    job.job_id,
                    model=job.model,
                    dataset=job.dataset.name,
                    num_gpus=job.num_gpus,
                    dataset_mb=job.dataset.size_mb,
                    total_work_mb=job.total_work_mb,
                )
            changed = True
        return changed

    def _retire_completions(self) -> bool:
        changed = False
        for job_id in list(self._active):
            progress = self._active[job_id]
            if progress.remaining_work_mb <= _WORK_EPS_MB:
                progress.phase = JobPhase.FINISHED
                progress.finish_time_s = self.clock_s
                self._finished.append(progress)
                del self._active[job_id]
                if self._tracer.enabled:
                    # epoch_index counts completed epochs at this point
                    # (unlike _epochs_done, which excludes the final
                    # epoch — its boundary coincides with completion).
                    self._tracer.job_finish(
                        self.clock_s,
                        job_id,
                        jct_s=self.clock_s - progress.job.submit_time_s,
                        epochs_done=progress.epoch_index,
                    )
                self._effective.pop(job_id, None)
                self._throughput.pop(job_id, None)
                self._miss_rate.pop(job_id, None)
                if self.cache_system.per_job_keys:
                    # Private caches die with their jobs.
                    self._cache.pop(job_id, None)
                changed = True
        return changed

    def _inject_faults(self) -> bool:
        """Apply any due fault-injection events (§6 fault tolerance)."""
        changed = False
        while self._crash_times and self._crash_times[0] <= self.clock_s + 1e-9:
            self._crash_times.pop(0)
            # In-memory cache-system state is gone; allocations and the
            # on-disk cache content survive. Recovery = a fresh schedule.
            self.cache_system.reset()
            changed = True
        while self._loss_times and self._loss_times[0] <= self.clock_s + 1e-9:
            self._loss_times.pop(0)
            n = max(1, len(self.cluster.servers))
            survival = (n - 1) / n
            for key, state in self._cache.items():
                self._shrink(
                    key,
                    state,
                    state.resident_mb * survival,
                    reason="server_loss",
                )
            changed = True
        return changed

    def _apply_fault_schedule(self) -> bool:
        """Apply due ``repro.faults`` schedule entries (churn model).

        Capacity changes take hold analytically at the event's exact
        time; returning ``True`` makes the caller re-run the scheduler,
        so SiloD re-allocates cache within the same round the fault
        lands in.
        """
        if self._injector is None:
            return False
        due = self._injector.pop_due(self.clock_s)
        if not due:
            return False
        for event in due:
            effect = self._injector.apply(event, self.clock_s)
            if effect.evict_fraction > 0:
                self._invalidate_fraction(
                    effect.evict_fraction, cause=event.kind
                )
            if effect.preempt_gpus > 0:
                victims = self._injector.select_victims(
                    {
                        job_id: self._allocation.gpus_of(job_id)
                        for job_id in self._active
                    },
                    effect.preempt_gpus,
                )
                for job_id in victims:
                    self._preempt_job(job_id, reason=event.kind)
            if event.kind == "job_preempt" and effect.job_id in self._active:
                self._blocked.add(effect.job_id)
                self._preempt_job(effect.job_id, reason=event.kind)
            elif event.kind == "job_restart":
                self._blocked.discard(effect.job_id)
                if self._tracer.enabled and effect.job_id in self._active:
                    self._tracer.job_restart(
                        self.clock_s,
                        effect.job_id,
                        reason=event.kind,
                        epoch=self._active[effect.job_id].epoch_index,
                    )
        self.total = self._injector.effective_total(self._base_total)
        self._reclaim_overshoot()
        return True

    def _invalidate_fraction(self, fraction: float, cause: str) -> None:
        """A fault destroyed ``fraction`` of every key's resident bytes.

        Even striping: every dataset loses the same share, and each
        job's effective bytes shrink in ratio (the lost items were a
        uniform sample of what it could hit).
        """
        ratio = max(0.0, 1.0 - fraction)
        tracer = self._tracer
        for key in sorted(self._cache):
            state = self._cache[key]
            if state.resident_mb <= 0:
                continue
            before = state.resident_mb
            state.resident_mb = before * ratio
            if tracer.enabled and before - state.resident_mb > 1e-6:
                tracer.cache_invalidate(
                    self.clock_s,
                    key,
                    delta_mb=before - state.resident_mb,
                    resident_mb=state.resident_mb,
                    cause=cause,
                )
            self._scale_effective(key, ratio)

    def _preempt_job(self, job_id: str, reason: str) -> None:
        """Epoch-granularity restart: roll back to the last boundary."""
        progress = self._active.get(job_id)
        if progress is None:
            return
        rollback = progress.epoch_position_mb
        progress.work_done_mb = max(0.0, progress.work_done_mb - rollback)
        if self._tracer.enabled:
            self._tracer.job_preempt(
                self.clock_s,
                job_id,
                reason=reason,
                rollback_mb=rollback,
                epoch=progress.epoch_index,
            )

    def _promote_epoch_boundaries(self) -> bool:
        """Detect epoch crossings; promote resident -> effective (§6)."""
        flipped = False
        for progress in self._active.values():
            job = progress.job
            epochs_now = progress.epoch_index
            if progress.done:
                continue
            if epochs_now > self._epochs_done.get(job.job_id, 0):
                self._epochs_done[job.job_id] = epochs_now
                key = self.cache_system.cache_key(job)
                state = self._cache.get(key)
                resident = state.resident_mb if state else 0.0
                self._effective[job.job_id] = min(
                    job.dataset.size_mb, resident
                )
                if self._tracer.enabled:
                    self._tracer.epoch_boundary(
                        self.clock_s, job.job_id, epoch=epochs_now
                    )
                    self._tracer.promote_effective(
                        self.clock_s,
                        job.job_id,
                        key=key,
                        effective_mb=self._effective[job.job_id],
                        reason="epoch_boundary",
                    )
                flipped = True
        return flipped

    # ------------------------------------------------------------------
    # Scheduling and storage decisions.
    # ------------------------------------------------------------------

    def _reschedule(self) -> None:
        jobs = [
            p.job
            for p in self._active.values()
            if p.job.job_id not in self._blocked
        ]
        tracer = self._tracer
        old_gpus = dict(self._allocation.gpus) if tracer.enabled else {}
        self._allocation = self.scheduler.schedule(
            jobs,
            self.total,
            now_s=self.clock_s,
            effective_cache_mb=lambda job: self._effective.get(
                job.job_id, 0.0
            ),
            attained_service_s=self._attained_service_s,
        )
        for progress in self._active.values():
            job_id = progress.job.job_id
            if self._allocation.gpus_of(job_id) > 0:
                if progress.start_time_s is None:
                    progress.start_time_s = self.clock_s
                    progress.phase = JobPhase.RUNNING
                    # A freshly started job immediately benefits from data
                    # already resident for its dataset (sharing, §7.3).
                    key = self.cache_system.cache_key(progress.job)
                    state = self._cache.get(key)
                    self._effective[job_id] = min(
                        progress.job.dataset.size_mb,
                        state.resident_mb if state else 0.0,
                    )
                    if tracer.enabled:
                        tracer.job_start(
                            self.clock_s,
                            job_id,
                            gpus=self._allocation.gpus_of(job_id),
                            queue_delay_s=self.clock_s
                            - progress.job.submit_time_s,
                        )
                        tracer.promote_effective(
                            self.clock_s,
                            job_id,
                            key=key,
                            effective_mb=self._effective[job_id],
                            reason="job_start",
                        )
        if tracer.enabled:
            seen = set(old_gpus) | set(self._allocation.gpus)
            for job_id in sorted(seen):
                if job_id not in self._active:
                    continue
                before = old_gpus.get(job_id, 0.0)
                after = self._allocation.gpus_of(job_id)
                if abs(before - after) > 1e-9:
                    tracer.alloc_change(
                        self.clock_s,
                        job_id,
                        gpus_before=before,
                        gpus_after=after,
                    )
        self._storage_decide()

    def _attained_service_s(self, job: Job) -> float:
        """GPU-seconds of service the job has attained (for LAS).

        Derived from progress: ``work_done / f*`` is the compute time the
        job has effectively received at its requested GPU count.
        """
        progress = self._active.get(job.job_id)
        if progress is None or job.ideal_throughput_mbps <= 0:
            return 0.0
        return (
            progress.work_done_mb
            / job.ideal_throughput_mbps
            * job.num_gpus
        )

    def _running_jobs(self) -> List[Job]:
        return [
            p.job
            for p in self._active.values()
            if self._allocation.gpus_of(p.job.job_id) > 0
        ]

    def _active_jobs(self) -> List[Job]:
        return [p.job for p in self._active.values()]

    def _storage_decide(self) -> None:
        running = self._running_jobs()
        running_ids = {job.job_id for job in running}
        queued = [
            p.job
            for p in self._active.values()
            if p.job.job_id not in running_ids
        ]
        ctx = StorageContext(
            running_jobs=running,
            gpu_grants=dict(self._allocation.gpus),
            total_gpus=self.total.gpus,
            total_cache_mb=self.total.cache_mb,
            total_io_mbps=self.total.remote_io_mbps,
            effective_mb=lambda job: self._effective.get(job.job_id, 0.0),
            first_epoch_done=lambda job: self._epochs_done.get(
                job.job_id, 0
            )
            > 0,
            estimator=self.scheduler.estimator,
            clock_s=self.clock_s,
            scheduler_allocation=self._allocation,
            queued_jobs=queued,
            tracer=self._tracer,
        )
        self._decision = self.cache_system.decide(ctx)
        self._apply_targets(self._active_jobs())
        self._recompute_rates(running)

    def _apply_targets(self, running: Sequence[Job]) -> None:
        targets = self._decision.cache_targets
        sizes = {}
        for job in running:
            sizes[self.cache_system.cache_key(job)] = job.dataset.size_mb
        # Keys the current decision does not mention are unallocated:
        # their target drops to zero so the oversubscription pass below
        # can reclaim them. Their data stays resident opportunistically
        # until that happens (uniform caching never evicts eagerly).
        for key, state in self._cache.items():
            if key not in targets:
                state.target_mb = 0.0
        for key, target in targets.items():
            state = self._cache.get(key)
            if state is None:
                state = _CacheKeyState(size_mb=sizes.get(key, target))
                self._cache[key] = state
            state.size_mb = max(state.size_mb, sizes.get(key, state.size_mb))
            state.target_mb = min(target, state.size_mb)
            if state.resident_mb > state.target_mb + 1e-9:
                self._shrink(key, state, state.target_mb)
        # Keys without a current target keep their data only while the
        # total pool is not oversubscribed (uniform caching never evicts
        # eagerly); stale keys are evicted first when space is needed.
        self._reclaim_overshoot()

    def _reclaim_overshoot(self) -> None:
        """Keep total resident bytes within the pool capacity.

        Over-target keys (stale data first — smallest targets) are shrunk
        until the pool fits; if every key is exactly at target and the
        targets themselves oversubscribe (a misbehaving cache system),
        everything is scaled back proportionally as a backstop.
        """
        total_resident = sum(s.resident_mb for s in self._cache.values())
        overshoot = total_resident - self.total.cache_mb
        if overshoot <= 1e-6:
            return
        for key in sorted(
            self._cache,
            key=lambda k: self._cache[k].target_mb,
        ):
            state = self._cache[key]
            slack = state.resident_mb - state.target_mb
            if slack <= 0:
                continue
            cut = min(slack, overshoot)
            self._shrink(
                key, state, state.resident_mb - cut, reason="reclaim"
            )
            overshoot -= cut
            if overshoot <= 1e-6:
                return
        if overshoot > 1e-6:
            total = sum(s.resident_mb for s in self._cache.values())
            if total > 0:
                factor = self.total.cache_mb / total
                for key, state in self._cache.items():
                    self._shrink(
                        key,
                        state,
                        state.resident_mb * factor,
                        reason="reclaim",
                    )

    def _shrink(
        self,
        key: str,
        state: _CacheKeyState,
        new_mb: float,
        reason: str = "target_shrink",
    ) -> None:
        """Random eviction to ``new_mb``: effectiveness shrinks in ratio."""
        if state.resident_mb <= 0:
            return
        ratio = max(0.0, new_mb) / state.resident_mb
        before = state.resident_mb
        state.resident_mb = max(0.0, new_mb)
        if self._tracer.enabled and before - state.resident_mb > 1e-6:
            self._tracer.cache_evict(
                self.clock_s,
                key,
                delta_mb=before - state.resident_mb,
                resident_mb=state.resident_mb,
                reason=reason,
            )
        self._scale_effective(key, ratio)

    def _scale_effective(self, key: str, ratio: float) -> None:
        """Shrink every sharer's effective bytes after a random eviction."""
        for progress in self._active.values():
            job = progress.job
            if self.cache_system.cache_key(job) == key:
                self._effective[job.job_id] = (
                    self._effective.get(job.job_id, 0.0) * ratio
                )

    def _recompute_rates(self, running: Sequence[Job]) -> None:
        self._throughput = {}
        self._miss_rate = {}
        estimator = self.scheduler.estimator
        for job in running:
            gpus = self._allocation.gpus_of(job.job_id)
            f_star = estimator.compute_bound(job, gpus)
            hit = min(1.0, max(0.0, self._decision.hit_ratios.get(job.job_id, 0.0)))
            miss = 1.0 - hit
            grant = self._decision.io_grants.get(job.job_id, 0.0)
            if miss <= 1e-12:
                rate = f_star
            else:
                rate = min(f_star, grant / miss)
            self._throughput[job.job_id] = rate
            self._miss_rate[job.job_id] = rate * miss

    # ------------------------------------------------------------------
    # Sampling and results.
    # ------------------------------------------------------------------

    def _sample(self) -> None:
        running = self._running_jobs()
        estimator = self.scheduler.estimator
        ideal = sum(
            estimator.compute_bound(
                job, self._allocation.gpus_of(job.job_id)
            )
            for job in running
        )
        achieved = sum(self._throughput.get(j.job_id, 0.0) for j in running)
        io_used = sum(self._miss_rate.get(j.job_id, 0.0) for j in running)
        mature = [
            job
            for job in running
            if self._epochs_done.get(job.job_id, 0) > 0
        ]
        fairness = fairness_ratio(
            mature,
            self._throughput,
            self.total,
            estimator,
            storage_aware=True,
            num_jobs=len(running),
        )
        # Figure 8's view: bytes allocated to *running* jobs (stale data
        # of departed jobs lingers but is not "allocated") vs the bytes
        # their jobs can actually hit.
        live_keys = {self.cache_system.cache_key(job) for job in running}
        resident = sum(
            state.resident_mb
            for key, state in self._cache.items()
            if key in live_keys
        )
        by_key: Dict[str, float] = {}
        for job in running:
            key = self.cache_system.cache_key(job)
            by_key[key] = max(
                by_key.get(key, 0.0), self._effective.get(job.job_id, 0.0)
            )
        effective = sum(by_key.values())
        self._timeline.append(
            TimelineSample(
                time_s=self.clock_s,
                running_jobs=len(running),
                queued_jobs=len(self._active) - len(running),
                total_throughput_mbps=achieved,
                ideal_throughput_mbps=ideal,
                remote_io_used_mbps=io_used,
                fairness_ratio=fairness,
                resident_cache_mb=resident,
                effective_cache_mb=effective,
            )
        )

    def _result(self) -> RunResult:
        records = []
        all_progress = self._finished + list(self._active.values())
        for progress in sorted(
            all_progress, key=lambda p: p.job.submit_time_s
        ):
            job = progress.job
            records.append(
                JobRecord(
                    job_id=job.job_id,
                    model=job.model,
                    dataset=job.dataset.name,
                    num_gpus=job.num_gpus,
                    submit_time_s=job.submit_time_s,
                    start_time_s=progress.start_time_s,
                    finish_time_s=progress.finish_time_s,
                )
            )
        return RunResult(
            scheduler_name=self.scheduler.policy.name,
            cache_name=self.cache_system.name,
            records=records,
            timeline=self._timeline,
            end_time_s=self.clock_s,
        )
