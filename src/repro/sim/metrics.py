"""Simulation outputs: per-job records, cluster timelines, summary metrics.

Every experiment in §7 reports some subset of: average JCT, makespan, the
JCT distribution (CDF), a total-throughput / remote-IO timeline (Figures 9
and 11), the fairness ratio over time (Figure 13), and the effective-cache
ratio (Figure 8). :class:`RunResult` carries them all; both simulators
produce one.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro import units


@dataclasses.dataclass
class JobRecord:
    """Completion record of one job."""

    job_id: str
    model: str
    dataset: str
    num_gpus: int
    submit_time_s: float
    start_time_s: Optional[float]
    finish_time_s: Optional[float]

    @property
    def finished(self) -> bool:
        """Whether the job completed inside the simulated horizon."""
        return self.finish_time_s is not None

    @property
    def jct_s(self) -> float:
        """Completion time (finish − submit); ``inf`` if unfinished."""
        if self.finish_time_s is None:
            return math.inf
        return self.finish_time_s - self.submit_time_s


@dataclasses.dataclass
class TimelineSample:
    """One point of the cluster-wide timeline."""

    time_s: float
    running_jobs: int
    queued_jobs: int
    #: Achieved aggregate data-consumption throughput, MB/s.
    total_throughput_mbps: float
    #: Aggregate compute-bound ("ideal") throughput of running jobs, MB/s.
    ideal_throughput_mbps: float
    #: Remote IO actually flowing, MB/s.
    remote_io_used_mbps: float
    #: Eq 8's objective over running jobs (nan when none).
    fairness_ratio: float
    #: Bytes resident in cache (allocated), MB.
    resident_cache_mb: float
    #: Bytes resident *and* effective for their jobs, MB.
    effective_cache_mb: float


@dataclasses.dataclass
class RunResult:
    """Everything a simulation run produced."""

    scheduler_name: str
    cache_name: str
    records: List[JobRecord]
    timeline: List[TimelineSample]
    end_time_s: float

    # ------------------------------------------------------------------
    # Summary metrics.
    # ------------------------------------------------------------------

    def finished_records(self) -> List[JobRecord]:
        """Records of jobs that completed."""
        return [r for r in self.records if r.finished]

    def average_jct_s(self) -> float:
        """Mean JCT over finished jobs, seconds."""
        finished = self.finished_records()
        if not finished:
            return math.nan
        return sum(r.jct_s for r in finished) / len(finished)

    def average_jct_minutes(self) -> float:
        """Mean JCT in minutes (the paper's reporting unit)."""
        return units.seconds_to_minutes(self.average_jct_s())

    def makespan_s(self) -> float:
        """Completion time of the last job, seconds."""
        finished = self.finished_records()
        if not finished or len(finished) < len(self.records):
            return math.nan
        return max(r.finish_time_s for r in finished)

    def makespan_minutes(self) -> float:
        """Makespan in minutes."""
        return units.seconds_to_minutes(self.makespan_s())

    def jct_cdf(self) -> List[Tuple[float, float]]:
        """Sorted ``(jct_minutes, cumulative_fraction)`` pairs."""
        finished = sorted(r.jct_s for r in self.finished_records())
        n = len(finished)
        return [
            (units.seconds_to_minutes(jct), (i + 1) / n)
            for i, jct in enumerate(finished)
        ]

    def average_fairness_ratio(self) -> float:
        """Time-average of Figure 13's fairness ratio (finite samples)."""
        values = [
            s.fairness_ratio
            for s in self.timeline
            if math.isfinite(s.fairness_ratio) and s.running_jobs > 0
        ]
        if not values:
            return math.nan
        return sum(values) / len(values)

    def average_effective_cache_fraction(self) -> float:
        """Mean effective/resident cache ratio over samples (Figure 8)."""
        fractions = [
            s.effective_cache_mb / s.resident_cache_mb
            for s in self.timeline
            if s.resident_cache_mb > 1.0
        ]
        if not fractions:
            return math.nan
        return sum(fractions) / len(fractions)

    def peak_remote_io_mbps(self) -> float:
        """Peak remote IO usage across samples (Figure 2)."""
        if not self.timeline:
            return math.nan
        return max(s.remote_io_used_mbps for s in self.timeline)

    def throughput_series(self) -> List[Tuple[float, float, float, float]]:
        """(minutes, achieved, ideal, remote IO) rows — Figures 9 and 11."""
        return [
            (
                units.seconds_to_minutes(s.time_s),
                s.total_throughput_mbps,
                s.ideal_throughput_mbps,
                s.remote_io_used_mbps,
            )
            for s in self.timeline
        ]


def improvement_factor(baseline: float, improved: float) -> float:
    """How many times better ``improved`` is than ``baseline`` (lower-is-
    better metrics such as JCT and makespan): ``baseline / improved``."""
    if improved <= 0 or not math.isfinite(improved):
        return math.nan
    return baseline / improved


def relative_error(reference: float, measured: float) -> float:
    """|measured − reference| / reference — the Table 6 fidelity metric."""
    if reference == 0:
        return math.nan
    return abs(measured - reference) / abs(reference)


def summarize_matrix(
    results: Dict[Tuple[str, str], "RunResult"]
) -> List[dict]:
    """Flatten a {(scheduler, cache): result} matrix into report rows."""
    rows = []
    for (scheduler, cache), result in sorted(results.items()):
        rows.append(
            {
                "scheduler": scheduler,
                "cache": cache,
                "avg_jct_min": result.average_jct_minutes(),
                "makespan_min": result.makespan_minutes(),
                "avg_fairness": result.average_fairness_ratio(),
                "finished": len(result.finished_records()),
                "total": len(result.records),
            }
        )
    return rows


def percentile_jct_minutes(
    result: "RunResult", percentiles: Sequence[float]
) -> Dict[float, float]:
    """JCT percentiles in minutes (for CDF-style comparisons)."""
    finished = sorted(r.jct_s for r in result.finished_records())
    if not finished:
        return {p: math.nan for p in percentiles}
    out = {}
    for p in percentiles:
        if not 0 <= p <= 100:
            raise ValueError("percentiles must lie in [0, 100]")
        idx = min(len(finished) - 1, int(round(p / 100 * (len(finished) - 1))))
        out[p] = units.seconds_to_minutes(finished[idx])
    return out
