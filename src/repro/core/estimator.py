"""The SiloD-enhanced performance estimator (Algorithm 1, line 5).

Existing schedulers estimate job throughput from compute resources only:
``perf(j, R)``. SiloD wraps that estimator:

    SiloDPerf = lambda j, R: min(perf(j, R), IOPerf(j, R))

This module provides that wrapper as :class:`SiloDPerfEstimator`. It

* delegates the compute-bound estimate to a pluggable ``compute_estimator``
  (by default linear scaling of the job's profiled ``f*`` with the GPU
  fraction granted — what Gandiva/Gavel-style schedulers profile);
* applies the closed-form IOPerf (Eq 3) for *regular* jobs;
* falls back to the compute-only estimate for *irregular* jobs (§6 —
  those jobs live in a partitioned pool and keep their original estimator).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.cluster.job import Job
from repro.core import perf_model
from repro.core.resources import ResourceVector
from repro.perf.backend import numpy_enabled, require_numpy

#: Signature of a compute-only estimator: (job, gpus granted) -> MB/s.
ComputeEstimator = Callable[[Job, float], float]

#: Below this many jobs the vectorized batch path is not worth the numpy
#: call overhead; the loop fallback runs instead (results are identical
#: either way, so the cutoff is purely a latency knob).
_BATCH_MIN_JOBS = 8


def linear_compute_estimator(job: Job, gpus: float) -> float:
    """Scale the profiled ``f*`` linearly with the granted GPU fraction.

    Jobs are profiled at their requested GPU count; granting fewer GPUs
    (time-sharing in Gavel) scales throughput proportionally, granting more
    than requested gives no benefit (the job cannot use them).
    """
    fraction = min(1.0, gpus / job.num_gpus)
    return job.ideal_throughput_mbps * fraction


class SiloDPerfEstimator:
    """``min(perf, IOPerf)`` — the enhanced estimator of Algorithm 1.

    Parameters
    ----------
    compute_estimator:
        The original scheduler's ``perf(j, R)`` in MB/s. Defaults to
        :func:`linear_compute_estimator`.
    """

    def __init__(
        self, compute_estimator: ComputeEstimator = linear_compute_estimator
    ) -> None:
        self._compute_estimator = compute_estimator

    @property
    def compute_estimator(self) -> ComputeEstimator:
        """The wrapped compute-only estimator ``perf(j, R)``."""
        return self._compute_estimator

    def compute_bound(self, job: Job, gpus: float) -> float:
        """The original compute-only estimate ``perf(j, R)``."""
        return self._compute_estimator(job, gpus)

    def compute_bound_batch(
        self, jobs: Sequence[Job], gpus: Sequence[float]
    ) -> List[float]:
        """``[compute_bound(j, g) for j, g in zip(jobs, gpus)]``, batched.

        The hot callers (the fluid simulator's rate recompute, the
        per-round IO-demand pass, the SiloD data manager) evaluate the
        compute bound for every running job at once; with the default
        :func:`linear_compute_estimator` that is one elementwise numpy
        expression mirroring the scalar formula operation for operation
        (``f* * min(1.0, gpus / num_gpus)``), so the returned floats are
        bit-identical to the loop. Custom estimators (and the
        ``REPRO_NO_NUMPY=1`` fallback) take the loop.
        """
        jobs = list(jobs)
        if (
            len(jobs) >= _BATCH_MIN_JOBS
            and self._compute_estimator is linear_compute_estimator
            and numpy_enabled()
        ):
            np = require_numpy()
            n = len(jobs)
            f_star = np.fromiter(
                (job.ideal_throughput_mbps for job in jobs), float, count=n
            )
            requested = np.fromiter(
                (job.num_gpus for job in jobs), float, count=n
            )
            granted = np.fromiter(gpus, float, count=n)
            fraction = np.minimum(1.0, granted / requested)
            return (f_star * fraction).tolist()
        return [
            self.compute_bound(job, grant)
            for job, grant in zip(jobs, gpus)
        ]

    def estimate(
        self,
        job: Job,
        gpus: float,
        cache_mb: float,
        remote_io_mbps: float,
    ) -> float:
        """End-to-end throughput under a joint allocation, in MB/s."""
        f_star = self.compute_bound(job, gpus)
        if not job.regular:
            # Irregular jobs keep the original estimator (§6).
            return f_star
        return perf_model.silod_perf(
            f_star, remote_io_mbps, cache_mb, job.dataset.size_mb
        )

    def estimate_vector(self, job: Job, resources: ResourceVector) -> float:
        """Convenience overload taking a :class:`ResourceVector`."""
        return self.estimate(
            job,
            gpus=resources.gpus,
            cache_mb=resources.cache_mb,
            remote_io_mbps=resources.remote_io_mbps,
        )

    def io_bound(
        self, job: Job, gpus: float, cache_mb: float, remote_io_mbps: float
    ) -> bool:
        """Whether the job would be IO-bound under this allocation."""
        if not job.regular:
            return False
        return perf_model.is_io_bound(
            self.compute_bound(job, gpus),
            remote_io_mbps,
            cache_mb,
            job.dataset.size_mb,
        )

    def estimated_duration_s(
        self,
        job: Job,
        gpus: float,
        cache_mb: float,
        remote_io_mbps: float,
    ) -> float:
        """``numSteps * stepDataSize / SiloDPerf`` — Eq 6's duration term."""
        throughput = self.estimate(job, gpus, cache_mb, remote_io_mbps)
        if throughput <= 0:
            return float("inf")
        return job.total_work_mb / throughput


class HetSiloDPerfEstimator(SiloDPerfEstimator):
    """Generation-aware SiloDPerf: ``min(f*(j, gen(j)), IOPerf)``.

    Wraps the base compute estimator with a per-generation speedup
    factor (``repro.core.perf_model.default_speedup_table``): a job
    assigned to generation *g* has its compute bound scaled by
    ``speedups[g]``. Assignments live in the mutable :attr:`assignments`
    map (job_id -> generation name); unassigned jobs run at the
    ``default_generation``, whose factor is exactly 1.0 when the table
    is anchored there — so a fleet with no assignments (or a
    single-generation fleet) produces bit-identical numbers to the
    plain :class:`SiloDPerfEstimator`.

    Because the wrapped compute estimator is not the module-level
    ``linear_compute_estimator`` object, :meth:`compute_bound_batch`
    always takes the scalar loop — heterogeneous estimates are
    backend-identical by construction (``REPRO_NO_NUMPY=1`` changes
    nothing).
    """

    def __init__(
        self,
        speedups: dict,
        default_generation: str = "V100",
        base_estimator: ComputeEstimator = linear_compute_estimator,
    ) -> None:
        if default_generation not in speedups:
            raise ValueError(
                f"default generation {default_generation!r} missing "
                f"from the speedup table"
            )
        self.speedups = dict(speedups)
        self.default_generation = default_generation
        #: job_id -> generation name; written by heterogeneity-aware
        #: policies each round, cleared by the scheduler between rounds.
        self.assignments: dict = {}
        self._base_estimator = base_estimator
        super().__init__(compute_estimator=self._het_compute)

    def _het_compute(self, job: Job, gpus: float) -> float:
        return self._base_estimator(job, gpus) * self.speedup_of(
            job.job_id
        )

    def speedup_of(self, job_id: str) -> float:
        """The speedup factor of the job's assigned generation."""
        generation = self.assignments.get(
            job_id, self.default_generation
        )
        return self.speedups[generation]

    def generation_of(self, job_id: str) -> str:
        """The job's assigned generation (default when unassigned)."""
        return self.assignments.get(job_id, self.default_generation)

    def f_star_by_generation(self, job: Job) -> dict:
        """``{generation: f*(job, generation)}`` at the full request.

        Keys iterate in speedup order (slowest first) so the dict is
        deterministic regardless of table insertion order.
        """
        base = self._base_estimator(job, job.num_gpus)
        return {
            gen: base * factor
            for gen, factor in sorted(
                self.speedups.items(), key=lambda kv: (kv[1], kv[0])
            )
        }


class ThroughputMatrix:
    """Job × GPU-generation compute-bound throughput matrix.

    Capacity planning asks "what would this job mix consume on other
    hardware?" — e.g. sizing the egress limit a Figure 1-style upgrade
    would demand. Row *i*, column *k* is job *i*'s compute-bound data
    rate (``f*`` at its requested GPU count) scaled by generation *k*'s
    fp32 TFLOPS relative to the ``reference`` generation the jobs were
    profiled on (the paper profiles on V100, Table 2). These are the
    Figure 1 *plotted* TFLOPS (H100: with sparsity) — deliberate for
    capacity planning, which sizes against the headline trend; runtime
    scheduling instead uses the measured/dense-anchored
    ``perf_model.default_speedup_table`` via
    :class:`HetSiloDPerfEstimator`.

    The matrix is one outer product on the vectorized backend and a
    nested loop under ``REPRO_NO_NUMPY=1``; both produce bit-identical
    values (each entry is the same two-factor product).

    Attributes
    ----------
    job_ids:
        Row labels, in input order.
    generations:
        Column labels (GPU generation names), in input order.
    values:
        ``values[i][k]`` in MB/s, as plain Python floats.
    """

    def __init__(
        self,
        jobs: Sequence[Job],
        generations: Optional[Sequence[str]] = None,
        reference: str = "V100",
        estimator: Optional["SiloDPerfEstimator"] = None,
    ) -> None:
        from repro.cluster.hardware import GPU_GENERATIONS

        if generations is None:
            generations = sorted(
                GPU_GENERATIONS,
                key=lambda name: GPU_GENERATIONS[name].release_year,
            )
        for name in list(generations) + [reference]:
            if name not in GPU_GENERATIONS:
                raise ValueError(f"unknown GPU generation {name!r}")
        estimator = estimator or SiloDPerfEstimator()
        jobs = list(jobs)
        self.job_ids: List[str] = [job.job_id for job in jobs]
        self.generations: List[str] = list(generations)
        self.reference = reference
        ref_tflops = GPU_GENERATIONS[reference].fp32_tflops
        factors = [
            GPU_GENERATIONS[name].fp32_tflops / ref_tflops
            for name in self.generations
        ]
        f_stars = estimator.compute_bound_batch(
            jobs, [job.num_gpus for job in jobs]
        )
        if len(jobs) >= _BATCH_MIN_JOBS and numpy_enabled():
            np = require_numpy()
            matrix = np.multiply.outer(
                np.asarray(f_stars, float), np.asarray(factors, float)
            )
            self.values: List[List[float]] = matrix.tolist()
        else:
            self.values = [
                [f_star * factor for factor in factors]
                for f_star in f_stars
            ]

    def row(self, job_id: str) -> List[float]:
        """One job's throughput across generations."""
        return self.values[self.job_ids.index(job_id)]

    def column(self, generation: str) -> List[float]:
        """Every job's throughput on one generation."""
        k = self.generations.index(generation)
        return [row[k] for row in self.values]

    def total_demand_mbps(self, generation: str) -> float:
        """Aggregate compute-bound data demand on one generation.

        Sequential left-to-right sum (backend-identical); this is the
        egress a cluster of that generation would need with zero cache.
        """
        total = 0.0
        for value in self.column(generation):
            total += value
        return total
