"""The SiloD-enhanced performance estimator (Algorithm 1, line 5).

Existing schedulers estimate job throughput from compute resources only:
``perf(j, R)``. SiloD wraps that estimator:

    SiloDPerf = lambda j, R: min(perf(j, R), IOPerf(j, R))

This module provides that wrapper as :class:`SiloDPerfEstimator`. It

* delegates the compute-bound estimate to a pluggable ``compute_estimator``
  (by default linear scaling of the job's profiled ``f*`` with the GPU
  fraction granted — what Gandiva/Gavel-style schedulers profile);
* applies the closed-form IOPerf (Eq 3) for *regular* jobs;
* falls back to the compute-only estimate for *irregular* jobs (§6 —
  those jobs live in a partitioned pool and keep their original estimator).
"""

from __future__ import annotations

from typing import Callable

from repro.cluster.job import Job
from repro.core import perf_model
from repro.core.resources import ResourceVector

#: Signature of a compute-only estimator: (job, gpus granted) -> MB/s.
ComputeEstimator = Callable[[Job, float], float]


def linear_compute_estimator(job: Job, gpus: float) -> float:
    """Scale the profiled ``f*`` linearly with the granted GPU fraction.

    Jobs are profiled at their requested GPU count; granting fewer GPUs
    (time-sharing in Gavel) scales throughput proportionally, granting more
    than requested gives no benefit (the job cannot use them).
    """
    fraction = min(1.0, gpus / job.num_gpus)
    return job.ideal_throughput_mbps * fraction


class SiloDPerfEstimator:
    """``min(perf, IOPerf)`` — the enhanced estimator of Algorithm 1.

    Parameters
    ----------
    compute_estimator:
        The original scheduler's ``perf(j, R)`` in MB/s. Defaults to
        :func:`linear_compute_estimator`.
    """

    def __init__(
        self, compute_estimator: ComputeEstimator = linear_compute_estimator
    ) -> None:
        self._compute_estimator = compute_estimator

    def compute_bound(self, job: Job, gpus: float) -> float:
        """The original compute-only estimate ``perf(j, R)``."""
        return self._compute_estimator(job, gpus)

    def estimate(
        self,
        job: Job,
        gpus: float,
        cache_mb: float,
        remote_io_mbps: float,
    ) -> float:
        """End-to-end throughput under a joint allocation, in MB/s."""
        f_star = self.compute_bound(job, gpus)
        if not job.regular:
            # Irregular jobs keep the original estimator (§6).
            return f_star
        return perf_model.silod_perf(
            f_star, remote_io_mbps, cache_mb, job.dataset.size_mb
        )

    def estimate_vector(self, job: Job, resources: ResourceVector) -> float:
        """Convenience overload taking a :class:`ResourceVector`."""
        return self.estimate(
            job,
            gpus=resources.gpus,
            cache_mb=resources.cache_mb,
            remote_io_mbps=resources.remote_io_mbps,
        )

    def io_bound(
        self, job: Job, gpus: float, cache_mb: float, remote_io_mbps: float
    ) -> bool:
        """Whether the job would be IO-bound under this allocation."""
        if not job.regular:
            return False
        return perf_model.is_io_bound(
            self.compute_bound(job, gpus),
            remote_io_mbps,
            cache_mb,
            job.dataset.size_mb,
        )

    def estimated_duration_s(
        self,
        job: Job,
        gpus: float,
        cache_mb: float,
        remote_io_mbps: float,
    ) -> float:
        """``numSteps * stepDataSize / SiloDPerf`` — Eq 6's duration term."""
        throughput = self.estimate(job, gpus, cache_mb, remote_io_mbps)
        if throughput <= 0:
            return float("inf")
        return job.total_work_mb / throughput
