"""SiloD's core: the performance model, estimator, policies, framework."""

from repro.core.estimator import SiloDPerfEstimator, linear_compute_estimator
from repro.core.perf_model import (
    cache_efficiency,
    io_throughput,
    remote_io_demand,
    silod_perf,
)
from repro.core.resources import Allocation, ResourceVector
from repro.core.silod import SiloDScheduler

__all__ = [
    "SiloDPerfEstimator",
    "linear_compute_estimator",
    "silod_perf",
    "io_throughput",
    "remote_io_demand",
    "cache_efficiency",
    "Allocation",
    "ResourceVector",
    "SiloDScheduler",
]
