"""Resource vectors and allocations.

SiloD's framework (Algorithm 1) abstracts scheduling as "allocate
``totalResource`` to jobs using a performance estimator". Beyond the
compute resources existing schedulers manage, SiloD adds **cache** and
**remote IO** as first-class resource types.

:class:`ResourceVector` is the cluster-total / per-job allocation triple.
:class:`Allocation` maps jobs (and datasets, for cache) to their grants and
is what policies return and the data manager enforces.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Mapping

#: Canonical resource-type names (the ``t`` index of Eq 6).
GPU = "gpu"
CACHE = "cache"
REMOTE_IO = "remote_io"
RESOURCE_TYPES = (GPU, CACHE, REMOTE_IO)


@dataclasses.dataclass(frozen=True)
class ResourceVector:
    """An amount of each resource type.

    ``gpus`` counts GPUs (may be fractional under time-sharing policies),
    ``cache_mb`` is cache space in MB, ``remote_io_mbps`` is remote IO
    bandwidth in MB/s.
    """

    gpus: float = 0.0
    cache_mb: float = 0.0
    remote_io_mbps: float = 0.0

    def __post_init__(self) -> None:
        for field in ("gpus", "cache_mb", "remote_io_mbps"):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} must be non-negative")

    def as_dict(self) -> Dict[str, float]:
        """The vector as a ``{resource_type: amount}`` mapping."""
        return {
            GPU: self.gpus,
            CACHE: self.cache_mb,
            REMOTE_IO: self.remote_io_mbps,
        }

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            gpus=self.gpus + other.gpus,
            cache_mb=self.cache_mb + other.cache_mb,
            remote_io_mbps=self.remote_io_mbps + other.remote_io_mbps,
        )

    def fits_within(self, total: "ResourceVector", tol: float = 1e-6) -> bool:
        """Whether this vector is component-wise <= ``total`` (within tol)."""
        return (
            self.gpus <= total.gpus + tol
            and self.cache_mb <= total.cache_mb + tol
            and self.remote_io_mbps <= total.remote_io_mbps + tol
        )

    def weighted_sum(self, weights: Mapping[str, float]) -> float:
        """``sum_t w_t * R_t`` — the resource cost term of Eq 6."""
        amounts = self.as_dict()
        return sum(weights.get(t, 0.0) * amounts[t] for t in RESOURCE_TYPES)


def tetris_weights(total: ResourceVector) -> Dict[str, float]:
    """Eq 6/7 weights: ``w_t = 1 / totalResource[t]`` (from Tetris).

    A resource type the cluster has none of gets weight 0 so it never
    contributes to a score.
    """
    amounts = total.as_dict()
    return {
        t: (1.0 / amounts[t]) if amounts[t] > 0 else 0.0 for t in RESOURCE_TYPES
    }


class Allocation:
    """A joint compute + storage allocation for a set of jobs.

    * ``gpus[job_id]`` — GPUs granted (fractional allowed).
    * ``remote_io[job_id]`` — remote IO bandwidth in MB/s (exclusive per
      job, §6: jobs read items in different orders even on a shared
      dataset).
    * ``cache[dataset_name]`` — cache in MB, granted at dataset level so
      sharing jobs are charged once (§6).
    """

    def __init__(self) -> None:
        self.gpus: Dict[str, float] = {}
        self.remote_io: Dict[str, float] = {}
        self.cache: Dict[str, float] = {}

    def grant_gpus(self, job_id: str, gpus: float) -> None:
        """Grant GPUs to a job."""
        if gpus < 0:
            raise ValueError("GPU grant must be non-negative")
        self.gpus[job_id] = gpus

    def grant_remote_io(self, job_id: str, mbps: float) -> None:
        """Grant remote IO bandwidth to a job (Table 3: allocateRemoteIO)."""
        if mbps < 0:
            raise ValueError("remote IO grant must be non-negative")
        self.remote_io[job_id] = mbps

    def grant_cache(self, dataset_name: str, cache_mb: float) -> None:
        """Grant cache to a dataset (Table 3: allocateCacheSize)."""
        if cache_mb < 0:
            raise ValueError("cache grant must be non-negative")
        self.cache[dataset_name] = cache_mb

    def gpus_of(self, job_id: str) -> float:
        """GPUs granted to a job (0 if not scheduled)."""
        return self.gpus.get(job_id, 0.0)

    def remote_io_of(self, job_id: str) -> float:
        """Remote IO granted to a job in MB/s (0 if none)."""
        return self.remote_io.get(job_id, 0.0)

    def cache_of(self, dataset_name: str) -> float:
        """Cache granted to a dataset in MB (0 if none)."""
        return self.cache.get(dataset_name, 0.0)

    def total(self) -> ResourceVector:
        """Aggregate grants (cache counted once per dataset)."""
        return ResourceVector(
            gpus=sum(self.gpus.values()),
            cache_mb=sum(self.cache.values()),
            remote_io_mbps=sum(self.remote_io.values()),
        )

    def running_job_ids(self) -> Iterable[str]:
        """Jobs with a positive GPU grant."""
        return [job_id for job_id, g in self.gpus.items() if g > 0]

    def __repr__(self) -> str:
        return (
            f"Allocation(gpus={self.gpus}, remote_io={self.remote_io}, "
            f"cache={self.cache})"
        )
