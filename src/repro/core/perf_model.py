"""The SiloD closed-form performance model (§4, Equations 1-5).

Deep-learning training pipelines data loading with computation at batch
granularity (Figure 5). Under *uniform caching* — cache each item until the
allocation is full, never evict — the shuffled once-per-epoch access
pattern makes the expected hit ratio exactly ``c/d`` regardless of *which*
items are cached. From that the paper derives:

* Eq 1: end-to-end throughput is the bottleneck stage,
  ``SiloDPerf = min(f*, f)``.
* Eq 2: a job loading data at rate ``f`` with cache ``c`` over a dataset of
  size ``d`` demands remote IO ``b = f * (1 - c/d)``.
* Eq 3: inverting, a remote-IO allocation ``b`` supports data loading at
  ``f = b / (1 - c/d)`` (IOPerf).
* Eq 4: ``SiloDPerf = min(f*, b / (1 - c/d))``.
* Eq 5: cache efficiency — remote IO saved per unit of cache at the ideal
  operating point — is ``-∂b/∂c = f*/d``.

All throughputs are MB/s and sizes MB. The functions are deliberately
free-standing (no classes) so policies can call them on plain numbers.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional

#: Tolerance used when a cache allocation covers the whole dataset and the
#: miss ratio denominator vanishes.
_EPS = 1e-12


def hit_ratio(cache_mb: float, dataset_mb: float) -> float:
    """Expected uniform-caching hit ratio ``c/d``, clamped to [0, 1]."""
    if dataset_mb <= 0:
        raise ValueError("dataset size must be positive")
    if cache_mb < 0:
        raise ValueError("cache size must be non-negative")
    return min(1.0, cache_mb / dataset_mb)


def miss_ratio(cache_mb: float, dataset_mb: float) -> float:
    """Expected uniform-caching miss ratio ``1 - c/d``."""
    return 1.0 - hit_ratio(cache_mb, dataset_mb)


def remote_io_demand(
    loading_throughput_mbps: float, cache_mb: float, dataset_mb: float
) -> float:
    """Eq 2: remote IO demand ``b = f * (1 - c/d)`` in MB/s."""
    if loading_throughput_mbps < 0:
        raise ValueError("throughput must be non-negative")
    return loading_throughput_mbps * miss_ratio(cache_mb, dataset_mb)


def io_throughput(
    remote_io_mbps: float, cache_mb: float, dataset_mb: float
) -> float:
    """Eq 3 (IOPerf): loading throughput ``f = b / (1 - c/d)``.

    When the dataset is fully cached the miss ratio is zero and any
    non-negative remote-IO allocation supports unbounded loading; we return
    ``inf`` so the ``min`` with ``f*`` in Eq 4 resolves it.
    """
    if remote_io_mbps < 0:
        raise ValueError("remote IO allocation must be non-negative")
    misses = miss_ratio(cache_mb, dataset_mb)
    if misses <= _EPS:
        return math.inf
    return remote_io_mbps / misses


def silod_perf(
    ideal_throughput_mbps: float,
    remote_io_mbps: float,
    cache_mb: float,
    dataset_mb: float,
) -> float:
    """Eq 4: end-to-end throughput ``min(f*, b / (1 - c/d))`` in MB/s."""
    if ideal_throughput_mbps < 0:
        raise ValueError("ideal throughput must be non-negative")
    return min(
        ideal_throughput_mbps,
        io_throughput(remote_io_mbps, cache_mb, dataset_mb),
    )


def cache_efficiency(ideal_throughput_mbps: float, dataset_mb: float) -> float:
    """Eq 5: remote IO (MB/s) saved per MB of cache at the ideal point.

    This is the negative derivative of Eq 2 at ``f = f*``: ``f*/d``. The
    paper reports it in MB/s per GB (Figure 6); this function returns
    MB/s per MB — multiply by 1024 for the paper's unit.
    """
    if dataset_mb <= 0:
        raise ValueError("dataset size must be positive")
    if ideal_throughput_mbps < 0:
        raise ValueError("ideal throughput must be non-negative")
    return ideal_throughput_mbps / dataset_mb


def dataset_cache_efficiency(
    ideal_throughputs_mbps: Iterable[float], dataset_mb: float
) -> float:
    """Dataset-level cache efficiency with sharing (§6).

    When several jobs train on the same dataset, one MB of cache saves
    remote IO for all of them, so the dataset's efficiency is the *sum* of
    the sharing jobs' efficiencies.
    """
    return sum(
        cache_efficiency(f_star, dataset_mb) for f_star in ideal_throughputs_mbps
    )


def min_remote_io_for_throughput(
    target_throughput_mbps: float, cache_mb: float, dataset_mb: float
) -> float:
    """Remote IO needed to sustain ``target`` given a cache allocation.

    This is Eq 2 evaluated at the target; policies use it as the feasibility
    primitive (e.g. Gavel's bisection asks "can every job reach ratio t?").
    """
    return remote_io_demand(target_throughput_mbps, cache_mb, dataset_mb)


def min_cache_for_throughput(
    target_throughput_mbps: float, remote_io_mbps: float, dataset_mb: float
) -> float:
    """Cache needed to sustain ``target`` given a remote-IO allocation.

    Solves Eq 4 for ``c``: ``c = d * (1 - b/f)``. Returns 0 when the IO
    allocation alone suffices, and ``d`` when the target is unreachable at
    any cache size below full caching. Raises for a non-positive target.
    """
    if target_throughput_mbps <= 0:
        raise ValueError("target throughput must be positive")
    if remote_io_mbps >= target_throughput_mbps:
        return 0.0
    return dataset_mb * (1.0 - remote_io_mbps / target_throughput_mbps)


def is_io_bound(
    ideal_throughput_mbps: float,
    remote_io_mbps: float,
    cache_mb: float,
    dataset_mb: float,
) -> bool:
    """Whether data loading, not compute, bottlenecks the pipeline."""
    return (
        io_throughput(remote_io_mbps, cache_mb, dataset_mb)
        < ideal_throughput_mbps
    )


# ----------------------------------------------------------------------
# Heterogeneity: per-(job, GPU-generation) compute bounds (Gavel-style
# f*(job, gen), Narayanan et al. OSDI 2020, composed with Eq 4).
# ----------------------------------------------------------------------


def default_speedup_table(reference: str = "V100") -> Dict[str, float]:
    """Calibrated per-generation speedup factors, ``reference`` = 1.0.

    Jobs are profiled (``ideal_throughput_mbps``) on the reference
    generation; running the same job on generation *g* scales its
    compute bound ``f*`` by this table's factor. Calibration combines
    the paper's only cross-generation measurement with the hardware
    trend:

    * V100 -> A100 uses Table 2's *measured* ResNet-50 ratio
      (2930/1003 img/s, ~2.92x) — real speedups trail the 19.5/14.0
      TFLOPS ratio, so the measured anchor wins where it exists;
    * generations older than V100 scale by their dense-fp32 TFLOPS
      ratio to V100 (no measurement exists; K80/P100 predate Table 2);
    * generations newer than A100 scale *from the measured A100 anchor*
      by the dense-fp32 TFLOPS ratio to A100 — dense, not the
      with-sparsity headline, so H100 lands at ~10x V100 rather than
      an inflated ~36x (see ``cluster/hardware.py``).

    The factors are renormalised so ``table[reference] == 1.0``
    *exactly* (a float divided by itself), which makes the
    heterogeneous model collapse bit-identically to the homogeneous one
    on single-generation fleets (``x * 1.0 == x`` in IEEE arithmetic).
    """
    from repro.cluster.hardware import GPU_GENERATIONS, RESNET50_TABLE2

    if reference not in GPU_GENERATIONS:
        raise ValueError(f"unknown GPU generation {reference!r}")
    speeds = {p.gpu_setup: p.images_per_second for p in RESNET50_TABLE2}
    a100_measured = speeds["1xA100"] / speeds["1xV100"]
    v100 = GPU_GENERATIONS["V100"]
    a100 = GPU_GENERATIONS["A100"]
    raw: Dict[str, float] = {}
    for name, spec in GPU_GENERATIONS.items():
        if name == "V100":
            raw[name] = 1.0
        elif name == "A100":
            raw[name] = a100_measured
        elif spec.release_year < a100.release_year:
            raw[name] = spec.dense_tflops / v100.dense_tflops
        else:
            raw[name] = a100_measured * (
                spec.dense_tflops / a100.dense_tflops
            )
    anchor = raw[reference]
    return {name: value / anchor for name, value in raw.items()}


def het_f_star(
    ideal_throughput_mbps: float,
    generation: str,
    speedups: Optional[Dict[str, float]] = None,
    reference: str = "V100",
) -> float:
    """``f*(job, gen)``: the compute bound scaled to a generation.

    ``speedups`` defaults to :func:`default_speedup_table`. An unknown
    generation raises — a silent 1.0 would mask trace/cluster mismatches.
    """
    if ideal_throughput_mbps < 0:
        raise ValueError("ideal throughput must be non-negative")
    if speedups is None:
        speedups = default_speedup_table(reference)
    if generation not in speedups:
        raise ValueError(f"unknown GPU generation {generation!r}")
    return ideal_throughput_mbps * speedups[generation]


def het_silod_perf(
    ideal_throughput_mbps: float,
    remote_io_mbps: float,
    cache_mb: float,
    dataset_mb: float,
    generation: str,
    speedups: Optional[Dict[str, float]] = None,
    reference: str = "V100",
) -> float:
    """Heterogeneous Eq 4: ``min(f*(job, gen), b / (1 - c/d))``.

    On the reference generation the speedup factor is exactly 1.0, so
    this is bit-identical to :func:`silod_perf` — the collapse property
    ``tests/core/test_het_perf_model.py`` pins under both backends.
    """
    return silod_perf(
        het_f_star(
            ideal_throughput_mbps, generation, speedups, reference
        ),
        remote_io_mbps,
        cache_mb,
        dataset_mb,
    )
