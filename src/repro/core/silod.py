"""The SiloD scheduling framework (Algorithm 1, §3 and §6).

``SiloDScheduler`` wires a scheduling policy to the SiloD-enhanced
performance estimator and adds the two framework-level behaviours:

* **Joint allocation**: storage (cache, remote IO) is included in
  ``totalResource`` and the policy's allocation covers all three resource
  types (Algorithm 1 line 7).
* **Irregular-job partitioning** (§6): jobs whose data access does not
  satisfy SiloDPerf's assumptions are placed in a separate cache/IO
  partition sized by their GPU demand; they are scheduled with the original
  (compute-only) estimator while regular jobs keep the full co-design.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from repro import units
from repro.cluster.job import Job
from repro.core import perf_model
from repro.core.estimator import (
    HetSiloDPerfEstimator,
    SiloDPerfEstimator,
)
from repro.core.policies.base import ScheduleContext, SchedulingPolicy
from repro.core.resources import Allocation, ResourceVector
from repro.obs.tracer import NULL_TRACER, Tracer


class SiloDScheduler:
    """Algorithm 1: ``alloc = Policy.Schedule(jobs, totalResource, SiloDPerf)``.

    Parameters
    ----------
    policy:
        Any :class:`SchedulingPolicy` (FIFO, multi-resource SJF, Gavel).
    estimator:
        The enhanced performance estimator; defaults to SiloDPerf over the
        linear compute estimator.
    storage_aware:
        Set False to reproduce the *vanilla* (decoupled) configuration the
        paper compares against: the policy then allocates GPUs only and an
        external cache subsystem manages storage.
    tracer:
        Structured-event sink (``repro.obs``); every call to
        :meth:`schedule` emits one ``sched_decision`` event with the
        policy name, job counts, grant aggregates, and wall-clock
        decision latency. Defaults to the free no-op tracer.
    """

    def __init__(
        self,
        policy: SchedulingPolicy,
        estimator: SiloDPerfEstimator = None,
        storage_aware: bool = True,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.policy = policy
        self.estimator = estimator or SiloDPerfEstimator()
        self.storage_aware = storage_aware
        self.tracer = tracer
        #: Per-job policy scores from the most recent :meth:`schedule`
        #: call (merged across partitions). Read by the simulators to
        #: stamp ``decision_job`` provenance events; empty before the
        #: first round.
        self.last_scores: Dict[str, float] = {}
        #: Reference GPU generation: the one jobs are profiled on
        #: (speedup factor exactly 1.0). Updated by
        #: :meth:`enable_heterogeneity` from the cluster.
        self.default_generation: str = "V100"
        #: Generation -> GPU count on a mixed fleet; ``None`` while the
        #: cluster is homogeneous (the pre-heterogeneity behaviour).
        self.gpu_pools: Optional[Dict[str, int]] = None
        #: job_id -> assigned generation from the last round. Every
        #: running job has an entry (generation-naive policies get a
        #: deterministic default placement); read by the simulators for
        #: ``decision_job`` provenance.
        self.last_generations: Dict[str, str] = {}
        #: job_id -> {generation: f* MB/s} from the last round —
        #: the per-generation compute bounds the policy weighed.
        self.last_gen_scores: Dict[str, Dict[str, float]] = {}

    def enable_heterogeneity(self, cluster) -> None:
        """Adopt the cluster's generation mix (called by the simulators).

        Homogeneous clusters only update :attr:`default_generation` —
        numerics are untouched, so pre-heterogeneity runs stay
        bit-identical. Mixed fleets install a
        :class:`HetSiloDPerfEstimator` anchored at the cluster's
        reference generation and expose per-generation GPU pools to
        the policy.
        """
        gpu = getattr(cluster, "gpu", None)
        if gpu is not None:
            self.default_generation = gpu.name
        pools = getattr(cluster, "gpus_by_generation", None)
        if not pools or len(pools) <= 1:
            self.gpu_pools = None
            return
        self.gpu_pools = dict(pools)
        if not isinstance(self.estimator, HetSiloDPerfEstimator):
            self.estimator = HetSiloDPerfEstimator(
                speedups=perf_model.default_speedup_table(
                    reference=self.default_generation
                ),
                default_generation=self.default_generation,
                base_estimator=self.estimator.compute_estimator,
            )

    def schedule(
        self,
        jobs: Sequence[Job],
        total: ResourceVector,
        now_s: float = 0.0,
        effective_cache_mb: Optional[Callable[[Job], float]] = None,
        attained_service_s: Optional[Callable[[Job], float]] = None,
        effective_cache_map: Optional[Dict[str, float]] = None,
    ) -> Allocation:
        """Produce a joint allocation for the current job set.

        ``effective_cache_mb`` gives the policy a live view of each job's
        effective cache so remote-IO grants track instantaneous demands
        (§6); ``attained_service_s`` feeds service-based priorities
        (Tiresias-style LAS). Omit both for one-shot steady-state
        allocations. ``effective_cache_map`` is the optional dict view of
        the same effectiveness state (see
        :attr:`~repro.core.policies.base.ScheduleContext.effective_cache_map`);
        simulators pass it so per-job policy sweeps use plain lookups.
        """
        tracer = self.tracer
        # Wall-clock by design: ``latency_ms`` reports the *real* cost of
        # a decision round, not simulated time; it never feeds back into
        # scheduling, so determinism of the run is unaffected.
        # lint: disable=DET003
        t0 = time.perf_counter() if tracer.enabled else 0.0
        self.last_scores = {}
        self.last_gen_scores = {}
        self.last_generations = {}
        if isinstance(self.estimator, HetSiloDPerfEstimator):
            # Generation maps are per-round; stale entries from the
            # previous round must not leak into the new solve.
            self.estimator.assignments.clear()
        # The regular list is only needed when partitioning actually
        # happens — in the (common) all-regular case one pass suffices.
        irregular = [j for j in jobs if not j.regular]
        if not self.storage_aware or not irregular:
            allocation = self._schedule_pool(
                list(jobs),
                total,
                now_s,
                self.storage_aware,
                effective_cache_mb,
                attained_service_s,
                effective_cache_map,
            )
        else:
            regular = [j for j in jobs if j.regular]
            allocation = self._schedule_partitioned(
                regular,
                irregular,
                total,
                now_s,
                effective_cache_mb,
                attained_service_s,
                effective_cache_map,
            )
        if tracer.enabled:
            tracer.sched_decision(
                now_s,
                policy=self.policy.name,
                storage_aware=self.storage_aware,
                num_jobs=len(jobs),
                num_running=sum(
                    1 for g in allocation.gpus.values() if g > 0
                ),
                gpus_granted=sum(allocation.gpus.values()),
                cache_granted_mb=sum(allocation.cache.values()),
                io_granted_mbps=sum(allocation.remote_io.values()),
                latency_ms=units.seconds_to_ms(
                    time.perf_counter() - t0  # lint: disable=DET003
                ),
            )
        return allocation

    # ------------------------------------------------------------------

    def _schedule_pool(
        self,
        jobs: List[Job],
        total: ResourceVector,
        now_s: float,
        storage_aware: bool,
        effective_cache_mb: Optional[Callable[[Job], float]] = None,
        attained_service_s: Optional[Callable[[Job], float]] = None,
        effective_cache_map: Optional[Dict[str, float]] = None,
    ) -> Allocation:
        ctx = ScheduleContext(
            estimator=self.estimator,
            storage_aware=storage_aware,
            now_s=now_s,
            effective_cache_mb=effective_cache_mb,
            attained_service_s=attained_service_s,
            tracer=self.tracer,
            effective_cache_map=effective_cache_map,
            gpu_pools=self.gpu_pools,
        )
        allocation = self.policy.schedule(jobs, total, ctx)
        self.last_scores.update(ctx.job_scores)
        self.last_gen_scores.update(ctx.gen_scores)
        self.last_generations.update(ctx.gen_assignments)
        self._complete_generations(jobs, allocation)
        return allocation

    def _complete_generations(
        self, jobs: Sequence[Job], allocation: Allocation
    ) -> None:
        """Default generation placement for generation-naive policies.

        Heterogeneity-aware policies fill ``ctx.gen_assignments``
        themselves; for the rest (FIFO, SJF, vanilla Gavel) on a mixed
        fleet, running jobs are placed deterministically — largest GPU
        grant first (ties by job_id) onto the fastest pool with
        remaining whole-request capacity, overflow time-sharing the
        emptiest pool. This is bookkeeping for provenance/placement
        only: a naive policy's estimator still prices every GPU at the
        reference speed, which is exactly the pessimism the
        heterogeneity-aware objectives remove.
        """
        if self.gpu_pools is None:
            for job in jobs:
                self.last_generations.setdefault(
                    job.job_id, self.default_generation
                )
            return
        unassigned = [
            j
            for j in jobs
            if j.job_id not in self.last_generations
            and allocation.gpus_of(j.job_id) > 0
        ]
        if not unassigned:
            return
        speedups: Dict[str, float] = (
            self.estimator.speedups
            if isinstance(self.estimator, HetSiloDPerfEstimator)
            else {}
        )
        order = sorted(
            self.gpu_pools,
            key=lambda gen: (-speedups.get(gen, 1.0), gen),
        )
        remaining = dict(self.gpu_pools)
        for job in sorted(
            unassigned,
            key=lambda j: (-allocation.gpus_of(j.job_id), j.job_id),
        ):
            placed = None
            for gen in order:
                if remaining[gen] >= job.num_gpus:
                    placed = gen
                    break
            if placed is None:
                placed = max(
                    order, key=lambda gen: (remaining[gen], gen)
                )
            remaining[placed] = max(
                0, remaining[placed] - job.num_gpus
            )
            self.last_generations[job.job_id] = placed

    def _schedule_partitioned(
        self,
        regular: List[Job],
        irregular: List[Job],
        total: ResourceVector,
        now_s: float,
        effective_cache_mb: Optional[Callable[[Job], float]] = None,
        attained_service_s: Optional[Callable[[Job], float]] = None,
        effective_cache_map: Optional[Dict[str, float]] = None,
    ) -> Allocation:
        """§6: split cache/IO between a regular and an irregular pool.

        The partitions are sized by each group's aggregate GPU demand so
        neither pool starves; GPUs themselves remain a single pool handled
        by the policy (the partitioning in the paper concerns storage).
        """
        demand_reg = sum(j.num_gpus for j in regular)
        demand_irr = sum(j.num_gpus for j in irregular)
        frac_reg = (
            demand_reg / (demand_reg + demand_irr)
            if demand_reg + demand_irr > 0
            else 0.0
        )
        total_reg = ResourceVector(
            gpus=total.gpus * frac_reg,
            cache_mb=total.cache_mb * frac_reg,
            remote_io_mbps=total.remote_io_mbps * frac_reg,
        )
        total_irr = ResourceVector(
            gpus=total.gpus - total_reg.gpus,
            cache_mb=total.cache_mb - total_reg.cache_mb,
            remote_io_mbps=total.remote_io_mbps - total_reg.remote_io_mbps,
        )
        alloc_reg = self._schedule_pool(
            regular,
            total_reg,
            now_s,
            True,
            effective_cache_mb,
            attained_service_s,
            effective_cache_map,
        )
        alloc_irr = self._schedule_pool(
            irregular, total_irr, now_s, False, None, attained_service_s
        )
        # Irregular jobs fall back to the original policy/estimator and
        # share their partition's storage equally.
        running_irr = [
            j for j in irregular if alloc_irr.gpus_of(j.job_id) > 0
        ]
        if running_irr:
            cache_each = total_irr.cache_mb / len(running_irr)
            io_each = total_irr.remote_io_mbps / len(running_irr)
            for job in running_irr:
                dataset = job.dataset.name
                alloc_irr.grant_cache(
                    dataset,
                    min(
                        job.dataset.size_mb,
                        alloc_irr.cache_of(dataset) + cache_each,
                    ),
                )
                alloc_irr.grant_remote_io(job.job_id, io_each)
        return merge_allocations(alloc_reg, alloc_irr)


def merge_allocations(first: Allocation, second: Allocation) -> Allocation:
    """Combine two disjoint-pool allocations into one.

    GPU and IO grants are per job and must not collide; cache grants for a
    dataset appearing in both pools take the larger grant (cache is charged
    once per dataset).
    """
    merged = Allocation()
    for source in (first, second):
        for job_id, gpus in source.gpus.items():
            if job_id in merged.gpus:
                raise ValueError(f"job {job_id} allocated in both pools")
            merged.grant_gpus(job_id, gpus)
        for job_id, mbps in source.remote_io.items():
            merged.grant_remote_io(
                job_id, merged.remote_io_of(job_id) + mbps
            )
        for name, cache_mb in source.cache.items():
            merged.grant_cache(name, max(merged.cache_of(name), cache_mb))
    return merged
