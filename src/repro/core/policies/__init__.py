"""Scheduling policies: FIFO, multi-resource SJF, Gavel, greedy cache."""
