"""Scheduling-policy interface (Algorithm 1's ``Policy.Schedule``).

A policy maps (jobs, total resources, performance estimator) to an
:class:`~repro.core.resources.Allocation`. Policies run in one of two
modes:

* **storage-aware** (SiloD): the policy allocates GPUs, cache, and remote
  IO jointly, using the SiloD-enhanced estimator;
* **vanilla**: the policy allocates GPUs only (using the compute-only
  estimate), and an independent cache subsystem (Alluxio / CoorDL /
  Quiver) decides storage on its own — the decoupled design the paper
  argues against.

``allocate_storage_greedily`` is the shared storage step used by FIFO and
SJF in SiloD mode: place cache with Algorithm 2, then divide remote IO
across the induced demands.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Callable, Dict, List, Optional, Sequence

from repro.cluster.job import Job
from repro.core import perf_model
from repro.core.estimator import SiloDPerfEstimator
from repro.core.policies import io_share
from repro.core.policies.greedy import greedy_cache_allocation
from repro.core.resources import Allocation, ResourceVector
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.perf.backend import numpy_enabled, require_numpy


@dataclasses.dataclass
class ScheduleContext:
    """Everything a policy needs besides the job list and totals."""

    estimator: SiloDPerfEstimator = dataclasses.field(
        default_factory=SiloDPerfEstimator
    )
    storage_aware: bool = True
    now_s: float = 0.0
    #: A job's currently *effective* cached bytes (§6: policies inspect the
    #: effective cache size to compute instantaneous remote-IO demands).
    #: ``None`` means assume allocations are fully warm (steady state) —
    #: the right default for one-shot analytic uses of a policy.
    effective_cache_mb: Optional[Callable[[Job], float]] = None
    #: GPU-seconds of service a job has attained so far (Tiresias-style
    #: policies prioritise the least-attained job). ``None`` when the
    #: caller does not track progress; LAS then falls back to zero.
    attained_service_s: Optional[Callable[[Job], float]] = None
    #: Observability sink (``repro.obs``): policies may bump counters or
    #: emit events through it; defaults to the free no-op tracer.
    tracer: Tracer = NULL_TRACER
    #: Optional dict view behind ``effective_cache_mb`` (job_id →
    #: effective bytes, absent = 0.0). When a caller's effectiveness
    #: state already lives in a dict, passing it here lets the per-job
    #: hot loops use plain dict lookups instead of a Python callable —
    #: the two views must agree, and ``effective_cache_map`` wins.
    effective_cache_map: Optional[Dict[str, float]] = None
    #: Out-parameter: the score each policy ordered/sized jobs by this
    #: round (arrival rank for FIFO, the Eq 6/7 completion-time score
    #: for SJF, attained service for LAS, the max-min throughput target
    #: for Gavel). Policies fill it during ``schedule``; the decision-
    #: provenance layer (``repro.obs.prov``) carries it into the
    #: ``decision_job`` events.
    job_scores: Dict[str, float] = dataclasses.field(default_factory=dict)
    #: GPU pools by generation name (generation -> GPU count) on a
    #: mixed fleet; ``None`` on homogeneous clusters. Heterogeneity-
    #: aware policies treat each pool as a separate GPU capacity
    #: constraint when placing jobs on generations.
    gpu_pools: Optional[Dict[str, int]] = None
    #: Out-parameter: per-generation compute bounds the policy weighed
    #: this round (job_id -> {generation: f* MB/s}). Heterogeneity-
    #: aware policies must publish it (lint rule POL004); it reaches
    #: the ``decision_job`` provenance as ``f_star_gen_mbps``.
    gen_scores: Dict[str, Dict[str, float]] = dataclasses.field(
        default_factory=dict
    )
    #: Out-parameter: the generation each job was assigned to this
    #: round (job_id -> generation name). Filled by heterogeneity-aware
    #: policies; the scheduler completes it with a deterministic
    #: default assignment for generation-naive policies.
    gen_assignments: Dict[str, str] = dataclasses.field(
        default_factory=dict
    )

    def effective_hits_mb(self, job: Job, allocated_cache_mb: float) -> float:
        """Bytes of cache a job can hit *right now* under an allocation."""
        if self.effective_cache_map is not None:
            return min(
                allocated_cache_mb,
                self.effective_cache_map.get(job.job_id, 0.0),
            )
        if self.effective_cache_mb is None:
            return allocated_cache_mb
        return min(allocated_cache_mb, self.effective_cache_mb(job))


class SchedulingPolicy(abc.ABC):
    """Base class for FIFO / multi-resource SJF / Gavel."""

    #: Human-readable policy name used in reports.
    name: str = "policy"

    @abc.abstractmethod
    def schedule(
        self,
        jobs: Sequence[Job],
        total: ResourceVector,
        ctx: ScheduleContext,
    ) -> Allocation:
        """Produce a joint allocation for the given jobs."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def admit_in_order(
    ordered_jobs: Sequence[Job],
    total_gpus: float,
    allocation: Allocation,
    backfill: bool = True,
) -> List[Job]:
    """Admit whole jobs in priority order while GPUs remain.

    With ``backfill`` (default), a job that does not fit is skipped and the
    scan continues — the behaviour of SJF and of practical FIFO queues.
    Without it, admission stops at the first job that does not fit
    (head-of-line blocking).

    Returns the admitted jobs and records their GPU grants in
    ``allocation``.
    """
    admitted: List[Job] = []
    free = total_gpus
    for job in ordered_jobs:
        if job.num_gpus <= free + 1e-9:
            allocation.grant_gpus(job.job_id, job.num_gpus)
            admitted.append(job)
            free -= job.num_gpus
        elif not backfill:
            break
    return admitted


def instantaneous_io_demands(
    jobs: Sequence[Job],
    allocation: Allocation,
    ctx: ScheduleContext,
) -> Dict[str, float]:
    """Each running job's remote-IO demand at its compute-bound speed.

    Demand is Eq 2 evaluated at ``f*`` (scaled by the GPU grant) under the
    cache the job can *hit right now* — the effective slice of its
    allocation (§6). Without an effective-cache view this reduces to the
    steady-state demand.
    """
    jobs = list(jobs)
    n = len(jobs)
    gpu_map = allocation.gpus
    f_stars = ctx.estimator.compute_bound_batch(
        jobs, [gpu_map.get(job.job_id, 0.0) for job in jobs]
    )
    if n >= 8 and numpy_enabled():
        np = require_numpy()
        # Eq 2 elementwise: f* * (1 - min(1, hits/size)) — bit-identical
        # to perf_model.remote_io_demand on each element.
        eff_map = ctx.effective_cache_map
        cache_map = allocation.cache
        if eff_map is not None:
            # Same min() as effective_hits_mb, inlined to plain dict
            # lookups for the per-job sweep.
            hits = np.fromiter(
                (
                    min(
                        cache_map.get(job.dataset.name, 0.0),
                        eff_map.get(job.job_id, 0.0),
                    )
                    for job in jobs
                ),
                float,
                count=n,
            )
        else:
            hits = np.fromiter(
                (
                    ctx.effective_hits_mb(
                        job, cache_map.get(job.dataset.name, 0.0)
                    )
                    for job in jobs
                ),
                float,
                count=n,
            )
        size = np.fromiter(
            (job.dataset.size_mb for job in jobs), float, count=n
        )
        demand_arr = np.asarray(f_stars, float) * (
            1.0 - np.minimum(1.0, hits / size)
        )
        return dict(zip((job.job_id for job in jobs), demand_arr.tolist()))
    demands: Dict[str, float] = {}
    for job, f_star in zip(jobs, f_stars):
        hits_mb = ctx.effective_hits_mb(
            job, allocation.cache_of(job.dataset.name)
        )
        demands[job.job_id] = perf_model.remote_io_demand(
            f_star, hits_mb, job.dataset.size_mb
        )
    return demands


def allocate_storage_greedily(
    running_jobs: Sequence[Job],
    total: ResourceVector,
    allocation: Allocation,
    ctx: ScheduleContext,
    io_priority_order: Optional[Sequence[str]] = None,
) -> None:
    """SiloD's storage step for order-based policies (FIFO, SJF).

    Cache goes to the most cache-efficient datasets (Algorithm 2); remote
    IO is then divided over the induced *instantaneous* demands — max-min
    waterfilling by default, or full-demand-first in ``io_priority_order``
    when the policy has a job ordering to respect.
    """
    for name, cache_mb in greedy_cache_allocation(
        running_jobs, total.cache_mb
    ).items():
        allocation.grant_cache(name, cache_mb)
    demands = instantaneous_io_demands(running_jobs, allocation, ctx)
    if ctx.tracer.enabled:
        ctx.tracer.metrics.inc("policy.storage_rounds")
        ctx.tracer.metrics.set_gauge(
            "policy.last_io_demand_mbps", sum(demands.values())
        )
    if io_priority_order is not None:
        grants = io_share.priority_fill(
            io_priority_order, demands, total.remote_io_mbps
        )
    else:
        grants = io_share.max_min_waterfill(demands, total.remote_io_mbps)
    for job_id, mbps in grants.items():
        allocation.grant_remote_io(job_id, mbps)
