"""Multi-resource Shortest-Job-First (§5.1, Eq 6-7).

Tetris and Tiresias are unified by scoring each job with the weighted sum
of its resource demand multiplied by its estimated duration:

    score = min_R  (sum_t w_t * R_t) * numSteps * stepDataSize / perf(j, R)

with ``w_t = 1 / totalResource[t]``. Jobs with the least score run first.

In SiloD mode ``perf`` is SiloDPerf (Eq 7) and R spans GPUs, cache, and
remote IO. The inner minimisation has a closed form:

* lowering the loading throughput ``f`` below ``f*`` never helps — the IO
  cost term ``w_b * b * duration = w_b * (1 - c/d) * W`` is independent of
  ``f`` while every other term grows as ``f`` shrinks — so ``f = f*``;
* at ``f = f*`` the cost is **linear in the cache grant c**, so the optimum
  sits at an endpoint: ``c = 0`` or ``c = min(d, C)``.

Scoring therefore evaluates two candidate allocations per job.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.cluster.job import Job
from repro.core.estimator import SiloDPerfEstimator
from repro.core.policies.base import (
    ScheduleContext,
    SchedulingPolicy,
    admit_in_order,
    allocate_storage_greedily,
)
from repro.core.resources import (
    Allocation,
    ResourceVector,
    tetris_weights,
)


def sjf_score(
    job: Job,
    total: ResourceVector,
    estimator: SiloDPerfEstimator,
    storage_aware: bool,
) -> float:
    """Eq 6 (vanilla) / Eq 7 (SiloD) score; lower runs first."""
    weights = tetris_weights(total)
    f_star = estimator.compute_bound(job, job.num_gpus)
    if f_star <= 0:
        return float("inf")
    if not storage_aware or not job.regular:
        # Vanilla multi-resource SJF: R is compute only, duration at f*.
        demand = ResourceVector(gpus=job.num_gpus)
        return demand.weighted_sum(weights) * job.total_work_mb / f_star

    candidates = candidate_allocations(job, total)
    best = float("inf")
    for resources in candidates:
        throughput = estimator.estimate_vector(job, resources)
        if throughput <= 0:
            continue
        duration = job.total_work_mb / throughput
        best = min(best, resources.weighted_sum(weights) * duration)
    return best


def candidate_allocations(
    job: Job, total: ResourceVector
) -> Tuple[ResourceVector, ...]:
    """The two endpoint allocations of Eq 7's inner minimisation.

    Both run the job at ``f*`` (full GPUs, just-enough remote IO); they
    differ in whether the dataset is cached as fully as the cluster allows.
    """
    d = job.dataset.size_mb
    f_star = job.ideal_throughput_mbps
    no_cache = ResourceVector(
        gpus=job.num_gpus,
        cache_mb=0.0,
        remote_io_mbps=min(f_star, total.remote_io_mbps),
    )
    cache_mb = min(d, total.cache_mb)
    full_cache = ResourceVector(
        gpus=job.num_gpus,
        cache_mb=cache_mb,
        remote_io_mbps=min(
            f_star * (1.0 - cache_mb / d), total.remote_io_mbps
        ),
    )
    return (no_cache, full_cache)


class SjfPolicy(SchedulingPolicy):
    """Preemptive multi-resource SJF.

    On every scheduling round all active jobs are (re)scored and admitted
    in ascending score order — running jobs with worse scores than waiting
    ones are preempted, as in Tiresias. In SiloD mode, cache then goes to
    the most cache-efficient datasets among admitted jobs and remote IO is
    granted full-demand-first in score order (short jobs are never starved
    by long ones).
    """

    name = "sjf"

    def order(
        self,
        jobs: Sequence[Job],
        total: ResourceVector,
        ctx: ScheduleContext,
    ) -> List[Job]:
        """Jobs in ascending Eq 6/7 score."""
        scored = [
            (sjf_score(job, total, ctx.estimator, ctx.storage_aware), job)
            for job in jobs
        ]
        scored.sort(key=lambda pair: (pair[0], pair[1].job_id))
        return [job for _score, job in scored]

    def schedule(
        self,
        jobs: Sequence[Job],
        total: ResourceVector,
        ctx: ScheduleContext,
    ) -> Allocation:
        allocation = Allocation()
        for job in jobs:
            ctx.job_scores[job.job_id] = sjf_score(
                job, total, ctx.estimator, ctx.storage_aware
            )
        ordered = self.order(jobs, total, ctx)
        admitted = admit_in_order(ordered, total.gpus, allocation)
        if ctx.storage_aware and admitted:
            allocate_storage_greedily(
                admitted,
                total,
                allocation,
                ctx,
                io_priority_order=[j.job_id for j in ordered],
            )
        return allocation
