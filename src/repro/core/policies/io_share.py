"""Remote-IO bandwidth division primitives.

Remote IO is exclusive per job (§6), so once cache is placed the scheduler
must divide the egress bandwidth among running jobs. Two divisions are
used in the paper's systems:

* **max-min waterfilling** on the jobs' demands — the "simple fair share
  algorithm" the baselines (and the IO-allocation-disabled ablation in
  §7.2) use, and SiloD's default once a policy has fixed cache;
* **priority-ordered filling** — grant each job its full demand in policy
  order (used by SJF so short jobs are never IO-starved by long ones).
"""

from __future__ import annotations

from typing import Dict, Sequence


def max_min_waterfill(
    demands: Dict[str, float], capacity: float
) -> Dict[str, float]:
    """Max-min fair division of ``capacity`` among ``demands``.

    Classic progressive filling: repeatedly give every unsatisfied job an
    equal share; jobs whose demand is met release their surplus. Jobs never
    receive more than their demand, and the result is the unique max-min
    fair allocation.
    """
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    grants = {job_id: 0.0 for job_id in demands}
    remaining = capacity
    active = sorted(
        (job_id for job_id, d in demands.items() if d > 0),
        key=lambda job_id: (demands[job_id], job_id),
    )
    while active and remaining > 1e-12:
        share = remaining / len(active)
        # The smallest remaining demand bounds this round's equal share.
        satisfied = []
        for job_id in active:
            need = demands[job_id] - grants[job_id]
            if need <= share + 1e-15:
                grants[job_id] = demands[job_id]
                remaining -= need
                satisfied.append(job_id)
        if not satisfied:
            # No demand fits inside the equal share: split evenly and stop.
            for job_id in active:
                grants[job_id] += share
            remaining = 0.0
            break
        done = set(satisfied)
        active = [job_id for job_id in active if job_id not in done]
    return grants


def priority_fill(
    ordered_job_ids: Sequence[str],
    demands: Dict[str, float],
    capacity: float,
) -> Dict[str, float]:
    """Grant full demands in priority order until capacity is exhausted."""
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    grants = {job_id: 0.0 for job_id in ordered_job_ids}
    remaining = capacity
    for job_id in ordered_job_ids:
        grant = min(demands.get(job_id, 0.0), remaining)
        grants[job_id] = grant
        remaining -= grant
        if remaining <= 0:
            break
    return grants


def equal_split(job_ids: Sequence[str], capacity: float) -> Dict[str, float]:
    """Divide capacity equally regardless of demand (the R_equal of Eq 8)."""
    if not job_ids:
        return {}
    share = capacity / len(job_ids)
    return {job_id: share for job_id in job_ids}
