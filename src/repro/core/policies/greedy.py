"""Algorithm 2: the greedy cache-allocation policy.

For schedulers that are not performance-aware (FIFO in the paper), SiloD
cannot change the scheduling order, but it can still exploit heterogeneous
cache efficiency: allocate cache to the datasets with the highest
**dataset-level cache efficiency** (the sum of the sharing jobs' ``f*/d``,
§6) until the cache is full, minimising the cluster's remote IO consumption
in a best-effort manner.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.cluster.job import Job
from repro.core import perf_model
from repro.perf.backend import numpy_enabled, require_numpy

#: Below this many jobs the scalar per-dataset sums win; matches the
#: estimator's batch cutoff.
_BATCH_MIN_JOBS = 8


def group_jobs_by_dataset(jobs: Iterable[Job]) -> Dict[str, List[Job]]:
    """Group jobs by dataset name (cache is charged once per dataset, §6)."""
    groups: Dict[str, List[Job]] = {}
    for job in jobs:
        groups.setdefault(job.dataset.name, []).append(job)
    return groups


def dataset_efficiencies(jobs: Iterable[Job]) -> List[Tuple[str, float, float]]:
    """Per-dataset ``(name, cache_efficiency, size_mb)``, best first.

    Cache efficiency is in MB/s of remote IO saved per MB of cache; ties
    break on dataset name for determinism.
    """
    jobs = list(jobs)
    if len(jobs) >= _BATCH_MIN_JOBS and numpy_enabled():
        rows = _dataset_efficiencies_batch(jobs)
        if rows is not None:
            rows.sort(key=lambda row: (-row[1], row[0]))
            return rows
    rows = []
    for name, group in group_jobs_by_dataset(jobs).items():
        size_mb = group[0].dataset.size_mb
        efficiency = perf_model.dataset_cache_efficiency(
            (j.ideal_throughput_mbps for j in group), size_mb
        )
        rows.append((name, efficiency, size_mb))
    rows.sort(key=lambda row: (-row[1], row[0]))
    return rows


def _dataset_efficiencies_batch(
    jobs: List[Job],
) -> Optional[List[Tuple[str, float, float]]]:
    """Vectorized ``dataset_efficiencies`` rows (unsorted).

    One elementwise ``f*/d`` division (bit-identical to the scalar
    ``cache_efficiency`` per job — every job in a group is divided by the
    group's *first* job's size, as the scalar path does), then a single
    ordered Python pass accumulates per dataset so each group's
    left-to-right sum order is exactly the scalar ``sum()``'s. Returns
    ``None`` for inputs the scalar path rejects (non-positive sizes,
    negative throughputs), so its ``ValueError`` fires unchanged.
    """
    np = require_numpy()
    n = len(jobs)
    first_size: Dict[str, float] = {}
    for job in jobs:
        first_size.setdefault(job.dataset.name, job.dataset.size_mb)
    thr = np.fromiter(
        (job.ideal_throughput_mbps for job in jobs), float, count=n
    )
    size = np.fromiter(
        (first_size[job.dataset.name] for job in jobs), float, count=n
    )
    if not (size > 0).all() or (thr < 0).any():
        return None
    per_job = (thr / size).tolist()
    acc: Dict[str, List[float]] = {}
    for job, efficiency in zip(jobs, per_job):
        name = job.dataset.name
        entry = acc.get(name)
        if entry is None:
            # sum() starts from 0; 0.0 + x is exact for every float.
            acc[name] = [0.0 + efficiency, first_size[name]]
        else:
            entry[0] += efficiency
    return [(name, vals[0], vals[1]) for name, vals in acc.items()]


def greedy_cache_allocation(
    jobs: Iterable[Job], total_cache_mb: float
) -> Dict[str, float]:
    """Algorithm 2: fill the cache with the most cache-efficient datasets.

    Unlike Quiver, partial caching is allowed — Eq 4 shows a job benefits
    from any cached fraction — so the last dataset admitted may receive
    whatever space remains.

    Returns ``{dataset_name: cache_mb}`` (datasets receiving 0 are omitted).
    """
    if total_cache_mb < 0:
        raise ValueError("total cache must be non-negative")
    allocation: Dict[str, float] = {}
    remaining = total_cache_mb
    for name, _efficiency, size_mb in dataset_efficiencies(jobs):
        if remaining <= 0:
            break
        grant = min(size_mb, remaining)
        if grant > 0:
            allocation[name] = grant
            remaining -= grant
    return allocation
