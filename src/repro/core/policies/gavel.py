"""Gavel max-min fairness (§5.2, Eq 8-9).

Gavel maximises the minimum, over jobs, of the job's throughput relative to
what it would get under an **equal division** of the cluster
(``R_equal``). Vanilla Gavel sees only compute, so it reduces to
proportional GPU time-sharing; SiloD-Gavel replaces ``perf`` with SiloDPerf
and adds cache and remote IO as allocation dimensions (Eq 9).

SiloDPerf is quasi-concave in the allocation — the super-level set
"throughput >= T" is ``{x >= T/f*} ∩ {b >= T (1 - c/d)}``, an intersection
of half-spaces — so the max-min programme is solved *exactly* by bisection
on the common ratio ``t``:

* GPU feasibility is linear: ``sum_j (T_j / f*_j) g_j <= G``.
* Storage feasibility is a one-dimensional greedy: to minimise total
  remote IO subject to the cache budget, give cache to the datasets with
  the highest marginal saving ``sum_{j on D} T_j / d_D`` (cache efficiency
  evaluated at the targets), then check ``sum_j b_j <= B``.

Lexicographic (progressive-filling) max-min: jobs whose ``f*`` cap binds at
the current ratio are frozen at ``f*`` and the ratio keeps rising for the
rest; when a shared resource binds, the loop ends and remaining slack is
handed out in a final filling pass.

The joint solver is vectorised with numpy: it runs on every scheduling
round of cluster-scale simulations, where the active job set reaches
hundreds of jobs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.cluster.job import Job
from repro.core import perf_model
from repro.core.estimator import SiloDPerfEstimator
from repro.core.policies.base import ScheduleContext, SchedulingPolicy
from repro.core.resources import Allocation, ResourceVector

#: Bisection iterations (relative precision ~1e-9 on the ratio).
_ITERS = 40
_EPS = 1e-9


@dataclasses.dataclass(frozen=True)
class EqualShare:
    """A job's slice of ``R_equal`` and its performance under it."""

    gpus: float
    cache_mb: float
    remote_io_mbps: float
    perf_mbps: float


def equal_share(
    job: Job,
    num_jobs: int,
    total: ResourceVector,
    estimator: SiloDPerfEstimator,
    storage_aware: bool,
) -> EqualShare:
    """``R_equal``: the cluster divided evenly among ``num_jobs`` jobs.

    GPU share is capped at the job's request; cache share at its dataset
    size. Vanilla Gavel's equal-share performance ignores storage.
    """
    if num_jobs < 1:
        raise ValueError("need at least one job")
    gpus = min(job.num_gpus, total.gpus / num_jobs)
    cache_mb = min(job.dataset.size_mb, total.cache_mb / num_jobs)
    io_mbps = total.remote_io_mbps / num_jobs
    if storage_aware and job.regular:
        perf = estimator.estimate(job, gpus, cache_mb, io_mbps)
    else:
        perf = estimator.compute_bound(job, gpus)
    return EqualShare(gpus, cache_mb, io_mbps, perf)


class _JointArrays:
    """Vectorised view of the job set used by the joint solver."""

    def __init__(
        self,
        jobs: Sequence[Job],
        shares: Dict[str, EqualShare],
        ctx: ScheduleContext,
    ) -> None:
        estimator = ctx.estimator
        self.jobs = list(jobs)
        n = len(self.jobs)
        self.f_star = np.array(
            [estimator.compute_bound(j, j.num_gpus) for j in self.jobs]
        )
        self.perf_eq = np.array(
            [max(shares[j.job_id].perf_mbps, 1e-12) for j in self.jobs]
        )
        self.gpus = np.array([float(j.num_gpus) for j in self.jobs])
        self.d = np.array([j.dataset.size_mb for j in self.jobs])
        # Effective cached bytes visible right now (§6): the IO cost of a
        # target must be paid against hits the job can actually take.
        # Without an effective view, assume warm caches (steady state).
        if ctx.effective_cache_mb is None:
            self.eff = self.d.copy()
        else:
            self.eff = np.array(
                [ctx.effective_cache_mb(j) for j in self.jobs]
            )
        names: List[str] = []
        index: Dict[str, int] = {}
        self.ds_index = np.empty(n, dtype=np.intp)
        ds_sizes: List[float] = []
        for i, job in enumerate(self.jobs):
            name = job.dataset.name
            if name not in index:
                index[name] = len(names)
                names.append(name)
                ds_sizes.append(job.dataset.size_mb)
            self.ds_index[i] = index[name]
        self.ds_names = names
        self.ds_size = np.array(ds_sizes)

    def cache_plan_with_budget(
        self, targets: np.ndarray, budget_mb: float
    ) -> np.ndarray:
        """IO-minimising cache grant per dataset for the given targets.

        Greedy by marginal saving ``sum_{j on D} T_j / d_D``, vectorised
        via argsort + cumulative sums over the dataset sizes.
        """
        saving = np.zeros(len(self.ds_size))
        np.add.at(saving, self.ds_index, targets / self.d)
        order = np.argsort(-saving, kind="stable")
        sizes = self.ds_size[order]
        before = np.concatenate(([0.0], np.cumsum(sizes)[:-1]))
        grants_sorted = np.clip(budget_mb - before, 0.0, sizes)
        grants = np.empty_like(grants_sorted)
        grants[order] = grants_sorted
        return grants

    def miss_ratios(self, cache_grants: np.ndarray) -> np.ndarray:
        """Per-job instantaneous miss ratios under a cache plan.

        Hits are limited to the *effective* slice of the plan:
        ``min(grant, effective) / d``.
        """
        hits = np.minimum(cache_grants[self.ds_index], self.eff)
        return 1.0 - np.minimum(1.0, hits / self.d)

    def total_remote_io(
        self, targets: np.ndarray, cache_grants: np.ndarray
    ) -> float:
        """Total remote IO demand at the targets under a cache plan."""
        return float(np.sum(targets * self.miss_ratios(cache_grants)))


class GavelPolicy(SchedulingPolicy):
    """Max-min fairness over (GPU share, cache, remote IO)."""

    name = "gavel"

    def schedule(
        self,
        jobs: Sequence[Job],
        total: ResourceVector,
        ctx: ScheduleContext,
    ) -> Allocation:
        allocation = Allocation()
        if not jobs:
            return allocation
        shares = self._normalisers(jobs, total, ctx)
        if ctx.storage_aware:
            self._schedule_joint(jobs, total, ctx, shares, allocation)
        else:
            self._schedule_compute_only(jobs, total, shares, allocation, ctx)
        return allocation

    def _normalisers(
        self,
        jobs: Sequence[Job],
        total: ResourceVector,
        ctx: ScheduleContext,
    ) -> Dict[str, EqualShare]:
        """Per-job normalisation of the max-min objective.

        Gavel's default normalises by the equal-division performance
        (Eq 8), scaled by the job's fair-share weight (a weight-2 job is
        entitled to twice the equal share). Subclasses substitute other
        normalisers to express other Gavel objectives (e.g. finish-time
        fairness normalises by the job's exclusive-run performance).
        """
        shares = {}
        for job in jobs:
            share = equal_share(
                job, len(jobs), total, ctx.estimator, ctx.storage_aware
            )
            # Scaling by weight 1.0 is the identity, so the weighted
            # share is built unconditionally (no float-equality test).
            shares[job.job_id] = EqualShare(
                gpus=share.gpus,
                cache_mb=share.cache_mb,
                remote_io_mbps=share.remote_io_mbps,
                perf_mbps=share.perf_mbps * job.weight,
            )
        return shares

    # ------------------------------------------------------------------
    # Vanilla Gavel: GPUs only.
    # ------------------------------------------------------------------

    def _schedule_compute_only(
        self,
        jobs: Sequence[Job],
        total: ResourceVector,
        shares: Dict[str, EqualShare],
        allocation: Allocation,
        ctx: ScheduleContext,
    ) -> None:
        """Progressive filling of GPU shares; ratio is x_j / x_eq_j."""
        active = list(jobs)
        grants: Dict[str, float] = {job.job_id: 0.0 for job in jobs}
        free_gpus = total.gpus
        while active and free_gpus > 1e-9:
            denom = sum(shares[j.job_id].gpus for j in active)
            if denom <= 0:
                break
            headroom = min(
                (j.num_gpus - grants[j.job_id]) / shares[j.job_id].gpus
                for j in active
            )
            step = min(headroom, free_gpus / denom)
            for job in active:
                grants[job.job_id] += step * shares[job.job_id].gpus
            free_gpus -= step * denom
            saturated = [
                j for j in active if grants[j.job_id] >= j.num_gpus - 1e-9
            ]
            if not saturated:
                break
            active = [j for j in active if j not in saturated]
        for job_id, gpus in grants.items():
            allocation.grant_gpus(job_id, gpus)
            ctx.job_scores[job_id] = gpus

    # ------------------------------------------------------------------
    # SiloD-Gavel: joint GPU + cache + IO max-min (Eq 9).
    # ------------------------------------------------------------------

    def _schedule_joint(
        self,
        jobs: Sequence[Job],
        total: ResourceVector,
        ctx: ScheduleContext,
        shares: Dict[str, EqualShare],
        allocation: Allocation,
    ) -> None:
        arrays = _JointArrays(jobs, shares, ctx)
        n = len(arrays.jobs)
        frozen = np.zeros(n, dtype=bool)
        targets = np.zeros(n)

        while not frozen.all():
            active = ~frozen
            ratio = self._bisect_ratio(arrays, frozen, targets, total)
            proposed = ratio * arrays.perf_eq
            capped = active & (
                proposed >= arrays.f_star * (1.0 - 1e-6)
            )
            if capped.any():
                targets[capped] = arrays.f_star[capped]
                frozen |= capped
                continue
            targets[active] = proposed[active]
            frozen[:] = True

        for i, job in enumerate(arrays.jobs):
            ctx.job_scores[job.job_id] = float(targets[i])

        cache_grants = arrays.cache_plan_with_budget(targets, total.cache_mb)
        for k, name in enumerate(arrays.ds_names):
            if cache_grants[k] > 0:
                allocation.grant_cache(name, float(cache_grants[k]))
        io_grants = targets * arrays.miss_ratios(cache_grants)
        used_io = float(np.sum(io_grants))
        with np.errstate(divide="ignore", invalid="ignore"):
            fractions = np.where(
                arrays.f_star > 0,
                np.minimum(1.0, targets / arrays.f_star),
                0.0,
            )
        for i, job in enumerate(arrays.jobs):
            allocation.grant_gpus(job.job_id, float(fractions[i] * arrays.gpus[i]))
            allocation.grant_remote_io(job.job_id, float(io_grants[i]))
        self._distribute_slack(jobs, total, allocation, ctx, used_io)

    def _feasible(
        self,
        ratio: float,
        arrays: _JointArrays,
        frozen: np.ndarray,
        frozen_targets: np.ndarray,
        total: ResourceVector,
    ) -> bool:
        """Whether active jobs can all reach ``ratio`` x equal share."""
        targets = np.where(
            frozen, frozen_targets, ratio * arrays.perf_eq
        )
        active = ~frozen
        if np.any(
            targets[active] > arrays.f_star[active] * (1.0 + _EPS)
        ):
            return False
        gpu_needed = float(
            np.sum(targets / arrays.f_star * arrays.gpus)
        )
        if gpu_needed > total.gpus * (1.0 + _EPS):
            return False
        cache_grants = arrays.cache_plan_with_budget(
            targets, total.cache_mb
        )
        return (
            arrays.total_remote_io(targets, cache_grants)
            <= total.remote_io_mbps * (1.0 + _EPS)
        )

    def _bisect_ratio(
        self,
        arrays: _JointArrays,
        frozen: np.ndarray,
        frozen_targets: np.ndarray,
        total: ResourceVector,
    ) -> float:
        """Largest common ratio every active job can reach."""
        active = ~frozen
        hi = float(
            np.min(arrays.f_star[active] / arrays.perf_eq[active])
        )
        if self._feasible(hi, arrays, frozen, frozen_targets, total):
            return hi
        lo = 0.0
        for _ in range(_ITERS):
            mid = (lo + hi) / 2.0
            if self._feasible(mid, arrays, frozen, frozen_targets, total):
                lo = mid
            else:
                hi = mid
        return lo

    def _distribute_slack(
        self,
        jobs: Sequence[Job],
        total: ResourceVector,
        allocation: Allocation,
        ctx: ScheduleContext,
        used_io: float,
    ) -> None:
        """Hand leftover GPUs/IO to jobs in ascending-throughput order.

        After the max-min targets are met, GPU or IO slack can remain (e.g.
        when cache fully covers a dataset). Filling it raises utilisation
        without lowering anyone's ratio. Extra GPUs go only as far as a
        job's storage can feed them — over-feeding IO-bound jobs is the
        GPU-underutilisation failure the paper pins on vanilla Gavel.
        """
        estimator = ctx.estimator
        free_gpus = total.gpus - sum(allocation.gpus.values())
        free_io = total.remote_io_mbps - used_io
        if free_gpus <= 1e-9 and free_io <= 1e-9:
            return
        by_throughput = sorted(
            jobs,
            key=lambda j: estimator.estimate(
                j,
                allocation.gpus_of(j.job_id),
                allocation.cache_of(j.dataset.name),
                allocation.remote_io_of(j.job_id),
            ),
        )
        for job in by_throughput:
            # Extra IO first: it raises what the job can load.
            f_star_full = estimator.compute_bound(job, job.num_gpus)
            hits_mb = ctx.effective_hits_mb(
                job, allocation.cache_of(job.dataset.name)
            )
            demand = perf_model.remote_io_demand(
                f_star_full, hits_mb, job.dataset.size_mb
            )
            io_now = allocation.remote_io_of(job.job_id)
            extra_io = min(free_io, max(0.0, demand - io_now))
            if extra_io > 1e-9:
                io_now += extra_io
                allocation.grant_remote_io(job.job_id, io_now)
                free_io -= extra_io
            # Then GPUs, but only as far as storage can feed them.
            achievable = perf_model.silod_perf(
                f_star_full, io_now, hits_mb, job.dataset.size_mb
            )
            fraction = (
                min(1.0, achievable / f_star_full) if f_star_full > 0 else 0.0
            )
            gpus_now = allocation.gpus_of(job.job_id)
            extra_gpus = min(
                free_gpus, max(0.0, fraction * job.num_gpus - gpus_now)
            )
            if extra_gpus > 1e-9:
                allocation.grant_gpus(job.job_id, gpus_now + extra_gpus)
                free_gpus -= extra_gpus
            if free_gpus <= 1e-9 and free_io <= 1e-9:
                break


def fairness_ratio(
    jobs: Sequence[Job],
    throughputs: Dict[str, float],
    total: ResourceVector,
    estimator: SiloDPerfEstimator,
    storage_aware: bool = True,
    num_jobs: int = None,
) -> float:
    """Eq 8's objective value: ``min_j perf_j / perf_j(R_equal)``.

    Used by the simulators to report Figure 13's fairness-ratio timeline
    for any scheduler/cache combination: each job's achieved throughput is
    compared with what it would get under an equal division of all
    resources (with uniform caching — the reference is system-independent).

    The simulators evaluate the min over jobs past their first epoch (the
    delayed-effectiveness warmup is a bounded transient every system pays
    identically; §6 measures >91% of cached data effective) while still
    dividing ``R_equal`` by the full running-job count — pass that count
    as ``num_jobs``.
    """
    if not jobs:
        return float("nan")
    n = num_jobs if num_jobs is not None else len(jobs)
    ratios = []
    for job in jobs:
        share = equal_share(job, n, total, estimator, storage_aware)
        if share.perf_mbps <= 0:
            continue
        ratios.append(throughputs.get(job.job_id, 0.0) / share.perf_mbps)
    return min(ratios) if ratios else float("nan")
