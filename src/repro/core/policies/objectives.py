"""Additional scheduling objectives in the SiloD framework (§5.2).

The paper notes that the Gavel extension "can not only support the
max-min fairness objective but also all other objectives supported by
Gavel". Two representative ones are implemented here, both consuming the
same SiloDPerf machinery:

* :class:`MaxTotalThroughputPolicy` — maximise the cluster's aggregate
  training throughput (Gavel's utilisation objective). With SiloDPerf
  the optimum has a clean greedy structure: place cache on the most
  cache-efficient datasets (that maximises the egress saved, i.e. the
  extra throughput the same bandwidth can carry), then spend the egress
  budget on the jobs with the *lowest miss ratio* — each MB/s of their
  remote IO buys ``1/miss`` MB/s of training.
* :class:`FinishTimeFairnessPolicy` — Themis-style finish-time fairness:
  maximise the minimum, over jobs, of the job's throughput relative to
  what an exclusive ``1/n`` time slice of the whole cluster would give
  it. Implemented by swapping the max-min normaliser of
  :class:`~repro.core.policies.gavel.GavelPolicy`.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.cluster.job import Job
from repro.core import perf_model
from repro.core.policies.base import ScheduleContext, SchedulingPolicy
from repro.core.policies.gavel import EqualShare, GavelPolicy
from repro.core.policies.greedy import greedy_cache_allocation
from repro.core.resources import Allocation, ResourceVector


class MaxTotalThroughputPolicy(SchedulingPolicy):
    """Maximise aggregate training throughput (cluster utilisation)."""

    name = "max-throughput"

    def schedule(
        self,
        jobs: Sequence[Job],
        total: ResourceVector,
        ctx: ScheduleContext,
    ) -> Allocation:
        allocation = Allocation()
        if not jobs:
            return allocation
        if not ctx.storage_aware:
            # Compute-only: every GPU produces throughput for any job, so
            # pack jobs by descending per-GPU throughput.
            ranked = sorted(
                jobs,
                key=lambda j: -ctx.estimator.compute_bound(j, j.num_gpus)
                / j.num_gpus,
            )
            for job in ranked:
                ctx.job_scores[job.job_id] = (
                    ctx.estimator.compute_bound(job, job.num_gpus)
                    / job.num_gpus
                )
            free = total.gpus
            for job in ranked:
                if job.num_gpus <= free:
                    allocation.grant_gpus(job.job_id, job.num_gpus)
                    free -= job.num_gpus
            return allocation

        # Storage-aware: cache by efficiency (Algorithm 2 maximises the
        # egress saved), then admit jobs by *multi-resource density* —
        # achievable throughput per normalised unit of (GPUs + egress)
        # consumed, the Tetris packing heuristic specialised to
        # SiloDPerf's two consumable resources.
        for name, cache_mb in greedy_cache_allocation(
            jobs, total.cache_mb
        ).items():
            allocation.grant_cache(name, cache_mb)

        def miss_ratio(job: Job) -> float:
            hits = ctx.effective_hits_mb(
                job, allocation.cache_of(job.dataset.name)
            )
            return perf_model.miss_ratio(hits, job.dataset.size_mb)

        def density(job: Job) -> float:
            f_star = ctx.estimator.compute_bound(job, job.num_gpus)
            io_cost = f_star * miss_ratio(job)
            gpu_share = job.num_gpus / total.gpus if total.gpus else 0.0
            io_share = (
                io_cost / total.remote_io_mbps
                if total.remote_io_mbps
                else 0.0
            )
            weight = gpu_share + io_share
            return f_star / weight if weight > 0 else float("inf")

        ranked = sorted(jobs, key=lambda j: (-density(j), j.job_id))
        for job in ranked:
            ctx.job_scores[job.job_id] = density(job)
        free_gpus = total.gpus
        free_io = total.remote_io_mbps
        for job in ranked:
            if job.num_gpus > free_gpus:
                continue
            f_star = ctx.estimator.compute_bound(job, job.num_gpus)
            miss = miss_ratio(job)
            need_io = f_star * miss
            grant_io = min(need_io, free_io)
            # Admit even when starved of IO: cache hits still produce
            # throughput, and an idle GPU never does.
            allocation.grant_gpus(job.job_id, job.num_gpus)
            allocation.grant_remote_io(job.job_id, grant_io)
            free_gpus -= job.num_gpus
            free_io -= grant_io
        return allocation


class FinishTimeFairnessPolicy(GavelPolicy):
    """Themis-style finish-time fairness on SiloDPerf.

    A job's *fair finish time* is what it would reach receiving a ``1/n``
    time slice of the whole cluster exclusively; the policy max-mins each
    job's throughput against that reference. Relative to plain max-min
    fairness, the normaliser favours jobs that would run fast alone
    (large exclusive throughput), i.e. it penalises slowing down jobs
    that have the most to lose — Themis's "sharing incentive".
    """

    name = "finish-time-fairness"

    def _normalisers(
        self,
        jobs: Sequence[Job],
        total: ResourceVector,
        ctx: ScheduleContext,
    ) -> Dict[str, EqualShare]:
        n = len(jobs)
        shares: Dict[str, EqualShare] = {}
        for job in jobs:
            gpus = min(job.num_gpus, total.gpus)
            cache_mb = min(job.dataset.size_mb, total.cache_mb)
            io = total.remote_io_mbps
            if ctx.storage_aware and job.regular:
                exclusive = ctx.estimator.estimate(job, gpus, cache_mb, io)
            else:
                exclusive = ctx.estimator.compute_bound(job, gpus)
            shares[job.job_id] = EqualShare(
                gpus=gpus / n,
                cache_mb=cache_mb / n,
                remote_io_mbps=io / n,
                perf_mbps=max(exclusive / n, 1e-12),
            )
        return shares
