"""Least-Attained-Service scheduling (Tiresias' Gittins-free variant).

Tiresias [34] — one of the schedulers the paper's multi-resource SJF
unifies — prioritises jobs by the GPU service they have *attained*: jobs
that have consumed the least GPU-time run first, which approximates SJF
without knowing durations in advance (attained service predicts remaining
service under heavy-tailed distributions). Like FIFO, LAS carries no
performance estimator, so SiloD attaches the greedy storage step (§5.3)
to whatever order LAS picks.

A discretised two-queue variant (Tiresias' "discretised 2DAS") is also
provided: jobs below a service threshold form a high-priority queue,
which curbs the starvation plain LAS can inflict on long jobs.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.cluster.job import Job
from repro.core.policies.base import (
    ScheduleContext,
    SchedulingPolicy,
    admit_in_order,
    allocate_storage_greedily,
)
from repro.core.resources import Allocation, ResourceVector


class LasPolicy(SchedulingPolicy):
    """Least attained service first; ties broken by arrival.

    Parameters
    ----------
    queue_threshold_s:
        When set, jobs with attained service below the threshold form a
        strict high-priority queue (discretised LAS); within each queue
        ordering is by attained service, then arrival.
    """

    name = "las"

    def __init__(self, queue_threshold_s: float = None) -> None:
        if queue_threshold_s is not None and queue_threshold_s <= 0:
            raise ValueError("queue threshold must be positive")
        self._threshold_s = queue_threshold_s

    def order(
        self, jobs: Sequence[Job], ctx: ScheduleContext
    ) -> List[Job]:
        """Jobs by (priority queue, attained service, arrival)."""

        def attained(job: Job) -> float:
            if ctx.attained_service_s is None:
                return 0.0
            return ctx.attained_service_s(job)

        def key(job: Job):
            service = attained(job)
            queue = 0
            if self._threshold_s is not None:
                queue = 0 if service < self._threshold_s else 1
            return (queue, service, job.submit_time_s, job.job_id)

        return sorted(jobs, key=key)

    def schedule(
        self,
        jobs: Sequence[Job],
        total: ResourceVector,
        ctx: ScheduleContext,
    ) -> Allocation:
        allocation = Allocation()
        ordered = self.order(jobs, ctx)
        for job in ordered:
            ctx.job_scores[job.job_id] = (
                ctx.attained_service_s(job)
                if ctx.attained_service_s is not None
                else 0.0
            )
        admitted = admit_in_order(ordered, total.gpus, allocation)
        if ctx.storage_aware and admitted:
            allocate_storage_greedily(
                admitted,
                total,
                allocation,
                ctx,
                io_priority_order=[j.job_id for j in ordered],
            )
        return allocation
