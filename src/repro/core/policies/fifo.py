"""FIFO scheduling.

FIFO is the paper's example of a scheduler that is *not*
performance-aware: it fixes the scheduling order by arrival time, so SiloD
cannot (and does not) change which jobs run. In SiloD mode it attaches the
greedy storage step (Algorithm 2 + IO division) to the FIFO-admitted jobs;
in vanilla mode it grants GPUs only.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.cluster.job import Job
from repro.core.policies.base import (
    ScheduleContext,
    SchedulingPolicy,
    admit_in_order,
    allocate_storage_greedily,
)
from repro.core.resources import Allocation, ResourceVector


class FifoPolicy(SchedulingPolicy):
    """First-in-first-out admission by submit time.

    Parameters
    ----------
    backfill:
        Whether jobs behind a too-large head job may run (default True,
        matching how production FIFO queues avoid idling a cluster).
    """

    name = "fifo"

    def __init__(self, backfill: bool = True) -> None:
        self._backfill = backfill

    def order(self, jobs: Sequence[Job]) -> List[Job]:
        """Arrival order; ties broken by job id for determinism."""
        return sorted(jobs, key=lambda j: (j.submit_time_s, j.job_id))

    def schedule(
        self,
        jobs: Sequence[Job],
        total: ResourceVector,
        ctx: ScheduleContext,
    ) -> Allocation:
        allocation = Allocation()
        ordered = self.order(jobs)
        for rank, job in enumerate(ordered):
            ctx.job_scores[job.job_id] = float(rank)
        admitted = admit_in_order(
            ordered, total.gpus, allocation, backfill=self._backfill
        )
        if ctx.storage_aware and admitted:
            allocate_storage_greedily(admitted, total, allocation, ctx)
        return allocation
