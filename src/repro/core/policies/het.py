"""Heterogeneity-aware objectives over (GPU generation, cache, IO).

Gavel (Narayanan et al., OSDI 2020) generalises max-min fairness to
heterogeneous fleets by making throughput a function of *which* GPU
generation a job runs on: ``f*(job, gen)``. This module composes that
idea with SiloD's Eq. 4 cache/IO term, so one allocation round trades
cache shares against generation placement:

* :class:`HetMaxMinPolicy` — max-min fairness over heterogeneous
  allocations. The generation assignment is chosen to maximise the
  common throughput ratio (exhaustive enumeration on small instances,
  deterministic greedy beyond :data:`_ENUM_LIMIT` candidates); the
  joint (GPU share, cache, IO) division then reuses
  :class:`~repro.core.policies.gavel.GavelPolicy`'s progressive-filling
  machinery with per-generation GPU pools added to the feasibility
  check.
* :class:`HetMaxThroughputPolicy` — max-sum-throughput. Fast
  generations go to the jobs with the highest data-rate density
  (``f*`` per requested GPU), and the water-filling normaliser is the
  job's own heterogeneous compute bound, so the common ratio *is* the
  fraction of aggregate peak throughput achieved — maximising the
  ratio maximises the sum within the filling family.

Both policies publish per-generation compute bounds into
``ctx.gen_scores`` (job_id -> {generation: f*}) and their placement
into ``ctx.gen_assignments``; lint rule POL004 enforces the former for
every ``heterogeneity_aware`` policy, and the provenance layer carries
both into ``decision_job`` events.

On a homogeneous fleet (``ctx.gpu_pools`` absent or single-generation)
:class:`HetMaxMinPolicy` delegates to the parent unchanged — with the
speedup table anchored at the fleet's generation the factors are
exactly 1.0, so allocations are bit-identical to ``GavelPolicy``
(the collapse property of ``tests/core/test_het_perf_model.py``).

Like ``gavel.py``, this module imports numpy unconditionally: the
joint solver is deliberately outside the ``REPRO_NO_NUMPY`` fallback
surface, so backend choice never changes policy numerics. The
assignment search helper (:func:`common_ratio_for_assignment`) is pure
Python for the same reason — the brute-force property test calls it
directly.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.job import Job
from repro.core.estimator import HetSiloDPerfEstimator
from repro.core.policies.base import ScheduleContext
from repro.core.policies.gavel import (
    _EPS,
    _ITERS,
    EqualShare,
    GavelPolicy,
    equal_share,
)
from repro.core.resources import Allocation, ResourceVector

#: Exhaustive assignment enumeration is used only while
#: ``len(pools) ** len(jobs)`` stays at or below this; larger instances
#: fall back to the deterministic greedy placer.
_ENUM_LIMIT = 256


def _greedy_cache_plan(
    jobs: Sequence[Job],
    targets: Dict[str, float],
    budget_mb: float,
) -> Dict[str, float]:
    """Pure-Python mirror of ``_JointArrays.cache_plan_with_budget``.

    Greedy by marginal IO saving ``sum_{j on D} T_j / d_D``, stable on
    ties by first-appearance order (matching numpy's stable argsort
    over the same dataset ordering).
    """
    order: List[str] = []
    sizes: Dict[str, float] = {}
    saving: Dict[str, float] = {}
    for job in jobs:
        name = job.dataset.name
        if name not in sizes:
            order.append(name)
            sizes[name] = job.dataset.size_mb
            saving[name] = 0.0
        saving[name] += targets.get(job.job_id, 0.0) / job.dataset.size_mb
    ranked = sorted(
        order, key=lambda name: (-saving[name], order.index(name))
    )
    grants: Dict[str, float] = {}
    before = 0.0
    for name in ranked:
        grants[name] = min(sizes[name], max(0.0, budget_mb - before))
        before += sizes[name]
    return grants


def common_ratio_for_assignment(
    jobs: Sequence[Job],
    assignment: Dict[str, str],
    pools: Dict[str, int],
    total: ResourceVector,
    estimator: HetSiloDPerfEstimator,
    normalisers: Dict[str, float],
    effective_cache_mb=None,
    iters: int = _ITERS,
) -> float:
    """Largest common ratio ``t`` reachable under a generation map.

    Every job must reach ``t * normalisers[job_id]`` subject to its
    heterogeneous compute bound, per-generation GPU pool capacities,
    the shared cache budget (greedy IO-minimising plan), and the shared
    remote-IO budget. Pure Python — the max-min brute-force property
    test scores candidate assignments with exactly this function.
    """
    jobs = list(jobs)
    if not jobs:
        return 0.0
    f_star: Dict[str, float] = {}
    for job in jobs:
        by_gen = estimator.f_star_by_generation(job)
        generation = assignment.get(job.job_id, estimator.default_generation)
        f_star[job.job_id] = by_gen[generation]
    if effective_cache_mb is None:
        eff = {job.job_id: job.dataset.size_mb for job in jobs}
    else:
        eff = {job.job_id: effective_cache_mb(job) for job in jobs}

    def feasible(ratio: float) -> bool:
        targets = {
            job.job_id: ratio * normalisers[job.job_id] for job in jobs
        }
        for job in jobs:
            if targets[job.job_id] > f_star[job.job_id] * (1.0 + _EPS):
                return False
        for gen, capacity in pools.items():
            demand = 0.0
            for job in jobs:
                if (
                    assignment.get(
                        job.job_id, estimator.default_generation
                    )
                    != gen
                ):
                    continue
                if f_star[job.job_id] > 0:
                    demand += (
                        targets[job.job_id]
                        / f_star[job.job_id]
                        * job.num_gpus
                    )
            if demand > capacity * (1.0 + _EPS):
                return False
        cache = _greedy_cache_plan(jobs, targets, total.cache_mb)
        total_io = 0.0
        for job in jobs:
            hits = min(
                cache.get(job.dataset.name, 0.0), eff[job.job_id]
            )
            miss = 1.0 - min(1.0, hits / job.dataset.size_mb)
            total_io += targets[job.job_id] * miss
        return total_io <= total.remote_io_mbps * (1.0 + _EPS)

    hi = min(
        f_star[job.job_id] / max(normalisers[job.job_id], 1e-12)
        for job in jobs
    )
    if feasible(hi):
        return hi
    lo = 0.0
    for _ in range(iters):
        mid = (lo + hi) / 2.0
        if feasible(mid):
            lo = mid
        else:
            hi = mid
    return lo


class _HetGavelBase(GavelPolicy):
    """Shared machinery: assignment hand-off + pool-aware feasibility."""

    #: Marks the policy for lint rule POL004 (must publish per-
    #: generation scores) and for the scheduler's provenance plumbing.
    heterogeneity_aware = True

    #: Per-round state consumed by :meth:`_feasible`; ``None`` outside
    #: a heterogeneous scheduling round.
    _active_pools: Optional[Dict[str, int]] = None
    _assignment: Optional[Dict[str, str]] = None

    def schedule(
        self,
        jobs: Sequence[Job],
        total: ResourceVector,
        ctx: ScheduleContext,
    ) -> Allocation:
        estimator = ctx.estimator
        het = isinstance(estimator, HetSiloDPerfEstimator)
        if het:
            for job in jobs:
                ctx.gen_scores[job.job_id] = (
                    estimator.f_star_by_generation(job)
                )
        pools = ctx.gpu_pools
        if not het or not pools or len(pools) <= 1:
            # Homogeneous fleet (or no generation model): the speedup
            # factor is 1.0 everywhere, so the parent's allocation is
            # already optimal — delegate bit-identically.
            if het:
                for job in jobs:
                    ctx.gen_assignments[job.job_id] = (
                        estimator.default_generation
                    )
            self._active_pools = None
            self._assignment = None
            return super().schedule(jobs, total, ctx)
        assignment = self._assign(list(jobs), dict(pools), total, ctx)
        for job_id, generation in assignment.items():
            estimator.assignments[job_id] = generation
            ctx.gen_assignments[job_id] = generation
        self._active_pools = dict(pools)
        self._assignment = assignment
        try:
            return super().schedule(jobs, total, ctx)
        finally:
            self._active_pools = None
            self._assignment = None

    def _assign(
        self,
        jobs: List[Job],
        pools: Dict[str, int],
        total: ResourceVector,
        ctx: ScheduleContext,
    ) -> Dict[str, str]:
        raise NotImplementedError

    def _feasible(
        self,
        ratio: float,
        arrays,
        frozen: np.ndarray,
        frozen_targets: np.ndarray,
        total: ResourceVector,
    ) -> bool:
        """Parent feasibility plus per-generation GPU pool capacities.

        GPU slack distributed after the max-min targets are met still
        draws on the shared total (a deliberate approximation — slack
        only raises throughputs, never the binding minimum).
        """
        if not super()._feasible(
            ratio, arrays, frozen, frozen_targets, total
        ):
            return False
        pools = self._active_pools
        if not pools:
            return True
        assignment = self._assignment or {}
        targets = np.where(
            frozen, frozen_targets, ratio * arrays.perf_eq
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            fractions = np.where(
                arrays.f_star > 0, targets / arrays.f_star, 0.0
            )
        demand = fractions * arrays.gpus
        n = len(arrays.jobs)
        for gen, capacity in pools.items():
            mask = np.fromiter(
                (
                    assignment.get(job.job_id) == gen
                    for job in arrays.jobs
                ),
                bool,
                count=n,
            )
            if float(demand[mask].sum()) > capacity * (1.0 + _EPS):
                return False
        return True

    @staticmethod
    def _pools_fastest_first(
        pools: Dict[str, int], estimator: HetSiloDPerfEstimator
    ) -> List[str]:
        """Pool names by descending speedup (ties: name) — greedy order."""
        return sorted(
            pools,
            key=lambda gen: (-estimator.speedups.get(gen, 1.0), gen),
        )


class HetMaxMinPolicy(_HetGavelBase):
    """Max-min fairness over heterogeneous (gen, cache, IO) allocations.

    The generation assignment maximising the common throughput ratio is
    found exhaustively while ``len(pools) ** len(jobs)`` stays within
    :data:`_ENUM_LIMIT` (ties broken by the lexicographically first
    assignment tuple, so rounds are deterministic); larger instances
    use a greedy placer that sends the highest-density jobs to the
    fastest pools. :attr:`last_assignment_ratio` records the chosen
    assignment's score for diagnostics and the property test.
    """

    name = "het-max-min"

    #: Common ratio of the most recent heterogeneous assignment search.
    last_assignment_ratio: float = 0.0

    def _assign(
        self,
        jobs: List[Job],
        pools: Dict[str, int],
        total: ResourceVector,
        ctx: ScheduleContext,
    ) -> Dict[str, str]:
        estimator = ctx.estimator
        # Normalisers must be assignment-independent: clear any stale
        # generation map before evaluating equal shares.
        for job in jobs:
            estimator.assignments.pop(job.job_id, None)
        shares = self._normalisers(jobs, total, ctx)
        normalisers = {
            job_id: max(share.perf_mbps, 1e-12)
            for job_id, share in shares.items()
        }
        gens = sorted(pools)
        n = len(jobs)
        if n == 0:
            return {}
        if len(gens) ** n <= _ENUM_LIMIT:
            best: Optional[Tuple[str, ...]] = None
            best_ratio = -1.0
            for candidate in itertools.product(gens, repeat=n):
                assignment = {
                    job.job_id: gen
                    for job, gen in zip(jobs, candidate)
                }
                ratio = common_ratio_for_assignment(
                    jobs,
                    assignment,
                    pools,
                    total,
                    estimator,
                    normalisers,
                    ctx.effective_cache_mb,
                )
                if ratio > best_ratio * (1.0 + _EPS) + 1e-15:
                    best_ratio = ratio
                    best = candidate
            self.last_assignment_ratio = best_ratio
            assert best is not None
            return {
                job.job_id: gen for job, gen in zip(jobs, best)
            }
        assignment = self._greedy_assign(jobs, pools, estimator)
        self.last_assignment_ratio = common_ratio_for_assignment(
            jobs,
            assignment,
            pools,
            total,
            estimator,
            normalisers,
            ctx.effective_cache_mb,
        )
        return assignment

    def _greedy_assign(
        self,
        jobs: List[Job],
        pools: Dict[str, int],
        estimator: HetSiloDPerfEstimator,
    ) -> Dict[str, str]:
        """Deterministic fallback: densest jobs onto the fastest pools."""
        order = self._pools_fastest_first(pools, estimator)
        remaining = dict(pools)
        assignment: Dict[str, str] = {}
        ranked = sorted(
            jobs,
            key=lambda j: (
                -estimator.f_star_by_generation(j)[
                    estimator.default_generation
                ]
                / max(j.num_gpus, 1),
                j.job_id,
            ),
        )
        for job in ranked:
            placed = None
            for gen in order:
                if remaining[gen] >= job.num_gpus:
                    placed = gen
                    break
            if placed is None:
                # Nothing fits wholly: time-share the emptiest pool.
                placed = max(
                    order, key=lambda gen: (remaining[gen], gen)
                )
            remaining[placed] = max(
                0, remaining[placed] - job.num_gpus
            )
            assignment[job.job_id] = placed
        return assignment


class HetMaxThroughputPolicy(_HetGavelBase):
    """Max-sum-throughput over heterogeneous allocations.

    Fast generations are assigned to the jobs with the highest
    data-rate density (``f*`` per requested GPU), and the water-filling
    normaliser is each job's own heterogeneous compute bound — so the
    progressive-filling ratio is the fraction of aggregate peak
    throughput achieved, and maximising it maximises the sum. The Eq. 4
    cache/IO coupling is unchanged: cache still goes to the datasets
    with the highest marginal IO saving at the chosen targets.
    """

    name = "het-max-throughput"

    def _normalisers(
        self,
        jobs: Sequence[Job],
        total: ResourceVector,
        ctx: ScheduleContext,
    ) -> Dict[str, EqualShare]:
        """Normalise by the job's compute bound, not the equal share."""
        shares = {}
        for job in jobs:
            share = equal_share(
                job, len(jobs), total, ctx.estimator, ctx.storage_aware
            )
            f_star = ctx.estimator.compute_bound(job, job.num_gpus)
            shares[job.job_id] = EqualShare(
                gpus=share.gpus,
                cache_mb=share.cache_mb,
                remote_io_mbps=share.remote_io_mbps,
                perf_mbps=max(f_star, 1e-12) * job.weight,
            )
        return shares

    def _assign(
        self,
        jobs: List[Job],
        pools: Dict[str, int],
        total: ResourceVector,
        ctx: ScheduleContext,
    ) -> Dict[str, str]:
        estimator = ctx.estimator
        for job in jobs:
            estimator.assignments.pop(job.job_id, None)
        order = self._pools_fastest_first(pools, estimator)
        remaining = dict(pools)
        assignment: Dict[str, str] = {}
        ranked = sorted(
            jobs,
            key=lambda j: (
                -estimator.f_star_by_generation(j)[
                    estimator.default_generation
                ]
                / max(j.num_gpus, 1),
                j.job_id,
            ),
        )
        for job in ranked:
            placed = None
            for gen in order:
                if remaining[gen] >= job.num_gpus:
                    placed = gen
                    break
            if placed is None:
                placed = max(
                    order, key=lambda gen: (remaining[gen], gen)
                )
            remaining[placed] = max(
                0, remaining[placed] - job.num_gpus
            )
            assignment[job.job_id] = placed
        return assignment
