"""Fidelity comparison between the two simulators (Table 6's error columns).

The paper validates its Go simulator and its GPU-acceleration approach
against the real 8-V100 cluster and reports per-system relative errors on
average JCT and makespan. Our analog compares the fluid simulator against
the item-level minibatch emulator for the same (scheduler, cache, trace).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Sequence

from repro.cluster.hardware import Cluster
from repro.cluster.job import Job
from repro.sim.fluid import FluidSimulator
from repro.sim.metrics import RunResult, relative_error
from repro.sim.minibatch import MinibatchEmulator
from repro.sim.runner import make_system


@dataclasses.dataclass
class FidelityReport:
    """Relative errors of the fluid simulator vs the emulator."""

    cache: str
    emulator_jct_min: float
    fluid_jct_min: float
    emulator_makespan_min: float
    fluid_makespan_min: float

    @property
    def jct_error(self) -> float:
        """Relative error on average JCT."""
        return relative_error(self.emulator_jct_min, self.fluid_jct_min)

    @property
    def makespan_error(self) -> float:
        """Relative error on makespan."""
        return relative_error(
            self.emulator_makespan_min, self.fluid_makespan_min
        )

    def as_row(self) -> Dict:
        """Report row in the style of Table 6."""
        return {
            "cache": self.cache,
            "emulator_jct_min": self.emulator_jct_min,
            "fluid_jct_min": self.fluid_jct_min,
            "jct_error_%": 100.0 * self.jct_error,
            "emulator_makespan_min": self.emulator_makespan_min,
            "fluid_makespan_min": self.fluid_makespan_min,
            "makespan_error_%": 100.0 * self.makespan_error,
        }


def compare_simulators(
    cluster: Cluster,
    policy: str,
    cache: str,
    jobs: Sequence[Job],
    item_size_mb: float = 256.0,
    **sim_kwargs,
) -> FidelityReport:
    """Run both simulators on one configuration and report the errors."""
    scheduler_f, cache_f = make_system(policy, cache)
    fluid = FluidSimulator(
        cluster, scheduler_f, cache_f, list(jobs), **sim_kwargs
    ).run()
    scheduler_m, cache_m = make_system(policy, cache)
    emulated = MinibatchEmulator(
        cluster,
        scheduler_m,
        cache_m,
        list(jobs),
        item_size_mb=item_size_mb,
    ).run()
    return FidelityReport(
        cache=cache,
        emulator_jct_min=emulated.average_jct_minutes(),
        fluid_jct_min=fluid.average_jct_minutes(),
        emulator_makespan_min=emulated.makespan_minutes(),
        fluid_makespan_min=fluid.makespan_minutes(),
    )


def estimator_accuracy_vs_emulator(
    job: Job,
    cache_mb: float,
    remote_io_mbps: float,
    item_size_mb: float = 64.0,
) -> Dict[str, float]:
    """Measure SiloDPerf's prediction error against the item emulator.

    Runs a single job with a fixed cache allocation and remote-IO throttle
    through the minibatch emulator (real item-level hits/misses and
    pipelining) and compares the measured *steady-state* epoch throughput
    with the closed-form prediction of Eq 4. The paper reports the
    estimator accurate within 3%.

    Returns ``{"predicted_mbps", "measured_mbps", "error"}``.
    """
    from repro.core import perf_model

    predicted = perf_model.silod_perf(
        job.ideal_throughput_mbps,
        remote_io_mbps,
        cache_mb,
        job.dataset.size_mb,
    )
    cluster = Cluster.build(
        num_servers=1,
        gpus_per_server=job.num_gpus,
        cache_per_server_mb=cache_mb,
        remote_io_mbps=remote_io_mbps,
    )
    scheduler, cache_system = make_system("fifo", "silod")
    emulator = MinibatchEmulator(
        cluster, scheduler, cache_system, [job], item_size_mb=item_size_mb
    )
    result = emulator.run()
    record = result.records[0]
    if record.finish_time_s is None:
        raise RuntimeError("emulated job did not finish")
    # Steady state excludes the cold first epoch: measure the epochs after
    # the cache became effective.
    first_epoch_s = job.dataset.size_mb / min(
        remote_io_mbps, job.ideal_throughput_mbps
    )
    steady_work_mb = job.total_work_mb - job.dataset.size_mb
    steady_time_s = record.finish_time_s - record.start_time_s - first_epoch_s
    measured = steady_work_mb / steady_time_s if steady_time_s > 0 else 0.0
    return {
        "predicted_mbps": predicted,
        "measured_mbps": measured,
        "error": relative_error(measured, predicted),
    }
