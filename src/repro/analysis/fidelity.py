"""Fidelity comparison between the two simulators (Table 6's error columns).

The paper validates its Go simulator and its GPU-acceleration approach
against the real 8-V100 cluster and reports per-system relative errors on
average JCT and makespan. Our analog compares the fluid simulator against
the item-level minibatch emulator for the same (scheduler, cache, trace).

When the error is large, :func:`localize_divergence` narrows down *where*
the two runs first disagree: both simulators emit the same structured
event schema (``repro.obs``), and the subsequence of anchor events — job
lifecycle, epoch boundaries, and fault preempts/restarts — is defined to
be identical across them. The first anchor at which the sequences differ
is the earliest observable divergence, with enough context (the
surrounding events of both logs) to debug from.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.hardware import Cluster
from repro.cluster.job import Job
from repro.faults.spec import ScheduleLike
from repro.obs import events as ev
from repro.obs.events import Event
from repro.obs.tracer import Tracer
from repro.sim.fluid import FluidSimulator
from repro.sim.metrics import RunResult, relative_error
from repro.sim.minibatch import MinibatchEmulator
from repro.sim.runner import make_system

#: Event types whose (type, job, signature) sequence must match across
#: simulators: the lifecycle (same trace => same order), per-job epoch
#: boundaries, and fault-driven preempts/restarts (same schedule =>
#: same victims). Timestamps are *not* compared — the minibatch
#: emulator quantises to batch/interval boundaries.
ANCHOR_TYPES = (
    ev.JOB_SUBMIT,
    ev.JOB_START,
    ev.JOB_FINISH,
    ev.EPOCH_BOUNDARY,
    ev.JOB_PREEMPT,
    ev.JOB_RESTART,
)


@dataclasses.dataclass
class DivergencePoint:
    """The first anchor event at which the two simulators disagree.

    ``fluid_event`` / ``emulator_event`` is ``None`` when that log's
    anchor sequence for the job ended early (the other simulator emitted
    an event this one never did).
    """

    job_id: str
    #: Position in the job's anchor-event sequence (0-based).
    index: int
    fluid_event: Optional[Event]
    emulator_event: Optional[Event]

    def describe(self) -> str:
        """One-line human summary for logs and assertion messages."""

        def _fmt(event: Optional[Event]) -> str:
            if event is None:
                return "<no event>"
            extra = (
                f" epoch={event.fields['epoch']}"
                if "epoch" in event.fields
                else ""
            )
            return f"{event.etype}@{event.ts_s:.1f}s{extra}"

        return (
            f"job {self.job_id} anchor #{self.index}: "
            f"fluid={_fmt(self.fluid_event)} vs "
            f"emulator={_fmt(self.emulator_event)}"
        )


@dataclasses.dataclass
class FidelityReport:
    """Relative errors of the fluid simulator vs the emulator."""

    cache: str
    emulator_jct_min: float
    fluid_jct_min: float
    emulator_makespan_min: float
    fluid_makespan_min: float
    #: First observable disagreement between the two event logs, when
    #: localization was requested (``None``: not requested or no
    #: divergence found).
    divergence: Optional[DivergencePoint] = None

    @property
    def jct_error(self) -> float:
        """Relative error on average JCT."""
        return relative_error(self.emulator_jct_min, self.fluid_jct_min)

    @property
    def makespan_error(self) -> float:
        """Relative error on makespan."""
        return relative_error(
            self.emulator_makespan_min, self.fluid_makespan_min
        )

    def as_row(self) -> Dict:
        """Report row in the style of Table 6."""
        return {
            "cache": self.cache,
            "emulator_jct_min": self.emulator_jct_min,
            "fluid_jct_min": self.fluid_jct_min,
            "jct_error_%": 100.0 * self.jct_error,
            "emulator_makespan_min": self.emulator_makespan_min,
            "fluid_makespan_min": self.fluid_makespan_min,
            "makespan_error_%": 100.0 * self.makespan_error,
        }


def _anchor_signature(event: Event) -> Tuple:
    """What must match across simulators for one anchor event."""
    if event.etype == ev.EPOCH_BOUNDARY:
        return (event.etype, event.fields.get("epoch"))
    if event.etype in (ev.JOB_PREEMPT, ev.JOB_RESTART):
        return (event.etype, event.fields.get("reason"))
    return (event.etype,)


def localize_divergence(
    fluid_events: Sequence[Event],
    emulator_events: Sequence[Event],
) -> Optional[DivergencePoint]:
    """Find the first anchor event where the two logs disagree.

    Anchors are compared **per job** (cross-job interleaving is timing-
    dependent and allowed to differ); within a job, the sequence of
    ``(etype, signature)`` pairs over :data:`ANCHOR_TYPES` must be
    identical. Among jobs that diverge, the one whose divergence happens
    earliest (by the fluid log's timestamp, submit-order tie-break) is
    reported. Returns ``None`` when every job's anchors agree.
    """

    def _per_job(events: Sequence[Event]) -> Dict[str, List[Event]]:
        by_job: Dict[str, List[Event]] = {}
        for event in events:
            if event.etype in ANCHOR_TYPES and event.job_id is not None:
                by_job.setdefault(event.job_id, []).append(event)
        return by_job

    fluid_jobs = _per_job(fluid_events)
    emulator_jobs = _per_job(emulator_events)
    best: Optional[DivergencePoint] = None
    best_ts = None
    for job_id in sorted(set(fluid_jobs) | set(emulator_jobs)):
        f_seq = fluid_jobs.get(job_id, [])
        m_seq = emulator_jobs.get(job_id, [])
        point = None
        for idx in range(max(len(f_seq), len(m_seq))):
            f_event = f_seq[idx] if idx < len(f_seq) else None
            m_event = m_seq[idx] if idx < len(m_seq) else None
            if (
                f_event is None
                or m_event is None
                or _anchor_signature(f_event) != _anchor_signature(m_event)
            ):
                point = DivergencePoint(
                    job_id=job_id,
                    index=idx,
                    fluid_event=f_event,
                    emulator_event=m_event,
                )
                break
        if point is None:
            continue
        anchor = point.fluid_event or point.emulator_event
        ts = anchor.ts_s if anchor is not None else 0.0
        if best is None or ts < best_ts:
            best, best_ts = point, ts
    return best


def compare_simulators(
    cluster: Cluster,
    policy: str,
    cache: str,
    jobs: Sequence[Job],
    item_size_mb: float = 256.0,
    faults: ScheduleLike = None,
    localize: bool = False,
    **sim_kwargs,
) -> FidelityReport:
    """Run both simulators on one configuration and report the errors.

    ``faults`` drives both runs through the same fault schedule;
    ``localize=True`` additionally traces both runs and attaches the
    first diverging anchor event (:class:`DivergencePoint`) to the
    report — the auto-localization the roadmap's fidelity item calls
    for.
    """
    fluid_tracer = Tracer() if localize else None
    emulator_tracer = Tracer() if localize else None
    scheduler_f, cache_f = make_system(policy, cache)
    fluid = FluidSimulator(
        cluster,
        scheduler_f,
        cache_f,
        list(jobs),
        faults=faults,
        tracer=fluid_tracer,
        **sim_kwargs,
    ).run()
    scheduler_m, cache_m = make_system(policy, cache)
    emulated = MinibatchEmulator(
        cluster,
        scheduler_m,
        cache_m,
        list(jobs),
        item_size_mb=item_size_mb,
        faults=faults,
        tracer=emulator_tracer,
    ).run()
    divergence = None
    if localize:
        divergence = localize_divergence(
            fluid_tracer.events, emulator_tracer.events
        )
    return FidelityReport(
        cache=cache,
        emulator_jct_min=emulated.average_jct_minutes(),
        fluid_jct_min=fluid.average_jct_minutes(),
        emulator_makespan_min=emulated.makespan_minutes(),
        fluid_makespan_min=fluid.makespan_minutes(),
        divergence=divergence,
    )


def estimator_accuracy_vs_emulator(
    job: Job,
    cache_mb: float,
    remote_io_mbps: float,
    item_size_mb: float = 64.0,
) -> Dict[str, float]:
    """Measure SiloDPerf's prediction error against the item emulator.

    Runs a single job with a fixed cache allocation and remote-IO throttle
    through the minibatch emulator (real item-level hits/misses and
    pipelining) and compares the measured *steady-state* epoch throughput
    with the closed-form prediction of Eq 4. The paper reports the
    estimator accurate within 3%.

    Returns ``{"predicted_mbps", "measured_mbps", "error"}``.
    """
    from repro.core import perf_model

    predicted = perf_model.silod_perf(
        job.ideal_throughput_mbps,
        remote_io_mbps,
        cache_mb,
        job.dataset.size_mb,
    )
    cluster = Cluster.build(
        num_servers=1,
        gpus_per_server=job.num_gpus,
        cache_per_server_mb=cache_mb,
        remote_io_mbps=remote_io_mbps,
    )
    scheduler, cache_system = make_system("fifo", "silod")
    emulator = MinibatchEmulator(
        cluster, scheduler, cache_system, [job], item_size_mb=item_size_mb
    )
    result = emulator.run()
    record = result.records[0]
    if record.finish_time_s is None:
        raise RuntimeError("emulated job did not finish")
    # Steady state excludes the cold first epoch: measure the epochs after
    # the cache became effective.
    first_epoch_s = job.dataset.size_mb / min(
        remote_io_mbps, job.ideal_throughput_mbps
    )
    steady_work_mb = job.total_work_mb - job.dataset.size_mb
    steady_time_s = record.finish_time_s - record.start_time_s - first_epoch_s
    measured = steady_work_mb / steady_time_s if steady_time_s > 0 else 0.0
    return {
        "predicted_mbps": predicted,
        "measured_mbps": measured,
        "error": relative_error(measured, predicted),
    }
