"""ASCII report rendering for benchmark output.

Every benchmark prints the rows/series the corresponding paper table or
figure reports; these helpers keep that output aligned and readable in a
terminal (no plotting dependencies are available offline).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence


def format_value(value) -> str:
    """Human-friendly cell formatting."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000:
            return f"{value:,.0f}"
        if magnitude >= 1:
            return f"{value:.2f}"
        return f"{value:.3g}"
    return str(value)


def render_table(
    rows: Sequence[Dict],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(columns) if columns else list(rows[0].keys())
    cells = [[format_value(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_series(
    points: Sequence[Dict],
    x: str,
    y: str,
    title: Optional[str] = None,
    width: int = 50,
) -> str:
    """Render an (x, y) series as an ASCII bar chart (one bar per point)."""
    if not points:
        return f"{title}\n(no points)" if title else "(no points)"
    values = [float(p[y]) for p in points]
    peak = max((v for v in values if math.isfinite(v)), default=0.0)
    lines = []
    if title:
        lines.append(title)
    label_width = max(len(format_value(p[x])) for p in points)
    for point, value in zip(points, values):
        bar = (
            "#" * max(0, int(round(width * value / peak))) if peak > 0 else ""
        )
        lines.append(
            f"{format_value(point[x]).rjust(label_width)} | "
            f"{bar} {format_value(value)}"
        )
    return "\n".join(lines)


def improvement_summary(
    metric_by_system: Dict[str, float], best_low: bool = True
) -> List[Dict]:
    """Rows of system, metric, and 'x over best/worst' factors.

    ``best_low`` for lower-is-better metrics (JCT, makespan).
    """
    if not metric_by_system:
        return []
    reference = (
        min(metric_by_system.values())
        if best_low
        else max(metric_by_system.values())
    )
    rows = []
    for system, value in sorted(
        metric_by_system.items(), key=lambda kv: kv[1], reverse=not best_low
    ):
        factor = (
            value / reference if best_low else reference / value
        ) if reference > 0 else math.nan
        rows.append(
            {"system": system, "value": value, "vs_best": factor}
        )
    return rows
