"""Analysis helpers: fidelity comparison and report rendering."""
