"""Cache subsystems: SiloD data manager and the three baselines."""

from repro.cache.alluxio import AlluxioCache
from repro.cache.base import CacheSystem, StorageContext, StorageDecision
from repro.cache.coordl import CoorDLCache
from repro.cache.items import LruItemCache, UniformItemCache
from repro.cache.nocache import NoCache
from repro.cache.prefetch import PrefetchingDataManager
from repro.cache.quiver import QuiverCache
from repro.cache.silod_cache import SiloDDataManager

__all__ = [
    "CacheSystem",
    "StorageContext",
    "StorageDecision",
    "SiloDDataManager",
    "AlluxioCache",
    "CoorDLCache",
    "QuiverCache",
    "NoCache",
    "PrefetchingDataManager",
    "UniformItemCache",
    "LruItemCache",
]
