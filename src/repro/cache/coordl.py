"""CoorDL baseline: per-job static uniform caches (§2.1, §7).

CoorDL builds uniform caching *into the data-loading library*: each job
caches independently on the local disks inside its own VM, statically
sized by the VM's provisioning (368 GB per V100 on Azure). The policy is
right for a single job but blind across jobs — the paper's micro-benchmark
shows it wasting half the cluster's cache on a BERT job that barely
benefits.

Fluid model: job ``j``'s private target is
``min(d_j, per_gpu_cache * num_gpus)``; hits follow uniform caching on the
job's *effective* private bytes; remote IO is fair-shared.
"""

from __future__ import annotations

from typing import Dict

from repro.cache.base import (
    CacheSystem,
    StorageContext,
    StorageDecision,
    fair_share_io,
    trace_io_grants,
)
from repro.cluster.hardware import LOCAL_CACHE_MB_PER_V100


class CoorDLCache(CacheSystem):
    """Per-job static uniform caching.

    Parameters
    ----------
    cache_per_gpu_mb:
        Local SSD available to each GPU's share of a VM. ``None`` derives
        it at decision time from the cluster pool divided by total GPUs
        (the micro-benchmark's 2 TB / 8 GPUs = 256 GB per GPU setup);
        otherwise pass e.g. ``LOCAL_CACHE_MB_PER_V100``.
    """

    name = "coordl"
    per_job_keys = True

    def __init__(self, cache_per_gpu_mb: float = None) -> None:
        self._cache_per_gpu_mb = cache_per_gpu_mb

    def _per_gpu(self, ctx: StorageContext, total_gpus: float) -> float:
        if self._cache_per_gpu_mb is not None:
            return self._cache_per_gpu_mb
        if total_gpus <= 0:
            return 0.0
        return ctx.total_cache_mb / total_gpus

    def decide(self, ctx: StorageContext) -> StorageDecision:
        jobs = list(ctx.running_jobs)
        if not jobs:
            return StorageDecision({}, {}, {})
        # Static provisioning is per GPU *slot*, not per running job: the
        # denominator is the cluster's GPU count.
        per_gpu = self._per_gpu(ctx, ctx.total_gpus)
        targets: Dict[str, float] = {}
        hit_ratios: Dict[str, float] = {}
        for job in jobs:
            targets[job.job_id] = min(
                job.dataset.size_mb, per_gpu * job.num_gpus
            )
            hit_ratios[job.job_id] = min(
                1.0, ctx.effective_mb(job) / job.dataset.size_mb
            )
        io_grants = fair_share_io(ctx, hit_ratios)
        trace_io_grants(ctx, hit_ratios, io_grants)
        return StorageDecision(
            cache_targets=targets, hit_ratios=hit_ratios, io_grants=io_grants
        )


#: Re-exported so experiment configs can say "Azure V100 provisioning".
AZURE_V100_CACHE_MB = LOCAL_CACHE_MB_PER_V100
