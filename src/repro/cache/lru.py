"""LRU caching under deep-learning access patterns: the thrashing model.

Deep-learning training reads every item exactly once per epoch in a fresh
random order. Under LRU this is close to a worst case: when an item is
re-accessed in the next epoch, *every* item after it in the previous epoch
and before it in the current one has been touched in between, so the stack
distance is huge and useful items get evicted before reuse — the paper's
"thrashing" (§7.1.1).

Closed form
-----------
Let ``gamma = s/d`` be the job's LRU stack share relative to its dataset.
An item sits at position ``a ~ U(0, d)`` in epoch ``e`` and ``b ~ U(0, d)``
in epoch ``e+1``; the distinct items touched between its two accesses
number ``|A ∪ B| = a' + b - a'b/d`` with ``a' = d - a`` (the union of the
tail of epoch ``e`` and the head of epoch ``e+1``; the two uniform subsets
overlap in expectation ``a'b/d``). The access is a hit iff that stack
distance is below ``s``. Substituting ``u = a'/d, v = b/d ~ U(0,1)``:

    P(hit) = P(1 - (1-u')(1-v) < gamma) = P(uv > 1 - gamma)
           = gamma + (1 - gamma) ln(1 - gamma)

which is ``~ gamma^2 / 2`` for small shares — *quadratically* worse than
uniform caching's ``gamma`` — and reaches 1 only at full coverage.

When several jobs share one LRU pool, accesses interleave in proportion to
byte rates, so job ``j``'s effective stack share is ``C * r_j / sum_r`` —
fast (cache-efficient) jobs implicitly evict slow jobs' items, the effect
the paper credits for Alluxio beating CoorDL cluster-wide (§7.1.2).

The item-level simulation in ``repro.cache.items`` validates this closed
form (see ``tests/cache/test_lru_model.py``).
"""

from __future__ import annotations

import math
from typing import Dict, Sequence


def lru_epoch_hit_ratio(stack_share_mb: float, dataset_mb: float) -> float:
    """Steady-state LRU hit ratio for shuffled once-per-epoch access."""
    if dataset_mb <= 0:
        raise ValueError("dataset size must be positive")
    if stack_share_mb < 0:
        raise ValueError("stack share must be non-negative")
    gamma = min(1.0, stack_share_mb / dataset_mb)
    if gamma >= 1.0:
        return 1.0
    if gamma <= 0.0:
        return 0.0
    return gamma + (1.0 - gamma) * math.log(1.0 - gamma)


def shared_lru_shares(
    access_rates_mbps: Dict[str, float], pool_mb: float
) -> Dict[str, float]:
    """Stack share of a shared LRU pool per job, proportional to rate."""
    total_rate = sum(access_rates_mbps.values())
    if total_rate <= 0:
        return {job_id: 0.0 for job_id in access_rates_mbps}
    return {
        job_id: pool_mb * rate / total_rate
        for job_id, rate in access_rates_mbps.items()
    }


def uniform_epoch_hit_ratio(cache_mb: float, dataset_mb: float) -> float:
    """Uniform caching's hit ratio ``c/d``, for side-by-side comparisons."""
    if dataset_mb <= 0:
        raise ValueError("dataset size must be positive")
    return min(1.0, max(0.0, cache_mb) / dataset_mb)


def curriculum_working_set_mb(
    visible_fraction: float, dataset_mb: float
) -> float:
    """Bytes of data visible to curriculum training at a pacing step.

    Curriculum learning samples batches uniformly from the first
    ``visible_fraction`` of the (difficulty-sorted) dataset (§7.4), so the
    working set is that prefix.
    """
    if not 0.0 <= visible_fraction <= 1.0:
        raise ValueError("visible fraction must lie in [0, 1]")
    return visible_fraction * dataset_mb


def curriculum_hit_ratio(
    cache_mb: float, working_set_mb: float, lru: bool
) -> float:
    """Hit ratio of a cache over a uniformly re-sampled working set.

    Under curriculum learning items are drawn *with replacement* from the
    visible prefix, so a newly cached item can hit again immediately: LRU
    no longer thrashes and both policies converge to ``min(1, c/w)``
    (Figure 16b: LRU performs as well as uniform caching).
    """
    if working_set_mb <= 0:
        return 1.0
    ratio = min(1.0, max(0.0, cache_mb) / working_set_mb)
    # ``lru`` kept for interface symmetry: both policies behave alike here.
    del lru
    return ratio


def mean_lru_hit_ratio(
    stack_shares_mb: Sequence[float], dataset_mb: float
) -> float:
    """Average thrashing-model hit ratio across shares (report helper)."""
    if not stack_shares_mb:
        return 0.0
    return sum(
        lru_epoch_hit_ratio(s, dataset_mb) for s in stack_shares_mb
    ) / len(stack_shares_mb)
