"""Quiver baseline: benefit-to-cost whole-dataset caching (§7).

Quiver is a distributed cache designed for DL training. Its policy ranks
datasets by the ratio of *benefit* (data-loading latency reduction,
profiled online) to *cost* (cache consumption) and caches datasets in rank
order — but **only entire datasets**: "jobs do not benefit from Quiver if
[the dataset] cannot entirely fit into the cache", so a dataset that does
not fit in the remaining space is skipped and the space may go unused
(the micro-benchmark's wasted 0.7 TB).

Two behaviours the paper observed are modelled explicitly:

* **Online profiling noise** — benefit estimates come from latency
  measurements taken while remote IO fluctuates, so the ranking is
  re-drawn with multiplicative log-normal noise every profiling interval.
  A ranking flip evicts a fully cached dataset, which then "had to rebuild
  the cache with one more epoch" (§7.1.2).
* **Scheduler-obliviousness** — Figure 4: with two identical-efficiency
  jobs and cache for ~one dataset, Quiver gives everything to one job
  regardless of the cluster's fairness objective.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro import units
from repro.cache.base import (
    CacheSystem,
    StorageContext,
    StorageDecision,
    desired_rate,
    fair_share_io,
    trace_io_grants,
)


class QuiverCache(CacheSystem):
    """Whole-dataset, benefit-to-cost ranked caching.

    Parameters
    ----------
    profile_noise:
        Standard deviation of the log-normal noise on profiled benefits
        (0 disables noise and the ranking becomes stable).
    profile_interval_s:
        How often online profiling refreshes the benefit estimates.
    seed:
        RNG seed for the profiling noise.
    """

    name = "quiver"

    def __init__(
        self,
        profile_noise: float = 0.15,
        profile_interval_s: float = units.SECONDS_PER_HOUR,
        hysteresis: float = 1.5,
        seed: int = 17,
    ) -> None:
        if profile_noise < 0:
            raise ValueError("profile noise must be non-negative")
        if profile_interval_s <= 0:
            raise ValueError("profile interval must be positive")
        if hysteresis < 1.0:
            raise ValueError("hysteresis must be >= 1")
        self._profile_noise = profile_noise
        self._profile_interval_s = profile_interval_s
        self._hysteresis = hysteresis
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._last_profile_s: float = float("-inf")
        self._noisy_benefit: Dict[str, float] = {}
        self._selected: set = set()

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)
        self._last_profile_s = float("-inf")
        self._noisy_benefit = {}
        self._selected = set()

    def _profile(self, ctx: StorageContext) -> None:
        """Refresh noisy benefit-per-byte estimates for live datasets."""
        true_benefit: Dict[str, float] = {}
        for job in ctx.running_jobs:
            name = job.dataset.name
            # Benefit ~ latency reduction ~ remote IO saved when cached,
            # per byte of cache: the job's ideal rate over dataset size,
            # accumulated over sharing jobs.
            true_benefit[name] = true_benefit.get(name, 0.0) + (
                desired_rate(job, ctx) / job.dataset.size_mb
            )
        noisy = {}
        for name, benefit in true_benefit.items():
            factor = (
                float(np.exp(self._rng.normal(0.0, self._profile_noise)))
                if self._profile_noise > 0
                else 1.0
            )
            noisy[name] = benefit * factor
        self._noisy_benefit = noisy
        self._last_profile_s = ctx.clock_s

    def decide(self, ctx: StorageContext) -> StorageDecision:
        jobs = list(ctx.running_jobs)
        if not jobs:
            return StorageDecision({}, {}, {})
        live = {job.dataset.name for job in jobs}
        stale = (
            ctx.clock_s - self._last_profile_s >= self._profile_interval_s
        )
        if stale or not live.issubset(self._noisy_benefit):
            self._profile(ctx)

        sizes = {job.dataset.name: job.dataset.size_mb for job in jobs}
        # Incumbent datasets keep their slot unless a challenger's noisy
        # benefit beats them by the hysteresis margin; without this, ties
        # would flip on every profile and nothing would ever stay cached.
        scored = {
            name: self._noisy_benefit.get(name, 0.0)
            * (self._hysteresis if name in self._selected else 1.0)
            for name in live
        }
        ranked: List[Tuple[str, float]] = sorted(
            scored.items(), key=lambda kv: (-kv[1], kv[0])
        )
        selected = set()
        remaining = ctx.total_cache_mb
        for name, _benefit in ranked:
            if sizes[name] <= remaining:
                # All-or-nothing: only entirely fitting datasets cached.
                selected.add(name)
                remaining -= sizes[name]
        self._selected = selected
        # Targets are authoritative: Quiver re-assigns the whole cache, so
        # a dataset losing its slot is evicted (and must later rebuild
        # over a full epoch — the instability §7.1.2 observes).
        targets: Dict[str, float] = {
            name: (sizes[name] if name in selected else 0.0)
            for name in live
        }
        hit_ratios = {
            job.job_id: min(
                1.0, ctx.effective_mb(job) / job.dataset.size_mb
            )
            for job in jobs
        }
        io_grants = fair_share_io(ctx, hit_ratios)
        trace_io_grants(ctx, hit_ratios, io_grants)
        return StorageDecision(
            cache_targets=targets, hit_ratios=hit_ratios, io_grants=io_grants
        )
