"""The SiloD data manager (§6, Figure 7, Table 3).

The data manager is the storage-layer half of SiloD: it *enforces* the
scheduler's joint allocation. It exposes the two allocation APIs of
Table 3 — ``allocateCacheSize(dataset, size)`` and
``allocateRemoteIO(job, speed)`` — implements uniform caching per dataset,
evicts randomly when an allocation shrinks, and throttles each job's
remote fetches to its grant.

Enforcement is **work-conserving**: a job whose cached data is not yet
effective (first epoch; §6 "delayed effectiveness") cannot use cache hits,
so its instantaneous remote-IO demand exceeds its steady-state grant. The
data manager guarantees every job ``min(grant, demand)`` and waterfills
the leftover egress bandwidth over residual demands — matching the paper's
fine-grained management of "the effective cache size and the
instantaneous remote IO demand".
"""

from __future__ import annotations

from typing import Dict

from repro.cache.base import (
    CacheSystem,
    StorageContext,
    StorageDecision,
    StorageDecisionBatch,
    trace_io_grants,
)
from repro.core.policies import io_share
from repro.perf.backend import numpy_enabled, require_numpy

#: Below this many running jobs the scalar comprehensions win; matches
#: the estimator's batch cutoff.
_BATCH_MIN_JOBS = 8


class SiloDDataManager(CacheSystem):
    """Enforces the scheduler's cache/IO allocation (uniform caching).

    Parameters
    ----------
    io_allocation:
        When False, the scheduler's remote-IO grants are ignored and the
        egress bandwidth is fair-shared instead — the §7.2 ablation
        ("disabling the allocation of remote IO"), which degrades fairness
        by ~31% in the paper while barely moving JCT/makespan.
    """

    name = "silod"

    def __init__(self, io_allocation: bool = True) -> None:
        self._io_allocation = io_allocation
        if not io_allocation:
            self.name = "silod-no-io-alloc"

    def decide(self, ctx: StorageContext) -> StorageDecision:
        jobs = list(ctx.running_jobs)
        if not jobs:
            return StorageDecision({}, {}, {})
        allocation = ctx.scheduler_allocation
        if allocation is None:
            raise ValueError(
                "SiloDDataManager requires the scheduler's allocation; "
                "run it with a storage-aware SiloDScheduler"
            )

        # desired_rate(job, ctx) for every job at once — one vectorized
        # compute-bound evaluation instead of a per-job estimator call.
        # The simulator's per-epoch hints carry the same values already
        # gathered (their contract guarantees bit-identical floats).
        n = len(jobs)
        hints = ctx.batch
        if hints is not None and len(hints.job_ids) == n:
            job_ids = hints.job_ids
            rates = hints.rates
        else:
            hints = None
            job_ids = [job.job_id for job in jobs]
            rates = ctx.estimator.compute_bound_batch(
                jobs, [ctx.gpu_grants.get(jid, 0.0) for jid in job_ids]
            )

        # Table 3: allocateCacheSize — cache targets straight from the
        # scheduler, at dataset granularity (precomputed per allocation
        # epoch when the hints carry them).
        if hints is not None and hints.targets is not None:
            targets: Dict[str, float] = hints.targets
        else:
            targets = {
                name: cache_mb
                for name, cache_mb in allocation.cache.items()
                if cache_mb > 0
            }
        hits = demand_arr = None
        if n >= _BATCH_MIN_JOBS and numpy_enabled():
            np = require_numpy()
            # min(1.0, effective/size) and rate*(1-hit), elementwise —
            # bit-identical to the scalar comprehensions below.
            if hints is not None and hints.rates_arr is not None:
                eff = np.fromiter(
                    (hints.effective.get(jid, 0.0) for jid in job_ids),
                    float,
                    count=n,
                )
                size = hints.size_arr
                rate_arr = hints.rates_arr
            else:
                eff = np.fromiter(
                    (ctx.effective_mb(job) for job in jobs), float, count=n
                )
                size = np.fromiter(
                    (job.dataset.size_mb for job in jobs), float, count=n
                )
                rate_arr = np.asarray(rates, float)
            hits = np.minimum(1.0, eff / size)
            demand_arr = rate_arr * (1.0 - hits)
            hit_ratios = dict(zip(job_ids, hits.tolist()))
            demands = dict(zip(job_ids, demand_arr.tolist()))
        elif hints is not None:
            effective = hints.effective
            hit_ratios = {
                jid: min(
                    1.0, effective.get(jid, 0.0) / job.dataset.size_mb
                )
                for jid, job in zip(job_ids, jobs)
            }
            demands = {
                jid: rate * (1.0 - hit_ratios[jid])
                for jid, rate in zip(job_ids, rates)
            }
        else:
            hit_ratios = {
                job.job_id: min(
                    1.0, ctx.effective_mb(job) / job.dataset.size_mb
                )
                for job in jobs
            }
            demands = {
                job.job_id: rate * (1.0 - hit_ratios[job.job_id])
                for job, rate in zip(jobs, rates)
            }
        if not self._io_allocation:
            # Ablation (§7.2): the scheduler's IO grants are discarded
            # and the egress is shared work-conservingly over the raw
            # demands — the division the cloud's per-flow congestion
            # control would reach on its own. Cache co-design remains.
            io_grants = io_share.max_min_waterfill(
                demands, ctx.total_io_mbps
            )
            trace_io_grants(ctx, hit_ratios, io_grants)
            return StorageDecision(
                cache_targets=targets,
                hit_ratios=hit_ratios,
                io_grants=io_grants,
            )

        # Table 3: allocateRemoteIO — strict throttling to the scheduler's
        # grant. Policies size grants from the *instantaneous* demands
        # (effective cache, §6) at every scheduling round, so enforcement
        # does not second-guess them; capping at the current demand only
        # keeps the accounting honest (a job cannot pull bytes it cannot
        # consume).
        batch = None
        if demand_arr is not None:
            np = require_numpy()
            if hints is not None and hints.io_alloc_arr is not None:
                io_alloc = hints.io_alloc_arr
            else:
                io_alloc = np.fromiter(
                    (allocation.remote_io_of(jid) for jid in job_ids),
                    float,
                    count=n,
                )
            granted = np.minimum(io_alloc, demand_arr)
            io_grants = dict(zip(job_ids, granted.tolist()))
            batch = StorageDecisionBatch(
                job_ids=job_ids, hit_arr=hits, io_grant_arr=granted
            )
        else:
            io_grants = {
                jid: min(allocation.remote_io_of(jid), demands[jid])
                for jid in job_ids
            }
        trace_io_grants(ctx, hit_ratios, io_grants)
        return StorageDecision(
            cache_targets=targets,
            hit_ratios=hit_ratios,
            io_grants=io_grants,
            batch=batch,
        )
