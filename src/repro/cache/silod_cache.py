"""The SiloD data manager (§6, Figure 7, Table 3).

The data manager is the storage-layer half of SiloD: it *enforces* the
scheduler's joint allocation. It exposes the two allocation APIs of
Table 3 — ``allocateCacheSize(dataset, size)`` and
``allocateRemoteIO(job, speed)`` — implements uniform caching per dataset,
evicts randomly when an allocation shrinks, and throttles each job's
remote fetches to its grant.

Enforcement is **work-conserving**: a job whose cached data is not yet
effective (first epoch; §6 "delayed effectiveness") cannot use cache hits,
so its instantaneous remote-IO demand exceeds its steady-state grant. The
data manager guarantees every job ``min(grant, demand)`` and waterfills
the leftover egress bandwidth over residual demands — matching the paper's
fine-grained management of "the effective cache size and the
instantaneous remote IO demand".
"""

from __future__ import annotations

from typing import Dict

from repro.cache.base import (
    CacheSystem,
    StorageContext,
    StorageDecision,
    desired_rate,
    trace_io_grants,
)
from repro.core.policies import io_share


class SiloDDataManager(CacheSystem):
    """Enforces the scheduler's cache/IO allocation (uniform caching).

    Parameters
    ----------
    io_allocation:
        When False, the scheduler's remote-IO grants are ignored and the
        egress bandwidth is fair-shared instead — the §7.2 ablation
        ("disabling the allocation of remote IO"), which degrades fairness
        by ~31% in the paper while barely moving JCT/makespan.
    """

    name = "silod"

    def __init__(self, io_allocation: bool = True) -> None:
        self._io_allocation = io_allocation
        if not io_allocation:
            self.name = "silod-no-io-alloc"

    def decide(self, ctx: StorageContext) -> StorageDecision:
        jobs = list(ctx.running_jobs)
        if not jobs:
            return StorageDecision({}, {}, {})
        allocation = ctx.scheduler_allocation
        if allocation is None:
            raise ValueError(
                "SiloDDataManager requires the scheduler's allocation; "
                "run it with a storage-aware SiloDScheduler"
            )

        # Table 3: allocateCacheSize — cache targets straight from the
        # scheduler, at dataset granularity.
        targets: Dict[str, float] = {
            name: cache_mb
            for name, cache_mb in allocation.cache.items()
            if cache_mb > 0
        }

        hit_ratios = {
            job.job_id: min(
                1.0, ctx.effective_mb(job) / job.dataset.size_mb
            )
            for job in jobs
        }

        demands = {
            job.job_id: desired_rate(job, ctx)
            * (1.0 - hit_ratios[job.job_id])
            for job in jobs
        }
        if not self._io_allocation:
            # Ablation (§7.2): the scheduler's IO grants are discarded
            # and the egress is shared work-conservingly over the raw
            # demands — the division the cloud's per-flow congestion
            # control would reach on its own. Cache co-design remains.
            io_grants = io_share.max_min_waterfill(
                demands, ctx.total_io_mbps
            )
            trace_io_grants(ctx, hit_ratios, io_grants)
            return StorageDecision(
                cache_targets=targets,
                hit_ratios=hit_ratios,
                io_grants=io_grants,
            )

        # Table 3: allocateRemoteIO — strict throttling to the scheduler's
        # grant. Policies size grants from the *instantaneous* demands
        # (effective cache, §6) at every scheduling round, so enforcement
        # does not second-guess them; capping at the current demand only
        # keeps the accounting honest (a job cannot pull bytes it cannot
        # consume).
        io_grants = {
            job.job_id: min(
                allocation.remote_io_of(job.job_id), demands[job.job_id]
            )
            for job in jobs
        }
        trace_io_grants(ctx, hit_ratios, io_grants)
        return StorageDecision(
            cache_targets=targets, hit_ratios=hit_ratios, io_grants=io_grants
        )
