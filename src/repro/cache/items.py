"""Item-granularity cache implementations.

These back the minibatch testbed emulator, the curriculum-learning
experiment (§7.4), and the unit/property tests that validate the fluid
simulator's closed-form hit-ratio models against real eviction behaviour.

Two policies from the paper:

* :class:`UniformItemCache` — cache every missed item until capacity,
  never evict (uniform caching, §2.2). Shrinking the capacity evicts
  uniformly at random, which preserves the uniform-access property.
* :class:`LruItemCache` — classic least-recently-used eviction (Alluxio's
  default), which thrashes under shuffled once-per-epoch access.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Hashable, Iterable, Set


class UniformItemCache:
    """Uniform caching over unit-size items.

    ``access`` returns whether the item was already cached (a hit) and
    admits it otherwise while capacity remains; cached items are never
    replaced (§2.2: "there is no eviction unless the cache capacity is
    reduced").

    ``rng`` drives the random evictions on :meth:`resize` and is
    *required*: every caller must seed it explicitly (e.g.
    ``random.Random(seed)``) so eviction streams are reproducible —
    an implicit fallback here was the determinism pass's first real
    catch (``DET001``, see ``docs/LINT.md``).
    """

    def __init__(self, capacity: int, rng: random.Random) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if rng is None:
            raise ValueError(
                "rng is required: pass an explicitly seeded "
                "random.Random so evictions are reproducible"
            )
        self._capacity = capacity
        self._items: Set[Hashable] = set()
        self._rng = rng

    @property
    def capacity(self) -> int:
        """Maximum number of cached items."""
        return self._capacity

    @property
    def size(self) -> int:
        """Number of currently cached items."""
        return len(self._items)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._items

    def access(self, item: Hashable) -> bool:
        """Access one item; returns True on a hit."""
        if item in self._items:
            return True
        if len(self._items) < self._capacity:
            self._items.add(item)
        return False

    def resize(self, capacity: int) -> None:
        """Change capacity; shrinking evicts uniformly at random (§6)."""
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self._capacity = capacity
        excess = len(self._items) - capacity
        if excess > 0:
            # Sort by repr, not hash: builtin hash() is salted per
            # process for strings, which would change the victim set
            # from run to run even under the same seed.
            victims = self._rng.sample(sorted(self._items, key=repr), excess)
            self._items.difference_update(victims)

    def snapshot(self) -> Set[Hashable]:
        """A copy of the cached item set."""
        return set(self._items)


class LruItemCache:
    """Least-recently-used cache over unit-size items."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self._capacity = capacity
        self._items: "OrderedDict[Hashable, None]" = OrderedDict()

    @property
    def capacity(self) -> int:
        """Maximum number of cached items."""
        return self._capacity

    @property
    def size(self) -> int:
        """Number of currently cached items."""
        return len(self._items)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._items

    def access(self, item: Hashable) -> bool:
        """Access one item; returns True on a hit. Misses are admitted."""
        if item in self._items:
            self._items.move_to_end(item)
            return True
        if self._capacity == 0:
            return False
        if len(self._items) >= self._capacity:
            self._items.popitem(last=False)
        self._items[item] = None
        return False

    def resize(self, capacity: int) -> None:
        """Change capacity; shrinking evicts from the LRU end."""
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self._capacity = capacity
        while len(self._items) > capacity:
            self._items.popitem(last=False)

    def snapshot(self) -> Set[Hashable]:
        """A copy of the cached item set."""
        return set(self._items)


def measure_hit_ratio(
    cache, accesses: Iterable[Hashable], warmup: int = 0
) -> float:
    """Feed an access stream through a cache and return the hit ratio.

    ``warmup`` accesses at the head of the stream are executed but not
    counted, so steady-state behaviour can be measured.
    """
    hits = 0
    total = 0
    for i, item in enumerate(accesses):
        hit = cache.access(item)
        if i >= warmup:
            hits += int(hit)
            total += 1
    return hits / total if total else 0.0
