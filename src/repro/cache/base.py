"""Cache-subsystem interface shared by the simulators.

A cache system answers three questions on every scheduling round:

1. **Placement** — how much of each dataset (or each job's private slice,
   for CoorDL) should be resident, i.e. target resident bytes per *cache
   key*;
2. **Hit model** — given a job's currently *effective* cached bytes, what
   hit ratio does it see (uniform caching: ``c_eff/d``; LRU: the thrashing
   closed form);
3. **Remote IO division** — how the egress bandwidth is split across jobs
   (baselines fair-share it; the SiloD data manager enforces the
   scheduler's grants).

The simulators own the cache *dynamics* — resident bytes fill at the miss
rate, newly cached items become effective at the next epoch boundary (§6
"delayed effectiveness"), shrinking a target evicts randomly — and query
the cache system for the three decisions above through
:meth:`CacheSystem.decide`.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.cluster.job import Job
from repro.core.estimator import SiloDPerfEstimator
from repro.core.policies import io_share
from repro.core.resources import Allocation
from repro.obs.tracer import NULL_TRACER, Tracer


@dataclasses.dataclass
class StorageBatchHints:
    """Pre-gathered per-job columns for hot ``decide`` implementations.

    The fluid simulator calls ``decide`` on every epoch boundary, but the
    inputs below only change when the scheduler re-allocates — so the
    simulator gathers them once per allocation epoch and passes them
    along. A cache system may ignore the hints entirely; one that uses
    them must produce bit-identical results either way, because the
    contract is that every hint equals what the un-hinted code would
    compute:

    * ``job_ids[i] == running_jobs[i].job_id``;
    * ``rates[i] == estimator.compute_bound(running_jobs[i],
      gpu_grants.get(job_ids[i], 0.0))`` (the batched evaluation);
    * ``effective`` is the *live* effective-bytes map behind
      ``ctx.effective_mb`` (``effective.get(job_id, 0.0)`` ≡
      ``ctx.effective_mb(job)``);
    * the ``*_arr`` fields are numpy float64 mirrors of ``rates``, the
      jobs' dataset sizes, and ``scheduler_allocation.remote_io_of`` per
      job — ``None`` under the pure-Python backend;
    * ``targets``, when present, equals
      ``{name: mb for name, mb in scheduler_allocation.cache.items()
      if mb > 0}`` — the positive-grant filter every decide would
      otherwise rebuild. Consumers must treat it read-only (it is shared
      across the allocation epoch's decisions).
    """

    job_ids: List[str]
    rates: List[float]
    effective: Dict[str, float]
    rates_arr: Any = None
    size_arr: Any = None
    io_alloc_arr: Any = None
    targets: Optional[Dict[str, float]] = None


@dataclasses.dataclass
class StorageDecisionBatch:
    """Columnar mirror of a decision, for the simulator's rate recompute.

    ``hit_arr[i]`` / ``io_grant_arr[i]`` are the float64 values behind
    ``hit_ratios[job_ids[i]]`` / ``io_grants[job_ids[i]]`` — producers
    must build the dicts from these same arrays (``.tolist()`` round-
    trips float64 exactly) so consumers may use either form.
    """

    job_ids: List[str]
    hit_arr: Any
    io_grant_arr: Any


@dataclasses.dataclass
class StorageContext:
    """Inputs to a cache system's per-round decision."""

    #: Jobs currently holding GPUs.
    running_jobs: Sequence[Job]
    #: GPUs granted per job (fractional under Gavel time-sharing).
    gpu_grants: Dict[str, float]
    total_gpus: float
    total_cache_mb: float
    total_io_mbps: float
    #: Effective cached bytes currently visible to a job (from sim state).
    effective_mb: Callable[[Job], float]
    #: Whether the job has completed at least one full epoch.
    first_epoch_done: Callable[[Job], bool]
    estimator: SiloDPerfEstimator
    clock_s: float = 0.0
    #: The scheduler's joint allocation; only the SiloD data manager and
    #: ablations read it.
    scheduler_allocation: Optional[Allocation] = None
    #: Jobs admitted to the cluster but not currently holding GPUs;
    #: prefetching extensions warm their datasets with spare resources.
    queued_jobs: Sequence[Job] = ()
    #: Observability sink (``repro.obs``); cache systems emit one
    #: ``io_throttle`` event per running job through it (see
    #: :func:`trace_io_grants`). Defaults to the free no-op tracer.
    tracer: Tracer = NULL_TRACER
    #: Optional pre-gathered per-job columns (see
    #: :class:`StorageBatchHints`); cache systems may ignore them.
    batch: Optional[StorageBatchHints] = None


@dataclasses.dataclass
class StorageDecision:
    """Outputs of a cache system's per-round decision."""

    #: Target resident bytes per cache key (dataset name, or job id for
    #: per-job private caches).
    cache_targets: Dict[str, float]
    #: Expected hit ratio per running job under current effective bytes.
    hit_ratios: Dict[str, float]
    #: Remote IO bandwidth granted per running job, MB/s.
    io_grants: Dict[str, float]
    #: Spare-bandwidth prefetch rates per cache key, MB/s (Hoard-style
    #: warm-up of queued jobs' datasets; empty for most systems).
    prefetch_rates: Dict[str, float] = dataclasses.field(
        default_factory=dict
    )
    #: Optional columnar mirror of ``hit_ratios``/``io_grants`` (see
    #: :class:`StorageDecisionBatch`); ``None`` from scalar paths.
    batch: Optional[StorageDecisionBatch] = None


class CacheSystem(abc.ABC):
    """Base class for Alluxio / CoorDL / Quiver / the SiloD data manager."""

    #: Display name used in experiment reports.
    name: str = "cache"
    #: Whether cache keys are per-job (private caches) rather than
    #: per-dataset (shared distributed caches).
    per_job_keys: bool = False

    def cache_key(self, job: Job) -> str:
        """The cache-state key this job's data lives under."""
        return job.job_id if self.per_job_keys else job.dataset.name

    @abc.abstractmethod
    def decide(self, ctx: StorageContext) -> StorageDecision:
        """Compute placement targets, hit ratios, and IO grants."""

    def reallocate(self, ctx: StorageContext) -> StorageDecision:
        """Incremental re-allocation entry point for running systems.

        Batch runs, epoch boundaries, fault recovery, and the online
        service (``repro.serve``) all re-divide the cache through this
        one method, so online mode cannot drift from batch mode. The
        default delegates to :meth:`decide`; stateful systems may
        override it to reuse work across consecutive rounds, but must
        return bit-identical decisions to ``decide`` on the same
        context.
        """
        return self.decide(ctx)

    def reset(self) -> None:
        """Clear any internal profiling state between simulation runs."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def desired_rate(job: Job, ctx: StorageContext) -> float:
    """The job's compute-bound consumption rate under its GPU grant."""
    return ctx.estimator.compute_bound(
        job, ctx.gpu_grants.get(job.job_id, 0.0)
    )


def fair_share_io(
    ctx: StorageContext, hit_ratios: Dict[str, float]
) -> Dict[str, float]:
    """Max-min fair egress division over the jobs' miss-rate demands.

    When the scheduler does not manage remote IO, the account's egress cap
    is shared by the jobs' competing fetch streams — per-flow congestion
    control approximates a work-conserving max-min division of the
    *demands*, which is what all baseline cache systems get. (Per-VM
    physical caps, as in Figure 4's 2-VM example, are modelled by the
    experiment configuration instead.)
    """
    demands = {}
    for job in ctx.running_jobs:
        rate = desired_rate(job, ctx)
        demands[job.job_id] = rate * (1.0 - hit_ratios.get(job.job_id, 0.0))
    return io_share.max_min_waterfill(demands, ctx.total_io_mbps)


def trace_io_grants(
    ctx: StorageContext,
    hit_ratios: Dict[str, float],
    io_grants: Dict[str, float],
) -> None:
    """Emit one ``io_throttle`` event per running job for this round.

    Every cache system calls this right before returning its
    :class:`StorageDecision`, so the event log carries, per decision
    round and per job: the compute-bound rate, the modelled hit ratio,
    the induced remote-IO demand, and the grant that throttles it. The
    ``report`` CLI reconstructs the Figure 9/11 throughput timeline
    from exactly these events. Free when tracing is off.
    """
    tracer = ctx.tracer
    if not tracer.enabled:
        return
    for job in ctx.running_jobs:
        desired = desired_rate(job, ctx)
        hit = min(1.0, max(0.0, hit_ratios.get(job.job_id, 0.0)))
        tracer.io_throttle(
            ctx.clock_s,
            job.job_id,
            desired_mbps=desired,
            hit_ratio=hit,
            demand_mbps=desired * (1.0 - hit),
            grant_mbps=io_grants.get(job.job_id, 0.0),
        )
