"""Hoard-style dataset prefetching on top of the SiloD data manager.

Hoard (Pinto et al., §8) prefetches datasets into the local cache before
their jobs start, "useful when there is redundant remote IO bandwidth
thus orthogonal to SiloD". This extension composes the two: the SiloD
data manager enforces the scheduler's allocation for *running* jobs, and
whatever egress bandwidth and cache space remain in an instant are spent
warming the datasets of *queued* jobs so they skip (part of) their cold
first epoch when scheduled.

Queued datasets are prioritised by their prospective cache efficiency
(Eq 5 evaluated with the queued jobs' ``f*``), the same ranking
Algorithm 2 uses for running jobs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cache.base import StorageContext, StorageDecision
from repro.cache.silod_cache import SiloDDataManager
from repro.core import perf_model


class PrefetchingDataManager(SiloDDataManager):
    """SiloD data manager + spare-capacity prefetch for queued jobs.

    Parameters
    ----------
    max_prefetch_fraction:
        Upper bound on the fraction of the egress budget prefetching may
        consume, even when more is idle (a safety margin so a burst of
        instantaneous demand from running jobs is not starved between
        scheduling rounds).
    """

    name = "silod-prefetch"

    def __init__(
        self,
        io_allocation: bool = True,
        max_prefetch_fraction: float = 0.8,
    ) -> None:
        super().__init__(io_allocation=io_allocation)
        if not 0.0 <= max_prefetch_fraction <= 1.0:
            raise ValueError("max_prefetch_fraction must lie in [0, 1]")
        self._max_prefetch_fraction = max_prefetch_fraction
        self.name = "silod-prefetch"

    def decide(self, ctx: StorageContext) -> StorageDecision:
        decision = super().decide(ctx)
        queued = list(ctx.queued_jobs)
        if not queued:
            return decision

        spare_io = min(
            max(0.0, ctx.total_io_mbps - sum(decision.io_grants.values())),
            self._max_prefetch_fraction * ctx.total_io_mbps,
        )
        spare_cache = max(
            0.0, ctx.total_cache_mb - sum(decision.cache_targets.values())
        )
        if spare_io <= 1e-9 or spare_cache <= 1e-9:
            return decision

        # Rank queued datasets by prospective cache efficiency; skip
        # datasets the running allocation already targets.
        candidates: Dict[str, Tuple[float, float]] = {}
        for job in queued:
            name = job.dataset.name
            if decision.cache_targets.get(name, 0.0) > 0:
                continue
            efficiency, size = candidates.get(
                name, (0.0, job.dataset.size_mb)
            )
            candidates[name] = (
                efficiency
                + perf_model.cache_efficiency(
                    job.ideal_throughput_mbps, job.dataset.size_mb
                ),
                size,
            )
        ranked: List[Tuple[str, float]] = [
            (name, size)
            for name, (_eff, size) in sorted(
                candidates.items(), key=lambda kv: (-kv[1][0], kv[0])
            )
        ]
        targets = dict(decision.cache_targets)
        prefetch: Dict[str, float] = {}
        remaining_cache = spare_cache
        selected: List[str] = []
        for name, size in ranked:
            grant = min(size, remaining_cache)
            if grant <= 1e-9:
                break
            targets[name] = grant
            remaining_cache -= grant
            selected.append(name)
        if selected:
            rate_each = spare_io / len(selected)
            for name in selected:
                prefetch[name] = rate_each
        return StorageDecision(
            cache_targets=targets,
            hit_ratios=decision.hit_ratios,
            io_grants=decision.io_grants,
            prefetch_rates=prefetch,
        )
