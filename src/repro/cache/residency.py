"""Pool-level cache residency state, with a vectorized backend.

The fluid simulator tracks three scalars per cache key — the dataset
size (fill ceiling), the bytes currently resident, and the placement
target — and, *every event*, needs two aggregate views of them: the
total resident bytes (the overshoot reclaimer's admission check) and a
stale-data-first ordering (smallest target first) when the pool is
oversubscribed. Historically this was a dict of per-key dataclasses and
every event paid a Python scan proportional to the number of keys.

:class:`ResidencyStore` keeps the per-key scalars behind accessor
methods so the storage layout is a backend choice:

* :class:`DictResidencyStore` — the pure-Python fallback
  (``REPRO_NO_NUMPY=1``): a dict of :class:`KeyState`, preserving the
  historical behaviour operation for operation;
* :class:`ArrayResidencyStore` — columnar numpy arrays with a
  :class:`~repro.cache.bitset.RowBitset` liveness mask. Rows are
  append-only; popped keys are tombstoned with all scalars zeroed, so
  aggregate reductions over the raw columns remain exact.

Equivalence contract (see ``docs/PERFORMANCE.md``): for any operation
sequence the two backends return bit-identical floats. The two
non-trivial cases are handled explicitly:

* :meth:`ResidencyStore.total_resident_mb` must equal a sequential
  left-to-right Python sum over keys in insertion order. The array
  backend uses ``np.cumsum(...)[-1]`` — a *sequential* prefix sum, not
  numpy's pairwise ``np.sum`` — and tombstoned rows contribute an exact
  ``0.0`` (``x + 0.0 == x`` for every non-negative float).
* :meth:`ResidencyStore.stale_first_keys` must equal Python's stable
  ``sorted(keys, key=target)``. The array backend gathers live rows in
  insertion order and applies ``np.argsort(kind="stable")``.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cache.bitset import RowBitset
from repro.perf.backend import numpy_enabled, require_numpy


@dataclasses.dataclass
class KeyState:
    """Resident bytes and placement target for one cache key."""

    size_mb: float  # dataset size (fill ceiling)
    resident_mb: float = 0.0
    target_mb: float = 0.0


class ResidencyStore:
    """Accessor contract shared by the two backends.

    Keys iterate in insertion order (the order :meth:`ensure` first saw
    them); a popped key's order slot is gone for good. All getters raise
    ``KeyError`` for unknown keys except :meth:`snapshot`, which returns
    ``None`` — the hot loop's one-lookup read.

    The *plan* APIs (:meth:`prepare_targets` / :meth:`make_fill_plan`)
    let a caller hoist the per-key lookups of a repeated operation out of
    its hot loop: the plan captures the key→row mapping once, and
    re-running it is pure array math on the vectorized backend. Plans are
    tied to the key set they were built against — they report staleness
    (via :attr:`keyset_version`) instead of silently touching the wrong
    rows, and the caller rebuilds.
    """

    #: Backend label for diagnostics.
    backend = "base"

    #: Bumped whenever the key set changes (a key created or popped);
    #: plan objects captured under an older version are stale.
    keyset_version = 0

    def ensure(self, key: str, size_mb: float) -> None:
        """Create ``key`` (resident and target zero) if absent."""
        raise NotImplementedError

    def pop(self, key: str) -> None:
        """Drop ``key`` entirely (missing keys are a no-op)."""
        raise NotImplementedError

    def keys(self) -> List[str]:
        """Live keys in insertion order."""
        raise NotImplementedError

    def snapshot(self, key: str) -> Optional[Tuple[float, float, float]]:
        """``(size_mb, resident_mb, target_mb)`` or ``None`` if absent."""
        raise NotImplementedError

    def size_mb(self, key: str) -> float:
        """Dataset size (fill ceiling) for ``key``, in MB."""
        raise NotImplementedError

    def resident_mb(self, key: str) -> float:
        """Bytes currently resident for ``key``, in MB."""
        raise NotImplementedError

    def target_mb(self, key: str) -> float:
        """Current placement target for ``key``, in MB."""
        raise NotImplementedError

    def set_size_mb(self, key: str, value: float) -> None:
        """Set ``key``'s dataset size (fill ceiling)."""
        raise NotImplementedError

    def set_resident_mb(self, key: str, value: float) -> None:
        """Set ``key``'s resident bytes."""
        raise NotImplementedError

    def set_target_mb(self, key: str, value: float) -> None:
        """Set ``key``'s placement target."""
        raise NotImplementedError

    def total_resident_mb(self) -> float:
        """Sequential sum of resident bytes over keys in insertion order."""
        raise NotImplementedError

    def stale_first_keys(self) -> List[str]:
        """Live keys ascending by target (stable in insertion order)."""
        raise NotImplementedError

    def reclaim_candidates(self) -> List[Tuple[str, float, float]]:
        """``(key, resident_mb, target_mb)`` for over-resident keys.

        Exactly the keys a ``stale_first_keys()`` walk would *not* skip
        when reclaiming overshoot — ``resident > target`` — in the same
        stale-data-first order (ascending target, stable in insertion
        order). Filtering before sorting is equivalent: a stable sort
        preserves the relative order of the surviving keys either way.
        """
        raise NotImplementedError

    def clear_targets_except(self, keep: Iterable[str]) -> None:
        """Zero the target of every live key not named in ``keep``."""
        raise NotImplementedError

    def apply_targets(
        self,
        targets: Dict[str, float],
        sizes: Dict[str, float],
    ) -> List[Tuple[str, float]]:
        """Install a placement decision's targets in one pass.

        For each ``key -> target``: the key is created if absent (sized
        from ``sizes``, falling back to the target), its size floor is
        raised to ``sizes[key]`` when given, and its target becomes
        ``min(target, size)``. Returns ``(key, new_target)`` for every
        key left over-resident (``resident > target + 1e-9``), in
        ``targets`` order — the caller evicts those (with whatever
        bookkeeping eviction implies).
        """
        raise NotImplementedError

    def prepare_targets(self, targets, sizes):
        """Build a reusable plan equivalent to ``apply_targets(...)``.

        Creates any missing keys up front (exactly as ``apply_targets``
        would), then captures the per-key state needed to re-apply the
        same decision later without re-resolving keys. Returns an opaque
        plan for :meth:`apply_targets_prepared`.
        """
        raise NotImplementedError

    def apply_targets_prepared(self, plan):
        """Re-run a prepared target application.

        Returns the same over-resident ``(key, new_target)`` list as
        :meth:`apply_targets`, or ``None`` when the key set changed since
        the plan was prepared (the caller must re-prepare).
        """
        raise NotImplementedError

    def make_fill_plan(self, items):
        """Plan a repeated linear cache fill for ``(key, rate)`` pairs.

        Each run of the plan advances every planned key by
        ``rate * dt`` MB, capped at ``min(target, size)`` and skipping
        keys already at target (``resident >= target - 1e-9``) — the
        single-filler fast path of the fluid simulator's
        ``_advance_to``, with bit-identical arithmetic on both backends.
        Keys missing at plan time are skipped (the caller re-plans when
        the key set changes).
        """
        raise NotImplementedError

    def run_fill_plan(self, plan, dt: float) -> bool:
        """Advance a fill plan by ``dt`` seconds.

        Returns ``False`` (without touching anything) when the key set
        changed since the plan was made; the caller rebuilds the plan.
        """
        raise NotImplementedError

    # Convenience used by tests and debugging, not the hot loop.
    def __contains__(self, key: str) -> bool:
        return self.snapshot(key) is not None

    def __len__(self) -> int:
        return len(self.keys())


class DictResidencyStore(ResidencyStore):
    """The pure-Python fallback: a dict of :class:`KeyState`."""

    backend = "fallback"

    def __init__(self) -> None:
        self._states: Dict[str, KeyState] = {}
        self.keyset_version = 0

    def ensure(self, key: str, size_mb: float) -> None:
        if key not in self._states:
            self._states[key] = KeyState(size_mb=size_mb)
            self.keyset_version += 1

    def pop(self, key: str) -> None:
        if self._states.pop(key, None) is not None:
            self.keyset_version += 1

    def keys(self) -> List[str]:
        return list(self._states)

    def snapshot(self, key: str) -> Optional[Tuple[float, float, float]]:
        state = self._states.get(key)
        if state is None:
            return None
        return (state.size_mb, state.resident_mb, state.target_mb)

    def size_mb(self, key: str) -> float:
        """Dataset size (fill ceiling) for ``key``, in MB."""
        return self._states[key].size_mb

    def resident_mb(self, key: str) -> float:
        """Bytes currently resident for ``key``, in MB."""
        return self._states[key].resident_mb

    def target_mb(self, key: str) -> float:
        """Current placement target for ``key``, in MB."""
        return self._states[key].target_mb

    def set_size_mb(self, key: str, value: float) -> None:
        """Set ``key``'s dataset size (fill ceiling)."""
        self._states[key].size_mb = value

    def set_resident_mb(self, key: str, value: float) -> None:
        """Set ``key``'s resident bytes."""
        self._states[key].resident_mb = value

    def set_target_mb(self, key: str, value: float) -> None:
        """Set ``key``'s placement target."""
        self._states[key].target_mb = value

    def total_resident_mb(self) -> float:
        # An explicit sequential loop, NOT builtin sum(): the contract
        # is left-to-right addition (what cumsum computes), and sum()'s
        # float strategy is a CPython version detail (3.12 made it
        # compensated).
        total = 0.0
        for state in self._states.values():
            total += state.resident_mb
        return total

    def stale_first_keys(self) -> List[str]:
        return sorted(
            self._states, key=lambda key: self._states[key].target_mb
        )

    def reclaim_candidates(self) -> List[Tuple[str, float, float]]:
        states = self._states
        over = [
            key
            for key, state in states.items()
            if state.resident_mb > state.target_mb
        ]
        over.sort(key=lambda key: states[key].target_mb)
        return [
            (key, states[key].resident_mb, states[key].target_mb)
            for key in over
        ]

    def clear_targets_except(self, keep: Iterable[str]) -> None:
        keep = keep if isinstance(keep, (set, dict, frozenset)) else set(keep)
        for key, state in self._states.items():
            if key not in keep:
                state.target_mb = 0.0

    def apply_targets(
        self,
        targets: Dict[str, float],
        sizes: Dict[str, float],
    ) -> List[Tuple[str, float]]:
        """Install a placement decision's targets in one pass."""
        over = []
        for key, target in targets.items():
            state = self._states.get(key)
            if state is None:
                state = KeyState(size_mb=sizes.get(key, target))
                self._states[key] = state
            state.size_mb = max(state.size_mb, sizes.get(key, state.size_mb))
            new_target = min(target, state.size_mb)
            state.target_mb = new_target
            if state.resident_mb > new_target + 1e-9:
                over.append((key, new_target))
        return over

    def prepare_targets(self, targets, sizes):
        # The scalar apply re-resolves keys anyway; the plan is just the
        # arguments (it can never go stale).
        return (targets, sizes)

    def apply_targets_prepared(self, plan):
        targets, sizes = plan
        return self.apply_targets(targets, sizes)

    def make_fill_plan(self, items):
        return list(items)

    def run_fill_plan(self, plan, dt: float) -> bool:
        states = self._states
        for key, rate in plan:
            state = states.get(key)
            if state is None:
                continue
            resident = state.resident_mb
            target = state.target_mb
            if resident >= target - 1e-9:
                continue
            cap = min(target, state.size_mb)
            state.resident_mb = min(cap, resident + rate * dt)
        return True


class ArrayResidencyStore(ResidencyStore):
    """Columnar numpy backend with tombstoned (bitset-masked) rows."""

    backend = "vectorized"

    def __init__(self, capacity: int = 16) -> None:
        np = require_numpy()
        self._np = np
        capacity = max(1, capacity)
        self._n = 0  # rows allocated (live + tombstoned)
        #: key -> row, insertion-ordered; pops delete, so iterating this
        #: dict IS the live-keys-in-insertion-order view.
        self._index: Dict[str, int] = {}
        self._size = np.zeros(capacity)
        self._resident = np.zeros(capacity)
        self._target = np.zeros(capacity)
        self._live = RowBitset(capacity, vectorized=True)
        self.keyset_version = 0

    def _grow(self, capacity: int) -> None:
        np = self._np
        new_cap = max(capacity, 2 * len(self._size))
        for name in ("_size", "_resident", "_target"):
            old = getattr(self, name)
            new = np.zeros(new_cap)
            new[: len(old)] = old
            setattr(self, name, new)
        self._live.grow(new_cap)

    def ensure(self, key: str, size_mb: float) -> None:
        if key in self._index:
            return
        if self._n >= len(self._size):
            self._grow(self._n + 1)
        row = self._n
        self._n += 1
        self._index[key] = row
        self._size[row] = size_mb
        self._resident[row] = 0.0
        self._target[row] = 0.0
        self._live.set(row)
        self.keyset_version += 1

    def pop(self, key: str) -> None:
        row = self._index.pop(key, None)
        if row is None:
            return
        # Zero the tombstone so raw-column reductions stay exact.
        self._live.clear(row)
        self._size[row] = 0.0
        self._resident[row] = 0.0
        self._target[row] = 0.0
        self.keyset_version += 1

    def keys(self) -> List[str]:
        return list(self._index)

    def snapshot(self, key: str) -> Optional[Tuple[float, float, float]]:
        row = self._index.get(key)
        if row is None:
            return None
        return (
            float(self._size[row]),
            float(self._resident[row]),
            float(self._target[row]),
        )

    def size_mb(self, key: str) -> float:
        """Dataset size (fill ceiling) for ``key``, in MB."""
        return float(self._size[self._index[key]])

    def resident_mb(self, key: str) -> float:
        """Bytes currently resident for ``key``, in MB."""
        return float(self._resident[self._index[key]])

    def target_mb(self, key: str) -> float:
        """Current placement target for ``key``, in MB."""
        return float(self._target[self._index[key]])

    def set_size_mb(self, key: str, value: float) -> None:
        """Set ``key``'s dataset size (fill ceiling)."""
        self._size[self._index[key]] = value

    def set_resident_mb(self, key: str, value: float) -> None:
        """Set ``key``'s resident bytes."""
        self._resident[self._index[key]] = value

    def set_target_mb(self, key: str, value: float) -> None:
        """Set ``key``'s placement target."""
        self._target[self._index[key]] = value

    def total_resident_mb(self) -> float:
        if self._n == 0:
            return 0.0
        # cumsum is a sequential prefix sum — unlike np.sum's pairwise
        # reduction it adds left to right, exactly like the fallback
        # loop; tombstoned rows contribute an exact 0.0.
        return float(self._np.cumsum(self._resident[: self._n])[-1])

    def stale_first_keys(self) -> List[str]:
        if not self._index:
            return []
        np = self._np
        keys = list(self._index)
        rows = np.fromiter(
            self._index.values(), dtype=np.intp, count=len(keys)
        )
        order = np.argsort(self._target[rows], kind="stable")
        return [keys[i] for i in order]

    def reclaim_candidates(self) -> List[Tuple[str, float, float]]:
        if not self._index:
            return []
        np = self._np
        keys = list(self._index)
        rows = np.fromiter(
            self._index.values(), dtype=np.intp, count=len(keys)
        )
        resident = self._resident[rows]
        target = self._target[rows]
        idx = np.nonzero(resident > target)[0]
        if idx.size == 0:
            return []
        sel = idx[np.argsort(target[idx], kind="stable")]
        return list(
            zip(
                (keys[i] for i in sel.tolist()),
                resident[sel].tolist(),
                target[sel].tolist(),
            )
        )

    def clear_targets_except(self, keep: Iterable[str]) -> None:
        if not self._index:
            return
        np = self._np
        rows = np.fromiter(
            self._index.values(), dtype=np.intp, count=len(self._index)
        )
        mask = np.zeros(self._n, dtype=bool)
        mask[rows] = True
        keep_rows = [
            self._index[key] for key in keep if key in self._index
        ]
        if keep_rows:
            mask[np.asarray(keep_rows, dtype=np.intp)] = False
        self._target[: self._n][mask] = 0.0

    def apply_targets(
        self,
        targets: Dict[str, float],
        sizes: Dict[str, float],
    ) -> List[Tuple[str, float]]:
        """Install a placement decision's targets in one pass."""
        if not targets:
            return []
        np = self._np
        keys = list(targets)
        for key in keys:
            if key not in self._index:
                self.ensure(key, sizes.get(key, targets[key]))
        n = len(keys)
        rows = np.fromiter(
            (self._index[key] for key in keys), dtype=np.intp, count=n
        )
        wanted = np.fromiter(targets.values(), dtype=float, count=n)
        # max(size, sizes.get(key, size)): keys without a running sharer
        # keep their size — -inf loses every maximum exactly.
        floors = np.fromiter(
            (sizes.get(key, -math.inf) for key in keys),
            dtype=float,
            count=n,
        )
        size = np.maximum(self._size[rows], floors)
        self._size[rows] = size
        new_targets = np.minimum(wanted, size)
        self._target[rows] = new_targets
        over = np.nonzero(self._resident[rows] > new_targets + 1e-9)[0]
        return [(keys[i], float(new_targets[i])) for i in over.tolist()]

    def prepare_targets(self, targets, sizes):
        np = self._np
        keys = list(targets)
        for key in keys:
            if key not in self._index:
                self.ensure(key, sizes.get(key, targets[key]))
        n = len(keys)
        if n == 0:
            return (self.keyset_version, [], None, None, None)
        rows = np.fromiter(
            (self._index[key] for key in keys), dtype=np.intp, count=n
        )
        wanted = np.fromiter(targets.values(), dtype=float, count=n)
        floors = np.fromiter(
            (sizes.get(key, -math.inf) for key in keys),
            dtype=float,
            count=n,
        )
        # Version captured after the ensures, so the plan covers exactly
        # the key set it resolved rows against.
        return (self.keyset_version, keys, rows, wanted, floors)

    def apply_targets_prepared(self, plan):
        version, keys, rows, wanted, floors = plan
        if version != self.keyset_version:
            return None
        if not keys:
            return []
        np = self._np
        # Same arithmetic as apply_targets, minus the key resolution:
        # size = max(size, floor); target = min(wanted, size).
        size = np.maximum(self._size[rows], floors)
        self._size[rows] = size
        new_targets = np.minimum(wanted, size)
        self._target[rows] = new_targets
        over = np.nonzero(self._resident[rows] > new_targets + 1e-9)[0]
        return [(keys[i], float(new_targets[i])) for i in over.tolist()]

    def make_fill_plan(self, items):
        np = self._np
        index = self._index
        rows = []
        rates = []
        for key, rate in items:
            row = index.get(key)
            if row is None:
                continue
            rows.append(row)
            rates.append(rate)
        return (
            self.keyset_version,
            np.asarray(rows, dtype=np.intp),
            np.asarray(rates, dtype=float),
        )

    def resolve_fill_rows(self, keys):
        """``(keyset_version, row array)`` for ``keys`` (missing → -1).

        The columnar companion of :meth:`make_fill_plan`'s key
        resolution: callers that already hold per-key rates as arrays
        resolve rows once per key set, drop the ``-1`` entries (exactly
        the keys ``make_fill_plan`` would skip), and assemble plans with
        :meth:`fill_plan_from_rows` — no per-key Python loop per plan.
        """
        np = self._np
        index = self._index
        rows = np.fromiter(
            (index.get(key, -1) for key in keys),
            dtype=np.intp,
            count=len(keys),
        )
        return self.keyset_version, rows

    def fill_plan_from_rows(self, version, rows, rates):
        """A :meth:`run_fill_plan` plan from pre-resolved rows.

        ``version``/``rows`` must come from :meth:`resolve_fill_rows`
        with the ``-1`` (missing-key) entries already filtered out;
        ``rates`` is the matching float array. Equivalent to
        ``make_fill_plan`` over the same ``(key, rate)`` pairs.
        """
        np = self._np
        return (
            version,
            np.asarray(rows, dtype=np.intp),
            np.asarray(rates, dtype=float),
        )

    def run_fill_plan(self, plan, dt: float) -> bool:
        version, rows, rates = plan
        if version != self.keyset_version:
            return False
        if rows.size == 0:
            return True
        np = self._np
        resident = self._resident[rows]
        target = self._target[rows]
        # Scalar path, elementwise: skip keys at target; cap at
        # min(target, size); fill resident + rate * dt.
        filling = resident < target - 1e-9
        if not filling.any():
            return True
        cap = np.minimum(target, self._size[rows])
        new = np.minimum(cap, resident + rates * dt)
        self._resident[rows[filling]] = new[filling]
        return True


def make_residency_store(
    vectorized: Optional[bool] = None,
) -> ResidencyStore:
    """Build the residency store for the current backend.

    ``vectorized=None`` consults :func:`repro.perf.backend.numpy_enabled`
    (the ``REPRO_NO_NUMPY`` switch) at call time.
    """
    if vectorized is None:
        vectorized = numpy_enabled()
    return ArrayResidencyStore() if vectorized else DictResidencyStore()
