"""Per-job access bitsets (§6) and the row-liveness bitset.

SiloD "maintains a bitset for each job to track its accessed items",
enabling fine-grained policies to inspect the *effective* cache size and
the instantaneous remote-IO demand. The testbed emulator uses
:class:`JobAccessBitset` for exactly that: items cached before the job's
current epoch began are effective; items cached mid-epoch are resident but
cannot produce hits until the next epoch (delayed effectiveness).

:class:`RowBitset` is the pool-level analogue used by the vectorized hot
paths (the array residency store in :mod:`repro.cache.residency` and the
fluid simulator's job table): columnar state is append-only, so "which
rows are live" is one growable bitset — a numpy bool array whose raw mask
feeds elementwise math directly, or a bytearray under the pure-Python
fallback (``REPRO_NO_NUMPY=1``).
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional, Set

from repro.perf.backend import numpy_enabled, require_numpy


class JobAccessBitset:
    """Tracks one job's per-epoch item accesses and effective cache view."""

    def __init__(self) -> None:
        self._accessed_this_epoch: Set[Hashable] = set()
        self._effective: Set[Hashable] = set()
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """Zero-based index of the epoch in progress."""
        return self._epoch

    @property
    def accessed_this_epoch(self) -> int:
        """Items the job has read so far in the current epoch."""
        return len(self._accessed_this_epoch)

    def mark_accessed(self, item: Hashable) -> None:
        """Record that the job read ``item`` in the current epoch."""
        self._accessed_this_epoch.add(item)

    def is_effective(self, item: Hashable) -> bool:
        """Whether a cached ``item`` can produce a hit for this job now."""
        return item in self._effective

    def effective_count(self, resident: Set[Hashable]) -> int:
        """Effective cache size: resident items usable by this job."""
        return len(self._effective & resident)

    def start_epoch(self, resident: Iterable[Hashable]) -> None:
        """Begin a new epoch: everything resident *now* becomes effective."""
        self._effective = set(resident)
        self._accessed_this_epoch.clear()
        self._epoch += 1

    def reset(self, resident: Iterable[Hashable] = ()) -> None:
        """Reset to a fresh job whose first epoch sees ``resident`` items.

        A job joining a dataset another job already cached benefits
        immediately (those items predate its first epoch).
        """
        self._effective = set(resident)
        self._accessed_this_epoch.clear()
        self._epoch = 0


class RowBitset:
    """A growable bitset over dense row indices (tombstone tracking).

    Append-only columnar stores mark retired rows dead here instead of
    compacting. The numpy backend exposes the raw bool array through
    :meth:`mask` so hot-path math can exclude tombstoned rows without a
    Python loop; the fallback backend stores a bytearray and offers the
    same scalar operations.
    """

    def __init__(
        self, capacity: int = 0, vectorized: Optional[bool] = None
    ) -> None:
        self._vectorized = (
            numpy_enabled() if vectorized is None else vectorized
        )
        capacity = max(1, capacity)
        if self._vectorized:
            self._np = require_numpy()
            self._bits = self._np.zeros(capacity, dtype=bool)
        else:
            self._bits = bytearray(capacity)

    @property
    def vectorized(self) -> bool:
        """Whether the bitset is numpy-backed."""
        return self._vectorized

    @property
    def capacity(self) -> int:
        """Rows currently addressable without growing."""
        return len(self._bits)

    def grow(self, capacity: int) -> None:
        """Ensure at least ``capacity`` addressable rows (amortised 2x)."""
        if capacity <= len(self._bits):
            return
        new_cap = max(capacity, 2 * len(self._bits))
        if self._vectorized:
            bits = self._np.zeros(new_cap, dtype=bool)
            bits[: len(self._bits)] = self._bits
            self._bits = bits
        else:
            self._bits.extend(bytearray(new_cap - len(self._bits)))

    def set(self, row: int) -> None:
        """Mark ``row`` live."""
        self._bits[row] = True

    def clear(self, row: int) -> None:
        """Mark ``row`` dead (tombstone)."""
        self._bits[row] = False

    def test(self, row: int) -> bool:
        """Whether ``row`` is live."""
        return bool(self._bits[row])

    def mask(self, n: int):
        """Bool array view of the first ``n`` rows (numpy backend only)."""
        if not self._vectorized:
            raise RuntimeError("mask() requires the numpy backend")
        return self._bits[:n]

    def count(self, n: int) -> int:
        """Number of live rows among the first ``n``."""
        if self._vectorized:
            return int(self._np.count_nonzero(self._bits[:n]))
        total = 0
        for row in range(n):
            if self._bits[row]:
                total += 1
        return total

    def live_rows(self, n: int) -> List[int]:
        """Ascending list of live row indices among the first ``n``."""
        if self._vectorized:
            return self._np.nonzero(self._bits[:n])[0].tolist()
        return [row for row in range(n) if self._bits[row]]
