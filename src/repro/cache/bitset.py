"""Per-job access bitsets (§6).

SiloD "maintains a bitset for each job to track its accessed items",
enabling fine-grained policies to inspect the *effective* cache size and
the instantaneous remote-IO demand. The testbed emulator uses
:class:`JobAccessBitset` for exactly that: items cached before the job's
current epoch began are effective; items cached mid-epoch are resident but
cannot produce hits until the next epoch (delayed effectiveness).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Set


class JobAccessBitset:
    """Tracks one job's per-epoch item accesses and effective cache view."""

    def __init__(self) -> None:
        self._accessed_this_epoch: Set[Hashable] = set()
        self._effective: Set[Hashable] = set()
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """Zero-based index of the epoch in progress."""
        return self._epoch

    @property
    def accessed_this_epoch(self) -> int:
        """Items the job has read so far in the current epoch."""
        return len(self._accessed_this_epoch)

    def mark_accessed(self, item: Hashable) -> None:
        """Record that the job read ``item`` in the current epoch."""
        self._accessed_this_epoch.add(item)

    def is_effective(self, item: Hashable) -> bool:
        """Whether a cached ``item`` can produce a hit for this job now."""
        return item in self._effective

    def effective_count(self, resident: Set[Hashable]) -> int:
        """Effective cache size: resident items usable by this job."""
        return len(self._effective & resident)

    def start_epoch(self, resident: Iterable[Hashable]) -> None:
        """Begin a new epoch: everything resident *now* becomes effective."""
        self._effective = set(resident)
        self._accessed_this_epoch.clear()
        self._epoch += 1

    def reset(self, resident: Iterable[Hashable] = ()) -> None:
        """Reset to a fresh job whose first epoch sees ``resident`` items.

        A job joining a dataset another job already cached benefits
        immediately (those items predate its first epoch).
        """
        self._effective = set(resident)
        self._accessed_this_epoch.clear()
        self._epoch = 0
