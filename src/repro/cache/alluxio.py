"""Alluxio baseline: a shared distributed cache with LRU eviction.

Alluxio is the general-purpose distributed cache the paper uses as the
"most commonly-used off-the-shelf" baseline (§7): one cluster-wide pool,
LRU replacement, no awareness of jobs, datasets, or the scheduler.

Fluid model: each job's slice of the LRU stack is proportional to its
access byte rate (fast jobs touch more items and so occupy more of the
stack), and its hit ratio follows the thrashing closed form of
``repro.cache.lru``. Rates and hit ratios depend on each other through the
IO fair share, so the decision iterates a small fixed point (it converges
in a handful of rounds because every map is monotone and bounded).
"""

from __future__ import annotations

from typing import Dict

from repro.cache.base import (
    CacheSystem,
    StorageContext,
    StorageDecision,
    desired_rate,
    trace_io_grants,
)
from repro.cache.lru import lru_epoch_hit_ratio, shared_lru_shares
from repro.core.policies import io_share

#: Fixed-point iterations for the rate <-> hit-ratio <-> IO loop.
_FIXED_POINT_ROUNDS = 10


class AlluxioCache(CacheSystem):
    """Shared LRU pool with fair-share remote IO."""

    name = "alluxio"

    def decide(self, ctx: StorageContext) -> StorageDecision:
        jobs = list(ctx.running_jobs)
        if not jobs:
            return StorageDecision({}, {}, {})
        ideal = {job.job_id: desired_rate(job, ctx) for job in jobs}
        rates = dict(ideal)
        hit_ratios: Dict[str, float] = {j.job_id: 0.0 for j in jobs}
        grants: Dict[str, float] = {}
        for _ in range(_FIXED_POINT_ROUNDS):
            shares = shared_lru_shares(rates, ctx.total_cache_mb)
            for job in jobs:
                if not ctx.first_epoch_done(job):
                    hit_ratios[job.job_id] = 0.0
                else:
                    # The closed form assumes the job's stack share is
                    # already populated with its items; after pool churn
                    # (jobs leaving/arriving) hits are further bounded by
                    # what is actually resident and effective for it.
                    steady = lru_epoch_hit_ratio(
                        shares[job.job_id], job.dataset.size_mb
                    )
                    resident_bound = min(
                        1.0, ctx.effective_mb(job) / job.dataset.size_mb
                    )
                    hit_ratios[job.job_id] = min(steady, resident_bound)
            demands = {
                job.job_id: ideal[job.job_id]
                * (1.0 - hit_ratios[job.job_id])
                for job in jobs
            }
            grants = io_share.max_min_waterfill(demands, ctx.total_io_mbps)
            new_rates = {}
            for job in jobs:
                miss = 1.0 - hit_ratios[job.job_id]
                if miss <= 1e-12:
                    achieved = ideal[job.job_id]
                else:
                    achieved = min(
                        ideal[job.job_id], grants[job.job_id] / miss
                    )
                new_rates[job.job_id] = achieved
            if all(
                abs(new_rates[j.job_id] - rates[j.job_id]) <= 1e-6
                for j in jobs
            ):
                rates = new_rates
                break
            rates = new_rates

        # The LRU pool's occupancy per dataset mirrors the jobs' stack
        # shares (sharing jobs pool their shares on one dataset).
        shares = shared_lru_shares(rates, ctx.total_cache_mb)
        targets: Dict[str, float] = {}
        for job in jobs:
            key = self.cache_key(job)
            targets[key] = min(
                job.dataset.size_mb,
                targets.get(key, 0.0) + shares[job.job_id],
            )
        trace_io_grants(ctx, hit_ratios, grants)
        return StorageDecision(
            cache_targets=targets, hit_ratios=hit_ratios, io_grants=grants
        )
