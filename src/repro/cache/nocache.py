"""A cacheless configuration: every byte comes over remote IO.

Used for the Figure 2 analysis (the raw remote-IO demand of a cluster when
nothing is cached, which peaks far above the storage account's egress
limit) and as a lower-bound baseline in ablations.
"""

from __future__ import annotations

from repro.cache.base import (
    CacheSystem,
    StorageContext,
    StorageDecision,
    fair_share_io,
    trace_io_grants,
)


class NoCache(CacheSystem):
    """No caching at all; remote IO is fair-shared over full demands."""

    name = "nocache"

    def decide(self, ctx: StorageContext) -> StorageDecision:
        jobs = list(ctx.running_jobs)
        if not jobs:
            return StorageDecision({}, {}, {})
        hit_ratios = {job.job_id: 0.0 for job in jobs}
        io_grants = fair_share_io(ctx, hit_ratios)
        trace_io_grants(ctx, hit_ratios, io_grants)
        return StorageDecision(
            cache_targets={}, hit_ratios=hit_ratios, io_grants=io_grants
        )
