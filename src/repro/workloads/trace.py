"""Synthetic trace generation (§7.1.2, §7.2).

The paper constructs its traces by sampling job durations from the
distribution of Microsoft's production GPU clusters (Jeon et al.,
MSR-TR-2018-13 — the "Philly" analysis: heavy-tailed, most jobs minutes to
hours, a long tail of multi-day jobs, predominantly 1-GPU with a
distributed minority), assigning each job a model/dataset pair, and
setting the total steps so the job runs for the sampled duration at its
profiled V100 throughput. We follow the same recipe:

* durations: log-normal (median ~25 min, sigma ~1.6) truncated to
  [2 min, 7 days];
* GPU counts: {1: 70%, 2: 10%, 4: 12%, 8: 8%};
* model/dataset: drawn from Figure 6's eleven combinations, each job
  getting a private copy of the dataset by default ("we maintain the
  diversity by assuming all jobs use different datasets"), with a
  configurable fraction of jobs sharing pooled datasets (§7.3);
* arrivals: Poisson, with a rate helper to hit a target cluster load.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import units
from repro.cluster.dataset import Dataset
from repro.cluster.job import Job
from repro.workloads.models import FIGURE6_JOBS, MODEL_ZOO, make_job


@dataclasses.dataclass
class TraceConfig:
    """Knobs of the synthetic trace generator."""

    num_jobs: int = 200
    seed: int = 42
    #: Mean inter-arrival time; use :func:`arrival_rate_for_load` to derive.
    mean_interarrival_s: float = 300.0
    #: Log-normal duration parameters (of the ideal-throughput duration).
    duration_median_s: float = 1500.0
    duration_sigma: float = 1.6
    duration_min_s: float = 120.0
    duration_max_s: float = 7 * units.SECONDS_PER_DAY
    #: GPU-count distribution: (count, probability) pairs.
    gpu_mix: Sequence[Tuple[int, float]] = (
        (1, 0.70),
        (2, 0.10),
        (4, 0.12),
        (8, 0.08),
    )
    #: Fraction of jobs drawing from a *shared* dataset pool (§7.3).
    shared_dataset_fraction: float = 0.0
    #: GPU-generation speed multiplier (Figure 14b).
    gpu_scale: float = 1.0
    #: Diurnal modulation of the arrival rate: 0 disables it, 0.8 means
    #: the rate swings between 0.2x and 1.8x the mean over a 24 h period
    #: (production clusters see strong day/night submission patterns).
    diurnal_amplitude: float = 0.0
    diurnal_period_s: float = units.hours(24.0)
    #: Restrict the model/dataset mix (defaults to Figure 6's 11 combos).
    job_mix: Optional[Sequence[Tuple[str, Dataset]]] = None


def generate_trace(config: TraceConfig) -> List[Job]:
    """Generate a reproducible synthetic trace."""
    rng = np.random.default_rng(config.seed)
    mix = list(config.job_mix) if config.job_mix else list(FIGURE6_JOBS)
    gpu_counts = np.array([g for g, _p in config.gpu_mix])
    gpu_probs = np.array([p for _g, p in config.gpu_mix], dtype=float)
    gpu_probs = gpu_probs / gpu_probs.sum()

    # A pool of shared dataset instances, one per mix entry: jobs flagged
    # "sharing" reuse these; other jobs get private clones.
    shared_pool = {
        i: dataclasses.replace(
            dataset, name=f"{dataset.name}-shared-{i}"
        )
        for i, (_model, dataset) in enumerate(mix)
    }

    if not 0.0 <= config.diurnal_amplitude < 1.0:
        raise ValueError("diurnal amplitude must lie in [0, 1)")

    jobs: List[Job] = []
    clock = 0.0
    for idx in range(config.num_jobs):
        gap = float(rng.exponential(config.mean_interarrival_s))
        if config.diurnal_amplitude > 0:
            # Thin the Poisson process by the instantaneous diurnal rate.
            phase = 2.0 * np.pi * clock / config.diurnal_period_s
            rate = 1.0 + config.diurnal_amplitude * np.sin(phase)
            gap = gap / max(rate, 1e-3)
        clock += gap
        mix_idx = int(rng.integers(len(mix)))
        model, base_dataset = mix[mix_idx]
        shares = float(rng.random()) < config.shared_dataset_fraction
        if shares:
            dataset = shared_pool[mix_idx]
        else:
            dataset = dataclasses.replace(
                base_dataset, name=f"{base_dataset.name}-job{idx}"
            )
        num_gpus = int(rng.choice(gpu_counts, p=gpu_probs))
        duration = float(
            np.clip(
                rng.lognormal(
                    np.log(config.duration_median_s), config.duration_sigma
                ),
                config.duration_min_s,
                config.duration_max_s,
            )
        )
        jobs.append(
            make_job(
                job_id=f"job-{idx:05d}",
                model=model,
                dataset=dataset,
                num_gpus=num_gpus,
                duration_at_ideal_s=duration,
                submit_time_s=clock,
                gpu_scale=config.gpu_scale,
            )
        )
    return jobs


def expected_gpu_seconds_per_job(config: TraceConfig) -> float:
    """E[num_gpus] * E[ideal duration] under the configured distributions."""
    gpu_mean = sum(g * p for g, p in config.gpu_mix) / sum(
        p for _g, p in config.gpu_mix
    )
    # Log-normal mean = median * exp(sigma^2 / 2); truncation ignored (the
    # helper is a sizing aid, not an exact moment).
    duration_mean = config.duration_median_s * float(
        np.exp(config.duration_sigma**2 / 2.0)
    )
    return gpu_mean * duration_mean


def arrival_rate_for_load(
    config: TraceConfig, total_gpus: int, load: float = 1.0
) -> float:
    """Mean inter-arrival time (s) producing ``load`` x cluster capacity.

    ``load > 1`` oversubscribes the cluster and builds a queue, as in the
    paper's 4-week trace where "the queue builds up more extremely".
    """
    if load <= 0 or total_gpus <= 0:
        raise ValueError("load and GPU count must be positive")
    per_job = expected_gpu_seconds_per_job(config)
    return per_job / (load * total_gpus)


def microbenchmark_trace() -> List[Job]:
    """The 8-V100 micro-benchmark's five jobs (§7.1.1).

    Two 1-GPU ResNet-50s and two 1-GPU EfficientNetB1s, each on a private
    1.3 TB synthesized image dataset (13 / 10 epochs), plus one 4-GPU BERT
    on the 20.9 TB web-search corpus (0.07 epochs) — all submitted at t=0.
    """
    from repro.workloads.datasets import WEB_SEARCH, synthetic_images

    jobs = []
    for i in range(2):
        jobs.append(
            make_job(
                f"resnet50-{i}",
                "resnet50",
                synthetic_images(f"images-resnet50-{i}"),
                num_gpus=1,
                num_epochs=13,
            )
        )
    for i in range(2):
        jobs.append(
            make_job(
                f"efficientnet-b1-{i}",
                "efficientnet-b1",
                synthetic_images(f"images-efficientnet-{i}"),
                num_gpus=1,
                num_epochs=10,
            )
        )
    jobs.append(
        make_job(
            "bert-0",
            "bert",
            WEB_SEARCH,
            num_gpus=4,
            num_epochs=0.07,
        )
    )
    return jobs


def figure4_trace() -> List[Job]:
    """Figure 4's two ResNet-50 jobs, each on its own 1.36 TB ImageNet-22k
    copy (the jobs do not share data — that is what makes the cache split
    contentious)."""
    from repro.workloads.datasets import IMAGENET_22K

    return [
        make_job(
            f"resnet50-{i}",
            "resnet50",
            dataclasses.replace(IMAGENET_22K, name=f"imagenet-22k-job{i}"),
            num_gpus=1,
            num_epochs=3,
        )
        for i in range(2)
    ]


def profile_of(model: str) -> float:
    """Per-V100 ``f*`` of a zoo model (convenience re-export)."""
    return MODEL_ZOO[model].io_demand_v100_mbps
