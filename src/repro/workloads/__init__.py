"""Workloads: the model zoo, dataset catalog, traces, curriculum."""

from repro.workloads.curriculum import ExponentialPacing, simulate_curriculum_jct
from repro.workloads.datasets import TABLE4_DATASETS, default_registry, synthetic_images
from repro.workloads.models import FIGURE6_JOBS, MODEL_ZOO, make_job
from repro.workloads.profiler import profile_job
from repro.workloads.trace import TraceConfig, generate_trace, microbenchmark_trace
from repro.workloads.trace_io import load_trace, save_trace, trace_summary

__all__ = [
    "MODEL_ZOO",
    "FIGURE6_JOBS",
    "make_job",
    "TABLE4_DATASETS",
    "default_registry",
    "synthetic_images",
    "TraceConfig",
    "generate_trace",
    "microbenchmark_trace",
    "profile_job",
    "save_trace",
    "load_trace",
    "trace_summary",
    "ExponentialPacing",
    "simulate_curriculum_jct",
]
