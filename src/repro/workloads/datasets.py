"""Dataset catalog (Tables 1 and 4).

The sizes are the paper's: ImageNet-22k 1.36 TB, Open Images 660 GB,
ImageNet-1k 143 GB, YouTube-8M 1.46 TB, and the internal Web Search corpus
20.9 TB. Table 1's growth survey is kept as data for the Table 1 bench.
"""

from __future__ import annotations

from typing import Dict, List

from repro import units
from repro.cluster.dataset import Dataset, DatasetRegistry

#: Table 4's datasets. Item counts: ImageNet-1k/22k per their published
#: image counts; others estimated from typical item sizes (only the count
#: scale matters for item-level emulation).
IMAGENET_22K = Dataset("imagenet-22k", units.tb(1.36), num_items=14_200_000)
OPEN_IMAGES = Dataset("open-images", units.gb(660.0), num_items=9_000_000)
IMAGENET_1K = Dataset("imagenet-1k", units.gb(143.0), num_items=1_281_167)
YOUTUBE_8M = Dataset("youtube-8m", units.tb(1.46), num_items=8_000_000)
WEB_SEARCH = Dataset("web-search", units.tb(20.9), num_items=200_000_000)

TABLE4_DATASETS: List[Dataset] = [
    IMAGENET_22K,
    OPEN_IMAGES,
    IMAGENET_1K,
    YOUTUBE_8M,
    WEB_SEARCH,
]


def default_registry() -> DatasetRegistry:
    """A registry pre-populated with Table 4's datasets."""
    registry = DatasetRegistry()
    for dataset in TABLE4_DATASETS:
        registry.add(dataset)
    return registry


def synthetic_images(name: str, size_mb: float = units.tb(1.3)) -> Dataset:
    """A synthesized image dataset (the micro-benchmark's 1.3 TB sets).

    ``size_mb`` follows the internal unit convention; callers quoting
    paper figures convert at the boundary (``units.tb(0.3)``).
    """
    # ~110 KB per image, as in ImageNet-1k.
    num_items = max(1, int(size_mb / 0.110))
    return Dataset(name, size_mb, num_items=num_items)


#: Table 1: dataset sizes surveyed at Microsoft, early 2020 versus the
#: growth reported/planned over the following 24 months.
TABLE1_GROWTH: Dict[str, Dict[str, float]] = {
    "task-1": {"year_2020_mb": units.tb(25.0), "in_24_months_mb": units.tb(100.0)},
    "task-2": {"year_2020_mb": units.gb(100.0), "in_24_months_mb": units.tb(1.0)},
    "task-3": {"year_2020_mb": units.gb(100.0), "in_24_months_mb": units.tb(3.0)},
    "task-4": {"year_2020_mb": units.tb(5.0), "in_24_months_mb": units.tb(10.0)},
    "task-5": {"year_2020_mb": units.tb(1.5), "in_24_months_mb": units.tb(400.0)},
}


def table1_rows() -> List[dict]:
    """Table 1 as report rows with growth factors."""
    rows = []
    for task, sizes in TABLE1_GROWTH.items():
        rows.append(
            {
                "task": task,
                "year_2020_tb": units.mb_to_tb(sizes["year_2020_mb"]),
                "in_24_months_tb": units.mb_to_tb(sizes["in_24_months_mb"]),
                "growth_factor": sizes["in_24_months_mb"]
                / sizes["year_2020_mb"],
            }
        )
    return rows
