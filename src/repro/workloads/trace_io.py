"""Trace serialization and summary statistics.

Traces are written as JSON Lines — one job per line — so that runs are
exactly reproducible across machines and external traces (e.g. converted
production logs) can be replayed through the simulators. Datasets are
embedded per job (name/size/items); jobs naming the same dataset share
one :class:`~repro.cluster.dataset.Dataset` instance on load, preserving
cache-sharing semantics (§6).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro import units
from repro.cluster.dataset import Dataset
from repro.cluster.job import Job

#: Format marker written into every line for forward compatibility.
_VERSION = 1


def job_to_dict(job: Job) -> dict:
    """A JSON-safe representation of one job.

    ``deadline_s`` is emitted only when the job declares one, so traces
    without SLOs serialise byte-identically to the pre-SLO format.
    """
    data = {
        "v": _VERSION,
        "job_id": job.job_id,
        "model": job.model,
        "dataset": {
            "name": job.dataset.name,
            "size_mb": job.dataset.size_mb,
            "num_items": job.dataset.num_items,
        },
        "num_gpus": job.num_gpus,
        "ideal_throughput_mbps": job.ideal_throughput_mbps,
        "total_work_mb": job.total_work_mb,
        "submit_time_s": job.submit_time_s,
        "regular": job.regular,
    }
    if job.deadline_s is not None:
        data["deadline_s"] = job.deadline_s
    return data


def job_from_dict(data: dict, datasets: Dict[str, Dataset]) -> Job:
    """Rebuild a job, reusing dataset instances by name."""
    if data.get("v", 1) != _VERSION:
        raise ValueError(f"unsupported trace format version {data.get('v')}")
    ds = data["dataset"]
    dataset = datasets.get(ds["name"])
    if dataset is None:
        dataset = Dataset(
            name=ds["name"],
            size_mb=float(ds["size_mb"]),
            num_items=int(ds["num_items"]),
        )
        datasets[ds["name"]] = dataset
    return Job(
        job_id=data["job_id"],
        model=data["model"],
        dataset=dataset,
        num_gpus=int(data["num_gpus"]),
        ideal_throughput_mbps=float(data["ideal_throughput_mbps"]),
        total_work_mb=float(data["total_work_mb"]),
        submit_time_s=float(data["submit_time_s"]),
        regular=bool(data["regular"]),
        deadline_s=(
            float(data["deadline_s"])
            if data.get("deadline_s") is not None
            else None
        ),
    )


def save_trace(jobs: Sequence[Job], path: Union[str, Path]) -> None:
    """Write a trace as JSON Lines."""
    path = Path(path)
    with path.open("w") as handle:
        for job in jobs:
            handle.write(json.dumps(job_to_dict(job)) + "\n")


def load_trace(path: Union[str, Path]) -> List[Job]:
    """Read a JSON Lines trace; jobs sharing a dataset share the object."""
    path = Path(path)
    datasets: Dict[str, Dataset] = {}
    jobs: List[Job] = []
    with path.open() as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_no}: invalid JSON ({exc})"
                ) from exc
            jobs.append(job_from_dict(data, datasets))
    return jobs


def trace_summary(jobs: Sequence[Job]) -> dict:
    """Aggregate statistics of a trace (for reports and sanity checks)."""
    if not jobs:
        return {"num_jobs": 0}
    durations = sorted(j.ideal_duration_s for j in jobs)
    gpus = [j.num_gpus for j in jobs]
    datasets = {j.dataset.name: j.dataset for j in jobs}
    submits = [j.submit_time_s for j in jobs]
    horizon = max(submits) - min(submits)
    total_gpu_seconds = sum(
        j.num_gpus * j.ideal_duration_s for j in jobs
    )
    return {
        "num_jobs": len(jobs),
        "num_datasets": len(datasets),
        "total_dataset_tb": units.mb_to_tb(
            sum(d.size_mb for d in datasets.values())
        ),
        "gpu_mix": {
            g: gpus.count(g) / len(gpus) for g in sorted(set(gpus))
        },
        "median_ideal_duration_min": units.seconds_to_minutes(
            durations[len(durations) // 2]
        ),
        "max_ideal_duration_min": units.seconds_to_minutes(durations[-1]),
        "arrival_horizon_min": units.seconds_to_minutes(horizon),
        "offered_load_gpu_s": total_gpu_seconds,
        "mean_epochs": sum(j.num_epochs for j in jobs) / len(jobs),
        "sharing_fraction": 1.0 - len(datasets) / len(jobs),
    }
