"""Model zoo: profiled throughputs and IO demands (Table 2, Figure 6).

``io_demand_v100_mbps`` is the data-loading throughput needed to keep one
V100 busy at the model's ideal training speed — the paper's ``f*`` per
GPU. Figure 6's caption gives: ResNet-50 114 MB/s, ResNet-152 43 MB/s,
EfficientNetB1 69 MB/s, VLAD 10 MB/s, BERT 2 MB/s. The remaining Table 4
models (AlexNet, EfficientNetB0, InceptionV3) carry estimates in the same
regime (they only diversify the synthetic traces; the headline
cache-efficiency spectrum comes from the profiled five).

Figure 6's eleven jobs are the model/dataset combinations below; their
cache efficiencies reproduce the figure's 0.80 -> 9.5e-5 MB/s/GB span.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro import units
from repro.cluster.dataset import Dataset
from repro.cluster.job import Job
from repro.core import perf_model
from repro.workloads import datasets as ds


@dataclasses.dataclass(frozen=True)
class ModelProfile:
    """A model's per-V100 profile.

    ``profiled`` distinguishes paper-reported numbers from our estimates.
    """

    name: str
    io_demand_v100_mbps: float
    profiled: bool = True

    def ideal_throughput_mbps(self, num_gpus: int, gpu_scale: float = 1.0) -> float:
        """``f*`` for a data-parallel job on ``num_gpus`` V100-class GPUs.

        ``gpu_scale`` models faster GPU generations (Figure 14b scales it
        by 1x/2x/4x); data-parallel scaling is linear in GPU count, which
        Table 2 supports to within a few percent (8xV100: 888 vs 8*114).
        """
        return self.io_demand_v100_mbps * num_gpus * gpu_scale


MODEL_ZOO: Dict[str, ModelProfile] = {
    "resnet50": ModelProfile("resnet50", 114.0),
    "resnet152": ModelProfile("resnet152", 43.0),
    "efficientnet-b1": ModelProfile("efficientnet-b1", 69.0),
    "vlad": ModelProfile("vlad", 10.0),
    "bert": ModelProfile("bert", 2.0),
    # Table 4 models without a published IO figure (estimates):
    "alexnet": ModelProfile("alexnet", 180.0, profiled=False),
    "efficientnet-b0": ModelProfile("efficientnet-b0", 85.0, profiled=False),
    "inception-v3": ModelProfile("inception-v3", 55.0, profiled=False),
}


#: Figure 6's eleven (model, dataset) jobs, in the figure's order.
FIGURE6_JOBS: List[Tuple[str, Dataset]] = [
    ("resnet50", ds.IMAGENET_1K),
    ("efficientnet-b1", ds.IMAGENET_1K),
    ("resnet152", ds.IMAGENET_1K),
    ("resnet50", ds.OPEN_IMAGES),
    ("efficientnet-b1", ds.OPEN_IMAGES),
    ("resnet50", ds.IMAGENET_22K),
    ("resnet152", ds.OPEN_IMAGES),
    ("efficientnet-b1", ds.IMAGENET_22K),
    ("resnet152", ds.IMAGENET_22K),
    ("vlad", ds.YOUTUBE_8M),
    ("bert", ds.WEB_SEARCH),
]


def cache_efficiency_mbps_per_gb(model: str, dataset: Dataset) -> float:
    """Eq 5 in Figure 6's unit (MB/s saved per GB of cache), one V100."""
    profile = MODEL_ZOO[model]
    return (
        perf_model.cache_efficiency(
            profile.io_demand_v100_mbps, dataset.size_mb
        )
        * units.MB_PER_GB
    )


def figure6_series() -> List[dict]:
    """Figure 6 as a data series (job, cache efficiency), best first."""
    rows = [
        {
            "model": model,
            "dataset": dataset.name,
            "cache_efficiency_mbps_per_gb": cache_efficiency_mbps_per_gb(
                model, dataset
            ),
        }
        for model, dataset in FIGURE6_JOBS
    ]
    rows.sort(key=lambda r: -r["cache_efficiency_mbps_per_gb"])
    return rows


def make_job(
    job_id: str,
    model: str,
    dataset: Dataset,
    num_gpus: int = 1,
    num_epochs: Optional[float] = None,
    duration_at_ideal_s: Optional[float] = None,
    submit_time_s: float = 0.0,
    gpu_scale: float = 1.0,
    regular: bool = True,
) -> Job:
    """Build a :class:`Job` from a zoo model.

    Exactly one of ``num_epochs`` and ``duration_at_ideal_s`` fixes the
    total work: either that many passes over the dataset, or the paper's
    trace recipe ``work = f* x duration`` (§7: steps = V100 throughput x
    sampled duration).
    """
    profile = MODEL_ZOO[model]
    f_star = profile.ideal_throughput_mbps(num_gpus, gpu_scale)
    if (num_epochs is None) == (duration_at_ideal_s is None):
        raise ValueError(
            "specify exactly one of num_epochs / duration_at_ideal_s"
        )
    if num_epochs is not None:
        total_work_mb = num_epochs * dataset.size_mb
    else:
        total_work_mb = f_star * duration_at_ideal_s
    return Job(
        job_id=job_id,
        model=model,
        dataset=dataset,
        num_gpus=num_gpus,
        ideal_throughput_mbps=f_star,
        total_work_mb=total_work_mb,
        submit_time_s=submit_time_s,
        regular=regular,
    )
