"""Offline job profiling (§5.3: "the ideal throughput of a job f* ...
can be profiled offline").

SiloD's policies rely on two offline-profiled quantities per job: the
compute-bound throughput ``f*`` and the dataset size. This module
measures ``f*`` the way a profiling run would — execute the job's
pipeline in isolation with data loading guaranteed not to bottleneck —
using the minibatch emulator as the testbed, and derives the per-GPU
scaling the trace generator assumes (Table 2 shows data-parallel IO
demand scaling near-linearly with GPU count).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

from repro.cluster.hardware import Cluster
from repro.cluster.job import Job
from repro.sim.minibatch import MinibatchEmulator
from repro.sim.runner import make_system


@dataclasses.dataclass(frozen=True)
class ProfileResult:
    """Measured compute-bound throughput of a job."""

    job_id: str
    model: str
    num_gpus: int
    measured_f_star_mbps: float
    declared_f_star_mbps: float

    @property
    def error(self) -> float:
        """Relative gap between measured and declared throughput."""
        if self.declared_f_star_mbps <= 0.0:
            return float("nan")
        return (
            abs(self.measured_f_star_mbps - self.declared_f_star_mbps)
            / self.declared_f_star_mbps
        )


def profile_job(
    job: Job,
    profile_epochs: float = 1.0,
    item_size_mb: float = 64.0,
) -> ProfileResult:
    """Measure a job's ``f*`` in isolation with unconstrained IO.

    The profiling cluster gives the job exactly its requested GPUs, a
    cache larger than the dataset, and egress far above its demand, so
    whatever throughput emerges is compute-bound. One epoch of profiled
    work suffices (mini-batch times are stable, §4).
    """
    if profile_epochs <= 0:
        raise ValueError("profile_epochs must be positive")
    work_mb = profile_epochs * job.dataset.size_mb
    probe = Job(
        job_id=f"profile-{job.job_id}",
        model=job.model,
        dataset=job.dataset,
        num_gpus=job.num_gpus,
        ideal_throughput_mbps=job.ideal_throughput_mbps,
        total_work_mb=work_mb,
        regular=job.regular,
    )
    cluster = Cluster.build(
        num_servers=1,
        gpus_per_server=job.num_gpus,
        cache_per_server_mb=2 * job.dataset.size_mb,
        remote_io_mbps=max(10.0, 10.0 * job.ideal_throughput_mbps),
    )
    scheduler, cache_system = make_system("fifo", "silod")
    emulator = MinibatchEmulator(
        cluster,
        scheduler,
        cache_system,
        [probe],
        item_size_mb=min(item_size_mb, job.dataset.size_mb / 4),
    )
    result = emulator.run()
    record = result.records[0]
    if record.finish_time_s is None or record.start_time_s is None:
        raise RuntimeError(f"profiling run for {job.job_id} did not finish")
    elapsed = record.finish_time_s - record.start_time_s
    measured = work_mb / elapsed if elapsed > 0 else 0.0
    return ProfileResult(
        job_id=job.job_id,
        model=job.model,
        num_gpus=job.num_gpus,
        measured_f_star_mbps=measured,
        declared_f_star_mbps=job.ideal_throughput_mbps,
    )


def profile_jobs(
    jobs: Sequence[Job], **kwargs
) -> List[ProfileResult]:
    """Profile several jobs in isolation."""
    return [profile_job(job, **kwargs) for job in jobs]


def scaling_table(
    model: str,
    dataset,
    gpu_counts: Sequence[int],
    make_job_fn,
    **kwargs,
) -> Dict[int, float]:
    """Measured ``f*`` per GPU count — a Table 2-style scaling profile.

    ``make_job_fn(job_id, model, dataset, num_gpus=...)`` builds the job
    (pass :func:`repro.workloads.models.make_job` with ``num_epochs``
    pre-bound, or a custom factory).
    """
    table = {}
    for gpus in gpu_counts:
        job = make_job_fn(
            f"scale-{model}-{gpus}", model, dataset, num_gpus=gpus
        )
        table[gpus] = profile_job(job, **kwargs).measured_f_star_mbps
    return table
