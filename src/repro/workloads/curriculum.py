"""Curriculum learning (§7.4, Equation 10, Figure 16).

Curriculum training sorts data by learning difficulty and samples each
batch uniformly from the prefix admitted by a *pacing function*; there is
no epoch. Equation 10's exponential pacing:

    g(i) = min(starting_percent * alpha^floor(i / step), 1) * N

SiloDPerf's once-per-epoch assumption breaks here, but the expected
throughput model (Eq 4) still holds for both uniform caching and LRU
because every visible item is equally likely to be sampled — and LRU no
longer thrashes, since a newly cached item can be re-sampled immediately
(Figure 16b: LRU ~ uniform cache, ~367 min either way).

:func:`simulate_curriculum_jct` runs an item-level simulation of a
curriculum job over either cache policy and returns the JCT.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import List

from repro.cache.items import LruItemCache, UniformItemCache
from repro.cluster.dataset import Dataset


@dataclasses.dataclass(frozen=True)
class ExponentialPacing:
    """Eq 10's pacing function over a dataset of ``num_items`` items."""

    num_items: int
    starting_percent: float = 0.04
    alpha: float = 1.5
    step: int = 50_000

    def __post_init__(self) -> None:
        if not 0 < self.starting_percent <= 1:
            raise ValueError("starting_percent must lie in (0, 1]")
        if self.alpha <= 1.0:
            raise ValueError("alpha must exceed 1 for a growing curriculum")
        if self.step <= 0:
            raise ValueError("step must be positive")

    def visible_items(self, iteration: int) -> int:
        """g(i): number of (easiest-first) items visible at ``iteration``."""
        if iteration < 0:
            raise ValueError("iteration must be non-negative")
        fraction = min(
            1.0,
            self.starting_percent * self.alpha ** (iteration // self.step),
        )
        return max(1, int(fraction * self.num_items))

    def visible_fraction(self, iteration: int) -> float:
        """g(i) / N."""
        return self.visible_items(iteration) / self.num_items

    def iterations_to_full(self) -> int:
        """First iteration at which the whole dataset is visible."""
        growth_steps = math.ceil(
            math.log(1.0 / self.starting_percent) / math.log(self.alpha)
        )
        return growth_steps * self.step

    def series(self, total_iterations: int, points: int = 100) -> List[dict]:
        """Figure 16a as a data series."""
        rows = []
        for k in range(points + 1):
            i = int(total_iterations * k / points)
            rows.append(
                {
                    "iteration": i,
                    "fraction_of_data": self.visible_fraction(i) * 100.0,
                }
            )
        return rows


@dataclasses.dataclass
class CurriculumResult:
    """Outcome of a curriculum-learning cache simulation."""

    jct_s: float
    hit_ratio: float
    iterations: int


def simulate_curriculum_jct(
    dataset: Dataset,
    pacing: ExponentialPacing,
    total_iterations: int,
    cache_mb: float,
    policy: str,
    compute_step_s: float,
    remote_io_mbps: float,
    items_per_batch: int = 1,
    local_read_mbps: float = 2000.0,
    seed: int = 0,
) -> CurriculumResult:
    """Item-level JCT of one curriculum job under a cache policy.

    ``policy`` is ``"uniform"`` or ``"lru"``. Each iteration samples
    ``items_per_batch`` items uniformly from the pacing prefix; IO and
    compute pipeline, so per-iteration time is
    ``max(compute_step_s, io_time)``.
    """
    if policy not in ("uniform", "lru"):
        raise ValueError("policy must be 'uniform' or 'lru'")
    if total_iterations <= 0:
        raise ValueError("total_iterations must be positive")
    rng = random.Random(seed)
    item_size_mb = dataset.item_size_mb
    capacity_items = int(cache_mb / item_size_mb)
    if policy == "uniform":
        cache = UniformItemCache(capacity_items, rng=random.Random(seed + 1))
    else:
        cache = LruItemCache(capacity_items)
    fetch_s = item_size_mb / remote_io_mbps
    local_s = item_size_mb / local_read_mbps

    clock = 0.0
    hits = 0
    accesses = 0
    # Pacing changes only every `pacing.step` iterations; process in runs.
    i = 0
    while i < total_iterations:
        run_end = min(total_iterations, (i // pacing.step + 1) * pacing.step)
        visible = pacing.visible_items(i)
        for _ in range(i, run_end):
            io_s = 0.0
            for _ in range(items_per_batch):
                item = rng.randrange(visible)
                hit = cache.access(item)
                hits += int(hit)
                accesses += 1
                io_s += local_s if hit else fetch_s
            clock += max(compute_step_s, io_s)
        i = run_end
    return CurriculumResult(
        jct_s=clock,
        hit_ratio=hits / accesses if accesses else 0.0,
        iterations=total_iterations,
    )
