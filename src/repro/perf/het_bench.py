"""Heterogeneous-fleet benchmark: cache x GPU-generation co-scheduling.

Where ``repro bench`` scales a homogeneous cluster and the serve bench
measures the online service, this module pins down the *policy value* of
heterogeneity awareness: one mixed-generation cluster, one trace, three
schedulers —

* ``fifo`` — generation-naive; every GPU is priced at the reference
  generation's speed (the pessimism a naive scheduler actually incurs);
* ``het-max-min`` — Gavel-style max-min fairness over per-(job,
  generation) ``f*``, composed with SiloD's Eq. 4 cache/IO term;
* ``het-max-throughput`` — max-sum-throughput over the same
  heterogeneous allocation space.

The record's figure of merit is per-policy **aggregate throughput**
(total completed work over the makespan, MB/s) and the
expected dominance ordering ``het-max-throughput >= het-max-min >=
fifo`` is persisted as ``ordering_ok`` — CI's ``het_tiny`` smoke
compares against a checked-in baseline, so a policy change that breaks
the ordering (or shifts any simulated metric at all) fails as drift,
not as a perf wobble. Simulated metrics are bit-exact anchors; only
``wall_time_s`` is thresholded.

Artifacts are schema-versioned ``BENCH_het_<scenario>.json`` files; the
field reference lives in ``docs/PERFORMANCE.md`` and is CI-synchronised
by ``tools/check_obs_docs.py``.
"""

from __future__ import annotations

import dataclasses
import json
import math
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro import units
from repro.cluster.hardware import Cluster
from repro.perf.record import MetricDelta, host_fingerprint, utc_now_iso
from repro.sim.runner import run_experiment
from repro.workloads.trace import (
    TraceConfig,
    arrival_rate_for_load,
    generate_trace,
)

#: Version of the ``HetBenchRecord`` JSON layout.
HET_BENCH_SCHEMA_VERSION = 1

#: The policies every het scenario sweeps, naive baseline first.
HET_POLICIES = ("fifo", "het-max-min", "het-max-throughput")


@dataclasses.dataclass(frozen=True)
class HetBenchScenario:
    """One heterogeneous-fleet configuration (mix + trace)."""

    name: str
    #: Servers per GPU generation, e.g. ``(("V100", 2), ("A100", 1))``.
    gpu_mix: Tuple[Tuple[str, int], ...]
    num_jobs: int
    gpus_per_server: int = 4
    cache: str = "silod"
    seed: int = 42
    load: float = 1.5
    duration_median_s: float = 3600.0
    reschedule_interval_s: float = 600.0

    @property
    def num_gpus(self) -> int:
        """Total GPUs across every generation."""
        return self.gpus_per_server * sum(n for _, n in self.gpu_mix)

    @property
    def mix_spec(self) -> str:
        """The mix in ``--gpu-mix`` syntax (``"V100:2,A100:1"``)."""
        return ",".join(f"{gen}:{n}" for gen, n in self.gpu_mix)

    def build_cluster(self) -> Cluster:
        """Mixed fleet with the batch bench's per-GPU ratios (§7.2)."""
        return Cluster.build_mixed(
            self.gpu_mix,
            gpus_per_server=self.gpus_per_server,
            cache_per_server_mb=self.gpus_per_server * units.gb(368.0),
            remote_io_mbps=units.gbps(8.0 * self.num_gpus / 100.0),
        )

    def build_trace(self):
        """The job stream every policy replays (outside the timing)."""
        cfg = TraceConfig(
            num_jobs=self.num_jobs,
            seed=self.seed,
            duration_median_s=self.duration_median_s,
        )
        cfg.mean_interarrival_s = arrival_rate_for_load(
            cfg, self.num_gpus, load=self.load
        )
        return generate_trace(cfg)


#: The het scenario catalogue (``repro bench --scenario het_*``).
#: ``het_philly`` mirrors a Philly-like fleet: a large legacy majority
#: with newer minority pools (Jeon et al., ATC 2019 report exactly this
#: shape for Microsoft's clusters).
HET_SCENARIOS: Dict[str, HetBenchScenario] = {
    s.name: s
    for s in (
        HetBenchScenario(
            "het_tiny",
            gpu_mix=(("V100", 2), ("A100", 1)),
            num_jobs=16,
            duration_median_s=1800.0,
        ),
        HetBenchScenario(
            "het_philly",
            gpu_mix=(("K80", 12), ("P100", 8), ("V100", 5)),
            num_jobs=120,
        ),
    )
}


@dataclasses.dataclass
class HetBenchRecord:
    """One het measurement, as persisted in ``BENCH_het_*.json``."""

    schema_version: int
    scenario: str
    simulator: str
    cache: str
    num_jobs: int
    num_gpus: int
    gpu_mix: str
    policies: List[str]
    #: Per-policy aggregate throughput: completed work / makespan, MB/s.
    agg_throughput_mbps: Dict[str, float]
    #: Per-policy mean JCT over finished jobs, minutes.
    avg_jct_min: Dict[str, float]
    #: Per-policy finished-job counts (completeness anchor).
    jobs_finished: Dict[str, int]
    #: Whether max-sum >= max-min >= fifo held on aggregate throughput.
    ordering_ok: bool
    wall_time_s: float
    created_utc: str
    host: Dict[str, str]

    def to_dict(self) -> dict:
        """JSON-safe representation, one key per schema field."""
        return dataclasses.asdict(self)


#: Field names in declaration order — the code half of the doc/code
#: schema sync (``tools/check_obs_docs.py`` vs ``docs/PERFORMANCE.md``).
HET_BENCH_FIELDS = tuple(
    f.name for f in dataclasses.fields(HetBenchRecord)
)


def _aggregate_throughput_mbps(result, work_mb: Dict[str, float]) -> float:
    """Completed work over the makespan, MB/s (0 when nothing finished)."""
    done = sum(
        work_mb.get(r.job_id, 0.0) for r in result.finished_records()
    )
    span = result.makespan_s()
    if not math.isfinite(span) or span <= 0:
        # Unfinished runs: fall back to the simulated horizon so the
        # record still carries a comparable figure.
        span = result.end_time_s
    return done / span if span > 0 else 0.0


def run_het_scenario(spec: HetBenchScenario) -> HetBenchRecord:
    """Replay one trace through every policy on the same mixed fleet."""
    jobs = spec.build_trace()
    work_mb = {job.job_id: job.total_work_mb for job in jobs}
    agg: Dict[str, float] = {}
    jct: Dict[str, float] = {}
    finished: Dict[str, int] = {}
    # Wall-clock by design: this is the measurement, not the simulation.
    # lint: disable=DET003
    t0 = time.perf_counter()
    for policy in HET_POLICIES:
        result = run_experiment(
            spec.build_cluster(),
            policy,
            spec.cache,
            jobs,
            simulator="fluid",
            reschedule_interval_s=spec.reschedule_interval_s,
        )
        agg[policy] = _aggregate_throughput_mbps(result, work_mb)
        jct[policy] = result.average_jct_minutes()
        finished[policy] = len(result.finished_records())
    # lint: disable=DET003
    wall_time_s = time.perf_counter() - t0
    tol = 1e-9
    ordering_ok = (
        agg["het-max-throughput"] >= agg["het-max-min"] - tol
        and agg["het-max-min"] >= agg["fifo"] - tol
    )
    return HetBenchRecord(
        schema_version=HET_BENCH_SCHEMA_VERSION,
        scenario=spec.name,
        simulator="fluid",
        cache=spec.cache,
        num_jobs=spec.num_jobs,
        num_gpus=spec.num_gpus,
        gpu_mix=spec.mix_spec,
        policies=list(HET_POLICIES),
        agg_throughput_mbps=agg,
        avg_jct_min=jct,
        jobs_finished=finished,
        ordering_ok=ordering_ok,
        wall_time_s=wall_time_s,
        created_utc=utc_now_iso(),
        host=host_fingerprint(),
    )


def write_het_record(record: HetBenchRecord, path) -> Path:
    """Persist one record as pretty-printed, key-stable JSON."""
    path = Path(path)
    path.write_text(json.dumps(record.to_dict(), indent=2) + "\n")
    return path


def load_het_record(path) -> HetBenchRecord:
    """Load a ``BENCH_het_*.json`` record, validating the schema."""
    raw = json.loads(Path(path).read_text())
    version = raw.get("schema_version")
    if version != HET_BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: het bench schema version {version!r} is not the "
            f"supported {HET_BENCH_SCHEMA_VERSION}"
        )
    known = set(HET_BENCH_FIELDS)
    unknown = sorted(set(raw) - known)
    if unknown:
        raise ValueError(f"{path}: unknown het bench fields {unknown}")
    missing = sorted(known - set(raw))
    if missing:
        raise ValueError(f"{path}: missing het bench fields {missing}")
    return HetBenchRecord(**raw)


def render_het_record(record: HetBenchRecord) -> str:
    """One human-readable summary line (mirrors the batch bench)."""
    per_policy = ", ".join(
        f"{policy} {record.agg_throughput_mbps.get(policy, 0.0):,.0f}"
        for policy in record.policies
    )
    ordering = "ok" if record.ordering_ok else "VIOLATED"
    return (
        f"{record.scenario}: het/{record.simulator} "
        f"{record.num_jobs} jobs on {record.gpu_mix} "
        f"({record.num_gpus} GPUs) — wall {record.wall_time_s:.2f}s, "
        f"agg MB/s [{per_policy}], ordering {ordering}"
    )


# ----------------------------------------------------------------------
# Comparison (``repro bench --compare`` on het baselines).
# ----------------------------------------------------------------------


def compare_het_records(
    current: HetBenchRecord,
    baseline: HetBenchRecord,
    threshold: float,
) -> List[MetricDelta]:
    """Per-metric deltas of ``current`` against a het baseline.

    Both simulators are deterministic, so every simulated metric is a
    bit-exact anchor: any difference is drift (a policy/model change),
    never noise. Only ``wall_time_s`` is judged by ``threshold``.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    for field in ("scenario", "simulator", "cache", "num_jobs",
                  "num_gpus", "gpu_mix"):
        mine, theirs = getattr(current, field), getattr(baseline, field)
        if mine != theirs:
            raise ValueError(
                f"cannot compare: {field} differs "
                f"(current={mine!r}, baseline={theirs!r})"
            )
    deltas: List[MetricDelta] = []

    def anchor(metric: str, base: float, cur: float) -> None:
        deltas.append(
            MetricDelta(
                metric=metric,
                baseline=base,
                current=cur,
                ratio=(cur / base) if base else None,
                regressed=False,
                drift=abs(cur - base) > 1e-9 * max(1.0, abs(base)),
            )
        )

    for policy in baseline.policies:
        anchor(
            f"agg[{policy}]",
            float(baseline.agg_throughput_mbps.get(policy, 0.0)),
            float(current.agg_throughput_mbps.get(policy, 0.0)),
        )
        anchor(
            f"jct[{policy}]",
            float(baseline.avg_jct_min.get(policy, 0.0)),
            float(current.avg_jct_min.get(policy, 0.0)),
        )
        anchor(
            f"finished[{policy}]",
            float(baseline.jobs_finished.get(policy, 0)),
            float(current.jobs_finished.get(policy, 0)),
        )
    anchor(
        "ordering_ok",
        float(baseline.ordering_ok),
        float(current.ordering_ok),
    )
    base = float(baseline.wall_time_s)
    cur = float(current.wall_time_s)
    deltas.append(
        MetricDelta(
            metric="wall_time_s",
            baseline=base,
            current=cur,
            ratio=(cur / base) if base else None,
            regressed=base > 0 and cur > base * (1.0 + threshold),
        )
    )
    return deltas
