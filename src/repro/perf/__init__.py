"""repro.perf — profiling, benchmarking, and the vectorization contract.

The performance subsystem has three pieces (see ``docs/PERFORMANCE.md``
for the hot-path map, the artifact schema, and the regression-gate
policy):

* :mod:`repro.perf.backend` — the single switch deciding whether the
  vectorized (numpy) or the pure-Python fallback implementations run
  (``REPRO_NO_NUMPY=1`` forces the fallback);
* :mod:`repro.perf.record` — the schema-versioned ``BENCH_*.json``
  record, its writer/loader, and the ``--compare`` delta engine;
* :mod:`repro.perf.bench` — the scaling-scenario suite behind
  ``python -m repro bench`` (wall time, peak RSS, events/sec and
  rounds/sec via ``repro.obs`` counters).

The contract every vectorized hot path honours: with
``REPRO_NO_NUMPY=1`` the pure-Python fallback produces **bit-identical
scheduling decisions and event sequences** (enforced by the
``perf``-marked equivalence tests under ``tests/perf/``).

Only :mod:`repro.perf.backend` is imported eagerly: the simulators and
cache/estimator modules consult it at construction time, and importing
``repro.perf.bench`` here would close an import cycle back through
``repro.sim.runner``. The record/bench names below resolve lazily
(PEP 562).
"""

from repro.perf.backend import numpy_enabled, require_numpy, using_backend

#: Lazily re-exported names and the submodule each lives in.
_LAZY = {
    "BENCH_SCHEMA_VERSION": "repro.perf.record",
    "BENCH_FIELDS": "repro.perf.record",
    "BenchRecord": "repro.perf.record",
    "MetricDelta": "repro.perf.record",
    "compare_records": "repro.perf.record",
    "load_record": "repro.perf.record",
    "write_record": "repro.perf.record",
    "benchmark_artifact": "repro.perf.record",
    "write_benchmark_artifact": "repro.perf.record",
    "BenchScenario": "repro.perf.bench",
    "SCENARIOS": "repro.perf.bench",
    "SUITES": "repro.perf.bench",
    "run_scenario": "repro.perf.bench",
    "scenarios_for": "repro.perf.bench",
}

__all__ = [
    "numpy_enabled",
    "require_numpy",
    "using_backend",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module 'repro.perf' has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
