"""The scaling-scenario suite behind ``python -m repro bench``.

Each :class:`BenchScenario` pins one (simulator, trace, cluster)
configuration; :func:`run_scenario` generates the trace (outside the
timed region), runs the simulation with a fresh *disabled* tracer (so
event emission cannot distort the measurement while the ``repro.obs``
counter registry still collects the loop/round totals), and folds wall
time, peak RSS, and the counters into a
:class:`~repro.perf.record.BenchRecord`.

Suites
------
* ``smoke`` — seconds; the CI regression gate (``tools/ci.sh``).
* ``scale`` (default) — the ROADMAP's datacenter-scale points: 1k/5k/10k
  jobs on 400/2k-GPU clusters for the fluid simulator plus a
  minibatch-emulator point; minutes on the vectorized backend.
* ``full`` — ``scale`` plus the 8k-GPU stretch scenario.

Peak RSS is read from ``getrusage`` and is a *process* high-water mark:
when several scenarios run in one process, later records inherit the
largest earlier footprint. The CLI orders scenarios smallest-first and
``docs/PERFORMANCE.md`` documents the caveat.
"""

from __future__ import annotations

import dataclasses
import gc
import resource
import sys
import time
from typing import Dict, Optional, Sequence, Tuple

from repro import units
from repro.cluster.hardware import Cluster
from repro.obs.tracer import NullTracer
from repro.perf.backend import backend_name
from repro.perf.record import (
    BENCH_SCHEMA_VERSION,
    BenchRecord,
    host_fingerprint,
    utc_now_iso,
)
from repro.sim.runner import run_experiment
from repro.workloads.trace import (
    TraceConfig,
    arrival_rate_for_load,
    generate_trace,
)


@dataclasses.dataclass(frozen=True)
class BenchScenario:
    """One benchmark configuration (trace + cluster + simulator)."""

    name: str
    simulator: str
    num_jobs: int
    num_gpus: int
    policy: str = "fifo"
    cache: str = "silod"
    seed: int = 42
    load: float = 1.5
    duration_median_s: float = 7200.0
    duration_sigma: float = 1.2
    reschedule_interval_s: float = 1800.0
    sample_interval_s: float = 3600.0
    #: Minibatch emulation granularity (ignored by the fluid simulator).
    item_size_mb: float = 64.0
    decision_interval_s: float = 600.0

    def build_trace(self):
        """Generate the scenario's job trace (outside the timed region)."""
        cfg = TraceConfig(
            num_jobs=self.num_jobs,
            seed=self.seed,
            duration_median_s=self.duration_median_s,
            duration_sigma=self.duration_sigma,
        )
        cfg.mean_interarrival_s = arrival_rate_for_load(
            cfg, self.num_gpus, load=self.load
        )
        return generate_trace(cfg)

    def build_cluster(self) -> Cluster:
        """Build the scenario's cluster at the paper's per-GPU ratios."""
        # The paper's per-GPU ratios (§7.2): 368 GB of local cache per
        # GPU and 8 Gbps of egress per 100 GPUs.
        return Cluster.build(
            num_servers=max(1, self.num_gpus // 4),
            gpus_per_server=4,
            cache_per_server_mb=4 * units.gb(368.0),
            remote_io_mbps=units.gbps(8.0 * self.num_gpus / 100.0),
        )

    def sim_kwargs(self) -> dict:
        """Simulator-specific keyword arguments for ``run_experiment``."""
        if self.simulator == "fluid":
            return {
                "reschedule_interval_s": self.reschedule_interval_s,
                "sample_interval_s": self.sample_interval_s,
            }
        return {
            "decision_interval_s": self.decision_interval_s,
            "sample_interval_s": self.sample_interval_s,
            "item_size_mb": self.item_size_mb,
        }


#: Every known scenario by name. The 10k-job / 2k-GPU fluid point is the
#: ROADMAP's headline scale target; the minibatch points stay small
#: because the emulator pays per training step, not per event.
SCENARIOS: Dict[str, BenchScenario] = {
    s.name: s
    for s in (
        BenchScenario(
            "fluid_tiny", "fluid", num_jobs=40, num_gpus=16,
            duration_median_s=3600.0,
        ),
        BenchScenario("fluid_smoke", "fluid", num_jobs=120, num_gpus=64),
        BenchScenario(
            "minibatch_smoke", "minibatch", num_jobs=24, num_gpus=16,
            duration_median_s=3600.0,
        ),
        BenchScenario("fluid_1k_400", "fluid", num_jobs=1000, num_gpus=400),
        BenchScenario("fluid_5k_2k", "fluid", num_jobs=5000, num_gpus=2000),
        BenchScenario("fluid_10k_2k", "fluid", num_jobs=10000, num_gpus=2000),
        BenchScenario("fluid_10k_8k", "fluid", num_jobs=10000, num_gpus=8000),
        BenchScenario(
            "minibatch_200_96", "minibatch", num_jobs=200, num_gpus=96,
            duration_median_s=3600.0,
        ),
    )
}

#: Named suites, smallest scenarios first (peak-RSS caveat above).
SUITES: Dict[str, Tuple[str, ...]] = {
    "smoke": ("fluid_smoke", "minibatch_smoke"),
    "scale": (
        "fluid_1k_400",
        "minibatch_200_96",
        "fluid_5k_2k",
        "fluid_10k_2k",
    ),
    "full": (
        "fluid_1k_400",
        "minibatch_200_96",
        "fluid_5k_2k",
        "fluid_10k_2k",
        "fluid_10k_8k",
    ),
}


def scenarios_for(
    suite: Optional[str] = None,
    names: Sequence[str] = (),
) -> Tuple[BenchScenario, ...]:
    """Resolve a suite name and/or explicit scenario names to specs."""
    chosen = []
    if suite is not None:
        if suite not in SUITES:
            raise ValueError(
                f"unknown suite {suite!r}; expected one of {sorted(SUITES)}"
            )
        chosen.extend(SUITES[suite])
    for name in names:
        if name not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {name!r}; expected one of "
                f"{sorted(SCENARIOS)}"
            )
        if name not in chosen:
            chosen.append(name)
    return tuple(SCENARIOS[name] for name in chosen)


def peak_rss_mb() -> float:
    """Process peak resident set size in MB (high-water, monotonic)."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KB on Linux, bytes on macOS; these are binary-prefix
    # memory sizes, not the decimal storage units repro.units models.
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        # lint: disable=UNI001
        return rss / (1024.0 * 1024.0)
    # lint: disable=UNI001
    return rss / 1024.0


def run_scenario(spec: BenchScenario) -> BenchRecord:
    """Measure one scenario under the currently selected backend."""
    jobs = spec.build_trace()
    cluster = spec.build_cluster()
    # A fresh disabled tracer: no event payloads are built in the hot
    # loop, but the simulators publish their loop/round counters into
    # its metrics registry at the end of the run.
    tracer = NullTracer()
    gc.collect()
    # Wall-clock by design: this is the measurement itself, never
    # simulation input.
    # lint: disable=DET003
    t0 = time.perf_counter()
    result = run_experiment(
        cluster,
        spec.policy,
        spec.cache,
        jobs,
        simulator=spec.simulator,
        tracer=tracer,
        **spec.sim_kwargs(),
    )
    # lint: disable=DET003
    wall_s = time.perf_counter() - t0
    events = int(tracer.metrics.counter("sim.events"))
    rounds = int(tracer.metrics.counter("sim.sched_rounds"))
    finished = result.finished_records()
    return BenchRecord(
        schema_version=BENCH_SCHEMA_VERSION,
        scenario=spec.name,
        simulator=spec.simulator,
        policy=spec.policy,
        cache=spec.cache,
        num_jobs=spec.num_jobs,
        num_gpus=spec.num_gpus,
        backend=backend_name(),
        wall_time_s=wall_s,
        peak_rss_mb=peak_rss_mb(),
        events_total=events,
        events_per_sec=events / wall_s if wall_s > 0 else 0.0,
        rounds_total=rounds,
        rounds_per_sec=rounds / wall_s if wall_s > 0 else 0.0,
        sim_time_s=result.end_time_s,
        jobs_finished=len(finished),
        avg_jct_min=result.average_jct_minutes(),
        created_utc=utc_now_iso(),
        host=host_fingerprint(),
    )
