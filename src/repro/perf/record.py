"""Schema-versioned performance records (``BENCH_*.json``).

A :class:`BenchRecord` is one machine-comparable measurement of one
scaling scenario: identity fields pin *what* ran (scenario, simulator,
policy, cache, trace/cluster size, backend), result fields pin *what
came out* (simulated time, finished jobs, mean JCT — the anchors that
prove two records are comparable), and metric fields carry *how fast*
(wall time, peak RSS, events/sec, rounds/sec). The field-by-field
reference lives in ``docs/PERFORMANCE.md`` and is CI-synchronised with
this dataclass by ``tools/check_obs_docs.py``.

``compare_records`` implements ``repro bench --compare``: per-metric
deltas against a baseline record, with a relative threshold deciding
which deltas count as regressions (throughput metrics regress when they
*drop*, cost metrics when they *rise*). Records whose result anchors
disagree are flagged as drift — a perf comparison between diverging
simulations is meaningless, so drift is reported as a failure, not a
slowdown.

:func:`benchmark_artifact` wraps arbitrary benchmark payloads
(the ``benchmarks/`` suite's tables and sweep cells) in the same
versioned envelope so every artifact under ``benchmarks/results/``
is self-describing and diffable across revisions.
"""

from __future__ import annotations

import dataclasses
import datetime
import json
import platform
import sys
from pathlib import Path
from typing import Dict, List, Optional

#: Version of the ``BenchRecord`` JSON layout. Bump on any field change
#: and teach :func:`load_record` the migration.
BENCH_SCHEMA_VERSION = 1

#: Version of the generic benchmark-artifact envelope.
ARTIFACT_SCHEMA_VERSION = 1

#: Metrics where larger is better (regression = drop below baseline).
THROUGHPUT_METRICS = ("events_per_sec", "rounds_per_sec")
#: Metrics where smaller is better (regression = rise above baseline).
COST_METRICS = ("wall_time_s", "peak_rss_mb")
#: Result anchors that must agree for two records to be comparable.
ANCHOR_METRICS = ("sim_time_s", "jobs_finished", "avg_jct_min")


@dataclasses.dataclass
class BenchRecord:
    """One scenario measurement, as persisted in ``BENCH_<scenario>.json``."""

    schema_version: int
    scenario: str
    simulator: str
    policy: str
    cache: str
    num_jobs: int
    num_gpus: int
    backend: str
    wall_time_s: float
    peak_rss_mb: float
    events_total: int
    events_per_sec: float
    rounds_total: int
    rounds_per_sec: float
    sim_time_s: float
    jobs_finished: int
    avg_jct_min: float
    created_utc: str
    host: Dict[str, str]

    def to_dict(self) -> dict:
        """Plain-dict view in field declaration order (JSON layout)."""
        return dataclasses.asdict(self)


#: Field names of the record, in declaration order — the code half of
#: the doc/code schema sync in ``tools/check_obs_docs.py``.
BENCH_FIELDS = tuple(
    f.name for f in dataclasses.fields(BenchRecord)
)


def host_fingerprint() -> Dict[str, str]:
    """Where a record was measured (context for cross-machine deltas)."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy-less hosts
        numpy_version = "absent"
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "numpy": numpy_version,
    }


def utc_now_iso() -> str:
    """Current UTC time, ISO-8601 with seconds precision."""
    # Wall-clock by design: records are stamped with real measurement
    # time; it never feeds back into simulation.
    # lint: disable=DET003
    return datetime.datetime.now(datetime.timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%SZ"
    )


def write_record(record: BenchRecord, path) -> Path:
    """Persist one record as pretty-printed, key-stable JSON."""
    path = Path(path)
    path.write_text(json.dumps(record.to_dict(), indent=2) + "\n")
    return path


def load_record(path) -> BenchRecord:
    """Load a ``BENCH_*.json`` record, validating the schema version."""
    raw = json.loads(Path(path).read_text())
    version = raw.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: bench schema version {version!r} is not the "
            f"supported {BENCH_SCHEMA_VERSION}"
        )
    known = {f.name for f in dataclasses.fields(BenchRecord)}
    unknown = sorted(set(raw) - known)
    if unknown:
        raise ValueError(f"{path}: unknown bench fields {unknown}")
    missing = sorted(known - set(raw))
    if missing:
        raise ValueError(f"{path}: missing bench fields {missing}")
    return BenchRecord(**raw)


# ----------------------------------------------------------------------
# Comparison (``repro bench --compare``).
# ----------------------------------------------------------------------


@dataclasses.dataclass
class MetricDelta:
    """One per-metric comparison row.

    ``ratio`` is ``current / baseline`` (``None`` when the baseline is
    zero); ``regressed`` applies the caller's threshold in the metric's
    better-direction; ``drift`` marks result anchors that disagree,
    invalidating the whole comparison.
    """

    metric: str
    baseline: float
    current: float
    ratio: Optional[float]
    regressed: bool
    drift: bool = False

    def render(self) -> str:
        """One aligned, human-readable comparison line."""
        ratio = f"{self.ratio:.3f}x" if self.ratio is not None else "n/a"
        flag = ""
        if self.drift:
            flag = "  [DRIFT]"
        elif self.regressed:
            flag = "  [REGRESSED]"
        return (
            f"{self.metric:>16}: {self.baseline:>14.4f} -> "
            f"{self.current:>14.4f}  ({ratio}){flag}"
        )


def compare_records(
    current: BenchRecord,
    baseline: BenchRecord,
    threshold: float,
) -> List[MetricDelta]:
    """Per-metric deltas of ``current`` against ``baseline``.

    ``threshold`` is the tolerated relative change (0.25 = 25%):
    throughput metrics regress when ``current < baseline * (1 - t)``,
    cost metrics when ``current > baseline * (1 + t)``. Mismatched
    scenario identities raise; mismatched result anchors are returned
    as drift rows.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    for field in ("scenario", "simulator", "policy", "cache",
                  "num_jobs", "num_gpus"):
        mine, theirs = getattr(current, field), getattr(baseline, field)
        if mine != theirs:
            raise ValueError(
                f"cannot compare: {field} differs "
                f"(current={mine!r}, baseline={theirs!r})"
            )
    deltas: List[MetricDelta] = []
    for metric in ANCHOR_METRICS:
        base = float(getattr(baseline, metric))
        cur = float(getattr(current, metric))
        drift = abs(cur - base) > 1e-9 * max(1.0, abs(base))
        deltas.append(
            MetricDelta(
                metric=metric,
                baseline=base,
                current=cur,
                ratio=(cur / base) if base else None,
                regressed=False,
                drift=drift,
            )
        )
    for metric in THROUGHPUT_METRICS:
        base = float(getattr(baseline, metric))
        cur = float(getattr(current, metric))
        deltas.append(
            MetricDelta(
                metric=metric,
                baseline=base,
                current=cur,
                ratio=(cur / base) if base else None,
                regressed=cur < base * (1.0 - threshold),
            )
        )
    for metric in COST_METRICS:
        base = float(getattr(baseline, metric))
        cur = float(getattr(current, metric))
        deltas.append(
            MetricDelta(
                metric=metric,
                baseline=base,
                current=cur,
                ratio=(cur / base) if base else None,
                regressed=base > 0 and cur > base * (1.0 + threshold),
            )
        )
    return deltas


def has_failures(deltas: List[MetricDelta]) -> bool:
    """Whether any delta row should fail a ``--compare`` run."""
    return any(d.regressed or d.drift for d in deltas)


# ----------------------------------------------------------------------
# Generic benchmark artifacts (``benchmarks/results/*.json``).
# ----------------------------------------------------------------------


def benchmark_artifact(name: str, kind: str, data) -> dict:
    """Wrap a benchmark payload in the versioned artifact envelope.

    ``kind`` names the payload shape (``"table"`` for rendered report
    text, ``"cells"`` for sweep-cell lists, ...); ``data`` must be
    JSON-serialisable.
    """
    return {
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "name": name,
        "kind": kind,
        "created_utc": utc_now_iso(),
        "host": host_fingerprint(),
        "data": data,
    }


def write_benchmark_artifact(name: str, kind: str, data, directory) -> Path:
    """Persist one enveloped artifact as ``<directory>/<name>.json``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.json"
    path.write_text(
        json.dumps(benchmark_artifact(name, kind, data), indent=2) + "\n"
    )
    return path


def load_benchmark_artifact(path) -> dict:
    """Load and validate one enveloped benchmark artifact."""
    raw = json.loads(Path(path).read_text())
    if raw.get("schema_version") != ARTIFACT_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: artifact schema version "
            f"{raw.get('schema_version')!r} is not the supported "
            f"{ARTIFACT_SCHEMA_VERSION}"
        )
    return raw
