"""The numpy/fallback switch every vectorized hot path consults.

Vectorized implementations (job-array state in ``sim/fluid.py``, the
array residency store in ``cache/residency.py``, the batched estimator
in ``core/estimator.py``) are selected at *construction* time through
:func:`numpy_enabled`, so a single environment variable —
``REPRO_NO_NUMPY=1`` — flips an entire run onto the pure-Python
fallback. The two paths are contractually bit-identical (see
``docs/PERFORMANCE.md``); the switch exists for three reasons:

* environments without numpy (the fallback keeps the repo importable);
* recording pre-vectorization baselines for ``repro bench --compare``;
* the equivalence tests, which run every seeded trace through both
  backends and diff the decisions and event sequences.
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator, Optional

#: Environment variable forcing the pure-Python fallback when set to a
#: non-empty value other than ``0``.
NO_NUMPY_ENV = "REPRO_NO_NUMPY"

#: Backend labels used in ``BenchRecord.backend`` and reports.
BACKEND_VECTORIZED = "vectorized"
BACKEND_FALLBACK = "fallback"


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - exercised on numpy-less hosts
        return False
    return True


def numpy_enabled() -> bool:
    """Whether vectorized implementations should be used *right now*.

    Checked at object-construction time (never cached at import) so
    tests and the bench CLI can flip backends per run.
    """
    flag = os.environ.get(NO_NUMPY_ENV, "").strip()
    if flag and flag != "0":
        return False
    return _numpy_available()


def backend_name() -> str:
    """``"vectorized"`` or ``"fallback"`` for the current environment."""
    return BACKEND_VECTORIZED if numpy_enabled() else BACKEND_FALLBACK


def require_numpy():
    """Import and return numpy; raise if the fallback is forced.

    Vectorized classes call this in their constructor so a half-switched
    state (numpy objects alive while ``REPRO_NO_NUMPY=1``) fails loudly
    instead of mixing backends mid-run.
    """
    if not numpy_enabled():
        raise RuntimeError(
            "vectorized backend requested while REPRO_NO_NUMPY forces the "
            "pure-Python fallback (or numpy is unavailable)"
        )
    import numpy

    return numpy


@contextlib.contextmanager
def using_backend(backend: Optional[str]) -> Iterator[None]:
    """Temporarily force a backend (``None``/"auto" keeps the current one).

    Used by ``repro bench --backend fallback`` to record pre-vectorization
    baselines and by the equivalence tests; restores the previous
    environment on exit.
    """
    if backend in (None, "auto"):
        yield
        return
    if backend not in (BACKEND_VECTORIZED, BACKEND_FALLBACK):
        raise ValueError(f"unknown backend {backend!r}")
    before = os.environ.get(NO_NUMPY_ENV)
    if backend == BACKEND_FALLBACK:
        os.environ[NO_NUMPY_ENV] = "1"
    else:
        os.environ.pop(NO_NUMPY_ENV, None)
        if not _numpy_available():  # pragma: no cover
            raise RuntimeError("numpy unavailable; cannot force vectorized")
    try:
        yield
    finally:
        if before is None:
            os.environ.pop(NO_NUMPY_ENV, None)
        else:
            os.environ[NO_NUMPY_ENV] = before
