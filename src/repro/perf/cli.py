"""CLI plumbing for ``python -m repro bench``.

Three modes (worked examples in ``docs/CLI.md`` and
``docs/PERFORMANCE.md``):

* measure: run a suite (default ``scale``) and/or named scenarios and
  write one repo-root ``BENCH_<scenario>.json`` per scenario;
* compare: ``--compare BASELINE.json ...`` re-runs each baseline's
  scenario and reports per-metric deltas, exiting 2 when any metric
  regresses past ``--threshold`` (or the result anchors drift);
* list: ``--list`` prints the scenario/suite catalogue and exits.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import List

from repro.lint.engine import repo_root
from repro.perf import backend as perf_backend
from repro.perf.bench import SCENARIOS, SUITES, run_scenario, scenarios_for
from repro.perf.record import (
    compare_records,
    has_failures,
    load_record,
    write_record,
)


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``bench`` arguments to a subcommand parser."""
    parser.add_argument(
        "--suite",
        default=None,
        choices=sorted(SUITES),
        help="scenario suite to run (default: scale, unless --scenario "
        "or --compare selects scenarios explicitly)",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=[],
        metavar="NAME",
        help=f"run a named scenario (repeatable; one of "
        f"{', '.join(sorted(SCENARIOS))}; serve_* names run the online "
        "service bench, see docs/SERVE.md; het_* names run the "
        "heterogeneous-fleet policy bench, see docs/PERFORMANCE.md)",
    )
    parser.add_argument(
        "--backend",
        default="auto",
        choices=["auto", "vectorized", "fallback"],
        help="implementation backend: auto (default; vectorized when "
        "numpy is available), vectorized, or fallback (pure Python — "
        "what REPRO_NO_NUMPY=1 selects; used to record "
        "pre-vectorization baselines)",
    )
    parser.add_argument(
        "--out-dir",
        default=None,
        metavar="DIR",
        help="directory receiving BENCH_<scenario>.json artifacts "
        "(default: the repository root)",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="measure and print, but write no artifacts",
    )
    parser.add_argument(
        "--compare",
        action="append",
        default=[],
        metavar="BASELINE.json",
        help="re-run each baseline record's scenario and report "
        "per-metric deltas; exits 2 past --threshold (repeatable)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="tolerated relative change for --compare, as a fraction "
        "(default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_scenarios",
        help="print the scenario and suite catalogue and exit",
    )
    parser.set_defaults(func=cmd_bench)


def _render_record(record) -> str:
    return (
        f"{record.scenario}: {record.simulator} "
        f"{record.num_jobs} jobs x {record.num_gpus} GPUs "
        f"[{record.backend}] — wall {record.wall_time_s:.2f}s, "
        f"{record.events_per_sec:,.0f} events/s, "
        f"{record.rounds_per_sec:,.1f} rounds/s, "
        f"peak RSS {record.peak_rss_mb:,.0f} MB, "
        f"{record.jobs_finished}/{record.num_jobs} finished"
    )


def _list_catalogue() -> str:
    from repro.perf.het_bench import HET_SCENARIOS
    from repro.serve.bench import SERVE_SCENARIOS

    lines = ["scenarios:"]
    for name in sorted(SCENARIOS):
        s = SCENARIOS[name]
        lines.append(
            f"  {name:>18}: {s.simulator:>9} "
            f"{s.num_jobs:>6} jobs x {s.num_gpus:>5} GPUs "
            f"({s.policy} x {s.cache})"
        )
    lines.append("serve scenarios (online, over a real socket):")
    for name in sorted(SERVE_SCENARIOS):
        s = SERVE_SCENARIOS[name]
        lines.append(
            f"  {name:>18}: serve/{s.simulator} "
            f"{s.num_jobs:>6} jobs x {s.num_gpus:>5} GPUs "
            f"@ {s.arrival_rate_per_s:,.0f}/s ({s.policy} x {s.cache})"
        )
    lines.append("het scenarios (mixed-generation policy sweep):")
    for name in sorted(HET_SCENARIOS):
        s = HET_SCENARIOS[name]
        lines.append(
            f"  {name:>18}: het/fluid "
            f"{s.num_jobs:>6} jobs on {s.mix_spec} "
            f"({s.num_gpus} GPUs, cache {s.cache})"
        )
    lines.append("suites:")
    for suite in sorted(SUITES):
        lines.append(f"  {suite:>18}: {', '.join(SUITES[suite])}")
    return "\n".join(lines)


def _baseline_scenario(path) -> str:
    """The scenario name stamped in a ``--compare`` artifact."""
    try:
        raw = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"cannot read baseline {path}: {exc}") from exc
    scenario = raw.get("scenario")
    return scenario if isinstance(scenario, str) else ""


def _is_serve_baseline(path) -> bool:
    """True when a ``--compare`` artifact is a serve bench record."""
    return _baseline_scenario(path).startswith("serve_")


def _is_het_baseline(path) -> bool:
    """True when a ``--compare`` artifact is a het bench record."""
    return _baseline_scenario(path).startswith("het_")


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the bench subcommand; returns the process exit code."""
    if args.list_scenarios:
        print(_list_catalogue())
        return 0

    out_dir = Path(args.out_dir) if args.out_dir else repo_root()
    # Serve baselines (BENCH_serve_*.json) have their own schema and
    # comparison; route them by the record's scenario name, lazily so
    # plain batch benches never touch asyncio.
    serve_baseline_paths = [
        p for p in args.compare if _is_serve_baseline(p)
    ]
    het_baseline_paths = [
        p for p in args.compare if _is_het_baseline(p)
    ]
    baselines = [
        load_record(path)
        for path in args.compare
        if path not in serve_baseline_paths
        and path not in het_baseline_paths
    ]
    serve_baselines = []
    if serve_baseline_paths:
        from repro.serve.bench import load_serve_record

        serve_baselines = [
            load_serve_record(path) for path in serve_baseline_paths
        ]
    het_baselines = []
    if het_baseline_paths:
        from repro.perf.het_bench import load_het_record

        het_baselines = [
            load_het_record(path) for path in het_baseline_paths
        ]
    suite = args.suite
    if suite is None and not args.scenario and not baselines:
        if not serve_baselines and not het_baselines:
            suite = "scale"
    names = list(args.scenario)
    # Online scenarios route to the serve bench (repro.serve.bench),
    # mixed-generation scenarios to repro.perf.het_bench.
    serve_names = [n for n in names if n.startswith("serve_")]
    het_names = [n for n in names if n.startswith("het_")]
    names = [
        n for n in names
        if not n.startswith("serve_") and not n.startswith("het_")
    ]
    for baseline in baselines:
        if baseline.scenario not in SCENARIOS:
            raise SystemExit(
                f"baseline scenario {baseline.scenario!r} is not in the "
                f"catalogue; cannot re-run it"
            )
        if baseline.scenario not in names:
            names.append(baseline.scenario)
    for baseline in serve_baselines:
        if baseline.scenario not in serve_names:
            serve_names.append(baseline.scenario)
    for baseline in het_baselines:
        if baseline.scenario not in het_names:
            het_names.append(baseline.scenario)
    specs = scenarios_for(suite, names)
    if not specs and not serve_names and not het_names:
        raise SystemExit("nothing to run: no suite, scenario, or baseline")

    failures = 0
    with perf_backend.using_backend(
        None if args.backend == "auto" else args.backend
    ):
        for spec in specs:
            record = run_scenario(spec)
            print(_render_record(record))
            if not args.no_write:
                path = write_record(
                    record, out_dir / f"BENCH_{record.scenario}.json"
                )
                print(f"  -> {path}")
            for baseline in baselines:
                if baseline.scenario != record.scenario:
                    continue
                deltas = compare_records(
                    record, baseline, threshold=args.threshold
                )
                print(
                    f"  compare vs {baseline.backend} baseline "
                    f"({baseline.created_utc}), threshold "
                    f"{args.threshold:.0%}:"
                )
                for delta in deltas:
                    print(f"    {delta.render()}")
                if has_failures(deltas):
                    failures += 1

    if serve_names:
        from repro.serve.bench import (
            SERVE_SCENARIOS,
            compare_serve_records,
            render_serve_record,
            run_serve_scenario,
            write_serve_record,
        )

        for name in serve_names:
            if name not in SERVE_SCENARIOS:
                raise SystemExit(
                    f"unknown serve scenario {name!r}; expected one of "
                    f"{', '.join(sorted(SERVE_SCENARIOS))}"
                )
            record = run_serve_scenario(SERVE_SCENARIOS[name])
            print(render_serve_record(record))
            if not args.no_write:
                path = write_serve_record(
                    record, out_dir / f"BENCH_{record.scenario}.json"
                )
                print(f"  -> {path}")
            for baseline in serve_baselines:
                if baseline.scenario != record.scenario:
                    continue
                deltas = compare_serve_records(
                    record, baseline, threshold=args.threshold
                )
                print(
                    f"  compare vs baseline ({baseline.created_utc}), "
                    f"threshold {args.threshold:.0%}:"
                )
                for delta in deltas:
                    print(f"    {delta.render()}")
                if has_failures(deltas):
                    failures += 1

    if het_names:
        from repro.perf.het_bench import (
            HET_SCENARIOS,
            compare_het_records,
            render_het_record,
            run_het_scenario,
            write_het_record,
        )

        for name in het_names:
            if name not in HET_SCENARIOS:
                raise SystemExit(
                    f"unknown het scenario {name!r}; expected one of "
                    f"{', '.join(sorted(HET_SCENARIOS))}"
                )
            with perf_backend.using_backend(
                None if args.backend == "auto" else args.backend
            ):
                record = run_het_scenario(HET_SCENARIOS[name])
            print(render_het_record(record))
            if not args.no_write:
                path = write_het_record(
                    record, out_dir / f"BENCH_{record.scenario}.json"
                )
                print(f"  -> {path}")
            for baseline in het_baselines:
                if baseline.scenario != record.scenario:
                    continue
                deltas = compare_het_records(
                    record, baseline, threshold=args.threshold
                )
                print(
                    f"  compare vs baseline ({baseline.created_utc}), "
                    f"threshold {args.threshold:.0%}:"
                )
                for delta in deltas:
                    print(f"    {delta.render()}")
                if has_failures(deltas):
                    failures += 1
    return 2 if failures else 0


def build_standalone_parser() -> argparse.ArgumentParser:
    """A self-contained parser (tests drive the subcommand directly)."""
    parser = argparse.ArgumentParser(prog="repro bench")
    configure_parser(parser)
    return parser


def main(argv: List[str] = None) -> int:
    """Entry point for driving ``bench`` outside ``python -m repro``."""
    args = build_standalone_parser().parse_args(argv)
    return cmd_bench(args)
