"""repro — a reproduction of SiloD (EuroSys 2023).

SiloD co-designs the cluster scheduler and the cache subsystem for deep
learning training: cache space and remote IO bandwidth become first-class
scheduled resources, and a closed-form performance model (SiloDPerf) lets
any performance-aware scheduler account for them.

Quickstart::

    from repro.sim import run_experiment
    from repro.cluster import microbenchmark_cluster
    from repro.workloads import microbenchmark_trace

    result = run_experiment(
        microbenchmark_cluster(), "fifo", "silod", microbenchmark_trace()
    )
    print(result.average_jct_minutes())
"""

from repro.core import (
    Allocation,
    ResourceVector,
    SiloDPerfEstimator,
    SiloDScheduler,
    cache_efficiency,
    silod_perf,
)

__version__ = "1.0.0"

__all__ = [
    "SiloDScheduler",
    "SiloDPerfEstimator",
    "silod_perf",
    "cache_efficiency",
    "Allocation",
    "ResourceVector",
    "__version__",
]
