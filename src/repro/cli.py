"""Command-line interface: ``python -m repro <command>``.

Nine subcommands cover the end-to-end workflow:

* ``trace``     — generate a synthetic trace (JSON Lines) and print its
  summary statistics;
* ``run``       — simulate one (policy, cache) configuration over a trace
  and print JCT / makespan / fairness (``--events`` captures a structured
  event log for later analysis; ``--faults`` / ``--churn-seed`` drive the
  run through a fault schedule, see ``docs/FAULTS.md``);
* ``matrix``    — the Figure 12-style grid over policies x caches;
* ``estimate``  — evaluate the closed-form SiloDPerf model for a single
  allocation (a calculator for Eq 4 / Eq 5);
* ``report``    — render timeline / scheduler-audit / cache tables from
  an event log written by ``run --events``, or tail a live service with
  ``--tail HOST:PORT`` (``--slo`` adds the deadline-attainment table);
* ``explain``   — reconstruct the decision provenance of one job from an
  event log: the Eq. 4 estimator inputs, policy score, and resulting
  GPU / cache / IO grants of every allocation round that touched it;
* ``serve``     — run the long-lived online scheduler service: job
  submissions over a line-JSON socket against simulated virtual time
  (see ``docs/SERVE.md``);
* ``lint``      — run the AST-based invariant linter (``repro.lint``)
  over the source tree (see ``docs/LINT.md``);
* ``bench``     — run the scaling-scenario benchmark suite (including
  the online ``serve_*`` scenarios) and write repo-root
  ``BENCH_<scenario>.json`` artifacts; ``--compare`` gates against a
  baseline record (see ``docs/PERFORMANCE.md``).

See ``docs/CLI.md`` for worked invocations and ``docs/OBSERVABILITY.md``
for the event schema.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import units
from repro.analysis.tables import render_table
from repro.cluster.hardware import Cluster, parse_gpu_mix
from repro.core import perf_model
from repro.faults import FaultSchedule, generate_churn
from repro.lint.cli import configure_parser as configure_lint_parser
from repro.perf.cli import configure_parser as configure_bench_parser
from repro.serve.cli import configure_parser as configure_serve_parser
from repro.obs import (
    Tracer,
    load_events,
    render_explain,
    render_report,
    render_slo_report,
    save_chrome_trace,
    save_events,
    save_timeline_csv,
)
from repro.sim.runner import CACHES, POLICIES, run_experiment, run_matrix
from repro.workloads.trace import (
    TraceConfig,
    arrival_rate_for_load,
    generate_trace,
)
from repro.workloads.trace_io import load_trace, save_trace, trace_summary


def _add_cluster_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--gpus", type=int, default=100, help="total GPUs (default 100)"
    )
    parser.add_argument(
        "--gpus-per-server",
        type=int,
        default=4,
        help="GPUs per server (default 4)",
    )
    parser.add_argument(
        "--cache-per-gpu-gb",
        type=float,
        default=368.0,
        help="local cache per GPU in GB (default 368, Azure V100)",
    )
    parser.add_argument(
        "--egress-gbps",
        type=float,
        default=8.0,
        help="remote-IO egress limit in Gbps (default 8.0)",
    )
    parser.add_argument(
        "--gpu-mix",
        default=None,
        metavar="GEN:N[,GEN:N...]",
        help="heterogeneous fleet as servers per GPU generation, e.g. "
        "'V100:20,A100:5' (default: none — a homogeneous V100 fleet "
        "sized by --gpus; with --gpu-mix, --gpus is ignored and the "
        "mix fixes the server counts)",
    )


def _build_cluster(args: argparse.Namespace) -> Cluster:
    cache_per_server_mb = args.gpus_per_server * units.gb(
        args.cache_per_gpu_gb
    )
    if getattr(args, "gpu_mix", None):
        return Cluster.build_mixed(
            parse_gpu_mix(args.gpu_mix),
            gpus_per_server=args.gpus_per_server,
            cache_per_server_mb=cache_per_server_mb,
            remote_io_mbps=units.gbps(args.egress_gbps),
        )
    servers = max(1, args.gpus // args.gpus_per_server)
    return Cluster.build(
        num_servers=servers,
        gpus_per_server=args.gpus_per_server,
        cache_per_server_mb=cache_per_server_mb,
        remote_io_mbps=units.gbps(args.egress_gbps),
    )


def _cmd_trace(args: argparse.Namespace) -> int:
    config = TraceConfig(
        num_jobs=args.jobs,
        seed=args.seed,
        duration_median_s=units.minutes(args.duration_median_min),
        shared_dataset_fraction=args.sharing,
    )
    config.mean_interarrival_s = arrival_rate_for_load(
        config, args.gpus, load=args.load
    )
    jobs = generate_trace(config)
    save_trace(jobs, args.output)
    summary = trace_summary(jobs)
    rows = [{"statistic": k, "value": str(v)} for k, v in summary.items()]
    print(render_table(rows, title=f"trace written to {args.output}"))
    return 0


def _build_fault_schedule(
    args: argparse.Namespace, cluster: Cluster
) -> Optional[FaultSchedule]:
    """The run's fault schedule: a spec file, a churn seed, or none."""
    if args.faults and args.churn_seed is not None:
        raise SystemExit("--faults and --churn-seed are mutually exclusive")
    if args.faults:
        return FaultSchedule.load(args.faults)
    if args.churn_seed is not None:
        return generate_churn(
            seed=args.churn_seed,
            duration_s=units.hours(args.churn_hours),
            num_servers=len(cluster.servers),
            total_cache_mb=cluster.total_cache_mb,
        )
    return None


def _cmd_run(args: argparse.Namespace) -> int:
    cluster = _build_cluster(args)
    jobs = load_trace(args.trace)
    tracing = bool(args.events or args.chrome_trace)
    tracer = Tracer() if tracing else None
    sim_kwargs = {"tracer": tracer}
    schedule = _build_fault_schedule(args, cluster)
    if schedule is not None:
        sim_kwargs["faults"] = schedule
        print(f"fault schedule: {len(schedule)} events")
    if args.simulator == "fluid":
        # The minibatch emulator reschedules every decision interval and
        # takes no reschedule knob.
        sim_kwargs["reschedule_interval_s"] = args.reschedule_s
    result = run_experiment(
        cluster,
        args.policy,
        args.cache,
        jobs,
        simulator=args.simulator,
        **sim_kwargs,
    )
    if tracer is not None:
        if args.events:
            save_events(tracer.events, args.events)
            print(f"events: {len(tracer.events)} -> {args.events}")
        if args.chrome_trace:
            save_chrome_trace(tracer.events, args.chrome_trace)
            print(f"chrome trace -> {args.chrome_trace}")
    rows = [
        {
            "metric": "average JCT (min)",
            "value": result.average_jct_minutes(),
        },
        {"metric": "makespan (min)", "value": result.makespan_minutes()},
        {
            "metric": "avg fairness ratio",
            "value": result.average_fairness_ratio(),
        },
        {
            "metric": "finished jobs",
            "value": f"{len(result.finished_records())}/{len(result.records)}",
        },
    ]
    print(
        render_table(
            rows, title=f"{args.policy} x {args.cache} on {args.trace}"
        )
    )
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    cluster = _build_cluster(args)
    jobs = load_trace(args.trace)
    results = run_matrix(
        cluster,
        jobs,
        policies=args.policies,
        caches=args.caches,
        reschedule_interval_s=args.reschedule_s,
    )
    rows = [
        {
            "scheduler": policy,
            "cache": cache,
            "avg JCT (min)": result.average_jct_minutes(),
            "makespan (min)": result.makespan_minutes(),
            "fairness": result.average_fairness_ratio(),
        }
        for (policy, cache), result in sorted(results.items())
    ]
    print(render_table(rows, title="scheduler x cache grid"))
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    d_mb = units.gb(args.dataset_gb)
    c_mb = units.gb(args.cache_gb)
    throughput = perf_model.silod_perf(
        args.f_star, args.io_mbps, c_mb, d_mb
    )
    rows = [
        {"quantity": "SiloDPerf (MB/s)", "value": throughput},
        {
            "quantity": "bottleneck",
            "value": "compute"
            if throughput >= args.f_star - 1e-9
            else "data loading",
        },
        {
            "quantity": "cache hit ratio",
            "value": perf_model.hit_ratio(c_mb, d_mb),
        },
        {
            "quantity": "remote IO demand at f* (MB/s)",
            "value": perf_model.remote_io_demand(args.f_star, c_mb, d_mb),
        },
        {
            "quantity": "cache efficiency (MB/s per GB)",
            "value": perf_model.cache_efficiency(args.f_star, d_mb)
            * units.MB_PER_GB,
        },
    ]
    print(render_table(rows, title="SiloDPerf (Eq 4) estimate"))
    return 0


def _tail_events(target: str):
    """Subscribe to a running serve instance; return its full event log.

    Blocks until the service drains (the subscriber stream ends), so the
    rendered report covers the whole run — exactly what ``report`` on a
    saved log would show.
    """
    from repro.obs.events import Event
    from repro.serve.client import ServeClient

    host, _, port = target.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"--tail expects HOST:PORT, got {target!r}")
    print(f"tailing {host}:{port} (report renders when the service exits)")
    events = []
    try:
        with ServeClient(host, int(port)) as client:
            for obj in client.tail():
                if obj.get("kind") == "repro-events":
                    continue  # stream header
                events.append(Event.from_dict(obj))
    except (ConnectionError, OSError, json.JSONDecodeError) as exc:
        # A dropped socket mid-stream is an operational condition, not a
        # bug: report it plainly and render what already arrived.
        print(
            f"connection to {host}:{port} closed mid-stream "
            f"({type(exc).__name__}: {exc}); rendering the "
            f"{len(events)} events received so far — rerun "
            f"`repro report --tail {host}:{port}` to reconnect",
            file=sys.stderr,
        )
    return events


def _cmd_report(args: argparse.Namespace) -> int:
    if args.tail:
        events = _tail_events(args.tail)
    elif args.events:
        events = load_events(args.events)
    else:
        raise SystemExit("report needs an event-log path or --tail HOST:PORT")
    print(render_report(events, bins=args.bins))
    if args.slo:
        print()
        print(render_slo_report(events))
    if args.chrome_trace:
        save_chrome_trace(events, args.chrome_trace)
        print(f"chrome trace -> {args.chrome_trace}")
    if args.csv:
        save_timeline_csv(events, args.csv, bins=args.bins)
        print(f"timeline CSV -> {args.csv}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    events = load_events(args.events)
    print(render_explain(events, args.job_id))
    known = {e.job_id for e in events if e.job_id}
    if args.job_id not in known:
        print(
            f"note: {args.job_id!r} appears in no event of {args.events}; "
            f"known jobs: {', '.join(sorted(known)) or '(none)'}",
            file=sys.stderr,
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SiloD reproduction: co-designed caching + scheduling",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_trace = sub.add_parser("trace", help="generate a synthetic trace")
    p_trace.add_argument("output", help="output JSONL path")
    p_trace.add_argument(
        "--jobs", type=int, default=300, help="number of jobs (default 300)"
    )
    p_trace.add_argument(
        "--seed", type=int, default=42, help="RNG seed (default 42)"
    )
    p_trace.add_argument(
        "--gpus",
        type=int,
        default=100,
        help="cluster size the load targets (default 100)",
    )
    p_trace.add_argument(
        "--load",
        type=float,
        default=1.5,
        help="target cluster load factor, > 0 (default 1.5; 1.0 keeps "
        "the cluster exactly busy, above 1.0 builds a queue)",
    )
    p_trace.add_argument(
        "--duration-median-min",
        type=float,
        default=360.0,
        help="median job duration in minutes (default 360)",
    )
    p_trace.add_argument(
        "--sharing",
        type=float,
        default=0.0,
        help="fraction of jobs sharing pooled datasets, 0.0-1.0 "
        "(default 0.0 = every job brings its own dataset)",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_run = sub.add_parser("run", help="simulate one configuration")
    p_run.add_argument("trace", help="trace JSONL path")
    p_run.add_argument(
        "--policy",
        default="fifo",
        help=f"scheduling policy (default fifo; one of {', '.join(POLICIES)})",
    )
    p_run.add_argument(
        "--cache",
        default="silod",
        help=f"cache system (default silod; one of {', '.join(CACHES)})",
    )
    p_run.add_argument("--simulator", default="fluid",
                       choices=["fluid", "minibatch"],
                       help="simulator backend (default fluid)")
    p_run.add_argument(
        "--reschedule-s",
        type=float,
        default=1800.0,
        help="scheduling interval in seconds (default 1800; fluid only — "
        "the minibatch emulator reschedules every decision interval)",
    )
    p_run.add_argument(
        "--faults",
        default=None,
        metavar="PATH",
        help="fault-schedule JSON driving cluster churn (default: none; "
        "a list of {time_s, kind, target, magnitude} objects with kind "
        "one of server_crash, server_recover, cache_loss, cache_recover, "
        "bandwidth, job_preempt, job_restart — see docs/FAULTS.md; "
        "mutually exclusive with --churn-seed)",
    )
    p_run.add_argument(
        "--churn-seed",
        type=int,
        default=None,
        metavar="N",
        help="generate a seeded random churn schedule instead of loading "
        "one (default: no churn; same seed => same schedule)",
    )
    p_run.add_argument(
        "--churn-hours",
        type=float,
        default=24.0,
        metavar="H",
        help="horizon of the generated churn schedule in hours "
        "(default 24.0; only meaningful with --churn-seed)",
    )
    p_run.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help="write a structured event log (JSONL) for `repro report`",
    )
    p_run.add_argument(
        "--chrome-trace",
        default=None,
        metavar="PATH",
        help="write a Chrome trace_event JSON (open in Perfetto)",
    )
    _add_cluster_args(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_matrix = sub.add_parser("matrix", help="run a policy x cache grid")
    p_matrix.add_argument("trace", help="trace JSONL path")
    p_matrix.add_argument(
        "--policies",
        nargs="+",
        default=list(POLICIES),
        help=f"policies to sweep (default: {' '.join(POLICIES)})",
    )
    p_matrix.add_argument(
        "--caches",
        nargs="+",
        default=list(CACHES),
        help=f"cache systems to sweep (default: {' '.join(CACHES)})",
    )
    p_matrix.add_argument(
        "--reschedule-s",
        type=float,
        default=1800.0,
        help="scheduling interval in seconds (default 1800)",
    )
    _add_cluster_args(p_matrix)
    p_matrix.set_defaults(func=_cmd_matrix)

    p_est = sub.add_parser("estimate", help="evaluate SiloDPerf (Eq 4)")
    p_est.add_argument("--f-star", type=float, required=True,
                       help="compute-bound throughput, MB/s")
    p_est.add_argument(
        "--dataset-gb", type=float, required=True, help="dataset size in GB"
    )
    p_est.add_argument(
        "--cache-gb",
        type=float,
        default=0.0,
        help="cache allocation in GB (default 0)",
    )
    p_est.add_argument(
        "--io-mbps",
        type=float,
        default=0.0,
        help="remote-IO allocation in MB/s (default 0)",
    )
    p_est.set_defaults(func=_cmd_estimate)

    p_report = sub.add_parser(
        "report", help="summarize an event log from `run --events`"
    )
    p_report.add_argument(
        "events", nargs="?", default=None,
        help="event-log JSONL path (omit with --tail)",
    )
    p_report.add_argument(
        "--tail",
        default=None,
        metavar="HOST:PORT",
        help="subscribe to a running `repro serve` instance and render "
        "the report when it drains (instead of reading a saved log)",
    )
    p_report.add_argument(
        "--bins",
        type=int,
        default=24,
        help="time bins in the throughput timeline (default 24)",
    )
    p_report.add_argument(
        "--chrome-trace",
        default=None,
        metavar="PATH",
        help="also convert the log to Chrome trace_event JSON",
    )
    p_report.add_argument(
        "--csv",
        default=None,
        metavar="PATH",
        help="also write the binned timeline as CSV",
    )
    p_report.add_argument(
        "--slo",
        action="store_true",
        help="append the per-deadline-job SLO attainment table "
        "(jobs submitted with deadline_s; see docs/OBSERVABILITY.md)",
    )
    p_report.set_defaults(func=_cmd_report)

    p_explain = sub.add_parser(
        "explain",
        help="reconstruct one job's decision provenance from an event log",
    )
    p_explain.add_argument("events", help="event-log JSONL path")
    p_explain.add_argument(
        "job_id", help="the job to explain (its job_submit job_id)"
    )
    p_explain.set_defaults(func=_cmd_explain)

    p_lint = sub.add_parser(
        "lint", help="run the invariant linter (repro.lint)"
    )
    configure_lint_parser(p_lint)

    p_bench = sub.add_parser(
        "bench", help="run the perf benchmark suite (repro.perf)"
    )
    configure_bench_parser(p_bench)

    p_serve = sub.add_parser(
        "serve",
        help="run the long-lived online scheduler service (repro.serve)",
    )
    configure_serve_parser(p_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
